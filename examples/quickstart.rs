//! Quickstart: a two-node VIA "cluster", one connected VI pair, a
//! send/receive and an RDMA write — through the VIPL-style API, with the
//! paper's kiobuf-based registration underneath.
//!
//! Run with: `cargo run --example quickstart`

use simmem::{prot, KernelConfig, PAGE_SIZE};
use via::system::ViaSystem;
use via::tpt::ProtectionTag;
use via::vipl::*;
use vialock::StrategyKind;

fn main() {
    // A cluster of two nodes, pinning registered memory with the paper's
    // kiobuf mechanism.
    let mut sys = ViaSystem::new(2, KernelConfig::medium(), StrategyKind::KiobufReliable);
    let alice = sys.spawn_process(0);
    let bob = sys.spawn_process(1);
    let tag = ProtectionTag(42);

    // Create and connect a VI pair.
    let vi_a = VipCreateVi(&mut sys, 0, alice, tag).expect("create VI");
    let vi_b = VipCreateVi(&mut sys, 1, bob, tag).expect("create VI");
    VipConnect(&mut sys, (0, vi_a), (1, vi_b)).expect("connect");

    // Allocate and register communication buffers. Registration faults the
    // pages in, pins them (kiobuf + pin table) and fills the NIC's TPT.
    let sbuf = sys
        .mmap(0, alice, 2 * PAGE_SIZE, prot::READ | prot::WRITE)
        .expect("mmap");
    let rbuf = sys
        .mmap(1, bob, 2 * PAGE_SIZE, prot::READ | prot::WRITE)
        .expect("mmap");
    let smem = VipRegisterMem(&mut sys, 0, alice, sbuf, 2 * PAGE_SIZE, tag).expect("register");
    let rmem = VipRegisterMem(&mut sys, 1, bob, rbuf, 2 * PAGE_SIZE, tag).expect("register");
    println!("registered 2 pages on each node; TPT regions: {}", 2);

    // Two-sided send/receive: the receive descriptor must be pre-posted.
    let msg = b"hello from the Virtual Interface Architecture";
    sys.write_user(0, alice, sbuf, msg).expect("fill");
    VipPostRecv(&mut sys, 1, vi_b, rmem, rbuf, 2 * PAGE_SIZE).expect("post recv");
    VipPostSend(&mut sys, 0, vi_a, smem, sbuf, msg.len()).expect("post send");
    sys.pump().expect("fabric");

    let done = VipCQDone(&mut sys, 1, vi_b)
        .expect("poll")
        .expect("completion");
    let mut got = vec![0u8; done.len];
    sys.read_user(1, bob, rbuf, &mut got).expect("read");
    println!("send/receive: bob got {:?}", String::from_utf8_lossy(&got));
    assert_eq!(&got, msg);

    // One-sided RDMA write: no receive descriptor involved.
    let rdma = b"one-sided RDMA write, straight into bob's registered pages";
    sys.write_user(0, alice, sbuf + 512, rdma).expect("fill");
    VipPostRdmaWrite(
        &mut sys,
        0,
        vi_a,
        smem,
        sbuf + 512,
        rdma.len(),
        rmem,
        rbuf + 512,
    )
    .expect("post rdma");
    sys.pump().expect("fabric");
    let mut got = vec![0u8; rdma.len()];
    sys.read_user(1, bob, rbuf + 512, &mut got).expect("read");
    println!("rdma write:   bob got {:?}", String::from_utf8_lossy(&got));
    assert_eq!(&got, rdma);

    // Registration survives memory pressure — that is the paper's point.
    let stats = sys.node(0).nic.stats;
    println!(
        "nic 0: {} sends, {} rdma writes, {} bytes tx",
        stats.sends, stats.rdma_writes, stats.bytes_tx
    );
    VipDeregisterMem(&mut sys, 0, smem).expect("deregister");
    VipDeregisterMem(&mut sys, 1, rmem).expect("deregister");
    println!("deregistered cleanly — quickstart OK");
}
