//! A miniature NAS IS (Integer Sort): bucket sort over the collectives,
//! with the communication trace charged against the three cluster flavours
//! of the "Comparing MPI Performance of SCI and VIA" evaluation.
//!
//! Run with: `cargo run --example mini_is`

use workload::minis::run_mini_is;
use workload::tables::markdown_table;

fn main() {
    let (ranks, keys) = (4, 20_000);
    println!("mini-IS: {ranks} ranks × {keys} keys, bucket sort via alltoallv\n");
    let rep = run_mini_is(ranks, keys, 1);
    assert!(rep.sorted_ok, "global order verified");
    println!(
        "exchanged {} KiB over the fabric; global order verified: {}\n",
        rep.bytes_exchanged / 1024,
        rep.sorted_ok
    );
    let rows: Vec<Vec<String>> = rep
        .per_network
        .iter()
        .map(|r| {
            vec![
                r.network.to_string(),
                format!("{:.2}", r.comm_ns as f64 / 1e6),
                format!("{:.2}", r.total_ns as f64 / 1e6),
                format!("{:.2}", r.mkeys_per_s),
                format!("{:.1}", r.exchange_bandwidth_mb_s),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["network", "comm (ms)", "total (ms)", "Mkeys/s", "exch MB/s"],
            &rows
        )
    );
    println!("The NPB IS shape: the high-speed interconnects sit close together;");
    println!("FastEthernet pays dearly for the bulk all-to-all exchange.");
}
