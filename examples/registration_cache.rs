//! The registration cache (paper section 1): dynamic registration cost vs.
//! buffer reuse — regenerates the E5 series.
//!
//! Run with: `cargo run --example registration_cache`

use workload::cachebench::run_cache_series;
use workload::tables::markdown_table;

fn main() {
    let buf = 256 * 1024; // 64 pages per buffer: firmly zero-copy
    let sends = 24;
    let cache_pages = 160; // holds ~2.5 buffers

    println!("zero-copy sends over a pool of B buffers; LRU cache budget");
    println!(
        "{cache_pages} pages ({} buffers' worth); {sends} sends.\n",
        cache_pages / 64
    );

    let rows: Vec<Vec<String>> = run_cache_series(&[1, 2, 3, 4, 8], buf, sends, cache_pages)
        .into_iter()
        .map(|p| {
            vec![
                p.working_set_buffers.to_string(),
                format!("{:.0}%", p.hit_ratio * 100.0),
                p.registrations.to_string(),
                format!("{:.2}", p.regs_per_send),
            ]
        })
        .collect();

    println!(
        "{}",
        markdown_table(
            &[
                "working set (buffers)",
                "hit ratio",
                "registrations",
                "regs/send"
            ],
            &rows,
        )
    );

    println!("Small working sets stay registered (\"keep them registered as long");
    println!("as possible\"); once the working set exceeds the budget the cache");
    println!("thrashes and every send pays the kernel trap + per-page pinning.");
}
