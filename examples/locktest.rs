//! The paper's locktest experiment (section 3.1), all four pinning
//! strategies — regenerates Table E1 of EXPERIMENTS.md.
//!
//! Run with: `cargo run --example locktest`

use workload::locktest::run_locktest_matrix;
use workload::tables::{markdown_table, verdict};

fn main() {
    let npages = 64;
    println!("locktest: register {npages} pages, run the allocator antagonist,");
    println!("rewrite the block, DMA through the registration-time physical");
    println!("addresses, compare. (Paper section 3.1, steps 1-8.)\n");

    let rows: Vec<Vec<String>> = run_locktest_matrix(npages)
        .into_iter()
        .map(|o| {
            vec![
                o.strategy.to_string(),
                format!("{}/{}", o.pages_moved, o.pages_total),
                if o.dma_visible { "yes" } else { "NO" }.to_string(),
                o.orphaned_frames.to_string(),
                o.swap_outs.to_string(),
                verdict(o.reliable),
            ]
        })
        .collect();

    println!(
        "{}",
        markdown_table(
            &[
                "strategy",
                "pages moved",
                "DMA visible",
                "orphaned frames",
                "swap-outs",
                "verdict",
            ],
            &rows,
        )
    );

    println!("Expected (the paper's findings):");
    println!("  refcount-only  — pages moved, DMA writes lost, frames orphaned;");
    println!("  raw-flags      — survives, but clobbers the kernel's I/O lock;");
    println!("  vma-mlock      — survives (stealer skips VM_LOCKED), needs CAP_IPC_LOCK;");
    println!("  kiobuf         — survives: the proposed mechanism.");
}
