//! Indirect communication over a planned route: `mdconfig`-style Dijkstra
//! decides that 0 → 2 should travel via node 1 (two SCI hops beat the slow
//! direct Ethernet link), and the message layer executes the relay with
//! system messages — realizing the concept the Multidevice paper describes.
//!
//! Run with: `cargo run --example indirect_routing`

use msg::{Comm, MsgConfig, ANY_TAG};
use netsim::routes::{device_by_size, plan_routes, Link, NetworkDescription};
use simmem::KernelConfig;
use vialock::StrategyKind;
use workload::tables::markdown_table;

fn main() {
    // The OSCAR-like cluster description mdconfig would parse.
    let desc = NetworkDescription {
        n_nodes: 3,
        links: vec![
            Link {
                a: 0,
                b: 1,
                device: "sci",
                latency_ns: 3_000,
                per_byte_ns: 12.2,
            },
            Link {
                a: 1,
                b: 2,
                device: "sci",
                latency_ns: 3_000,
                per_byte_ns: 12.2,
            },
            Link {
                a: 0,
                b: 2,
                device: "ethernet",
                latency_ns: 125_000,
                per_byte_ns: 97.0,
            },
        ],
        forward_ns: Some(10_000),
    };

    println!("route planning (1 KiB messages):\n");
    let rt = plan_routes(&desc, 1024);
    let mut rows = Vec::new();
    for s in 0..3 {
        for d in 0..3 {
            if let Some(r) = rt.route(s, d) {
                let path: Vec<String> = std::iter::once(s.to_string())
                    .chain(r.hops.iter().map(|h| h.to.to_string()))
                    .collect();
                rows.push(vec![
                    format!("{s} → {d}"),
                    path.join(" → "),
                    r.first_device().to_string(),
                    format!("{:.1}", r.cost_ns as f64 / 1000.0),
                ]);
            }
        }
    }
    println!(
        "{}",
        markdown_table(&["pair", "path", "device", "cost (µs)"], &rows)
    );

    // Size-dependent device choice on a dual-rail pair.
    let dual = NetworkDescription {
        n_nodes: 2,
        links: vec![
            Link {
                a: 0,
                b: 1,
                device: "sci",
                latency_ns: 8_000,
                per_byte_ns: 12.2,
            },
            Link {
                a: 0,
                b: 1,
                device: "clan",
                latency_ns: 65_000,
                per_byte_ns: 10.7,
            },
        ],
        forward_ns: None,
    };
    println!("\nConnectiontable for a dual-rail pair (device by message size):\n");
    let rows: Vec<Vec<String>> = device_by_size(&dual, 0, 1, &[64, 4096, 65536, 1 << 22, 1 << 24])
        .into_iter()
        .map(|(n, dev)| vec![n.to_string(), dev.to_string()])
        .collect();
    println!("{}", markdown_table(&["bytes", "device"], &rows));

    // Execute the planned indirect route functionally.
    let r = rt.route(0, 2).expect("route exists");
    assert!(!r.is_direct());
    let intermediate = r.hops[0].to;
    println!("\nexecuting 0 → 2 via node {intermediate} on the functional stack…");

    let mut c = Comm::new(
        3,
        3,
        KernelConfig::medium(),
        StrategyKind::KiobufReliable,
        MsgConfig::tiny(),
    )
    .expect("communicator");
    let msg = b"forwarded through the intermediate, header-wrapped";
    let sbuf = c.alloc_buffer(0, msg.len()).unwrap();
    let rbuf = c.alloc_buffer(2, 128).unwrap();
    c.fill_buffer(0, sbuf, msg).unwrap();
    c.send_indirect(0, intermediate, 2, 7, sbuf, msg.len())
        .unwrap();
    let relayed = c.forward_pump(intermediate).unwrap();
    let env = c.recv_indirect(2, ANY_TAG, rbuf, 128).unwrap();
    let mut out = vec![0u8; env.len];
    c.read_buffer(2, rbuf, &mut out).unwrap();
    println!(
        "relayed {relayed} message(s); rank 2 received {:?} (orig src {}, tag {})",
        String::from_utf8_lossy(&out),
        env.orig_src,
        env.tag
    );
    assert_eq!(&out, msg);
}
