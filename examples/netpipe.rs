//! NetPIPE-style sweeps: the pure network profiles (E7) and the functional
//! protocol sweep (E6) with simulated-time composition.
//!
//! Run with: `cargo run --example netpipe`

use netsim::cost::NetworkProfile;
use netsim::sweep::pow2_sizes;
use vialock::StrategyKind;
use workload::netpipe::{profile_sweep, protocol_sweep};
use workload::tables::{markdown_table, mbs, us};

fn main() {
    // ---- E7: small-message latency table --------------------------------
    println!("E7 — small-message one-way latency (4 B):\n");
    let rows: Vec<Vec<String>> = NetworkProfile::all()
        .iter()
        .map(|p| vec![p.name.to_string(), us(p.transfer_ns(4))])
        .collect();
    println!("{}", markdown_table(&["network", "latency (µs)"], &rows));

    // ---- NetPIPE curves for three networks ------------------------------
    println!("\nMPI-level bandwidth (MB/s) vs message size:\n");
    let sizes = pow2_sizes(64, 4 * 1024 * 1024);
    let sci = profile_sweep(&NetworkProfile::sci_pio(), &sizes);
    let via = profile_sweep(&NetworkProfile::via_clan_mpi(), &sizes);
    let eth = profile_sweep(&NetworkProfile::fast_ethernet(), &sizes);
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            vec![
                n.to_string(),
                mbs(sci[i].bandwidth_mb_s),
                mbs(via[i].bandwidth_mb_s),
                mbs(eth[i].bandwidth_mb_s),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["bytes", "SCI (ScaMPI)", "VIA (cLAN)", "FastEthernet"],
            &rows
        )
    );

    // ---- E6: functional protocol sweep ----------------------------------
    println!("\nE6 — functional protocol sweep (kiobuf pinning, event-charged):\n");
    let pts = protocol_sweep(
        StrategyKind::KiobufReliable,
        &[
            64,
            1024,
            8 * 1024,
            32 * 1024,
            128 * 1024,
            512 * 1024,
            2 * 1024 * 1024,
        ],
        2,
    );
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.bytes.to_string(),
                p.protocol.unwrap_or("?").to_string(),
                us(p.one_way_ns),
                mbs(p.bandwidth_mb_s),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["bytes", "protocol", "one-way (µs)", "MB/s"], &rows)
    );
    println!("shared-memory carries the short messages (lowest latency),");
    println!("one-copy the middle range, zero-copy the bulk transfers.");
}
