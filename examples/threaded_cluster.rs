//! The multi-threaded fabric at cluster scale: four nodes on four OS
//! threads forming a store-and-forward pipeline 0 → 1 → 2 → 3 — real
//! interleavings, per-node mailboxes and N-way routing, same VIA
//! semantics as the deterministic fabric.
//!
//! VIA discipline on display: every hop pre-posts one receive descriptor
//! per expected message (reliable mode *drops* unmatched sends and breaks
//! the connection), each into its own slot, and the upstream node streams
//! freely against its send-completion back-pressure.
//!
//! Run with: `cargo run --example threaded_cluster`

use simmem::{prot, Capabilities, KernelConfig};
use via::descriptor::{DescOp, Descriptor};
use via::nic::Node;
use via::threaded::{connect_nodes, run_cluster, FabricStats, NodeCtx};
use via::tpt::ProtectionTag;
use via::{ViId, ViaResult};
use vialock::StrategyKind;

const NODES: usize = 4;
const MSGS: usize = 100;
const MSG_BYTES: usize = 1024;

type Driver = Box<dyn FnOnce(&mut NodeCtx) -> ViaResult<(usize, FabricStats)> + Send>;

fn main() {
    let tag = ProtectionTag(1);
    let mut nodes: Vec<Node> = (0..NODES)
        .map(|_| Node::new(KernelConfig::large(), StrategyKind::KiobufReliable, 4096))
        .collect();
    let pids: Vec<_> = nodes
        .iter_mut()
        .map(|n| n.kernel.spawn_process(Capabilities::default()))
        .collect();

    // Node i owns `vin[i]` (from its predecessor) and `vout[i]` (to its
    // successor); the ends of the pipeline leave the unused side out.
    let mut vin: Vec<Option<ViId>> = vec![None; NODES];
    let mut vout: Vec<Option<ViId>> = vec![None; NODES];
    for i in 0..NODES {
        if i > 0 {
            vin[i] = Some(nodes[i].nic.create_vi(pids[i], tag));
        }
        if i + 1 < NODES {
            vout[i] = Some(nodes[i].nic.create_vi(pids[i], tag));
        }
    }
    for i in 0..NODES - 1 {
        connect_nodes(
            &mut nodes,
            (i, vout[i].expect("vout")),
            (i + 1, vin[i + 1].expect("vin")),
        )
        .expect("connect hop");
    }

    // One MSG_BYTES staging buffer on node 0; a MSGS-slot arena on every
    // downstream node (slot i holds message i, so the tail can audit all
    // of them after the dust settles).
    let arena = MSGS * MSG_BYTES;
    let b0 = nodes[0]
        .kernel
        .mmap_anon(pids[0], MSG_BYTES, prot::READ | prot::WRITE)
        .unwrap();
    let m0 = nodes[0].register_mem(pids[0], b0, MSG_BYTES, tag).unwrap();
    let mut slabs = [(0u64, via::MemId(0)); NODES];
    for i in 1..NODES {
        let b = nodes[i]
            .kernel
            .mmap_anon(pids[i], arena, prot::READ | prot::WRITE)
            .unwrap();
        let m = nodes[i].register_mem(pids[i], b, arena, tag).unwrap();
        slabs[i] = (b, m);
        // Pre-post every receive, one slot per message.
        for k in 0..MSGS {
            nodes[i]
                .nic
                .vi_mut(vin[i].expect("vin"))
                .unwrap()
                .recv_q
                .push_back(Descriptor::recv(m, b + (k * MSG_BYTES) as u64, MSG_BYTES));
        }
    }

    println!("streaming {MSGS} × {MSG_BYTES} B down the pipeline 0 → 1 → 2 → 3…");

    let mut drivers: Vec<Driver> = Vec::new();
    for i in 0..NODES {
        let (vi_in, vi_out) = (vin[i], vout[i]);
        let (slab_addr, slab_mem) = slabs[i];
        let pid = pids[i];
        drivers.push(Box::new(move |ctx| {
            let mut handled = 0usize;
            if i == 0 {
                // The head: stamp each payload and stream, reusing the
                // buffer only after its send completion comes back.
                for k in 0..MSGS {
                    ctx.node
                        .kernel
                        .write_user(pid, b0, &vec![(k % 251) as u8; MSG_BYTES])?;
                    ctx.node
                        .nic
                        .vi_mut(vi_out.expect("head sends"))?
                        .send_q
                        .push_back(Descriptor::send(m0, b0, MSG_BYTES));
                    let c = ctx.wait_completion(vi_out.expect("head sends"))?;
                    assert_eq!(c.op, DescOp::Send);
                    handled += 1;
                }
            } else {
                // Middle hops forward each slot as it lands; the tail
                // just counts.
                for k in 0..MSGS {
                    let c = ctx.wait_completion(vi_in.expect("downstream receives"))?;
                    assert_eq!(c.op, DescOp::Recv);
                    assert_eq!(c.len, MSG_BYTES);
                    if let Some(out) = vi_out {
                        let slot = slab_addr + (k * MSG_BYTES) as u64;
                        ctx.node
                            .nic
                            .vi_mut(out)?
                            .send_q
                            .push_back(Descriptor::send(slab_mem, slot, MSG_BYTES));
                        loop {
                            if ctx.wait_completion(out)?.op == DescOp::Send {
                                break;
                            }
                        }
                    }
                    handled += 1;
                }
            }
            Ok((handled, ctx.fabric_stats()))
        }));
    }

    let mut results = run_cluster(nodes, drivers).expect("threaded run");

    // Verify every slot on the tail node after the dust settles.
    let (tail_result, tail_node) = &mut results[NODES - 1];
    let (tail_addr, _) = slabs[NODES - 1];
    for k in 0..MSGS {
        let mut out = vec![0u8; MSG_BYTES];
        tail_node
            .kernel
            .read_user(
                pids[NODES - 1],
                tail_addr + (k * MSG_BYTES) as u64,
                &mut out,
            )
            .unwrap();
        assert!(
            out.iter().all(|&b| b == (k % 251) as u8),
            "message {k} corrupted at the tail"
        );
    }
    assert_eq!(tail_result.0, MSGS);

    println!("all {MSGS} payloads verified after {} hops", NODES - 1);
    for (i, ((handled, stats), node)) in results.iter().enumerate() {
        println!(
            "node {i}: handled {handled}, routed {} pkts in {} batches, \
             delivered {}, parks {}, spin-wakes {} | nic tx {} B rx {} B",
            stats.packets_routed,
            stats.batches_sent,
            stats.delivered,
            stats.parks,
            stats.spin_wakes,
            node.nic.stats.bytes_tx,
            node.nic.stats.bytes_rx
        );
    }
}
