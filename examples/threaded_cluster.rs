//! The multi-threaded fabric: two nodes on two OS threads exchanging
//! send/receive traffic over crossbeam channels — real interleavings, same
//! VIA semantics as the deterministic fabric.
//!
//! VIA discipline on display: the receiver pre-posts one descriptor per
//! expected message (reliable mode *drops* unmatched sends and breaks the
//! connection), each into its own slot, and the sender streams freely.
//!
//! Run with: `cargo run --example threaded_cluster`

use simmem::{prot, Capabilities, KernelConfig};
use via::descriptor::{DescOp, Descriptor};
use via::nic::Node;
use via::threaded::{connect_pair, run_pair};
use via::tpt::ProtectionTag;
use vialock::StrategyKind;

const MSGS: usize = 200;
const MSG_BYTES: usize = 1024;

fn main() {
    let mut n0 = Node::new(KernelConfig::large(), StrategyKind::KiobufReliable, 4096);
    let mut n1 = Node::new(KernelConfig::large(), StrategyKind::KiobufReliable, 4096);
    let tag = ProtectionTag(1);
    let p0 = n0.kernel.spawn_process(Capabilities::default());
    let p1 = n1.kernel.spawn_process(Capabilities::default());
    let v0 = n0.nic.create_vi(p0, tag);
    let v1 = n1.nic.create_vi(p1, tag);
    connect_pair(&mut n0, v0, 0, &mut n1, v1, 1).expect("connect");

    let b0 = n0
        .kernel
        .mmap_anon(p0, MSG_BYTES, prot::READ | prot::WRITE)
        .unwrap();
    let rlen = MSGS * MSG_BYTES;
    let b1 = n1
        .kernel
        .mmap_anon(p1, rlen, prot::READ | prot::WRITE)
        .unwrap();
    let m0 = n0.register_mem(p0, b0, MSG_BYTES, tag).unwrap();
    let m1 = n1.register_mem(p1, b1, rlen, tag).unwrap();

    // Pre-post every receive, one slot per message.
    for i in 0..MSGS {
        n1.nic
            .vi_mut(v1)
            .unwrap()
            .recv_q
            .push_back(Descriptor::recv(m1, b1 + (i * MSG_BYTES) as u64, MSG_BYTES));
    }

    println!("streaming {MSGS} × {MSG_BYTES} B node 0 → node 1, one thread per node…");

    let ((sent, n0), (received, mut n1)) = run_pair(
        n0,
        n1,
        move |ctx| {
            for i in 0..MSGS {
                ctx.node
                    .kernel
                    .write_user(p0, b0, &vec![(i % 251) as u8; MSG_BYTES])?;
                ctx.node
                    .nic
                    .vi_mut(v0)?
                    .send_q
                    .push_back(Descriptor::send(m0, b0, MSG_BYTES));
                // Wait for the send completion before reusing the buffer —
                // VIA completes a send once the data is on the wire.
                let c = ctx.wait_completion(v0)?;
                assert_eq!(c.op, DescOp::Send);
            }
            Ok(MSGS)
        },
        move |ctx| {
            let mut received = 0usize;
            while received < MSGS {
                let c = ctx.wait_completion(v1)?;
                assert_eq!(c.op, DescOp::Recv);
                assert_eq!(c.len, MSG_BYTES);
                received += 1;
            }
            Ok(received)
        },
    )
    .expect("threaded run");

    // Verify every slot after the dust settles.
    for i in 0..MSGS {
        let mut out = vec![0u8; MSG_BYTES];
        n1.kernel
            .read_user(p1, b1 + (i * MSG_BYTES) as u64, &mut out)
            .unwrap();
        assert!(
            out.iter().all(|&b| b == (i % 251) as u8),
            "message {i} corrupted"
        );
    }

    println!("node 0 sent {sent}, node 1 received {received} — all {MSGS} payloads verified");
    println!(
        "nic stats: tx {} B ({} sends), rx {} B ({} recvs)",
        n0.nic.stats.bytes_tx, n0.nic.stats.sends, n1.nic.stats.bytes_rx, n1.nic.stats.recvs
    );
}
