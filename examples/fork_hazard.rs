//! The fork-after-registration hazard and its `MADV_DONTFORK` remedy:
//! pinning protects a frame from the page stealer, but not from
//! copy-on-write.
//!
//! Run with: `cargo run --example fork_hazard`

use simmem::{prot, Capabilities, Kernel, KernelConfig, PAGE_SIZE};
use vialock::{MemoryRegistry, StrategyKind};

fn main() {
    println!("fork-after-registration: even reliable pinning cannot stop COW\n");

    // --- the hazard ------------------------------------------------------
    let mut k = Kernel::new(KernelConfig::small());
    let parent = k.spawn_process(Capabilities::default());
    let buf = k
        .mmap_anon(parent, 2 * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    k.write_user(parent, buf, b"registered").unwrap();
    let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
    let h = reg.register(&mut k, parent, buf, 2 * PAGE_SIZE).unwrap();
    println!(
        "registered 2 pages with the kiobuf mechanism — consistent: {}",
        reg.verify_consistency(&k, h).unwrap()
    );

    let child = k.fork(parent).unwrap();
    k.write_user(parent, buf, b"post-fork!").unwrap();
    println!(
        "after fork + parent write     — consistent: {}  <-- the hazard",
        reg.verify_consistency(&k, h).unwrap()
    );
    let pinned = reg.frames(h).unwrap()[0];
    k.dma_write(pinned, 0, b"DMA").unwrap();
    let mut out = [0u8; 3];
    k.read_user(child, buf, &mut out).unwrap();
    println!(
        "NIC DMA through the TPT lands in the CHILD's view: {:?}",
        String::from_utf8_lossy(&out)
    );
    reg.deregister(&mut k, h).unwrap();

    // --- the remedy ------------------------------------------------------
    let mut k = Kernel::new(KernelConfig::small());
    let parent = k.spawn_process(Capabilities::default());
    let buf = k
        .mmap_anon(parent, 2 * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    k.write_user(parent, buf, b"registered").unwrap();
    let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
    let h = reg.register(&mut k, parent, buf, 2 * PAGE_SIZE).unwrap();
    k.madvise_dontfork(parent, buf, 2 * PAGE_SIZE, true)
        .unwrap();
    let child = k.fork(parent).unwrap();
    k.write_user(parent, buf, b"post-fork!").unwrap();
    println!(
        "\nwith madvise(MADV_DONTFORK)   — consistent: {}  <-- the remedy",
        reg.verify_consistency(&k, h).unwrap()
    );
    println!(
        "child access to the region: {:?}",
        k.read_user(child, buf, &mut [0u8; 1])
            .err()
            .map(|e| e.to_string())
    );
    reg.deregister(&mut k, h).unwrap();
}
