//! The three CHEMPI protocols in action: one message per decade of size,
//! showing the protocol switch (shared-memory → one-copy → zero-copy), the
//! dynamic registrations of the rendezvous, and end-to-end data integrity.
//!
//! Run with: `cargo run --example zero_copy_rendezvous`

use msg::{Comm, MsgConfig};
use simmem::KernelConfig;
use vialock::StrategyKind;
use workload::model::{reg_cost_for, time_from_stats};
use workload::tables::markdown_table;

fn main() {
    let strategy = StrategyKind::KiobufReliable;
    let mut comm = Comm::new(2, 2, KernelConfig::large(), strategy, MsgConfig::classic())
        .expect("communicator");
    let costs = netsim::proto::ProtocolCosts::classic(reg_cost_for(strategy));

    println!("protocol walkthrough: rank 0 → rank 1, kiobuf pinning\n");
    let mut rows = Vec::new();
    for &len in &[64usize, 4 * 1024, 64 * 1024, 512 * 1024, 2 * 1024 * 1024] {
        let sbuf = comm.alloc_buffer(0, len).expect("sbuf");
        let rbuf = comm.alloc_buffer(1, len).expect("rbuf");
        let payload: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
        comm.fill_buffer(0, sbuf, &payload).expect("fill");

        let before = comm.stats;
        let h = comm.send(0, 1, 9, sbuf, len).expect("send");
        let got = comm.recv(1, 0, 9, rbuf, len).expect("recv");
        comm.wait(h).expect("wait");
        let d = comm.stats.since(&before);

        let mut out = vec![0u8; len];
        comm.read_buffer(1, rbuf, &mut out).expect("read");
        assert_eq!(out, payload, "integrity at {len} B");
        assert_eq!(got, len);

        let proto = if d.sm_msgs > 0 {
            "shared-memory"
        } else if d.oc_msgs > 0 {
            "one-copy"
        } else {
            "zero-copy"
        };
        let t = time_from_stats(&d, &costs);
        rows.push(vec![
            format!("{len}"),
            proto.to_string(),
            d.oc_chunks.to_string(),
            d.registrations.to_string(),
            d.cache_hits.to_string(),
            format!("{}", d.copy_bytes),
            format!("{:.1}", t as f64 / 1000.0),
            format!("{:.1}", netsim::sweep::bandwidth_mb_s(len, t)),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "bytes",
                "protocol",
                "chunks",
                "regs",
                "cache hits",
                "copied bytes",
                "t (µs, model)",
                "MB/s (model)",
            ],
            &rows,
        )
    );
    println!("note the zero-copy rows: 0 copied bytes — payload lands by RDMA");
    println!("directly in the receiver's registered user buffer.");
}
