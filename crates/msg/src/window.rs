//! MPI-2-style one-sided communication: windows, put and get.
//!
//! The CHEMPI companion paper plans exactly this ("the one-sided
//! communication contained in MPI-2 can also be realized through this
//! concept"): a rank *exposes* a window of its memory — which registers it
//! once and publishes the `(MemId, addr)` pair — and peers then `put`/`get`
//! against it with RDMA writes and reads, no receiver involvement, no
//! copies.

use simmem::VirtAddr;
use via::tpt::MemId;
use via::{ViaError, ViaResult};

use crate::comm::{Comm, RankId};

/// A window exposed by one rank: the published RDMA coordinates.
#[derive(Debug, Clone, Copy)]
pub struct Window {
    pub owner: RankId,
    pub base: VirtAddr,
    pub len: usize,
    /// The owner-side registration peers target.
    pub mem: MemId,
}

impl Comm {
    /// Expose `[base, base+len)` of `owner`'s memory as a one-sided window.
    /// Registers with both RDMA-write and RDMA-read enabled and returns the
    /// published coordinates (the out-of-band exchange MPI_Win_create's
    /// collective performs).
    pub fn expose_window(
        &mut self,
        owner: RankId,
        base: VirtAddr,
        len: usize,
    ) -> ViaResult<Window> {
        let node = self.rank_node(owner);
        let pid = self.rank_pid(owner);
        let tag = self.rank_tag(owner);
        let mem = self
            .system_mut()
            .node_mut(node)
            .register_mem_attrs(pid, base, len, tag, true, true)?;
        Ok(Window {
            owner,
            base,
            len,
            mem,
        })
    }

    /// Close a window: deregister the owner-side registration.
    pub fn close_window(&mut self, w: Window) -> ViaResult<()> {
        let node = self.rank_node(w.owner);
        self.system_mut().node_mut(node).deregister_mem(w.mem)
    }

    /// One-sided put: move `len` bytes from `origin`'s `[src, src+len)`
    /// into the window at `offset`. The origin's buffer is registered
    /// through the cache; the transfer is a single RDMA write.
    pub fn put(
        &mut self,
        origin: RankId,
        src: VirtAddr,
        len: usize,
        w: &Window,
        offset: usize,
    ) -> ViaResult<()> {
        if offset + len > w.len {
            return Err(ViaError::OutOfBounds);
        }
        if origin == w.owner {
            // Local put: plain memory copy through the recycled scratch.
            return self.local_copy(origin, src, w.base + offset as u64, len);
        }
        let (node, pid, tag) = (
            self.rank_node(origin),
            self.rank_pid(origin),
            self.rank_tag(origin),
        );
        let mem = self.cache_acquire_for(node, pid, src, len, tag)?;
        let vi = self.pair_send_vi(origin, w.owner)?;
        self.system_mut().post_rdma_write(
            node,
            vi,
            mem,
            src,
            len,
            w.mem,
            w.base + offset as u64,
        )?;
        self.system_mut().pump()?;
        self.stats.dma_bytes += len as u64;
        // Drain the send completion so the CQ does not grow unbounded.
        let _ = self.system_mut().poll_cq(node, vi)?;
        self.cache_release_for(node, mem)?;
        Ok(())
    }

    /// One-sided get: fetch `len` bytes from the window at `offset` into
    /// `origin`'s `[dst, dst+len)` — a single RDMA read.
    pub fn get(
        &mut self,
        origin: RankId,
        dst: VirtAddr,
        len: usize,
        w: &Window,
        offset: usize,
    ) -> ViaResult<()> {
        if offset + len > w.len {
            return Err(ViaError::OutOfBounds);
        }
        if origin == w.owner {
            return self.local_copy(origin, w.base + offset as u64, dst, len);
        }
        let (node, pid, tag) = (
            self.rank_node(origin),
            self.rank_pid(origin),
            self.rank_tag(origin),
        );
        let mem = self.cache_acquire_for(node, pid, dst, len, tag)?;
        let vi = self.pair_send_vi(origin, w.owner)?;
        self.system_mut()
            .post_rdma_read(node, vi, mem, dst, len, w.mem, w.base + offset as u64)?;
        self.system_mut().pump()?;
        self.stats.dma_bytes += len as u64;
        let _ = self.system_mut().poll_cq(node, vi)?;
        self.cache_release_for(node, mem)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MsgConfig;
    use simmem::KernelConfig;
    use vialock::StrategyKind;

    fn comm() -> Comm {
        Comm::new(
            3,
            2,
            KernelConfig::medium(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap()
    }

    #[test]
    fn put_and_get_roundtrip() {
        let mut c = comm();
        let win_buf = c.alloc_buffer(1, 8192).unwrap();
        let w = c.expose_window(1, win_buf, 8192).unwrap();

        // Rank 0 puts into rank 1's window.
        let src = c.alloc_buffer(0, 256).unwrap();
        c.fill_buffer(0, src, &[0x7Au8; 256]).unwrap();
        c.put(0, src, 256, &w, 1000).unwrap();
        // Owner sees it through plain loads.
        let mut out = vec![0u8; 256];
        c.read_buffer(1, win_buf + 1000, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x7A));

        // Rank 2 gets it back out.
        let dst = c.alloc_buffer(2, 256).unwrap();
        c.get(2, dst, 256, &w, 1000).unwrap();
        let mut out = vec![0u8; 256];
        c.read_buffer(2, dst, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x7A));

        c.close_window(w).unwrap();
    }

    #[test]
    fn bounds_are_enforced() {
        let mut c = comm();
        let win_buf = c.alloc_buffer(1, 4096).unwrap();
        let w = c.expose_window(1, win_buf, 4096).unwrap();
        let src = c.alloc_buffer(0, 512).unwrap();
        assert_eq!(c.put(0, src, 512, &w, 4000), Err(ViaError::OutOfBounds));
        assert_eq!(c.get(0, src, 512, &w, 4000), Err(ViaError::OutOfBounds));
        c.close_window(w).unwrap();
    }

    #[test]
    fn local_window_ops_copy() {
        let mut c = comm();
        let win_buf = c.alloc_buffer(0, 4096).unwrap();
        let w = c.expose_window(0, win_buf, 4096).unwrap();
        let src = c.alloc_buffer(0, 64).unwrap();
        c.fill_buffer(
            0,
            src,
            b"local-put-through-window-path-0000000000000000000000000000000000",
        )
        .unwrap();
        c.put(0, src, 64, &w, 0).unwrap();
        let dst = c.alloc_buffer(0, 64).unwrap();
        c.get(0, dst, 64, &w, 0).unwrap();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        c.read_buffer(0, src, &mut a).unwrap();
        c.read_buffer(0, dst, &mut b).unwrap();
        assert_eq!(a, b);
        c.close_window(w).unwrap();
    }

    #[test]
    fn window_survives_pressure_with_reliable_pinning() {
        let mut c = Comm::new(
            2,
            2,
            KernelConfig {
                nframes: 1024,
                reserved_frames: 8,
                swap_slots: 16384,
                default_rlimit_memlock: None,
                swap_cache: false,
            },
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap();
        let win_buf = c.alloc_buffer(1, 16 * 4096).unwrap();
        let w = c.expose_window(1, win_buf, 16 * 4096).unwrap();
        // Pressure the window owner's node.
        workload_pressure(c.system_mut().kernel_mut(1), 2048);
        // Put still lands where the owner reads it.
        let src = c.alloc_buffer(0, 4096).unwrap();
        c.fill_buffer(0, src, &[0x42u8; 4096]).unwrap();
        c.put(0, src, 4096, &w, 0).unwrap();
        let mut out = vec![0u8; 4096];
        c.read_buffer(1, win_buf, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x42));
        c.close_window(w).unwrap();
    }

    /// Local copy of the antagonist (the workload crate depends on msg, so
    /// msg's tests cannot use it without a cycle).
    fn workload_pressure(k: &mut simmem::Kernel, pages: usize) {
        let pid = k.spawn_process(simmem::Capabilities::default());
        let len = pages * simmem::PAGE_SIZE;
        let a = k
            .mmap_anon(pid, len, simmem::prot::READ | simmem::prot::WRITE)
            .unwrap();
        for i in 0..pages {
            if k.write_user(pid, a + (i * simmem::PAGE_SIZE) as u64, &[1u8; 8])
                .is_err()
            {
                break;
            }
        }
    }
}
