//! The communicator: ranks, directed pair channels and the three transfer
//! protocols, implemented functionally on the `via` fabric.
//!
//! All user payloads live in simulated process memory; `send` takes a
//! (rank, address, length) triple, not a host slice, so every byte really
//! flows through registered frames — and through whatever pinning strategy
//! the nodes were configured with.
//!
//! The communicator is generic over the [`Fabric`]: [`Comm::new`] builds
//! the deterministic [`ViaSystem`] variant, [`Comm::on_fabric`] wraps any
//! pre-built fabric (e.g. a [`via::ThreadedCluster`]) so the same protocol
//! code runs over real concurrency.

use std::collections::{HashMap, VecDeque};

use simmem::{prot, KernelConfig, Pid, VirtAddr, PAGE_SIZE};
use via::system::{NodeId, ViaSystem};
use via::tpt::{MemId, ProtectionTag};
use via::vi::ViId;
use via::{DescOp, Fabric, FabricNode, ViaError, ViaResult};
use vialock::StrategyKind;

use crate::config::{MsgConfig, Protocol};
use crate::regcache::NodeRegCache;
use crate::seg::{
    MsgInfo, Response, SegLayout, ACTIVE_FREE, ACTIVE_POSTED, ACTIVE_ZC_DONE, INFO_SIZE,
    RESP_BUF_READY, RESP_DONE, RESP_NONE, RESP_SIZE,
};
use crate::stats::MsgStats;

/// Rank index within the communicator.
pub type RankId = usize;

/// Wildcard receive tag (`MPI_ANY_TAG`).
pub const ANY_TAG: u32 = u32::MAX;

/// Wildcard source rank (`MPI_ANY_SOURCE`). Receiving from any source is
/// the case the Multidevice paper singles out as problematic: the receiver
/// must probe every channel round-robin until one signals readiness.
pub const ANY_SOURCE: RankId = usize::MAX;

/// Handle to an in-flight send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendHandle(usize);

/// A persistent send request: parameters plus the held registration.
#[derive(Debug)]
pub struct PersistentSend {
    pub from: RankId,
    pub to: RankId,
    pub tag: u32,
    pub addr: VirtAddr,
    pub len: usize,
    held: Option<(NodeId, MemId)>,
}

/// Bound on receive/wait spinning; exceeded only on protocol bugs.
const SPIN_LIMIT: usize = 100_000;

struct RankInfo {
    node: NodeId,
    pid: Pid,
    tag: ProtectionTag,
}

/// State of a directed sender→receiver channel.
struct Pair {
    vi_s: ViId,
    vi_r: ViId,
    /// Receiver-exported segment (info slots + SM data slots), on the
    /// receiver's node.
    r_seg_addr: VirtAddr,
    r_seg_mem: MemId,
    /// Sender-exported control segment (response records).
    s_seg_addr: VirtAddr,
    s_seg_mem: MemId,
    layout: SegLayout,
    /// Sender-side slot allocation.
    slot_busy: Vec<bool>,
    next_msg_id: u64,
    /// One-copy receive ring: buffer addresses in posted (FIFO) order.
    oc_ring: VecDeque<VirtAddr>,
    oc_mem: MemId,
}

enum SendState {
    /// SM / one-copy: data is out; waiting for the receiver's DONE flag.
    AwaitDone { cached_mem: Option<MemId> },
    /// Zero-copy: announced; waiting for the rendezvous answer.
    ZcAwaitBuffer {
        cached_mem: MemId,
        addr: VirtAddr,
        len: usize,
    },
    /// Zero-copy: RDMA issued; waiting for the receiver's DONE flag.
    ZcAwaitDone { cached_mem: MemId },
}

struct PendingSend {
    from: RankId,
    to: RankId,
    slot: usize,
    state: SendState,
}

/// The communicator, generic over the underlying [`Fabric`] (the
/// deterministic [`ViaSystem`] by default).
pub struct Comm<F: Fabric = ViaSystem> {
    sys: F,
    cfg: MsgConfig,
    ranks: Vec<RankInfo>,
    pairs: HashMap<(RankId, RankId), Pair>,
    pending: Vec<Option<PendingSend>>,
    caches: Vec<NodeRegCache>,
    /// Relay sends in flight for the indirect-communication machinery.
    pub(crate) pending_forward_handles: Vec<SendHandle>,
    /// Recycled staging buffer for the SM and one-copy copy-out paths, so
    /// steady-state receives do not allocate per message (or per chunk).
    copy_scratch: Vec<u8>,
    /// Per-rank 8-byte landing buffers for one-sided CAS results,
    /// allocated lazily on first use so steady-state `Window::cas` calls
    /// never mmap.
    pub(crate) cas_scratch: HashMap<RankId, VirtAddr>,
    pub stats: MsgStats,
}

impl Comm {
    /// Build a communicator of `n_ranks` ranks spread round-robin over
    /// `n_nodes` nodes of a fresh deterministic fabric, with all channels
    /// set up.
    pub fn new(
        n_ranks: usize,
        n_nodes: usize,
        kcfg: KernelConfig,
        strategy: StrategyKind,
        cfg: MsgConfig,
    ) -> ViaResult<Self> {
        Comm::on_fabric(ViaSystem::new(n_nodes, kcfg, strategy), n_ranks, cfg)
    }
}

impl<F: Fabric> Comm<F> {
    /// Build a communicator of `n_ranks` ranks spread round-robin over the
    /// nodes of a pre-built fabric (deterministic or threaded), with all
    /// channels set up.
    pub fn on_fabric(mut sys: F, n_ranks: usize, cfg: MsgConfig) -> ViaResult<Self> {
        cfg.validate()
            .map_err(|_| ViaError::BadState("invalid MsgConfig"))?;
        let n_nodes = sys.node_count();
        let mut ranks = Vec::with_capacity(n_ranks);
        for r in 0..n_ranks {
            let node = r % n_nodes;
            let pid = sys.spawn_process(node);
            ranks.push(RankInfo {
                node,
                pid,
                tag: ProtectionTag(1000 + r as u32),
            });
        }
        let caches = (0..n_nodes)
            .map(|_| NodeRegCache::new(cfg.cache_pages))
            .collect();
        let mut comm = Comm {
            sys,
            cfg,
            ranks,
            pairs: HashMap::new(),
            pending: Vec::new(),
            caches,
            pending_forward_handles: Vec::new(),
            copy_scratch: Vec::new(),
            cas_scratch: HashMap::new(),
            stats: MsgStats::default(),
        };
        for s in 0..n_ranks {
            for r in 0..n_ranks {
                if s != r {
                    comm.setup_pair(s, r)?;
                }
            }
        }
        Ok(comm)
    }

    fn setup_pair(&mut self, s: RankId, r: RankId) -> ViaResult<()> {
        let layout = SegLayout {
            info_slots: self.cfg.info_slots,
            slot_data_bytes: self.cfg.sm_max,
        };
        let (s_node, s_pid, s_tag) = {
            let i = &self.ranks[s];
            (i.node, i.pid, i.tag)
        };
        let (r_node, r_pid, r_tag) = {
            let i = &self.ranks[r];
            (i.node, i.pid, i.tag)
        };

        // VI pair for the one-copy/zero-copy descriptors.
        let vi_s = self.sys.create_vi(s_node, s_pid, s_tag)?;
        let vi_r = self.sys.create_vi(r_node, r_pid, r_tag)?;
        self.sys.connect((s_node, vi_s), (r_node, vi_r))?;

        // Receiver-exported segment.
        let r_len = layout.r_seg_bytes();
        let r_seg_addr = self
            .sys
            .mmap(r_node, r_pid, r_len, prot::READ | prot::WRITE)?;
        self.sys
            .touch_pages(r_node, r_pid, r_seg_addr, r_len, true)?;
        let r_seg_mem = self
            .sys
            .register_mem(r_node, r_pid, r_seg_addr, r_len, r_tag)?;

        // Sender-exported control segment.
        let s_len = layout.s_seg_bytes();
        let s_seg_addr = self
            .sys
            .mmap(s_node, s_pid, s_len, prot::READ | prot::WRITE)?;
        self.sys
            .touch_pages(s_node, s_pid, s_seg_addr, s_len, true)?;
        let s_seg_mem = self
            .sys
            .register_mem(s_node, s_pid, s_seg_addr, s_len, s_tag)?;

        // One-copy ring: `prepost` buffers of chunk size, registered once,
        // pre-posted as receive descriptors in FIFO order.
        let ring_len = self.cfg.prepost * self.cfg.chunk_bytes;
        let ring_addr = self
            .sys
            .mmap(r_node, r_pid, ring_len, prot::READ | prot::WRITE)?;
        self.sys
            .touch_pages(r_node, r_pid, ring_addr, ring_len, true)?;
        let oc_mem = self
            .sys
            .register_mem(r_node, r_pid, ring_addr, ring_len, r_tag)?;
        let mut oc_ring = VecDeque::with_capacity(self.cfg.prepost);
        for i in 0..self.cfg.prepost {
            let addr = ring_addr + (i * self.cfg.chunk_bytes) as u64;
            self.sys
                .post_recv(r_node, vi_r, oc_mem, addr, self.cfg.chunk_bytes)?;
            oc_ring.push_back(addr);
        }

        self.pairs.insert(
            (s, r),
            Pair {
                vi_s,
                vi_r,
                r_seg_addr,
                r_seg_mem,
                s_seg_addr,
                s_seg_mem,
                layout,
                slot_busy: vec![false; self.cfg.info_slots],
                next_msg_id: 1,
                oc_ring,
                oc_mem,
            },
        );
        Ok(())
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The node a rank lives on.
    pub fn rank_node(&self, r: RankId) -> NodeId {
        self.ranks[r].node
    }

    /// The simulated process of a rank.
    pub fn rank_pid(&self, r: RankId) -> Pid {
        self.ranks[r].pid
    }

    /// The protection tag of a rank.
    pub fn rank_tag(&self, r: RankId) -> ProtectionTag {
        self.ranks[r].tag
    }

    /// The sender-side VI of the directed channel `from → to` (one-sided
    /// operations ride the same VI pair the protocols use).
    pub(crate) fn pair_send_vi(&self, from: RankId, to: RankId) -> ViaResult<ViId> {
        self.pairs
            .get(&(from, to))
            .map(|p| p.vi_s)
            .ok_or(ViaError::BadId("pair"))
    }

    /// Cache-acquire a registration on behalf of window put/get.
    pub(crate) fn cache_acquire_for(
        &mut self,
        node: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId> {
        self.cached_acquire(node, pid, addr, len, tag)
    }

    /// Matching release.
    pub(crate) fn cache_release_for(&mut self, node: NodeId, mem: MemId) -> ViaResult<()> {
        self.cached_release(node, mem)
    }

    /// Access the underlying fabric (workloads run antagonists through it).
    pub fn system_mut(&mut self) -> &mut F {
        &mut self.sys
    }

    /// Consume the communicator and hand back the fabric — for tests that
    /// tear the cluster down and inspect the post-mortem result.
    pub fn into_system(self) -> F {
        self.sys
    }

    /// Tear down rank `r`'s process and abandon every pending send that
    /// touches it. The process teardown reclaims the rank's pins and
    /// registrations, so the progress engine must never again read or
    /// write its segments: in-flight sends *from* the rank died with it,
    /// and sends *toward* it can never complete (nobody will consume
    /// them). Survivor-to-survivor traffic is untouched; fresh sends to
    /// the retired rank fail with a typed error at the transport layer.
    pub fn retire_rank(&mut self, r: RankId) -> ViaResult<()> {
        let (node, pid) = (self.ranks[r].node, self.ranks[r].pid);
        self.sys.exit_process(node, pid)?;
        for slot in &mut self.pending {
            if slot.as_ref().is_some_and(|p| p.from == r || p.to == r) {
                *slot = None;
            }
        }
        // Discard messages the dead rank posted but nobody consumed yet:
        // they sit in each *survivor's* segment, but delivering one would
        // require acking into the dead rank's (reclaimed) response slot.
        // Crash-stop semantics — in-flight traffic from the casualty is
        // dropped, like frames on a wire whose endpoint vanished.
        let survivors: Vec<RankId> = (0..self.ranks.len()).filter(|&s| s != r).collect();
        for to in survivors {
            for slot in 0..self.cfg.info_slots {
                self.clear_info(r, to, slot)?;
            }
        }
        Ok(())
    }

    /// Per-node registration-cache statistics.
    pub fn cache_stats(&self, node: NodeId) -> vialock::CacheStats {
        self.caches[node].stats()
    }

    /// Per-node NIC data-path statistics (TLB hit rates, DMA ops, pool
    /// recycling) — benches read deltas of these. `&mut self`: on a
    /// threaded fabric this is a command round-trip into the node's
    /// service thread.
    pub fn nic_stats(&mut self, node: NodeId) -> via::nic::NicStats {
        self.sys.nic_stats(node)
    }

    /// Intra-rank staging copy (`src → dst`, same process) through the
    /// recycled scratch buffer — the local fallback of one-sided put/get.
    pub(crate) fn local_copy(
        &mut self,
        rank: RankId,
        src: VirtAddr,
        dst: VirtAddr,
        len: usize,
    ) -> ViaResult<()> {
        let mut tmp = std::mem::take(&mut self.copy_scratch);
        tmp.clear();
        tmp.resize(len, 0);
        let copied = self
            .read_buffer(rank, src, &mut tmp)
            .and_then(|()| self.fill_buffer(rank, dst, &tmp));
        self.copy_scratch = tmp;
        copied?;
        self.stats.copy_bytes += len as u64;
        self.stats.copy_ops += 1;
        Ok(())
    }

    /// Allocate a user buffer in a rank's address space.
    pub fn alloc_buffer(&mut self, rank: RankId, len: usize) -> ViaResult<VirtAddr> {
        let (node, pid) = (self.ranks[rank].node, self.ranks[rank].pid);
        self.sys.mmap(node, pid, len, prot::READ | prot::WRITE)
    }

    /// Fill a rank-local buffer (CPU stores through the fault path).
    pub fn fill_buffer(&mut self, rank: RankId, addr: VirtAddr, data: &[u8]) -> ViaResult<()> {
        let (node, pid) = (self.ranks[rank].node, self.ranks[rank].pid);
        self.sys.write_user(node, pid, addr, data)
    }

    /// Unmap a rank-local buffer (sweep harnesses allocate fresh buffers
    /// per point and must return the pages).
    pub fn free_buffer(&mut self, rank: RankId, addr: VirtAddr, len: usize) -> ViaResult<()> {
        let (node, pid) = (self.ranks[rank].node, self.ranks[rank].pid);
        // Cached registrations may still pin parts of the range; drop the
        // idle cache entries first so the frames actually come back.
        self.flush_caches()?;
        self.sys.munmap(node, pid, addr, len)
    }

    /// Deregister every idle cached registration on every node.
    pub fn flush_caches(&mut self) -> ViaResult<()> {
        let Comm { caches, sys, .. } = self;
        for (n, cache) in caches.iter_mut().enumerate() {
            cache.flush(&mut FabricNode {
                fabric: &mut *sys,
                node: n,
            })?;
        }
        Ok(())
    }

    /// Read a rank-local buffer back out.
    pub fn read_buffer(&mut self, rank: RankId, addr: VirtAddr, out: &mut [u8]) -> ViaResult<()> {
        let (node, pid) = (self.ranks[rank].node, self.ranks[rank].pid);
        self.sys.read_user(node, pid, addr, out)
    }

    // ------------------------------------------------------------------
    // Registration-cache plumbing
    // ------------------------------------------------------------------

    fn cached_acquire(
        &mut self,
        node: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId> {
        let Comm {
            caches, sys, stats, ..
        } = self;
        let misses0 = caches[node].stats().misses;
        let mem = caches[node].acquire(
            &mut FabricNode {
                fabric: &mut *sys,
                node,
            },
            pid,
            addr,
            len,
            tag,
        )?;
        if caches[node].stats().misses > misses0 {
            stats.registrations += 1;
            let base = simmem::page_base(addr);
            let pages = (simmem::page_align_up(addr + len as u64) - base) / PAGE_SIZE as u64;
            stats.pages_registered += pages;
        } else {
            stats.cache_hits += 1;
        }
        Ok(mem)
    }

    fn cached_release(&mut self, node: NodeId, mem: MemId) -> ViaResult<()> {
        let Comm { caches, sys, .. } = self;
        caches[node].release(
            &mut FabricNode {
                fabric: &mut *sys,
                node,
            },
            mem,
        )
    }

    // ------------------------------------------------------------------
    // PIO helpers (segment control traffic)
    // ------------------------------------------------------------------

    fn write_info(&mut self, s: RankId, r: RankId, slot: usize, info: &MsgInfo) -> ViaResult<()> {
        let pair = &self.pairs[&(s, r)];
        let (r_node, mem, off) = (
            self.ranks[r].node,
            pair.r_seg_mem,
            pair.layout.info_off(slot),
        );
        self.sys
            .sci_write_bytes(&info.encode(), (r_node, mem, off))?;
        self.stats.control_writes += 1;
        self.stats.pio_bytes += INFO_SIZE as u64;
        Ok(())
    }

    fn write_response(
        &mut self,
        s: RankId,
        r: RankId,
        slot: usize,
        resp: &Response,
    ) -> ViaResult<()> {
        let pair = &self.pairs[&(s, r)];
        let (s_node, mem, off) = (
            self.ranks[s].node,
            pair.s_seg_mem,
            pair.layout.resp_off(slot),
        );
        self.sys
            .sci_write_bytes(&resp.encode(), (s_node, mem, off))?;
        self.stats.control_writes += 1;
        self.stats.pio_bytes += RESP_SIZE as u64;
        Ok(())
    }

    /// Sender reads a response record from its own segment memory.
    fn read_response(&mut self, s: RankId, r: RankId, slot: usize) -> ViaResult<Response> {
        let pair = &self.pairs[&(s, r)];
        let (node, pid) = (self.ranks[s].node, self.ranks[s].pid);
        let addr = pair.s_seg_addr + pair.layout.resp_off(slot) as u64;
        let mut b = [0u8; RESP_SIZE];
        self.sys.read_user(node, pid, addr, &mut b)?;
        Ok(Response::decode(&b))
    }

    /// Receiver reads an info record from its own segment memory.
    fn read_info(&mut self, s: RankId, r: RankId, slot: usize) -> ViaResult<MsgInfo> {
        let pair = &self.pairs[&(s, r)];
        let (node, pid) = (self.ranks[r].node, self.ranks[r].pid);
        let addr = pair.r_seg_addr + pair.layout.info_off(slot) as u64;
        let mut b = [0u8; INFO_SIZE];
        self.sys.read_user(node, pid, addr, &mut b)?;
        Ok(MsgInfo::decode(&b))
    }

    /// Receiver clears an info slot in its own memory.
    fn clear_info(&mut self, s: RankId, r: RankId, slot: usize) -> ViaResult<()> {
        let pair = &self.pairs[&(s, r)];
        let (node, pid) = (self.ranks[r].node, self.ranks[r].pid);
        let addr = pair.r_seg_addr + pair.layout.info_off(slot) as u64;
        self.sys.write_user(node, pid, addr, &[ACTIVE_FREE; 1])?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Send
    // ------------------------------------------------------------------

    /// Non-blocking send of `[addr, addr+len)` from `from`'s memory to
    /// rank `to` under `tag`. Drive completion with [`Comm::wait`].
    pub fn send(
        &mut self,
        from: RankId,
        to: RankId,
        tag: u32,
        addr: VirtAddr,
        len: usize,
    ) -> ViaResult<SendHandle> {
        if tag == ANY_TAG {
            return Err(ViaError::BadState("ANY_TAG is receive-only"));
        }
        // Reap finished sends so their slots free up.
        self.progress()?;
        let slot = {
            let pair = self
                .pairs
                .get_mut(&(from, to))
                .ok_or(ViaError::BadId("pair"))?;
            let Some(slot) = pair.slot_busy.iter().position(|b| !b) else {
                return Err(ViaError::BadState("no free message slot"));
            };
            pair.slot_busy[slot] = true;
            slot
        };
        let msg_id = {
            let pair = self.pairs.get_mut(&(from, to)).expect("pair exists");
            let id = pair.next_msg_id;
            pair.next_msg_id += 1;
            id
        };
        let proto = self.cfg.protocol_for(len);
        let (s_node, s_pid, s_tag) = {
            let i = &self.ranks[from];
            (i.node, i.pid, i.tag)
        };

        let state = match proto {
            Protocol::SharedMemory => {
                // Payload straight into the receiver's data slot, then the
                // info struct (order matters: data before announcement).
                let (r_node, r_mem, data_off) = {
                    let pair = &self.pairs[&(from, to)];
                    (
                        self.ranks[to].node,
                        pair.r_seg_mem,
                        pair.layout.data_off(slot),
                    )
                };
                self.sys
                    .sci_write((s_node, s_pid, addr), len, (r_node, r_mem, data_off))?;
                self.stats.pio_bytes += len as u64;
                self.stats.sm_msgs += 1;
                self.write_info(
                    from,
                    to,
                    slot,
                    &MsgInfo {
                        active: ACTIVE_POSTED,
                        proto: 0,
                        tag,
                        len: len as u32,
                        msg_id,
                    },
                )?;
                SendState::AwaitDone { cached_mem: None }
            }
            Protocol::OneCopy => {
                let mem = self.cached_acquire(s_node, s_pid, addr, len, s_tag)?;
                self.write_info(
                    from,
                    to,
                    slot,
                    &MsgInfo {
                        active: ACTIVE_POSTED,
                        proto: 1,
                        tag,
                        len: len as u32,
                        msg_id,
                    },
                )?;
                // Chunked VIA sends out of the registered user buffer.
                let vi_s = self.pairs[&(from, to)].vi_s;
                let mut off = 0usize;
                while off < len {
                    let chunk = (len - off).min(self.cfg.chunk_bytes);
                    self.sys
                        .post_send(s_node, vi_s, mem, addr + off as u64, chunk)?;
                    self.stats.oc_chunks += 1;
                    off += chunk;
                }
                self.sys.pump()?;
                self.stats.dma_bytes += len as u64;
                self.stats.oc_msgs += 1;
                SendState::AwaitDone {
                    cached_mem: Some(mem),
                }
            }
            Protocol::ZeroCopy => {
                // Register early (CHEMPI step 2 on the sender side), then
                // announce; the RDMA fires when the rendezvous answer
                // arrives.
                let mem = self.cached_acquire(s_node, s_pid, addr, len, s_tag)?;
                self.write_info(
                    from,
                    to,
                    slot,
                    &MsgInfo {
                        active: ACTIVE_POSTED,
                        proto: 2,
                        tag,
                        len: len as u32,
                        msg_id,
                    },
                )?;
                self.stats.zc_msgs += 1;
                SendState::ZcAwaitBuffer {
                    cached_mem: mem,
                    addr,
                    len,
                }
            }
        };

        self.pending.push(Some(PendingSend {
            from,
            to,
            slot,
            state,
        }));
        Ok(SendHandle(self.pending.len() - 1))
    }

    /// Drive every pending send one step (the communicator's progress
    /// engine — in a threaded MPI this runs on the communication thread).
    pub fn progress(&mut self) -> ViaResult<()> {
        for i in 0..self.pending.len() {
            let Some(p) = self.pending[i].take() else {
                continue;
            };
            let next = self.progress_one(p)?;
            self.pending[i] = next;
        }
        Ok(())
    }

    fn progress_one(&mut self, mut p: PendingSend) -> ViaResult<Option<PendingSend>> {
        let resp = self.read_response(p.from, p.to, p.slot)?;
        match p.state {
            SendState::AwaitDone { cached_mem } => {
                if resp.state == RESP_DONE {
                    self.finish_send(&p, cached_mem)?;
                    return Ok(None);
                }
                p.state = SendState::AwaitDone { cached_mem };
                Ok(Some(p))
            }
            SendState::ZcAwaitBuffer {
                cached_mem,
                addr,
                len,
            } => {
                if resp.state == RESP_BUF_READY {
                    let s_node = self.ranks[p.from].node;
                    let vi_s = self.pairs[&(p.from, p.to)].vi_s;
                    self.sys.post_rdma_write(
                        s_node,
                        vi_s,
                        cached_mem,
                        addr,
                        len,
                        MemId(resp.mem),
                        resp.addr,
                    )?;
                    self.sys.pump()?;
                    // Fence: the RDMA-write completion is generated by the
                    // *receiving* NIC's response packet, so waiting for it
                    // here guarantees the payload landed before we announce
                    // ZC_DONE — essential on the threaded fabric, where the
                    // packet may still be in flight after one pump round.
                    // Stale Send completions from earlier one-copy chunks on
                    // the same VI are drained along the way.
                    loop {
                        let c = self.sys.wait_cq(s_node, vi_s)?;
                        if c.op == DescOp::RdmaWrite {
                            if c.status.is_error() {
                                return Err(ViaError::BadState(
                                    "zero-copy RDMA completed in error",
                                ));
                            }
                            break;
                        }
                    }
                    self.stats.dma_bytes += len as u64;
                    // Tell the receiver the payload landed.
                    let info = self.read_info_as_sender(p.from, p.to, p.slot)?;
                    self.write_info(
                        p.from,
                        p.to,
                        p.slot,
                        &MsgInfo {
                            active: ACTIVE_ZC_DONE,
                            ..info
                        },
                    )?;
                    p.state = SendState::ZcAwaitDone { cached_mem };
                    return Ok(Some(p));
                }
                p.state = SendState::ZcAwaitBuffer {
                    cached_mem,
                    addr,
                    len,
                };
                Ok(Some(p))
            }
            SendState::ZcAwaitDone { cached_mem } => {
                if resp.state == RESP_DONE {
                    self.finish_send(&p, Some(cached_mem))?;
                    return Ok(None);
                }
                p.state = SendState::ZcAwaitDone { cached_mem };
                Ok(Some(p))
            }
        }
    }

    /// The sender does not normally read the remote info slot — but it
    /// wrote it, so it keeps a local copy; modelled by re-reading through
    /// SCI (cheap enough for the two control words of the rendezvous).
    fn read_info_as_sender(&mut self, s: RankId, r: RankId, slot: usize) -> ViaResult<MsgInfo> {
        let pair = &self.pairs[&(s, r)];
        let (r_node, mem, off) = (
            self.ranks[r].node,
            pair.r_seg_mem,
            pair.layout.info_off(slot),
        );
        let mut b = [0u8; INFO_SIZE];
        self.sys.sci_read_bytes((r_node, mem, off), &mut b)?;
        Ok(MsgInfo::decode(&b))
    }

    fn finish_send(&mut self, p: &PendingSend, cached_mem: Option<MemId>) -> ViaResult<()> {
        if let Some(mem) = cached_mem {
            let node = self.ranks[p.from].node;
            self.cached_release(node, mem)?;
        }
        // Clear the response record (sender-local memory) and free the slot.
        let pair = &self.pairs[&(p.from, p.to)];
        let (node, pid) = (self.ranks[p.from].node, self.ranks[p.from].pid);
        let addr = pair.s_seg_addr + pair.layout.resp_off(p.slot) as u64;
        self.sys.write_user(node, pid, addr, &[RESP_NONE; 1])?;
        self.pairs
            .get_mut(&(p.from, p.to))
            .expect("pair exists")
            .slot_busy[p.slot] = false;
        Ok(())
    }

    /// Block until a send completes. Gives up with [`ViaError::Timeout`]
    /// after the spin bound — a dead or non-receiving peer surfaces as a
    /// typed timeout, never a hang.
    pub fn wait(&mut self, h: SendHandle) -> ViaResult<()> {
        for _ in 0..SPIN_LIMIT {
            if self.pending[h.0].is_none() {
                return Ok(());
            }
            self.progress()?;
        }
        Err(ViaError::Timeout)
    }

    /// True once the send has completed (non-blocking test).
    pub fn test(&mut self, h: SendHandle) -> ViaResult<bool> {
        self.progress()?;
        Ok(self.pending[h.0].is_none())
    }

    // ------------------------------------------------------------------
    // Persistent requests (MPI_Send_init / MPI_Start / MPI_Request_free)
    // ------------------------------------------------------------------

    /// Create a persistent send request: the buffer's registration is
    /// acquired once and **held**, so every [`Comm::start`] is guaranteed a
    /// cache hit regardless of cache pressure — "it is profitable to use
    /// registered buffers again like in the MPI persistent communication"
    /// (the CHEMPI companion paper).
    pub fn send_init(
        &mut self,
        from: RankId,
        to: RankId,
        tag: u32,
        addr: VirtAddr,
        len: usize,
    ) -> ViaResult<PersistentSend> {
        let held = if self.cfg.protocol_for(len) == crate::config::Protocol::SharedMemory {
            // SM sends never register; nothing to hold.
            None
        } else {
            let (node, pid, rtag) = {
                let i = &self.ranks[from];
                (i.node, i.pid, i.tag)
            };
            Some((node, self.cached_acquire(node, pid, addr, len, rtag)?))
        };
        Ok(PersistentSend {
            from,
            to,
            tag,
            addr,
            len,
            held,
        })
    }

    /// Start one transfer of a persistent request (non-blocking, like
    /// `MPI_Start`).
    pub fn start(&mut self, req: &PersistentSend) -> ViaResult<SendHandle> {
        self.send(req.from, req.to, req.tag, req.addr, req.len)
    }

    /// Free a persistent request, dropping the held registration
    /// (`MPI_Request_free`).
    pub fn request_free(&mut self, req: PersistentSend) -> ViaResult<()> {
        if let Some((node, mem)) = req.held {
            self.cached_release(node, mem)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Receive
    // ------------------------------------------------------------------

    /// Blocking receive at rank `at` from rank `from` with `tag`
    /// ([`ANY_TAG`] matches any). The payload lands in
    /// `[buf_addr, buf_addr + buf_len)` of `at`'s memory; returns the
    /// message length.
    pub fn recv(
        &mut self,
        at: RankId,
        from: RankId,
        tag: u32,
        buf_addr: VirtAddr,
        buf_len: usize,
    ) -> ViaResult<usize> {
        for _ in 0..SPIN_LIMIT {
            if let Some((slot, info)) = self.match_message(from, at, tag)? {
                return self.complete_recv(from, at, slot, info, buf_addr, buf_len);
            }
            // Nothing yet: drive senders (covers the single-threaded
            // rendezvous dance) and the fabric.
            self.progress()?;
        }
        Err(ViaError::Timeout)
    }

    /// Deadline-aware blocking receive: like [`Comm::recv`] but gives up
    /// with [`ViaError::Timeout`] once `budget` spin rounds have elapsed
    /// without a match. Lock clients waiting on a manager that may have
    /// died use a short budget so they detect the death instead of
    /// spinning the full protocol bound.
    pub fn recv_budget(
        &mut self,
        at: RankId,
        from: RankId,
        tag: u32,
        buf_addr: VirtAddr,
        buf_len: usize,
        budget: usize,
    ) -> ViaResult<usize> {
        for _ in 0..budget {
            if let Some((slot, info)) = self.match_message(from, at, tag)? {
                return self.complete_recv(from, at, slot, info, buf_addr, buf_len);
            }
            self.progress()?;
        }
        Err(ViaError::Timeout)
    }

    /// Non-blocking probe (`MPID_Iprobe`): is a message from `from`
    /// (or [`ANY_SOURCE`]) with `tag` (or [`ANY_TAG`]) receivable right
    /// now? Returns `(source, tag, len)` without consuming the message.
    pub fn iprobe(
        &mut self,
        at: RankId,
        from: RankId,
        tag: u32,
    ) -> ViaResult<Option<(RankId, u32, usize)>> {
        self.progress()?;
        let sources: Vec<RankId> = if from == ANY_SOURCE {
            (0..self.ranks.len()).filter(|&s| s != at).collect()
        } else {
            vec![from]
        };
        // Round-robin over the channels, exactly like the Multidevice's
        // Iprobe loop over subdevices.
        let mut best: Option<(RankId, usize, MsgInfo)> = None;
        for s in sources {
            if let Some((slot, info)) = self.match_message(s, at, tag)? {
                if best.as_ref().is_none_or(|(_, _, b)| info.msg_id < b.msg_id) {
                    best = Some((s, slot, info));
                }
            }
        }
        Ok(best.map(|(s, _, info)| (s, info.tag, info.len as usize)))
    }

    /// Blocking receive from [`ANY_SOURCE`]: probes every channel until one
    /// is ready, then completes the receive. Returns `(source, len)`.
    pub fn recv_any(
        &mut self,
        at: RankId,
        tag: u32,
        buf_addr: VirtAddr,
        buf_len: usize,
    ) -> ViaResult<(RankId, usize)> {
        for _ in 0..SPIN_LIMIT {
            if let Some((src, _, _)) = self.iprobe(at, ANY_SOURCE, tag)? {
                let (slot, info) = self
                    .match_message(src, at, tag)?
                    .expect("probe just matched");
                let n = self.complete_recv(src, at, slot, info, buf_addr, buf_len)?;
                return Ok((src, n));
            }
            self.progress()?;
        }
        Err(ViaError::Timeout)
    }

    /// Deadline-aware [`Comm::recv_any`]: bounded by `budget` spin rounds,
    /// failing with [`ViaError::Timeout`] instead of blocking the full
    /// protocol bound. The lock manager's serve loop polls with this so a
    /// quiet fabric hands control back for lease-expiry sweeps.
    pub fn recv_any_budget(
        &mut self,
        at: RankId,
        tag: u32,
        buf_addr: VirtAddr,
        buf_len: usize,
        budget: usize,
    ) -> ViaResult<(RankId, usize)> {
        for _ in 0..budget {
            if let Some((src, _, _)) = self.iprobe(at, ANY_SOURCE, tag)? {
                let (slot, info) = self
                    .match_message(src, at, tag)?
                    .expect("probe just matched");
                let n = self.complete_recv(src, at, slot, info, buf_addr, buf_len)?;
                return Ok((src, n));
            }
            self.progress()?;
        }
        Err(ViaError::Timeout)
    }

    /// Find the lowest-msg_id posted message matching `tag`.
    fn match_message(
        &mut self,
        from: RankId,
        at: RankId,
        tag: u32,
    ) -> ViaResult<Option<(usize, MsgInfo)>> {
        let slots = self.cfg.info_slots;
        let mut best: Option<(usize, MsgInfo)> = None;
        for slot in 0..slots {
            let info = self.read_info(from, at, slot)?;
            if info.active != ACTIVE_POSTED {
                continue;
            }
            if tag != ANY_TAG && info.tag != tag {
                continue;
            }
            if best.as_ref().is_none_or(|(_, b)| info.msg_id < b.msg_id) {
                best = Some((slot, info));
            }
        }
        Ok(best)
    }

    fn complete_recv(
        &mut self,
        from: RankId,
        at: RankId,
        slot: usize,
        info: MsgInfo,
        buf_addr: VirtAddr,
        buf_len: usize,
    ) -> ViaResult<usize> {
        let len = info.len as usize;
        if len > buf_len {
            return Err(ViaError::RecvTooSmall {
                need: len,
                have: buf_len,
            });
        }
        let (r_node, r_pid, r_tag) = {
            let i = &self.ranks[at];
            (i.node, i.pid, i.tag)
        };
        match info.proto {
            // -------------------------- shared memory -------------------
            0 => {
                // Copy out of the segment's data slot into the user buffer.
                let (seg_addr, data_off) = {
                    let pair = &self.pairs[&(from, at)];
                    (pair.r_seg_addr, pair.layout.data_off(slot))
                };
                let mut tmp = std::mem::take(&mut self.copy_scratch);
                tmp.clear();
                tmp.resize(len, 0);
                let copied = self
                    .sys
                    .read_user(r_node, r_pid, seg_addr + data_off as u64, &mut tmp)
                    .and_then(|()| self.sys.write_user(r_node, r_pid, buf_addr, &tmp));
                self.copy_scratch = tmp;
                copied?;
                self.stats.copy_bytes += len as u64;
                self.stats.copy_ops += 1;
                self.clear_info(from, at, slot)?;
                self.write_response(
                    from,
                    at,
                    slot,
                    &Response {
                        state: RESP_DONE,
                        mem: 0,
                        addr: 0,
                    },
                )?;
                Ok(len)
            }
            // ----------------------------- one-copy ---------------------
            1 => {
                let n_chunks = len.div_ceil(self.cfg.chunk_bytes);
                let vi_r = self.pairs[&(from, at)].vi_r;
                let mut off = 0usize;
                for _ in 0..n_chunks {
                    // `wait_cq`: on the deterministic fabric this pumps to
                    // quiescence and polls; on the threaded fabric it runs
                    // the node's wait ladder until the chunk arrives.
                    let c = self.sys.wait_cq(r_node, vi_r)?;
                    // An error completion (transport loss, drop, protection)
                    // means the chunk never landed in the ring buffer.
                    if c.status.is_error() {
                        return Err(ViaError::BadState("one-copy chunk completed in error"));
                    }
                    let ring_addr = {
                        let pair = self.pairs.get_mut(&(from, at)).expect("pair exists");
                        pair.oc_ring.pop_front().expect("posted ring non-empty")
                    };
                    // Copy chunk from the pre-registered ring buffer into
                    // the user buffer.
                    let mut tmp = std::mem::take(&mut self.copy_scratch);
                    tmp.clear();
                    tmp.resize(c.len, 0);
                    let copied = self
                        .sys
                        .read_user(r_node, r_pid, ring_addr, &mut tmp)
                        .and_then(|()| {
                            self.sys
                                .write_user(r_node, r_pid, buf_addr + off as u64, &tmp)
                        });
                    self.copy_scratch = tmp;
                    copied?;
                    self.stats.copy_bytes += c.len as u64;
                    self.stats.copy_ops += 1;
                    off += c.len;
                    // Repost the buffer.
                    let (oc_mem, chunk_bytes) = {
                        let pair = self.pairs.get_mut(&(from, at)).expect("pair exists");
                        pair.oc_ring.push_back(ring_addr);
                        (pair.oc_mem, self.cfg.chunk_bytes)
                    };
                    self.sys
                        .post_recv(r_node, vi_r, oc_mem, ring_addr, chunk_bytes)?;
                }
                if off != len {
                    return Err(ViaError::BadState("one-copy reassembly length mismatch"));
                }
                self.clear_info(from, at, slot)?;
                self.write_response(
                    from,
                    at,
                    slot,
                    &Response {
                        state: RESP_DONE,
                        mem: 0,
                        addr: 0,
                    },
                )?;
                Ok(len)
            }
            // ---------------------------- zero-copy ---------------------
            2 => {
                // Rendezvous: register the user buffer, answer, and wait
                // for the sender's RDMA to land.
                let mem = self.cached_acquire(r_node, r_pid, buf_addr, len, r_tag)?;
                self.write_response(
                    from,
                    at,
                    slot,
                    &Response {
                        state: RESP_BUF_READY,
                        mem: mem.0,
                        addr: buf_addr,
                    },
                )?;
                let mut done = false;
                for _ in 0..SPIN_LIMIT {
                    self.progress()?;
                    let i = self.read_info(from, at, slot)?;
                    if i.active == ACTIVE_ZC_DONE {
                        done = true;
                        break;
                    }
                }
                if !done {
                    // The zero-copy RDMA never arrived — the sender died or
                    // stalled mid-rendezvous.
                    return Err(ViaError::Timeout);
                }
                self.cached_release(r_node, mem)?;
                self.clear_info(from, at, slot)?;
                self.write_response(
                    from,
                    at,
                    slot,
                    &Response {
                        state: RESP_DONE,
                        mem: 0,
                        addr: 0,
                    },
                )?;
                Ok(len)
            }
            _ => Err(ViaError::BadState("unknown protocol discriminator")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;

    fn comm() -> Comm {
        Comm::new(
            2,
            2,
            KernelConfig::medium(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap()
    }

    /// Round-trip one message of `len` bytes and check integrity.
    fn roundtrip(c: &mut Comm, len: usize) {
        let data: Vec<u8> = (0..len).map(|i| (i * 7 % 251) as u8).collect();
        let sbuf = c.alloc_buffer(0, len.max(1)).unwrap();
        let rbuf = c.alloc_buffer(1, len.max(1)).unwrap();
        c.fill_buffer(0, sbuf, &data).unwrap();
        let h = c.send(0, 1, 42, sbuf, len).unwrap();
        let got = c.recv(1, 0, 42, rbuf, len).unwrap();
        assert_eq!(got, len);
        c.wait(h).unwrap();
        let mut out = vec![0u8; len];
        c.read_buffer(1, rbuf, &mut out).unwrap();
        assert_eq!(out, data, "payload corrupted at len {len}");
    }

    #[test]
    fn shared_memory_roundtrip() {
        let mut c = comm();
        assert_eq!(c.cfg.protocol_for(100), Protocol::SharedMemory);
        roundtrip(&mut c, 100);
        assert_eq!(c.stats.sm_msgs, 1);
        assert_eq!(c.stats.oc_msgs + c.stats.zc_msgs, 0);
    }

    #[test]
    fn one_copy_roundtrip() {
        let mut c = comm();
        let len = 3000; // > sm_max (512), <= one_copy_max (4096)
        assert_eq!(c.cfg.protocol_for(len), Protocol::OneCopy);
        roundtrip(&mut c, len);
        assert_eq!(c.stats.oc_msgs, 1);
        assert_eq!(c.stats.oc_chunks, 3, "3000 B in 1024-B chunks");
        assert!(c.stats.registrations >= 1, "sender buffer registered");
    }

    #[test]
    fn zero_copy_roundtrip() {
        let mut c = comm();
        let len = 20_000; // > one_copy_max
        assert_eq!(c.cfg.protocol_for(len), Protocol::ZeroCopy);
        roundtrip(&mut c, len);
        assert_eq!(c.stats.zc_msgs, 1);
        assert_eq!(c.stats.dma_bytes, 20_000);
        assert_eq!(c.stats.copy_bytes, 0, "zero copies on the payload path");
        assert!(c.stats.registrations >= 2, "both sides registered");
    }

    #[test]
    fn all_sizes_integrity_sweep() {
        let mut c = comm();
        for len in [1usize, 17, 512, 513, 1024, 2048, 4096, 4097, 9000, 40_000] {
            roundtrip(&mut c, len);
        }
    }

    #[test]
    fn cache_hits_on_buffer_reuse() {
        let mut c = comm();
        let len = 20_000;
        let sbuf = c.alloc_buffer(0, len).unwrap();
        let rbuf = c.alloc_buffer(1, len).unwrap();
        let data = vec![5u8; len];
        c.fill_buffer(0, sbuf, &data).unwrap();
        for _ in 0..4 {
            let h = c.send(0, 1, 7, sbuf, len).unwrap();
            c.recv(1, 0, 7, rbuf, len).unwrap();
            c.wait(h).unwrap();
        }
        // First message registers both buffers; the other three hit.
        assert_eq!(c.stats.registrations, 2);
        assert_eq!(c.stats.cache_hits, 6);
    }

    #[test]
    fn tag_matching_and_ordering() {
        let mut c = comm();
        let s1 = c.alloc_buffer(0, 64).unwrap();
        let s2 = c.alloc_buffer(0, 64).unwrap();
        c.fill_buffer(0, s1, b"first-tag-9").unwrap();
        c.fill_buffer(0, s2, b"second-tag-5").unwrap();
        let h1 = c.send(0, 1, 9, s1, 11).unwrap();
        let h2 = c.send(0, 1, 5, s2, 12).unwrap();
        // Receive tag 5 first even though it was sent second.
        let r = c.alloc_buffer(1, 64).unwrap();
        let n = c.recv(1, 0, 5, r, 64).unwrap();
        assert_eq!(n, 12);
        let mut out = vec![0u8; 12];
        c.read_buffer(1, r, &mut out).unwrap();
        assert_eq!(&out, b"second-tag-5");
        // ANY_TAG picks up the remaining (lowest msg_id) message.
        let n = c.recv(1, 0, ANY_TAG, r, 64).unwrap();
        assert_eq!(n, 11);
        c.wait(h1).unwrap();
        c.wait(h2).unwrap();
    }

    #[test]
    fn bidirectional_traffic() {
        let mut c = comm();
        let a = c.alloc_buffer(0, 256).unwrap();
        let b = c.alloc_buffer(1, 256).unwrap();
        c.fill_buffer(0, a, b"ping").unwrap();
        let h = c.send(0, 1, 1, a, 4).unwrap();
        c.recv(1, 0, 1, b, 256).unwrap();
        c.wait(h).unwrap();
        // Pong back.
        c.fill_buffer(1, b, b"pong").unwrap();
        let h = c.send(1, 0, 2, b, 4).unwrap();
        c.recv(0, 1, 2, a, 256).unwrap();
        c.wait(h).unwrap();
        let mut out = [0u8; 4];
        c.read_buffer(0, a, &mut out).unwrap();
        assert_eq!(&out, b"pong");
    }

    #[test]
    fn iprobe_and_any_source() {
        let mut c = comm();
        // Nothing to probe yet.
        assert!(c.iprobe(1, ANY_SOURCE, ANY_TAG).unwrap().is_none());
        let s = c.alloc_buffer(0, 64).unwrap();
        c.fill_buffer(0, s, b"from-zero").unwrap();
        let h = c.send(0, 1, 77, s, 9).unwrap();
        // Probe sees it without consuming.
        let (src, tag, len) = c.iprobe(1, ANY_SOURCE, ANY_TAG).unwrap().unwrap();
        assert_eq!((src, tag, len), (0, 77, 9));
        assert!(
            c.iprobe(1, ANY_SOURCE, ANY_TAG).unwrap().is_some(),
            "probe is non-destructive"
        );
        // Tag filter.
        assert!(c.iprobe(1, ANY_SOURCE, 99).unwrap().is_none());
        // recv_any consumes it and reports the source.
        let r = c.alloc_buffer(1, 64).unwrap();
        let (src, n) = c.recv_any(1, ANY_TAG, r, 64).unwrap();
        assert_eq!((src, n), (0, 9));
        c.wait(h).unwrap();
        let mut out = vec![0u8; 9];
        c.read_buffer(1, r, &mut out).unwrap();
        assert_eq!(&out, b"from-zero");
        assert!(c.iprobe(1, ANY_SOURCE, ANY_TAG).unwrap().is_none());
    }

    #[test]
    fn any_source_picks_either_sender() {
        // Three ranks: 0 and 2 both send to 1; ANY_SOURCE must drain both.
        let mut c = Comm::new(
            3,
            2,
            KernelConfig::medium(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap();
        let b0 = c.alloc_buffer(0, 16).unwrap();
        let b2 = c.alloc_buffer(2, 16).unwrap();
        c.fill_buffer(0, b0, b"zero").unwrap();
        c.fill_buffer(2, b2, b"twos").unwrap();
        let h0 = c.send(0, 1, 5, b0, 4).unwrap();
        let h2 = c.send(2, 1, 5, b2, 4).unwrap();
        let r = c.alloc_buffer(1, 16).unwrap();
        let mut sources = Vec::new();
        for _ in 0..2 {
            let (src, n) = c.recv_any(1, 5, r, 16).unwrap();
            assert_eq!(n, 4);
            sources.push(src);
        }
        sources.sort();
        assert_eq!(sources, vec![0, 2]);
        c.wait(h0).unwrap();
        c.wait(h2).unwrap();
    }

    #[test]
    fn persistent_requests_pin_the_cache_entry() {
        // A cache too small for two buffers would normally thrash; the
        // persistent request holds its entry so every start() hits.
        let mut cfg = MsgConfig::tiny();
        cfg.cache_pages = 13; // exactly one 50 000-B buffer's pages
        let mut c = Comm::new(
            2,
            2,
            KernelConfig::large(),
            StrategyKind::KiobufReliable,
            cfg,
        )
        .unwrap();
        let len = 50_000;
        let sbuf = c.alloc_buffer(0, len).unwrap();
        let rbuf = c.alloc_buffer(1, len).unwrap();
        c.fill_buffer(0, sbuf, &vec![9u8; len]).unwrap();
        let req = c.send_init(0, 1, 4, sbuf, len).unwrap();
        let regs_after_init = c.stats.registrations;
        for _ in 0..3 {
            let h = c.start(&req).unwrap();
            c.recv(1, 0, 4, rbuf, len).unwrap();
            c.wait(h).unwrap();
        }
        // Sender side never re-registered: only receiver-side traffic adds
        // registrations (its cache thrashes, the sender's held entry not).
        let sender_hits = c.stats.cache_hits;
        assert!(sender_hits >= 3, "every start hit the held entry");
        assert!(
            c.stats.registrations - regs_after_init <= 3,
            "only the receiver side re-registers"
        );
        c.request_free(req).unwrap();
    }

    #[test]
    fn recv_buffer_too_small() {
        let mut c = comm();
        let s = c.alloc_buffer(0, 128).unwrap();
        c.fill_buffer(0, s, &[1u8; 128]).unwrap();
        let _h = c.send(0, 1, 3, s, 128).unwrap();
        let r = c.alloc_buffer(1, 16).unwrap();
        assert!(matches!(
            c.recv(1, 0, 3, r, 16),
            Err(ViaError::RecvTooSmall {
                need: 128,
                have: 16
            })
        ));
    }
}
