//! Protocol configuration: switch points and segment geometry.

use serde::Serialize;

/// Which protocol a message of a given size uses, plus the shared-memory
/// segment and one-copy ring geometry.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MsgConfig {
    /// Messages up to this size (bytes) use the shared-memory protocol.
    /// Must fit in one SM data slot.
    pub sm_max: usize,
    /// Messages up to this size use the one-copy VIA protocol; larger ones
    /// go zero-copy.
    pub one_copy_max: usize,
    /// One-copy chunk size M (the pre-posted buffer size).
    pub chunk_bytes: usize,
    /// Receive descriptors pre-posted per directed pair.
    pub prepost: usize,
    /// Number of message-info slots per directed pair.
    pub info_slots: usize,
    /// Registration-cache budget in pages (per node).
    pub cache_pages: usize,
}

impl MsgConfig {
    /// Defaults close to the CHEMPI design: 8 KiB SM slots, 8 KiB chunks,
    /// 64 pre-posted descriptors, one-copy up to 128 KiB.
    pub fn classic() -> Self {
        MsgConfig {
            sm_max: 8 * 1024,
            one_copy_max: 128 * 1024,
            chunk_bytes: 8 * 1024,
            prepost: 64,
            info_slots: 16,
            cache_pages: 4096,
        }
    }

    /// Small geometry for unit tests (tiny kernels).
    pub fn tiny() -> Self {
        MsgConfig {
            sm_max: 512,
            one_copy_max: 4 * 1024,
            chunk_bytes: 1024,
            prepost: 8,
            info_slots: 4,
            cache_pages: 64,
        }
    }

    /// Check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.sm_max == 0 || self.chunk_bytes == 0 || self.info_slots == 0 {
            return Err("zero-sized geometry".into());
        }
        if self.one_copy_max < self.sm_max {
            return Err("one_copy_max below sm_max".into());
        }
        // Every one-copy message must fit in the pre-posted window, since
        // descriptors are consumed at delivery time.
        if self.one_copy_max.div_ceil(self.chunk_bytes) > self.prepost {
            return Err(format!(
                "one_copy_max needs {} chunks but only {} descriptors are pre-posted",
                self.one_copy_max.div_ceil(self.chunk_bytes),
                self.prepost
            ));
        }
        Ok(())
    }

    /// Protocol for a message size.
    pub fn protocol_for(&self, bytes: usize) -> Protocol {
        if bytes <= self.sm_max {
            Protocol::SharedMemory
        } else if bytes <= self.one_copy_max {
            Protocol::OneCopy
        } else {
            Protocol::ZeroCopy
        }
    }
}

/// The three transfer protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Protocol {
    SharedMemory,
    OneCopy,
    ZeroCopy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_is_valid() {
        MsgConfig::classic().validate().unwrap();
        MsgConfig::tiny().validate().unwrap();
    }

    #[test]
    fn protocol_switch_points() {
        let c = MsgConfig::classic();
        assert_eq!(c.protocol_for(1), Protocol::SharedMemory);
        assert_eq!(c.protocol_for(c.sm_max), Protocol::SharedMemory);
        assert_eq!(c.protocol_for(c.sm_max + 1), Protocol::OneCopy);
        assert_eq!(c.protocol_for(c.one_copy_max), Protocol::OneCopy);
        assert_eq!(c.protocol_for(c.one_copy_max + 1), Protocol::ZeroCopy);
    }

    #[test]
    fn invalid_geometries_rejected() {
        let mut c = MsgConfig::classic();
        c.one_copy_max = c.sm_max - 1;
        assert!(c.validate().is_err());

        let mut c = MsgConfig::classic();
        c.prepost = 1;
        assert!(c.validate().is_err(), "window smaller than max chunks");
    }
}
