//! Event counters: what the message layer actually did, per protocol.
//! The workload harness combines deltas of these with the `netsim` cost
//! models to produce simulated transfer times.

use serde::Serialize;
use vialock::impl_since;

/// Cumulative message-layer statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MsgStats {
    /// Messages sent via the shared-memory protocol.
    pub sm_msgs: u64,
    /// Payload bytes moved by PIO (SM protocol payload + all control
    /// writes).
    pub pio_bytes: u64,
    /// Control-structure PIO writes (info structs, responses, ready flags).
    pub control_writes: u64,

    /// Messages sent via the one-copy protocol.
    pub oc_msgs: u64,
    /// One-copy chunks (descriptors) posted.
    pub oc_chunks: u64,

    /// Messages sent via the zero-copy protocol.
    pub zc_msgs: u64,

    /// Payload bytes moved by the DMA engine (one-copy sends + RDMA).
    pub dma_bytes: u64,
    /// Bytes memcpy'd by a CPU (receiver copy-out in SM and one-copy).
    pub copy_bytes: u64,
    /// CPU staging-copy operations (each SM/one-copy copy-out is one op;
    /// the staging buffer itself is recycled, not reallocated).
    pub copy_ops: u64,

    /// Dynamic registrations performed (cache misses, both sides).
    pub registrations: u64,
    /// Pages pinned by those registrations.
    pub pages_registered: u64,
    /// Registration-cache hits.
    pub cache_hits: u64,
}

impl_since!(MsgStats {
    sm_msgs,
    pio_bytes,
    control_writes,
    oc_msgs,
    oc_chunks,
    zc_msgs,
    dma_bytes,
    copy_bytes,
    copy_ops,
    registrations,
    pages_registered,
    cache_hits,
});

impl MsgStats {
    /// Total messages.
    pub fn msgs(&self) -> u64 {
        self.sm_msgs + self.oc_msgs + self.zc_msgs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_difference() {
        let a = MsgStats {
            sm_msgs: 2,
            dma_bytes: 100,
            ..Default::default()
        };
        let b = MsgStats {
            sm_msgs: 5,
            dma_bytes: 400,
            zc_msgs: 1,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.sm_msgs, 3);
        assert_eq!(d.dma_bytes, 300);
        assert_eq!(d.zc_msgs, 1);
        assert_eq!(d.msgs(), 4);
    }
}
