//! Collective operations mapped onto point-to-point transfers — the
//! "hardware-independent part" mapping of MPICH that the Multidevice paper
//! describes, shrunk to the four collectives the NAS-style workloads need:
//! barrier, broadcast (binomial tree), gather and all-to-all(v).
//!
//! The single-threaded harness owns every rank, so a collective is executed
//! as one whole-communicator operation: the function plays the progress
//! engine of all ranks, issuing the point-to-point sends/receives in a
//! deadlock-free order. Tags above [`SYS_TAG_BASE`] are reserved for
//! collective traffic (the Multidevice paper reserves negative tags for the
//! analogous system messages).

// Rank/node indices are semantic here; iterating them directly is the
// clearer idiom.
#![allow(clippy::needless_range_loop)]

use simmem::VirtAddr;
use via::{Fabric, ViaError, ViaResult};

use crate::comm::{Comm, RankId};

/// First tag reserved for collective/system traffic; applications must use
/// tags below this.
pub const SYS_TAG_BASE: u32 = 0xFFFF_0000;

fn sys_tag(op: u32, round: u32) -> u32 {
    SYS_TAG_BASE | (op << 12) | (round & 0xFFF)
}

const OP_BARRIER: u32 = 1;
const OP_BCAST: u32 = 2;
const OP_GATHER: u32 = 3;
const OP_ALLTOALL: u32 = 4;
const OP_REDUCE: u32 = 5;

/// Per-rank scratch buffers a collective operates on: `bufs[r]` is a
/// buffer address in rank `r`'s address space.
pub type RankBufs = [VirtAddr];

/// Dissemination barrier: ⌈log2 n⌉ rounds, each rank sends a token to
/// `(rank + 2^k) mod n` and receives from `(rank − 2^k) mod n`.
pub fn barrier<F: Fabric>(comm: &mut Comm<F>, scratch: &RankBufs) -> ViaResult<()> {
    let n = comm.n_ranks();
    if n < 2 {
        return Ok(());
    }
    if scratch.len() < n {
        return Err(ViaError::BadState(
            "barrier needs one scratch buffer per rank",
        ));
    }
    let mut k = 0u32;
    let mut dist = 1usize;
    while dist < n {
        let tag = sys_tag(OP_BARRIER, k);
        // Post all sends of the round, then drain all receives.
        let mut handles = Vec::with_capacity(n);
        for r in 0..n {
            let to = (r + dist) % n;
            handles.push(comm.send(r, to, tag, scratch[r], 1)?);
        }
        for r in 0..n {
            let from = (r + n - dist) % n;
            comm.recv(r, from, tag, scratch[r], 1)?;
        }
        for h in handles {
            comm.wait(h)?;
        }
        dist *= 2;
        k += 1;
    }
    Ok(())
}

/// Binomial-tree broadcast of `len` bytes from `root`'s buffer into every
/// other rank's buffer.
pub fn bcast<F: Fabric>(
    comm: &mut Comm<F>,
    root: RankId,
    bufs: &RankBufs,
    len: usize,
) -> ViaResult<()> {
    let n = comm.n_ranks();
    if n < 2 || len == 0 {
        return Ok(());
    }
    // Work in "virtual rank" space where the root is 0.
    let vrank = |r: RankId| (r + n - root) % n;
    let real = |v: usize| (v + root) % n;
    // Rounds from the top of the tree down: in round k, ranks v < 2^k that
    // hold the data send to v + 2^k.
    let mut round = 0u32;
    let mut span = 1usize;
    while span < n {
        let tag = sys_tag(OP_BCAST, round);
        let mut handles = Vec::new();
        let mut recvers = Vec::new();
        for v in 0..span.min(n) {
            let dst = v + span;
            if dst < n {
                handles.push(comm.send(real(v), real(dst), tag, bufs[real(v)], len)?);
                recvers.push((real(dst), real(v)));
            }
        }
        for (dst, src) in recvers {
            comm.recv(dst, src, tag, bufs[dst], len)?;
        }
        for h in handles {
            comm.wait(h)?;
        }
        span *= 2;
        round += 1;
    }
    let _ = vrank; // kept for symmetry/documentation
    Ok(())
}

/// Gather `len` bytes from every rank into `root`'s buffer (rank r's
/// contribution lands at offset `r * len`).
pub fn gather<F: Fabric>(
    comm: &mut Comm<F>,
    root: RankId,
    bufs: &RankBufs,
    root_buf: VirtAddr,
    len: usize,
) -> ViaResult<()> {
    let n = comm.n_ranks();
    let tag = sys_tag(OP_GATHER, 0);
    let mut handles = Vec::new();
    for r in 0..n {
        if r == root {
            // Local "copy": root moves its own contribution.
            let mut tmp = vec![0u8; len];
            comm.read_buffer(root, bufs[root], &mut tmp)?;
            comm.fill_buffer(root, root_buf + (r * len) as u64, &tmp)?;
        } else {
            handles.push(comm.send(r, root, tag, bufs[r], len)?);
        }
    }
    for r in 0..n {
        if r != root {
            comm.recv(root, r, tag, root_buf + (r * len) as u64, len)?;
        }
    }
    for h in handles {
        comm.wait(h)?;
    }
    Ok(())
}

/// All-reduce of a little-endian `u64` vector by summation: every rank's
/// buffer holds `n_words` words; afterwards every buffer holds the
/// element-wise sum. Gather-to-0 + local reduce + binomial broadcast — the
/// mapping of global operations onto point-to-point the Multidevice paper
/// describes for the MPIR layer.
pub fn allreduce_sum_u64<F: Fabric>(
    comm: &mut Comm<F>,
    bufs: &RankBufs,
    n_words: usize,
) -> ViaResult<()> {
    let n = comm.n_ranks();
    if n < 2 || n_words == 0 {
        return Ok(());
    }
    let len = n_words * 8;
    let tag = sys_tag(OP_REDUCE, 0);
    // Gather everyone's vector at rank 0.
    let mut handles = Vec::new();
    for r in 1..n {
        handles.push(comm.send(r, 0, tag, bufs[r], len)?);
    }
    let mut acc = vec![0u64; n_words];
    let mut bytes = vec![0u8; len];
    comm.read_buffer(0, bufs[0], &mut bytes)?;
    for (i, w) in bytes.chunks_exact(8).enumerate() {
        acc[i] = u64::from_le_bytes(w.try_into().expect("8 bytes"));
    }
    let scratch = comm.alloc_buffer(0, len)?;
    for r in 1..n {
        comm.recv(0, r, tag, scratch, len)?;
        comm.read_buffer(0, scratch, &mut bytes)?;
        for (i, w) in bytes.chunks_exact(8).enumerate() {
            acc[i] = acc[i].wrapping_add(u64::from_le_bytes(w.try_into().expect("8 bytes")));
        }
    }
    for h in handles {
        comm.wait(h)?;
    }
    // Write the result into rank 0's buffer and broadcast.
    let mut out = Vec::with_capacity(len);
    for w in &acc {
        out.extend_from_slice(&w.to_le_bytes());
    }
    comm.fill_buffer(0, bufs[0], &out)?;
    bcast(comm, 0, bufs, len)?;
    Ok(())
}

/// All-to-all with per-destination counts (`MPI_Alltoallv`):
/// `send_counts[s][d]` bytes travel from offset `send_offs[s][d]` of rank
/// s's buffer to offset `recv_offs[d][s]` of rank d's buffer.
#[allow(clippy::too_many_arguments)]
pub fn alltoallv<F: Fabric>(
    comm: &mut Comm<F>,
    send_bufs: &RankBufs,
    send_offs: &[Vec<usize>],
    send_counts: &[Vec<usize>],
    recv_bufs: &RankBufs,
    recv_offs: &[Vec<usize>],
) -> ViaResult<()> {
    let n = comm.n_ranks();
    let tag = sys_tag(OP_ALLTOALL, 0);
    let mut handles = Vec::new();
    // Phase 1: every rank posts all its sends (self-traffic is a local copy).
    for s in 0..n {
        for d in 0..n {
            let count = send_counts[s][d];
            if count == 0 {
                continue;
            }
            let src_addr = send_bufs[s] + send_offs[s][d] as u64;
            if s == d {
                let mut tmp = vec![0u8; count];
                comm.read_buffer(s, src_addr, &mut tmp)?;
                comm.fill_buffer(d, recv_bufs[d] + recv_offs[d][s] as u64, &tmp)?;
            } else {
                handles.push(comm.send(s, d, tag, src_addr, count)?);
            }
        }
    }
    // Phase 2: every rank drains its receives in sender order.
    for d in 0..n {
        for s in 0..n {
            let count = send_counts[s][d];
            if count == 0 || s == d {
                continue;
            }
            comm.recv(d, s, tag, recv_bufs[d] + recv_offs[d][s] as u64, count)?;
        }
    }
    for h in handles {
        comm.wait(h)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MsgConfig;
    use simmem::KernelConfig;
    use vialock::StrategyKind;

    fn comm(n: usize) -> Comm {
        Comm::new(
            n,
            2,
            KernelConfig::large(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap()
    }

    #[test]
    fn barrier_completes() {
        let mut c = comm(4);
        let scratch: Vec<_> = (0..4).map(|r| c.alloc_buffer(r, 16).unwrap()).collect();
        for _ in 0..3 {
            barrier(&mut c, &scratch).unwrap();
        }
    }

    #[test]
    fn bcast_delivers_to_all() {
        let mut c = comm(4);
        let len = 1000;
        let bufs: Vec<_> = (0..4).map(|r| c.alloc_buffer(r, len).unwrap()).collect();
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        c.fill_buffer(2, bufs[2], &data).unwrap();
        bcast(&mut c, 2, &bufs, len).unwrap();
        for r in 0..4 {
            let mut out = vec![0u8; len];
            c.read_buffer(r, bufs[r], &mut out).unwrap();
            assert_eq!(out, data, "rank {r}");
        }
    }

    #[test]
    fn gather_concatenates() {
        let mut c = comm(3);
        let len = 64;
        let bufs: Vec<_> = (0..3).map(|r| c.alloc_buffer(r, len).unwrap()).collect();
        for r in 0..3 {
            c.fill_buffer(r, bufs[r], &vec![r as u8 + 1; len]).unwrap();
        }
        let root_buf = c.alloc_buffer(1, 3 * len).unwrap();
        gather(&mut c, 1, &bufs, root_buf, len).unwrap();
        let mut out = vec![0u8; 3 * len];
        c.read_buffer(1, root_buf, &mut out).unwrap();
        for r in 0..3 {
            assert!(out[r * len..(r + 1) * len]
                .iter()
                .all(|&b| b == r as u8 + 1));
        }
    }

    #[test]
    fn alltoallv_routes_blocks() {
        let n = 3;
        let mut c = comm(n);
        let block = 100;
        let send_bufs: Vec<_> = (0..n)
            .map(|r| c.alloc_buffer(r, n * block).unwrap())
            .collect();
        let recv_bufs: Vec<_> = (0..n)
            .map(|r| c.alloc_buffer(r, n * block).unwrap())
            .collect();
        // Rank s sends block "s*10 + d" to rank d.
        for s in 0..n {
            for d in 0..n {
                c.fill_buffer(
                    s,
                    send_bufs[s] + (d * block) as u64,
                    &vec![(s * 10 + d) as u8; block],
                )
                .unwrap();
            }
        }
        let offs: Vec<Vec<usize>> = (0..n)
            .map(|_| (0..n).map(|d| d * block).collect())
            .collect();
        let counts: Vec<Vec<usize>> = (0..n).map(|_| vec![block; n]).collect();
        let roffs: Vec<Vec<usize>> = (0..n)
            .map(|_| (0..n).map(|s| s * block).collect())
            .collect();
        alltoallv(&mut c, &send_bufs, &offs, &counts, &recv_bufs, &roffs).unwrap();
        for d in 0..n {
            let mut out = vec![0u8; n * block];
            c.read_buffer(d, recv_bufs[d], &mut out).unwrap();
            for s in 0..n {
                assert!(
                    out[s * block..(s + 1) * block]
                        .iter()
                        .all(|&b| b == (s * 10 + d) as u8),
                    "block {s}→{d}"
                );
            }
        }
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let n = 4;
        let mut c = comm(n);
        let words = 8;
        let bufs: Vec<_> = (0..n)
            .map(|r| c.alloc_buffer(r, words * 8).unwrap())
            .collect();
        for r in 0..n {
            let mut bytes = Vec::new();
            for w in 0..words as u64 {
                bytes.extend_from_slice(&(w + r as u64 * 100).to_le_bytes());
            }
            c.fill_buffer(r, bufs[r], &bytes).unwrap();
        }
        allreduce_sum_u64(&mut c, &bufs, words).unwrap();
        // Expected: sum over r of (w + 100r) = 4w + 600.
        for r in 0..n {
            let mut bytes = vec![0u8; words * 8];
            c.read_buffer(r, bufs[r], &mut bytes).unwrap();
            for (w, chunk) in bytes.chunks_exact(8).enumerate() {
                let v = u64::from_le_bytes(chunk.try_into().unwrap());
                assert_eq!(v, 4 * w as u64 + 600, "rank {r}, word {w}");
            }
        }
    }

    #[test]
    fn alltoallv_with_zero_counts() {
        let n = 2;
        let mut c = comm(n);
        let send_bufs: Vec<_> = (0..n).map(|r| c.alloc_buffer(r, 64).unwrap()).collect();
        let recv_bufs: Vec<_> = (0..n).map(|r| c.alloc_buffer(r, 64).unwrap()).collect();
        c.fill_buffer(0, send_bufs[0], &[7u8; 64]).unwrap();
        // Only 0 → 1 carries data.
        let offs = vec![vec![0, 0], vec![0, 0]];
        let counts = vec![vec![0, 64], vec![0, 0]];
        let roffs = vec![vec![0, 0], vec![0, 0]];
        alltoallv(&mut c, &send_bufs, &offs, &counts, &recv_bufs, &roffs).unwrap();
        let mut out = vec![0u8; 64];
        c.read_buffer(1, recv_bufs[1], &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 7));
    }
}
