//! # msg — a miniature CHEMPI: message passing over the VIA/SCI stack
//!
//! Reimplements the three data-transfer protocols of the companion paper
//! *"An optimized MPI library for VIA/SCI cards"* on top of the functional
//! `via` stack, so that the registration machinery under test (`vialock`)
//! sits on the hot path exactly where it does in a real MPI:
//!
//! * **shared-memory protocol** ([`comm`], short messages): the sender
//!   PIO-copies payload + a *message info struct* into a segment the
//!   receiver exported over SCI; the receiver polls its local memory,
//!   copies out, and raises a *ready flag* in the sender's exported
//!   control segment;
//! * **one-copy VIA protocol** (medium): the receiver pre-posts fixed-size
//!   receive descriptors on pre-registered ring buffers; the sender
//!   registers its user buffer (through the registration cache), chunks the
//!   payload into VIA sends, and the receiver copies chunks into the user
//!   buffer;
//! * **zero-copy VIA protocol** (long): rendezvous — the receiver registers
//!   its user buffer and PIO-writes `(MemId, addr)` back; the sender
//!   registers its own buffer and RDMA-writes the payload directly into the
//!   receiver's memory. No copies.
//!
//! Protocol choice is by message size ([`config::MsgConfig`]); every
//! dynamic registration goes through the LRU [`regcache`], which is the
//! paper's "keep regions registered as long as possible" remedy.
//!
//! The crate is *functional*: data really moves through registered frames,
//! so an unreliable pinning strategy corrupts transfers here exactly as in
//! the locktest. Event counts ([`stats::MsgStats`]) feed the `netsim` cost
//! models to regenerate the bandwidth figures.

pub mod coll;
pub mod comm;
pub mod config;
pub mod indirect;
pub mod regcache;
pub mod seg;
pub mod stats;
pub mod window;

pub use comm::{Comm, RankId, SendHandle, ANY_SOURCE, ANY_TAG};
pub use config::MsgConfig;
pub use regcache::NodeRegCache;
pub use stats::MsgStats;
pub use window::Window;
