//! TPT-level registration cache: the `vialock` cache idea applied at the
//! NIC-handle level, which is where a zero-copy MPI needs it — a cache hit
//! avoids both the kernel-agent trap *and* the TPT refill.
//!
//! The mechanics (covering-span hits, stamp-ordered LRU eviction, O(1)
//! release) are the shared [`vialock::CoveringLru`]; this wrapper turns
//! misses into registration calls and evictions into deregistration calls
//! against any [`RegPort`] — a bare `Node` (deterministic fabric, or inside
//! a service thread) or a [`via::FabricNode`] adapter routing through the
//! `Fabric` trait. Since each rank has its own protection tag *and* its own
//! pid, the pid-keyed covering index never serves a span registered under
//! another rank's tag.

use simmem::{Pid, VirtAddr};
use via::tpt::{MemId, ProtectionTag};
use via::{RegPort, ViaResult};
use vialock::{CacheReleaseError, CacheStats, CoveringLru, RegError};

/// LRU cache of live NIC registrations for one node.
pub struct NodeRegCache {
    lru: CoveringLru<MemId>,
}

impl NodeRegCache {
    pub fn new(capacity_pages: usize) -> Self {
        NodeRegCache {
            lru: CoveringLru::new(capacity_pages),
        }
    }

    /// Acquire a registration covering `[addr, addr+len)` under `tag`. Any
    /// cached span covering the request — exact or larger — is a hit; a
    /// miss registers the full page span with the NIC.
    pub fn acquire<P: RegPort>(
        &mut self,
        port: &mut P,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId> {
        if let Some(mem) = self.lru.acquire(pid, addr, len) {
            return Ok(mem);
        }
        let page_base = simmem::page_base(addr);
        let span_len = (simmem::page_align_up(addr + len as u64) - page_base) as usize;
        let mem = port.port_register(pid, page_base, span_len, tag)?;
        self.lru.admit(pid, addr, len, mem);
        Ok(mem)
    }

    /// Release a prior acquisition; evict idle LRU entries beyond budget.
    /// Releasing more often than acquired is an error, not a silent
    /// saturation.
    pub fn release<P: RegPort>(&mut self, port: &mut P, mem: MemId) -> ViaResult<()> {
        self.lru.release(mem).map_err(|e| match e {
            CacheReleaseError::UnknownHandle => via::ViaError::BadId("cached memory"),
            CacheReleaseError::Underflow => via::ViaError::Reg(RegError::PinUnderflow),
        })?;
        for victim in self.lru.evict_over_budget() {
            port.port_deregister(victim)?;
        }
        Ok(())
    }

    /// Deregister every idle cached region.
    pub fn flush<P: RegPort>(&mut self, port: &mut P) -> ViaResult<()> {
        for victim in self.lru.drain_idle() {
            port.port_deregister(victim)?;
        }
        Ok(())
    }

    pub fn cached_pages(&self) -> usize {
        self.lru.cached_pages()
    }

    pub fn len(&self) -> usize {
        self.lru.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Performance counters.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, KernelConfig, PAGE_SIZE};
    use via::nic::Node;
    use vialock::StrategyKind;

    fn node() -> (Node, Pid, VirtAddr) {
        let mut n = Node::new(KernelConfig::small(), StrategyKind::KiobufReliable, 1024);
        let pid = n.kernel.spawn_process(simmem::Capabilities::default());
        let a = n
            .kernel
            .mmap_anon(pid, 32 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        (n, pid, a)
    }

    #[test]
    fn hit_on_reuse() {
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(128);
        let tag = ProtectionTag(1);
        let m1 = c.acquire(&mut n, pid, a, PAGE_SIZE, tag).unwrap();
        c.release(&mut n, m1).unwrap();
        let m2 = c.acquire(&mut n, pid, a, PAGE_SIZE, tag).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(n.registry.snapshot().registrations, 1);
        c.release(&mut n, m2).unwrap();
    }

    #[test]
    fn sub_span_hits_cached_covering_region() {
        // The NIC-level mirror of the tentpole test: cache [a, a+8p), then
        // ask for [a+p, a+3p) — zero new TPT registrations.
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(128);
        let tag = ProtectionTag(1);
        let big = c.acquire(&mut n, pid, a, 8 * PAGE_SIZE, tag).unwrap();
        c.release(&mut n, big).unwrap();
        assert_eq!(n.registry.snapshot().registrations, 1);
        let sub = c
            .acquire(&mut n, pid, a + PAGE_SIZE as u64, 2 * PAGE_SIZE, tag)
            .unwrap();
        assert_eq!(sub, big, "served by the covering TPT entry");
        assert_eq!(
            n.registry.snapshot().registrations,
            1,
            "zero new registrations"
        );
        assert_eq!(c.stats().covering_hits, 1);
        assert_eq!(n.nic.tpt.region_count(), 1);
        c.release(&mut n, sub).unwrap();
    }

    #[test]
    fn budget_evicts_idle_lru() {
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(4);
        let tag = ProtectionTag(1);
        for i in 0..3 {
            let addr = a + (i * 2 * PAGE_SIZE) as u64;
            let m = c.acquire(&mut n, pid, addr, 2 * PAGE_SIZE, tag).unwrap();
            c.release(&mut n, m).unwrap();
        }
        assert!(c.cached_pages() <= 4);
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn flush_deregisters() {
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(128);
        let tag = ProtectionTag(1);
        let m = c.acquire(&mut n, pid, a, 4 * PAGE_SIZE, tag).unwrap();
        c.release(&mut n, m).unwrap();
        assert_eq!(n.nic.tpt.region_count(), 1);
        c.flush(&mut n).unwrap();
        assert_eq!(n.nic.tpt.region_count(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn unaligned_requests_share_the_page_span() {
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(128);
        let tag = ProtectionTag(1);
        // Two different byte ranges with the same page span hit the same
        // entry.
        let m1 = c.acquire(&mut n, pid, a + 10, 100, tag).unwrap();
        let m2 = c.acquire(&mut n, pid, a + 500, 200, tag).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(c.stats().hits, 1);
        c.release(&mut n, m1).unwrap();
        c.release(&mut n, m2).unwrap();
    }

    #[test]
    fn double_release_is_reported() {
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(128);
        let m = c
            .acquire(&mut n, pid, a, PAGE_SIZE, ProtectionTag(1))
            .unwrap();
        c.release(&mut n, m).unwrap();
        assert!(matches!(
            c.release(&mut n, m),
            Err(via::ViaError::Reg(RegError::PinUnderflow))
        ));
        assert!(matches!(
            c.release(&mut n, MemId(4242)),
            Err(via::ViaError::BadId(_))
        ));
    }
}
