//! TPT-level registration cache: the `vialock` cache idea applied at the
//! NIC-handle level, which is where a zero-copy MPI needs it — a cache hit
//! avoids both the kernel-agent trap *and* the TPT refill.

use std::collections::HashMap;

use simmem::{Pid, VirtAddr, PAGE_SIZE};
use via::nic::Node;
use via::tpt::{MemId, ProtectionTag};
use via::ViaResult;
use vialock::CacheStats;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    pid: Pid,
    page_base: VirtAddr,
    npages: usize,
}

struct Entry {
    mem: MemId,
    users: u32,
    stamp: u64,
    npages: usize,
}

/// LRU cache of live NIC registrations for one node.
pub struct NodeRegCache {
    entries: HashMap<Key, Entry>,
    capacity_pages: usize,
    clock: u64,
    pub stats: CacheStats,
}

impl NodeRegCache {
    pub fn new(capacity_pages: usize) -> Self {
        NodeRegCache {
            entries: HashMap::new(),
            capacity_pages,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Acquire a registration covering `[addr, addr+len)` under `tag`.
    pub fn acquire(
        &mut self,
        node: &mut Node,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId> {
        let page_base = simmem::page_base(addr);
        let npages = ((simmem::page_align_up(addr + len as u64) - page_base) as usize) / PAGE_SIZE;
        let key = Key { pid, page_base, npages };
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.users += 1;
            e.stamp = self.clock;
            self.stats.hits += 1;
            return Ok(e.mem);
        }
        self.stats.misses += 1;
        let mem = node.register_mem(pid, page_base, npages * PAGE_SIZE, tag)?;
        self.entries.insert(
            key,
            Entry { mem, users: 1, stamp: self.clock, npages },
        );
        Ok(mem)
    }

    /// Release a prior acquisition; evict idle LRU entries beyond budget.
    pub fn release(&mut self, node: &mut Node, mem: MemId) -> ViaResult<()> {
        let key = self
            .entries
            .iter()
            .find(|(_, e)| e.mem == mem)
            .map(|(k, _)| *k)
            .ok_or(via::ViaError::BadId("cached memory"))?;
        let e = self.entries.get_mut(&key).expect("found above");
        debug_assert!(e.users > 0, "release without acquire");
        e.users = e.users.saturating_sub(1);
        self.shrink(node)
    }

    fn shrink(&mut self, node: &mut Node) -> ViaResult<()> {
        while self.cached_pages() > self.capacity_pages {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.users == 0)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            let Some(k) = victim else { break };
            let e = self.entries.remove(&k).expect("victim present");
            node.deregister_mem(e.mem)?;
            self.stats.evictions += 1;
        }
        Ok(())
    }

    /// Deregister every idle cached region.
    pub fn flush(&mut self, node: &mut Node) -> ViaResult<()> {
        let victims: Vec<Key> = self
            .entries
            .iter()
            .filter(|(_, e)| e.users == 0)
            .map(|(k, _)| *k)
            .collect();
        for k in victims {
            let e = self.entries.remove(&k).expect("victim present");
            node.deregister_mem(e.mem)?;
            self.stats.evictions += 1;
        }
        Ok(())
    }

    pub fn cached_pages(&self) -> usize {
        self.entries.values().map(|e| e.npages).sum()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, KernelConfig};
    use vialock::StrategyKind;

    fn node() -> (Node, Pid, VirtAddr) {
        let mut n = Node::new(
            KernelConfig::small(),
            StrategyKind::KiobufReliable,
            1024,
        );
        let pid = n.kernel.spawn_process(simmem::Capabilities::default());
        let a = n
            .kernel
            .mmap_anon(pid, 32 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        (n, pid, a)
    }

    #[test]
    fn hit_on_reuse() {
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(128);
        let tag = ProtectionTag(1);
        let m1 = c.acquire(&mut n, pid, a, PAGE_SIZE, tag).unwrap();
        c.release(&mut n, m1).unwrap();
        let m2 = c.acquire(&mut n, pid, a, PAGE_SIZE, tag).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(n.registry.stats.registrations, 1);
        c.release(&mut n, m2).unwrap();
    }

    #[test]
    fn budget_evicts_idle_lru() {
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(4);
        let tag = ProtectionTag(1);
        for i in 0..3 {
            let addr = a + (i * 2 * PAGE_SIZE) as u64;
            let m = c.acquire(&mut n, pid, addr, 2 * PAGE_SIZE, tag).unwrap();
            c.release(&mut n, m).unwrap();
        }
        assert!(c.cached_pages() <= 4);
        assert!(c.stats.evictions >= 1);
    }

    #[test]
    fn flush_deregisters() {
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(128);
        let tag = ProtectionTag(1);
        let m = c.acquire(&mut n, pid, a, 4 * PAGE_SIZE, tag).unwrap();
        c.release(&mut n, m).unwrap();
        assert_eq!(n.nic.tpt.region_count(), 1);
        c.flush(&mut n).unwrap();
        assert_eq!(n.nic.tpt.region_count(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn unaligned_requests_share_the_page_span() {
        let (mut n, pid, a) = node();
        let mut c = NodeRegCache::new(128);
        let tag = ProtectionTag(1);
        // Two different byte ranges with the same page span hit the same
        // entry.
        let m1 = c.acquire(&mut n, pid, a + 10, 100, tag).unwrap();
        let m2 = c.acquire(&mut n, pid, a + 500, 200, tag).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(c.stats.hits, 1);
        c.release(&mut n, m1).unwrap();
        c.release(&mut n, m2).unwrap();
    }
}
