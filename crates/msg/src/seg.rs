//! Shared-memory segment layout for one directed sender→receiver pair.
//!
//! The **receiver** exports a segment holding the message-info slot array
//! and the SM data slots; the **sender** exports a small control segment
//! holding per-slot response records (ready flags and the zero-copy
//! rendezvous answer). Both sides only ever *read their own memory* and
//! *PIO-write the peer's* — remote reads are expensive on SCI and the
//! CHEMPI design avoids them.

/// Byte size of one encoded message-info struct.
pub const INFO_SIZE: usize = 32;

/// Byte size of one encoded response record in the sender's segment.
pub const RESP_SIZE: usize = 24;

/// Info-slot state: free.
pub const ACTIVE_FREE: u8 = 0;
/// Info-slot state: message posted (payload present for SM, announced for
/// one-copy/zero-copy).
pub const ACTIVE_POSTED: u8 = 1;
/// Info-slot state: zero-copy RDMA finished (set by the sender).
pub const ACTIVE_ZC_DONE: u8 = 2;

/// Response state: nothing.
pub const RESP_NONE: u8 = 0;
/// Response state: receiver's buffer registered, rendezvous answer valid.
pub const RESP_BUF_READY: u8 = 1;
/// Response state: message fully consumed; sender may reuse the slot.
pub const RESP_DONE: u8 = 2;

/// A decoded message-info struct (what the sender PIO-writes into the
/// receiver's segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgInfo {
    pub active: u8,
    /// Protocol discriminator (`Protocol as u8`).
    pub proto: u8,
    pub tag: u32,
    pub len: u32,
    /// Monotonic per-pair id — preserves MPI message ordering.
    pub msg_id: u64,
}

impl MsgInfo {
    pub fn encode(&self) -> [u8; INFO_SIZE] {
        let mut b = [0u8; INFO_SIZE];
        b[0] = self.active;
        b[1] = self.proto;
        b[4..8].copy_from_slice(&self.tag.to_le_bytes());
        b[8..12].copy_from_slice(&self.len.to_le_bytes());
        b[16..24].copy_from_slice(&self.msg_id.to_le_bytes());
        b
    }

    pub fn decode(b: &[u8]) -> MsgInfo {
        MsgInfo {
            active: b[0],
            proto: b[1],
            tag: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
            len: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
            msg_id: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
        }
    }
}

/// A decoded response record (what the receiver PIO-writes into the
/// sender's control segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    pub state: u8,
    /// Rendezvous answer: the receiver's registered memory handle…
    pub mem: u32,
    /// …and the user-buffer address within it.
    pub addr: u64,
}

impl Response {
    pub fn encode(&self) -> [u8; RESP_SIZE] {
        let mut b = [0u8; RESP_SIZE];
        b[0] = self.state;
        b[4..8].copy_from_slice(&self.mem.to_le_bytes());
        b[8..16].copy_from_slice(&self.addr.to_le_bytes());
        b
    }

    pub fn decode(b: &[u8]) -> Response {
        Response {
            state: b[0],
            mem: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
            addr: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
        }
    }
}

/// Geometry of the receiver-exported segment.
#[derive(Debug, Clone, Copy)]
pub struct SegLayout {
    pub info_slots: usize,
    pub slot_data_bytes: usize,
}

impl SegLayout {
    /// Offset of info slot `i`.
    pub fn info_off(&self, i: usize) -> usize {
        debug_assert!(i < self.info_slots);
        i * INFO_SIZE
    }

    /// Offset of the data area of slot `i`.
    pub fn data_off(&self, i: usize) -> usize {
        self.info_slots * INFO_SIZE + i * self.slot_data_bytes
    }

    /// Total bytes of the receiver-exported segment.
    pub fn r_seg_bytes(&self) -> usize {
        self.info_slots * (INFO_SIZE + self.slot_data_bytes)
    }

    /// Offset of response record `i` in the sender-exported segment.
    pub fn resp_off(&self, i: usize) -> usize {
        debug_assert!(i < self.info_slots);
        i * RESP_SIZE
    }

    /// Total bytes of the sender-exported control segment.
    pub fn s_seg_bytes(&self) -> usize {
        self.info_slots * RESP_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_roundtrip() {
        let m = MsgInfo {
            active: ACTIVE_POSTED,
            proto: 2,
            tag: 0xDEAD_BEEF,
            len: 123_456,
            msg_id: 0x0123_4567_89AB_CDEF,
        };
        assert_eq!(MsgInfo::decode(&m.encode()), m);
    }

    #[test]
    fn response_roundtrip() {
        let r = Response {
            state: RESP_BUF_READY,
            mem: 42,
            addr: 0x4000_1234,
        };
        assert_eq!(Response::decode(&r.encode()), r);
    }

    #[test]
    fn layout_is_disjoint() {
        let l = SegLayout {
            info_slots: 4,
            slot_data_bytes: 512,
        };
        // Info slots first, then data slots, no overlap.
        assert_eq!(l.info_off(0), 0);
        assert_eq!(l.info_off(3), 3 * INFO_SIZE);
        assert_eq!(l.data_off(0), 4 * INFO_SIZE);
        assert_eq!(l.data_off(1) - l.data_off(0), 512);
        assert_eq!(l.r_seg_bytes(), 4 * INFO_SIZE + 4 * 512);
        assert_eq!(l.s_seg_bytes(), 4 * RESP_SIZE);
    }
}
