//! Indirect communication through an intermediate node — the concept the
//! Multidevice paper describes (and left unimplemented: "ein Konzept,
//! welches noch nicht in der Software realisiert wurde"): when no direct
//! link exists between two nodes, or the two-hop path is faster, a message
//! travels source → intermediate → destination as *system messages* (the
//! reserved-tag, implicitly-received messages of section 3.4), with the
//! intermediate's system-message handler re-posting the payload.
//!
//! The wire format prefixes the payload with a header carrying the
//! original source, the final destination and the application tag, so the
//! destination-side library can present the true envelope.

// Rank indices are semantic; iterating them directly is the clearer idiom.
#![allow(clippy::needless_range_loop)]

use simmem::VirtAddr;
use via::{Fabric, ViaError, ViaResult};

use crate::coll::SYS_TAG_BASE;
use crate::comm::{Comm, RankId, ANY_TAG};

/// The system tag carrying forwarded messages (within the reserved range).
pub const TAG_FORWARD: u32 = SYS_TAG_BASE | (6 << 12);

/// Header prefixed to every forwarded payload.
const HDR: usize = 12; // orig_src u32 | final_dst u32 | orig_tag u32

fn encode_header(orig_src: u32, final_dst: u32, orig_tag: u32) -> [u8; HDR] {
    let mut h = [0u8; HDR];
    h[0..4].copy_from_slice(&orig_src.to_le_bytes());
    h[4..8].copy_from_slice(&final_dst.to_le_bytes());
    h[8..12].copy_from_slice(&orig_tag.to_le_bytes());
    h
}

fn decode_header(b: &[u8]) -> (u32, u32, u32) {
    (
        u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
        u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
        u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
    )
}

/// The envelope of a received forwarded message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardedEnvelope {
    pub orig_src: RankId,
    pub tag: u32,
    pub len: usize,
}

impl<F: Fabric> Comm<F> {
    /// Send `[addr, addr+len)` from `from` to `to` **via** the intermediate
    /// rank (step 1–2 of the paper's protocol: wrap payload with a header,
    /// ship it to the intermediate as a system message). Blocking: the
    /// wrapped copy makes the user buffer reusable on return.
    pub fn send_indirect(
        &mut self,
        from: RankId,
        via_rank: RankId,
        to: RankId,
        tag: u32,
        addr: VirtAddr,
        len: usize,
    ) -> ViaResult<()> {
        if via_rank == from || via_rank == to || from == to {
            return Err(ViaError::BadState("degenerate indirect route"));
        }
        if tag >= SYS_TAG_BASE {
            return Err(ViaError::BadState("tag collides with system range"));
        }
        // Assemble header + payload in a staging buffer on the sender.
        let mut wrapped = Vec::with_capacity(HDR + len);
        wrapped.extend_from_slice(&encode_header(from as u32, to as u32, tag));
        let mut payload = vec![0u8; len];
        self.read_buffer(from, addr, &mut payload)?;
        wrapped.extend_from_slice(&payload);
        let staging = self.alloc_buffer(from, wrapped.len())?;
        self.fill_buffer(from, staging, &wrapped)?;
        let h = self.send(from, via_rank, TAG_FORWARD, staging, wrapped.len())?;
        // The forwarding hop is consumed by `forward_pump` on the
        // intermediate; in the synchronous harness we cannot block here, so
        // the handle completes when the intermediate has taken the message.
        self.pending_forward_handles.push(h);
        Ok(())
    }

    /// The intermediate's system-message handler (steps 3 of the paper's
    /// protocol): drain every pending forward addressed through `at` and
    /// re-post it toward its final destination. Returns how many messages
    /// were relayed.
    pub fn forward_pump(&mut self, at: RankId) -> ViaResult<usize> {
        let mut relayed = 0usize;
        while let Some((src, _, len)) = self.iprobe(at, crate::comm::ANY_SOURCE, TAG_FORWARD)? {
            // Receive the wrapped message into a relay buffer owned by the
            // intermediate ("er kopiert die Nutzdaten in einen Buffer").
            let relay = self.alloc_buffer(at, len)?;
            self.recv(at, src, TAG_FORWARD, relay, len)?;
            let mut bytes = vec![0u8; len];
            self.read_buffer(at, relay, &mut bytes)?;
            let (_, final_dst, _) = decode_header(&bytes);
            let dst = final_dst as usize;
            if dst == at {
                return Err(ViaError::BadState("forward loop: already at destination"));
            }
            // Re-post, header intact, to the final destination.
            let h = self.send(at, dst, TAG_FORWARD, relay, len)?;
            self.pending_forward_handles.push(h);
            relayed += 1;
        }
        // Reap completed relays.
        let handles = std::mem::take(&mut self.pending_forward_handles);
        for h in handles {
            if !self.test(h)? {
                self.pending_forward_handles.push(h);
            }
        }
        Ok(relayed)
    }

    /// Destination-side receive of a forwarded message: strips the header
    /// and returns the true envelope. `tag` filters on the *original*
    /// application tag ([`ANY_TAG`] matches any).
    pub fn recv_indirect(
        &mut self,
        at: RankId,
        tag: u32,
        buf_addr: VirtAddr,
        buf_len: usize,
    ) -> ViaResult<ForwardedEnvelope> {
        // Forwarded messages arrive under TAG_FORWARD from whichever rank
        // relayed them.
        for _ in 0..64 {
            if let Some((src, _, len)) = self.iprobe(at, crate::comm::ANY_SOURCE, TAG_FORWARD)? {
                let scratch = self.alloc_buffer(at, len)?;
                self.recv(at, src, TAG_FORWARD, scratch, len)?;
                let mut bytes = vec![0u8; len];
                self.read_buffer(at, scratch, &mut bytes)?;
                let (orig_src, final_dst, orig_tag) = decode_header(&bytes);
                if final_dst as usize != at {
                    return Err(ViaError::BadState("misrouted forward"));
                }
                if tag != ANY_TAG && orig_tag != tag {
                    return Err(ViaError::BadState("unexpected tag on forwarded message"));
                }
                let payload = &bytes[HDR..];
                if payload.len() > buf_len {
                    return Err(ViaError::RecvTooSmall {
                        need: payload.len(),
                        have: buf_len,
                    });
                }
                self.fill_buffer(at, buf_addr, payload)?;
                return Ok(ForwardedEnvelope {
                    orig_src: orig_src as usize,
                    tag: orig_tag,
                    len: payload.len(),
                });
            }
            self.progress()?;
        }
        Err(ViaError::BadState("no forwarded message arrived"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MsgConfig;
    use simmem::KernelConfig;
    use vialock::StrategyKind;

    fn comm() -> Comm {
        Comm::new(
            3,
            2,
            KernelConfig::large(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap()
    }

    #[test]
    fn indirect_roundtrip_through_intermediate() {
        let mut c = comm();
        let len = 300;
        let data: Vec<u8> = (0..len).map(|i| (i * 3 % 251) as u8).collect();
        let sbuf = c.alloc_buffer(0, len).unwrap();
        let rbuf = c.alloc_buffer(2, len).unwrap();
        c.fill_buffer(0, sbuf, &data).unwrap();

        // 0 → (1) → 2.
        c.send_indirect(0, 1, 2, 42, sbuf, len).unwrap();
        assert_eq!(c.forward_pump(1).unwrap(), 1, "intermediate relayed once");
        let env = c.recv_indirect(2, 42, rbuf, len).unwrap();
        assert_eq!(
            env,
            ForwardedEnvelope {
                orig_src: 0,
                tag: 42,
                len
            }
        );
        let mut out = vec![0u8; len];
        c.read_buffer(2, rbuf, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn multiple_forwards_in_one_pump() {
        let mut c = comm();
        for i in 0..3u32 {
            let sbuf = c.alloc_buffer(0, 64).unwrap();
            c.fill_buffer(0, sbuf, &[i as u8 + 1; 16]).unwrap();
            c.send_indirect(0, 1, 2, i, sbuf, 16).unwrap();
        }
        assert_eq!(c.forward_pump(1).unwrap(), 3);
        let rbuf = c.alloc_buffer(2, 64).unwrap();
        for i in 0..3u32 {
            let env = c.recv_indirect(2, ANY_TAG, rbuf, 64).unwrap();
            assert_eq!(env.tag, i, "FIFO order preserved through the relay");
            let mut out = vec![0u8; 16];
            c.read_buffer(2, rbuf, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == i as u8 + 1));
        }
    }

    #[test]
    fn degenerate_routes_rejected() {
        let mut c = comm();
        let b = c.alloc_buffer(0, 16).unwrap();
        assert!(c.send_indirect(0, 0, 2, 1, b, 8).is_err());
        assert!(c.send_indirect(0, 2, 2, 1, b, 8).is_err());
        assert!(c.send_indirect(0, 1, 0, 1, b, 8).is_err());
        assert!(c.send_indirect(0, 1, 2, SYS_TAG_BASE, b, 8).is_err());
    }

    #[test]
    fn route_planner_picks_the_intermediate() {
        // Tie-in with netsim::routes: plan 0 → 2 on a cluster where the
        // two-hop SCI path beats the direct Ethernet link, then use the
        // planned intermediate for the actual transfer.
        use netsim::routes::{plan_routes, Link, NetworkDescription};
        let desc = NetworkDescription {
            n_nodes: 3,
            links: vec![
                Link {
                    a: 0,
                    b: 1,
                    device: "sci",
                    latency_ns: 3_000,
                    per_byte_ns: 12.0,
                },
                Link {
                    a: 1,
                    b: 2,
                    device: "sci",
                    latency_ns: 3_000,
                    per_byte_ns: 12.0,
                },
                Link {
                    a: 0,
                    b: 2,
                    device: "ethernet",
                    latency_ns: 125_000,
                    per_byte_ns: 97.0,
                },
            ],
            forward_ns: Some(10_000),
        };
        let route = plan_routes(&desc, 1024);
        let r = route.route(0, 2).unwrap();
        assert!(!r.is_direct());
        let intermediate = r.hops[0].to;
        assert_eq!(intermediate, 1);

        let mut c = comm();
        let sbuf = c.alloc_buffer(0, 64).unwrap();
        let rbuf = c.alloc_buffer(2, 64).unwrap();
        c.fill_buffer(0, sbuf, b"routed indirectly").unwrap();
        c.send_indirect(0, intermediate, 2, 7, sbuf, 17).unwrap();
        c.forward_pump(intermediate).unwrap();
        let env = c.recv_indirect(2, 7, rbuf, 64).unwrap();
        assert_eq!((env.orig_src, env.len), (0, 17));
        let mut out = vec![0u8; 17];
        c.read_buffer(2, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"routed indirectly");
    }
}
