//! Offline stand-in for `serde`. The workspace derives `Serialize` /
//! `Deserialize` on stats and config structs for downstream tooling, but no
//! crate here actually serialises anything (there is no `serde_json` or
//! similar consumer). This shim keeps the derive sites compiling without
//! network access: the traits are markers with blanket impls, and the derive
//! macros expand to nothing.
//!
//! If a future PR needs real serialisation, vendor or re-enable the real
//! serde and delete this crate; call sites need no changes.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Bound-compatibility alias mirroring `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
