//! Offline stand-in for `proptest`, exposing exactly the API surface the
//! workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn name(x in strat, ..) {..} }`
//! * `Strategy` (with `prop_map` and `boxed`), integer-range strategies,
//!   tuple strategies (2–4 elements), `any::<T>()`, `prop::collection::vec`,
//!   and `prop_oneof!`;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Semantics differ from the real proptest in two deliberate ways: the RNG
//! is seeded deterministically from the test name (reproducible runs, no
//! persistence files), and there is no shrinking — a failure reports the
//! case number and message only. That trade-off keeps this crate
//! dependency-free so `cargo test` works without a registry.

use core::ops::Range;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic SplitMix64 stream used to generate test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; retry with fresh ones.
    Reject(String),
    /// `prop_assert!`-family failure; abort the whole test.
    Fail(String),
}

fn seed_of(name: &str) -> u64 {
    // FNV-1a, so each test gets a distinct but reproducible stream.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(seed_of(name));
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = 1024 + 64 * config.cases as u64;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected}) for {} passing cases",
                        passed
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {passed}: {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe view of [`Strategy`] so `prop_oneof!` can mix arm types.
pub trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// `any::<T>()` support.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use core::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let mut __case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}` ({:?} != {:?})",
                stringify!($lhs), stringify!($rhs), __l, __r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} ({:?} != {:?})", format!($($fmt)+), __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in prop::collection::vec(0u8..4, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_compose(y in prop_oneof![
            (0u32..10, 1u32..5).prop_map(|(a, b)| a + b),
            (100u32..110).prop_map(|a| a),
        ]) {
            prop_assume!(y != 1);
            prop_assert!((y < 15 && y > 0) || (100..110).contains(&y), "y = {}", y);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        run_proptest_failure();
    }

    fn run_proptest_failure() {
        crate::run_proptest(
            crate::ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| Err(crate::TestCaseError::Fail("boom".into())),
        );
    }
}
