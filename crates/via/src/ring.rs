//! Native descriptor processing: work queues as **rings of descriptors in
//! registered user memory**, fetched by the NIC via DMA.
//!
//! The fast-path queues in [`crate::vi`] hold decoded descriptors in host
//! structures; this module models what real VIA hardware does instead —
//! and what the "Comparing MPI Performance" paper blames for VIA's latency
//! floor: *"A descriptor must be prepared and posted to the NIC. Then the
//! hardware starts reading the descriptor from main memory by means of
//! DMA. After retrieving the data address it must perform another DMA
//! cycle in order to get the actual data."*
//!
//! * [`wire`] defines the on-memory descriptor format (a 16-byte control
//!   segment, an optional 16-byte address segment, and 16-byte data
//!   segments — the VIA spec's layout, simplified);
//! * [`DescriptorRing`] is a ring of fixed-size descriptor slots inside a
//!   registered region; the process encodes descriptors into its own
//!   memory with CPU stores and rings a (counting) doorbell;
//! * [`DescriptorRing::fetch_next`] performs the NIC-side **descriptor DMA**: translate
//!   the slot through the TPT, `dma_read` the bytes, decode — so a stale
//!   TPT corrupts *descriptor fetch* just as it corrupts data, which is
//!   exactly why the VIA spec demands that descriptor memory be
//!   registered and locked too.

use simmem::{CounterCell, Kernel, VirtAddr};

use crate::descriptor::{DataSeg, DescOp, DescStatus, Descriptor, RdmaSeg};
use crate::error::{ViaError, ViaResult};
use crate::tpt::{Access, DmaRun, MemId, ProtectionTag, Tpt};

/// On-memory descriptor layout.
pub mod wire {
    /// Control segment: opcode(1) pad(1) seg_count(2) imm_valid(1) pad(3)
    /// imm(4) pad(4) = 16 bytes.
    pub const CTRL_SIZE: usize = 16;
    /// Address segment (RDMA): remote_mem(4) pad(4) remote_addr(8).
    pub const ADDR_SIZE: usize = 16;
    /// Data segment: mem(4) len(4) addr(8).
    pub const SEG_SIZE: usize = 16;

    pub const OP_SEND: u8 = 1;
    pub const OP_RECV: u8 = 2;
    pub const OP_RDMA_WRITE: u8 = 3;
    pub const OP_RDMA_READ: u8 = 4;
    pub const OP_ATOMIC_CAS: u8 = 5;

    /// Atomic operand segment (CAS): compare(8) swap(8).
    pub const ATOMIC_SIZE: usize = 16;

    /// Bytes needed to encode a descriptor with `nsegs` data segments and
    /// optionally an address segment and an atomic operand segment.
    pub fn encoded_len(nsegs: usize, has_addr: bool, has_atomic: bool) -> usize {
        CTRL_SIZE
            + if has_addr { ADDR_SIZE } else { 0 }
            + if has_atomic { ATOMIC_SIZE } else { 0 }
            + nsegs * SEG_SIZE
    }
}

/// Copy a little-endian `u16` out of `bytes` at `off`. Callers bounds-check
/// the slice first; the fixed-size destination makes the conversion itself
/// infallible (datapath modules must stay panic-free — lint rule R3).
#[inline]
pub(crate) fn le_u16(bytes: &[u8], off: usize) -> u16 {
    let mut b = [0u8; 2];
    b.copy_from_slice(&bytes[off..off + 2]);
    u16::from_le_bytes(b)
}

/// Little-endian `u32` at `off`; see [`le_u16`].
#[inline]
pub(crate) fn le_u32(bytes: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[off..off + 4]);
    u32::from_le_bytes(b)
}

/// Little-endian `u64` at `off`; see [`le_u16`].
#[inline]
pub(crate) fn le_u64(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Encode a descriptor into its wire format.
pub fn encode(desc: &Descriptor) -> ViaResult<Vec<u8>> {
    let has_addr = desc.rdma.is_some();
    let has_atomic = desc.op == DescOp::AtomicCas;
    let cas_ops = match (has_atomic, desc.cas) {
        (true, None) => return Err(ViaError::BadState("CAS descriptor without operands")),
        (true, Some(ops)) => Some(ops),
        (false, _) => None,
    };
    let mut out = vec![0u8; wire::encoded_len(desc.segs.len(), has_addr, has_atomic)];
    out[0] = match desc.op {
        DescOp::Send => wire::OP_SEND,
        DescOp::Recv => wire::OP_RECV,
        DescOp::RdmaWrite => wire::OP_RDMA_WRITE,
        DescOp::RdmaRead => wire::OP_RDMA_READ,
        DescOp::AtomicCas => wire::OP_ATOMIC_CAS,
    };
    let nsegs =
        u16::try_from(desc.segs.len()).map_err(|_| ViaError::BadState("too many segments"))?;
    out[2..4].copy_from_slice(&nsegs.to_le_bytes());
    if let Some(imm) = desc.imm {
        out[4] = 1;
        out[8..12].copy_from_slice(&imm.to_le_bytes());
    }
    let mut off = wire::CTRL_SIZE;
    if let Some(r) = &desc.rdma {
        out[off..off + 4].copy_from_slice(&r.remote_mem.0.to_le_bytes());
        out[off + 8..off + 16].copy_from_slice(&r.remote_addr.to_le_bytes());
        off += wire::ADDR_SIZE;
    }
    if let Some((compare, swap)) = cas_ops {
        out[off..off + 8].copy_from_slice(&compare.to_le_bytes());
        out[off + 8..off + 16].copy_from_slice(&swap.to_le_bytes());
        off += wire::ATOMIC_SIZE;
    }
    for s in &desc.segs {
        out[off..off + 4].copy_from_slice(&s.mem.0.to_le_bytes());
        out[off + 4..off + 8].copy_from_slice(&(s.len as u32).to_le_bytes());
        out[off + 8..off + 16].copy_from_slice(&s.addr.to_le_bytes());
        off += wire::SEG_SIZE;
    }
    Ok(out)
}

/// Decode a wire-format descriptor.
pub fn decode(bytes: &[u8]) -> ViaResult<Descriptor> {
    if bytes.len() < wire::CTRL_SIZE {
        return Err(ViaError::BadState("short descriptor"));
    }
    let op = match bytes[0] {
        wire::OP_SEND => DescOp::Send,
        wire::OP_RECV => DescOp::Recv,
        wire::OP_RDMA_WRITE => DescOp::RdmaWrite,
        wire::OP_RDMA_READ => DescOp::RdmaRead,
        wire::OP_ATOMIC_CAS => DescOp::AtomicCas,
        _ => return Err(ViaError::BadState("bad opcode in descriptor")),
    };
    let nsegs = le_u16(bytes, 2) as usize;
    let imm = if bytes[4] == 1 {
        Some(le_u32(bytes, 8))
    } else {
        None
    };
    let has_addr = matches!(op, DescOp::RdmaWrite | DescOp::RdmaRead | DescOp::AtomicCas);
    let has_atomic = op == DescOp::AtomicCas;
    if bytes.len() < wire::encoded_len(nsegs, has_addr, has_atomic) {
        return Err(ViaError::BadState("truncated descriptor"));
    }
    let mut off = wire::CTRL_SIZE;
    let rdma = if has_addr {
        let mem = le_u32(bytes, off);
        let addr = le_u64(bytes, off + 8);
        off += wire::ADDR_SIZE;
        Some(RdmaSeg {
            remote_mem: MemId(mem),
            remote_addr: addr,
        })
    } else {
        None
    };
    let cas = if has_atomic {
        let compare = le_u64(bytes, off);
        let swap = le_u64(bytes, off + 8);
        off += wire::ATOMIC_SIZE;
        Some((compare, swap))
    } else {
        None
    };
    let mut segs = Vec::with_capacity(nsegs);
    for _ in 0..nsegs {
        let mem = le_u32(bytes, off);
        let len = le_u32(bytes, off + 4) as usize;
        let addr = le_u64(bytes, off + 8);
        segs.push(DataSeg {
            mem: MemId(mem),
            addr,
            len,
        });
        off += wire::SEG_SIZE;
    }
    Ok(Descriptor {
        op,
        segs,
        rdma,
        imm,
        cas,
        status: DescStatus::Pending,
        done_len: 0,
    })
}

/// Fixed descriptor-slot size in the ring (holds up to 6 data segments
/// plus an address segment).
pub const SLOT_SIZE: usize = 128;

/// A work-queue ring in registered user memory.
pub struct DescriptorRing {
    /// Registered region holding the ring.
    pub mem: MemId,
    /// Base user address of the ring.
    pub base: VirtAddr,
    /// Number of slots.
    pub slots: usize,
    /// Producer index (process side).
    head: u64,
    /// Consumer index (NIC side).
    tail: u64,
    /// The doorbell: outstanding descriptor count. In hardware this is a
    /// memory-mapped register; posting = incrementing.
    doorbell: u64,
    /// Scratch run list reused across descriptor fetches.
    runs: Vec<DmaRun>,
}

impl DescriptorRing {
    /// Create a ring over `[base, base + slots*SLOT_SIZE)` of a registered
    /// region. The region must cover the ring.
    pub fn new(mem: MemId, base: VirtAddr, slots: usize) -> Self {
        DescriptorRing {
            mem,
            base,
            slots,
            head: 0,
            tail: 0,
            doorbell: 0,
            runs: Vec::new(),
        }
    }

    /// Bytes the ring occupies.
    pub fn bytes(slots: usize) -> usize {
        slots * SLOT_SIZE
    }

    /// Process side: encode `desc` into the next free slot (CPU stores
    /// through the fault path) and ring the doorbell.
    pub fn post(
        &mut self,
        kernel: &mut Kernel,
        pid: simmem::Pid,
        desc: &Descriptor,
    ) -> ViaResult<()> {
        if self.doorbell as usize >= self.slots
            || kernel.inject(vialock::FaultSite::DoorbellOverflow.code())
        {
            return Err(ViaError::BadState("descriptor ring full"));
        }
        let bytes = encode(desc)?;
        if bytes.len() > SLOT_SIZE {
            return Err(ViaError::BadState("descriptor exceeds slot size"));
        }
        let slot = (self.head % self.slots as u64) as usize;
        let addr = self.base + (slot * SLOT_SIZE) as u64;
        kernel.write_user(pid, addr, &bytes)?;
        self.head += 1;
        self.doorbell += 1;
        Ok(())
    }

    /// [`DescriptorRing::post`] with bounded retry: a doorbell overflow is
    /// transient when the NIC is draining the ring concurrently (or the
    /// overflow was injected), so the send path retries up to `retries`
    /// times with exponentially growing backoff before surfacing the error.
    /// Returns the number of retries that were needed.
    pub fn post_with_retry(
        &mut self,
        kernel: &mut Kernel,
        pid: simmem::Pid,
        desc: &Descriptor,
        retries: u32,
    ) -> ViaResult<u32> {
        let mut attempt = 0u32;
        loop {
            match self.post(kernel, pid, desc) {
                Ok(()) => return Ok(attempt),
                Err(ViaError::BadState(msg))
                    if msg == "descriptor ring full" && attempt < retries =>
                {
                    attempt += 1;
                    // Model the backoff: each retry waits twice as long for
                    // the NIC to drain (accounted, not slept).
                    kernel.stats.backoff_ticks.add(1u64 << attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Outstanding descriptors (doorbell value).
    pub fn pending(&self) -> usize {
        self.doorbell as usize
    }

    /// NIC side: DMA-fetch and decode the next posted descriptor through
    /// the TPT. This is the extra DMA cycle of the VIA critical path.
    pub fn fetch_next(
        &mut self,
        kernel: &Kernel,
        tpt: &Tpt,
        tag: ProtectionTag,
    ) -> ViaResult<Option<Descriptor>> {
        if self.doorbell == 0 {
            return Ok(None);
        }
        let slot = (self.tail % self.slots as u64) as usize;
        let addr = self.base + (slot * SLOT_SIZE) as u64;
        let mut bytes = [0u8; SLOT_SIZE];
        // The slot may cross a page boundary inside the registered region;
        // translate_range hands back one run per contiguous stretch (one,
        // for a page-interior slot).
        self.runs.clear();
        tpt.translate_range(
            self.mem,
            addr,
            SLOT_SIZE,
            tag,
            Access::Local,
            &mut self.runs,
        )?;
        let mut read = 0usize;
        for run in &self.runs {
            kernel.dma_read_run(run.frame, run.offset, &mut bytes[read..read + run.len])?;
            read += run.len;
        }
        let desc = decode(&bytes)?;
        self.tail += 1;
        self.doorbell -= 1;
        Ok(Some(desc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::Node;
    use simmem::{prot, Capabilities, KernelConfig, PAGE_SIZE};
    use vialock::StrategyKind;

    #[test]
    fn wire_roundtrip_send() {
        let d = Descriptor::send(MemId(7), 0xABCD_1234, 999).with_imm(0xFEED);
        let e = encode(&d).unwrap();
        let back = decode(&e).unwrap();
        assert_eq!(back.op, DescOp::Send);
        assert_eq!(back.segs.len(), 1);
        assert_eq!(back.segs[0].mem, MemId(7));
        assert_eq!(back.segs[0].addr, 0xABCD_1234);
        assert_eq!(back.segs[0].len, 999);
        assert_eq!(back.imm, Some(0xFEED));
    }

    #[test]
    fn wire_roundtrip_rdma() {
        let d = Descriptor::rdma_write(MemId(1), 0x1000, 64, MemId(9), 0x9000);
        let back = decode(&encode(&d).unwrap()).unwrap();
        assert_eq!(back.op, DescOp::RdmaWrite);
        let r = back.rdma.unwrap();
        assert_eq!(r.remote_mem, MemId(9));
        assert_eq!(r.remote_addr, 0x9000);

        let d = Descriptor::rdma_read(MemId(2), 0x2000, 32, MemId(8), 0x8000);
        let back = decode(&encode(&d).unwrap()).unwrap();
        assert_eq!(back.op, DescOp::RdmaRead);
    }

    #[test]
    fn wire_roundtrip_multiseg() {
        let mut d = Descriptor::send(MemId(1), 0x1000, 10);
        d.segs.push(DataSeg {
            mem: MemId(2),
            addr: 0x2000,
            len: 20,
        });
        d.segs.push(DataSeg {
            mem: MemId(3),
            addr: 0x3000,
            len: 30,
        });
        let back = decode(&encode(&d).unwrap()).unwrap();
        assert_eq!(back.segs.len(), 3);
        assert_eq!(back.total_len(), 60);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[0u8; 4]).is_err());
        let mut bad = [0u8; wire::CTRL_SIZE];
        bad[0] = 99;
        assert!(decode(&bad).is_err());
    }

    fn ring_setup() -> (Node, simmem::Pid, DescriptorRing, ProtectionTag) {
        let mut node = Node::new(KernelConfig::small(), StrategyKind::KiobufReliable, 512);
        let pid = node.kernel.spawn_process(Capabilities::default());
        let tag = ProtectionTag(4);
        let slots = 8;
        let len = DescriptorRing::bytes(slots);
        let base = node
            .kernel
            .mmap_anon(pid, len, prot::READ | prot::WRITE)
            .unwrap();
        // The ring itself lives in registered memory, as the spec demands.
        let mem = node.register_mem(pid, base, len, tag).unwrap();
        (node, pid, DescriptorRing::new(mem, base, slots), tag)
    }

    #[test]
    fn post_and_fetch_through_dma() {
        let (mut node, pid, mut ring, tag) = ring_setup();
        let d = Descriptor::send(MemId(42), 0xAA00, 1234).with_imm(7);
        ring.post(&mut node.kernel, pid, &d).unwrap();
        assert_eq!(ring.pending(), 1);
        let got = ring
            .fetch_next(&node.kernel, &node.nic.tpt, tag)
            .unwrap()
            .expect("descriptor fetched");
        assert_eq!(got.segs[0].mem, MemId(42));
        assert_eq!(got.segs[0].len, 1234);
        assert_eq!(got.imm, Some(7));
        assert_eq!(ring.pending(), 0);
        assert!(ring
            .fetch_next(&node.kernel, &node.nic.tpt, tag)
            .unwrap()
            .is_none());
    }

    #[test]
    fn ring_wraps_and_fills() {
        let (mut node, pid, mut ring, tag) = ring_setup();
        // Fill completely.
        for i in 0..8u32 {
            ring.post(
                &mut node.kernel,
                pid,
                &Descriptor::send(MemId(i), 0, i as usize),
            )
            .unwrap();
        }
        assert!(matches!(
            ring.post(&mut node.kernel, pid, &Descriptor::send(MemId(9), 0, 9)),
            Err(ViaError::BadState(_))
        ));
        // Drain in order, refill past the wrap point.
        for i in 0..8u32 {
            let d = ring
                .fetch_next(&node.kernel, &node.nic.tpt, tag)
                .unwrap()
                .unwrap();
            assert_eq!(d.segs[0].mem, MemId(i));
        }
        for i in 100..104u32 {
            ring.post(&mut node.kernel, pid, &Descriptor::send(MemId(i), 0, 1))
                .unwrap();
        }
        for i in 100..104u32 {
            let d = ring
                .fetch_next(&node.kernel, &node.nic.tpt, tag)
                .unwrap()
                .unwrap();
            assert_eq!(d.segs[0].mem, MemId(i));
        }
    }

    #[test]
    fn stale_ring_registration_corrupts_descriptor_fetch() {
        // The reason descriptor memory must be pinned reliably too: with
        // refcount-only pinning, pressure moves the ring pages and the NIC
        // fetches garbage descriptors.
        let mut node = Node::new(
            KernelConfig {
                nframes: 128,
                reserved_frames: 8,
                swap_slots: 4096,
                default_rlimit_memlock: None,
                swap_cache: false,
            },
            StrategyKind::RefcountOnly,
            512,
        );
        let pid = node.kernel.spawn_process(Capabilities::default());
        let tag = ProtectionTag(4);
        let slots = 8;
        let len = DescriptorRing::bytes(slots);
        let base = node
            .kernel
            .mmap_anon(pid, len, prot::READ | prot::WRITE)
            .unwrap();
        let mem = node.register_mem(pid, base, len, tag).unwrap();
        let mut ring = DescriptorRing::new(mem, base, slots);

        // Evict the ring pages.
        let hog = node.kernel.spawn_process(Capabilities::default());
        let hb = node
            .kernel
            .mmap_anon(hog, 200 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        for i in 0..200 {
            let _ = node
                .kernel
                .write_user(hog, hb + (i * PAGE_SIZE) as u64, &[1u8; 8]);
        }

        // Post through the (refaulted) user mapping; the NIC fetches via
        // the stale TPT: the orphaned frame holds zeros → bad opcode.
        let d = Descriptor::send(MemId(5), 0x5000, 64);
        ring.post(&mut node.kernel, pid, &d).unwrap();
        let r = ring.fetch_next(&node.kernel, &node.nic.tpt, tag);
        assert!(
            matches!(r, Err(ViaError::BadState(_)) | Ok(None)),
            "descriptor fetch must not see the posted descriptor: {r:?}"
        );
    }
}
