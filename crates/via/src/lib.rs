//! # via — a Virtual Interface Architecture stack over the simulated kernel
//!
//! Models the VIA components the paper's mechanism serves (VIA spec 1.0,
//! Intel/Compaq/Microsoft 1997):
//!
//! * **Virtual Interfaces** ([`vi`]): pairs of send/receive work queues with
//!   doorbells, connected point-to-point;
//! * **descriptor processing** ([`descriptor`]): send/receive and RDMA-write
//!   descriptors with scatter/gather segments, completed through completion
//!   queues;
//! * the **Translation and Protection Table** ([`tpt`]): per-page physical
//!   frame + protection tag, filled at memory registration — the structure
//!   whose *staleness* under an unreliable pinning strategy is the paper's
//!   subject;
//! * the **kernel agent** ([`nic::Node::register_mem`]): registration traps
//!   that pin user memory via a configurable `vialock` strategy and fill the
//!   TPT;
//! * a **fabric** ([`system::ViaSystem`]): multiple nodes, each a simulated
//!   kernel plus NIC, exchanging packets; DMA is performed with the physical
//!   frame numbers stored in the TPT — never through page tables — so a
//!   page the VM moved under an unreliable strategy is silently missed,
//!   exactly as on real hardware.
//!
//! The [`vipl`] module exposes the familiar VIPL-style entry points
//! (`VipRegisterMem`, `VipPostSend`, …) as thin wrappers for the examples.
//!
//! ```
//! use via::system::ViaSystem;
//! use via::tpt::ProtectionTag;
//! use vialock::StrategyKind;
//! use simmem::{prot, KernelConfig, PAGE_SIZE};
//!
//! // Two nodes, one process each, a connected VI pair.
//! let mut sys = ViaSystem::new(2, KernelConfig::small(), StrategyKind::KiobufReliable);
//! let (pa, pb) = (sys.spawn_process(0), sys.spawn_process(1));
//! let tag = ProtectionTag(7);
//! let va = sys.create_vi(0, pa, tag).unwrap();
//! let vb = sys.create_vi(1, pb, tag).unwrap();
//! sys.connect((0, va), (1, vb)).unwrap();
//!
//! // Registered buffers on both sides.
//! let sbuf = sys.mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE).unwrap();
//! let rbuf = sys.mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE).unwrap();
//! sys.write_user(0, pa, sbuf, b"hello VIA").unwrap();
//! let sh = sys.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
//! let rh = sys.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
//!
//! // Receive must be pre-posted; then send, then pump the fabric.
//! sys.post_recv(1, vb, rh, rbuf, PAGE_SIZE).unwrap();
//! sys.post_send(0, va, sh, sbuf, 9).unwrap();
//! sys.pump().unwrap();
//!
//! let mut out = [0u8; 9];
//! sys.read_user(1, pb, rbuf, &mut out).unwrap();
//! assert_eq!(&out, b"hello VIA");
//! ```

pub mod atu;
pub mod descriptor;
pub mod error;
pub mod fabric;
pub mod nic;
pub mod ring;
pub mod spsc;
pub mod system;
pub mod threaded;
pub mod tpt;
pub mod vi;
pub mod vipl;

pub use descriptor::{DescOp, DescStatus, Descriptor};
pub use error::{ViaError, ViaResult};
pub use fabric::{Fabric, FabricNode, RegPort};
pub use nic::{Nic, NicStats, Node};
pub use system::{NodeId, ViaSystem};
pub use threaded::{ClusterBuilder, FabricStats, ThreadedCluster};
pub use tpt::{MemId, ProtectionTag, Tpt, TptEntry};
pub use vi::{Completion, ViId, ViState, VirtualInterface};
