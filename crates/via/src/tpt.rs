//! The Translation and Protection Table (TPT).
//!
//! At registration the kernel agent stores, for every page of the region,
//! the **physical frame number** and the owning process' **protection tag**
//! into the TPT on the NIC. From then on every DMA access translates
//! through this table: the NIC never sees the host page tables. That is why
//! an unreliably pinned page that the VM relocates leaves a *stale* TPT
//! entry — the failure mode the paper demonstrates.

use simmem::{FrameId, Pid, VirtAddr, PAGE_SIZE};

use crate::error::{ViaError, ViaResult};

/// VIA memory protection tag: processes receive a unique tag; VIs and
/// memory regions carry it; the NIC only allows accesses where they match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtectionTag(pub u32);

/// Handle naming a registered region on a particular NIC (the index the
/// VIPL hands back from `VipRegisterMem`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

/// The access class a translation is checked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Local descriptor access (gather/scatter, PIO): tag check only.
    Local,
    /// Remote RDMA write: tag check + the region's write-enable attribute.
    RdmaWrite,
    /// Remote RDMA read: tag check + the region's read-enable attribute.
    RdmaRead,
}

/// One TPT page entry.
#[derive(Debug, Clone, Copy)]
pub struct TptEntry {
    /// Backing physical frame. `None` marks a **non-resident** entry: an
    /// on-demand region page whose frame is not currently pinned. A DMA
    /// translation through such an entry raises
    /// [`ViaError::NotResident`] — the fault the kernel agent answers by
    /// lazy-pinning and installing the frame ([`Tpt::set_frame`]).
    pub frame: Option<FrameId>,
    pub tag: ProtectionTag,
    pub pid: Pid,
    /// RDMA-write enable attribute of the region.
    pub rdma_write: bool,
    /// RDMA-read enable attribute of the region.
    pub rdma_read: bool,
}

/// Region-level record: the slice of TPT slots belonging to one
/// registration.
#[derive(Debug, Clone)]
pub struct TptRegion {
    pub mem_id: MemId,
    /// The `vialock` handle backing this registration (deregistration path).
    pub reg_handle: vialock::MemHandle,
    pub pid: Pid,
    /// Original user address of the registration.
    pub user_addr: VirtAddr,
    /// Length in bytes.
    pub len: usize,
    /// Page-aligned base.
    pub page_base: VirtAddr,
    /// First TPT slot.
    pub first_slot: usize,
    /// Number of slots (pages).
    pub npages: usize,
    pub tag: ProtectionTag,
}

/// A maximal physically contiguous frame run inside a translated span: the
/// unit of burst DMA. `frame` is the first frame; the run continues through
/// physically consecutive frames for `len` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaRun {
    pub frame: FrameId,
    /// Byte offset within the first frame.
    pub offset: usize,
    /// Total bytes in the run (may cross any number of frame boundaries).
    pub len: usize,
}

/// Number of region descriptors a per-VI translation cache holds.
pub const TLB_WAYS: usize = 8;

#[derive(Debug, Clone, Copy)]
struct TlbSlot {
    mem: MemId,
    /// TPT generation the entry was filled at; any insert/remove since
    /// invalidates it.
    generation: u64,
    user_addr: VirtAddr,
    len: usize,
    page_base: VirtAddr,
    first_slot: usize,
    tag: ProtectionTag,
    rdma_write: bool,
    rdma_read: bool,
}

/// A per-VI mini-TLB over TPT *region descriptors*: a hit resolves bounds,
/// protection and the slot window without touching the region directory
/// (the `BTreeMap` walk real NICs avoid with their on-chip TLBs). Frames
/// are always read from the live TPT slots, so `poke_frame` staleness
/// injection stays visible; directory mutations invalidate via the TPT
/// generation counter.
#[derive(Debug, Default)]
pub struct TranslationCache {
    slots: [Option<TlbSlot>; TLB_WAYS],
}

impl TranslationCache {
    fn lookup(&self, mem: MemId, generation: u64) -> Option<&TlbSlot> {
        self.slots[mem.0 as usize % TLB_WAYS]
            .as_ref()
            .filter(|s| s.mem == mem && s.generation == generation)
    }

    fn fill(&mut self, slot: TlbSlot) {
        self.slots[slot.mem.0 as usize % TLB_WAYS] = Some(slot);
    }
}

/// The table itself: fixed-capacity slots plus the region directory.
pub struct Tpt {
    slots: Vec<Option<TptEntry>>,
    free: Vec<usize>,
    regions: std::collections::BTreeMap<MemId, TptRegion>,
    next_mem: u32,
    /// Bumped on every directory mutation; validates [`TranslationCache`]
    /// entries.
    generation: u64,
}

impl Tpt {
    /// A TPT with `capacity` page slots.
    pub fn new(capacity: usize) -> Self {
        Tpt {
            slots: vec![None; capacity],
            free: (0..capacity).rev().collect(),
            regions: Default::default(),
            next_mem: 1,
            generation: 0,
        }
    }

    /// Current directory generation (TLB validity stamp).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Free page slots remaining.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Fill slots for a freshly registered region. Slots need not be
    /// physically contiguous in a real TPT; for simplicity (and O(1)
    /// lookup) we demand a contiguous run here and compact lazily via the
    /// free stack. Eager strategies pass every frame as `Some`; on-demand
    /// regions pass `None` for pages that start non-resident.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_region(
        &mut self,
        reg_handle: vialock::MemHandle,
        pid: Pid,
        user_addr: VirtAddr,
        len: usize,
        frames: &[Option<FrameId>],
        tag: ProtectionTag,
        rdma_write: bool,
        rdma_read: bool,
    ) -> ViaResult<MemId> {
        let npages = frames.len();
        if self.free.len() < npages {
            return Err(ViaError::Reg(vialock::RegError::LimitExceeded));
        }
        // Find a contiguous run of free slots (first-fit scan).
        let first_slot = self.find_contiguous(npages)?;
        for (i, &frame) in frames.iter().enumerate() {
            let slot = first_slot + i;
            debug_assert!(self.slots[slot].is_none());
            self.slots[slot] = Some(TptEntry {
                frame,
                tag,
                pid,
                rdma_write,
                rdma_read,
            });
        }
        self.free
            .retain(|&s| !(first_slot..first_slot + npages).contains(&s));
        let mem_id = MemId(self.next_mem);
        self.next_mem += 1;
        self.generation += 1;
        self.regions.insert(
            mem_id,
            TptRegion {
                mem_id,
                reg_handle,
                pid,
                user_addr,
                len,
                page_base: simmem::page_base(user_addr),
                first_slot,
                npages,
                tag,
            },
        );
        Ok(mem_id)
    }

    fn find_contiguous(&self, npages: usize) -> ViaResult<usize> {
        let mut run = 0usize;
        for (i, s) in self.slots.iter().enumerate() {
            if s.is_none() {
                run += 1;
                if run == npages {
                    return Ok(i + 1 - npages);
                }
            } else {
                run = 0;
            }
        }
        Err(ViaError::Reg(vialock::RegError::LimitExceeded))
    }

    /// Remove a region's slots; returns the record for the kernel agent to
    /// unpin through `vialock`.
    pub fn remove_region(&mut self, mem_id: MemId) -> ViaResult<TptRegion> {
        let region = self
            .regions
            .remove(&mem_id)
            .ok_or(ViaError::BadId("memory"))?;
        for slot in region.first_slot..region.first_slot + region.npages {
            self.slots[slot] = None;
            self.free.push(slot);
        }
        self.generation += 1;
        Ok(region)
    }

    /// Region record lookup.
    pub fn region(&self, mem_id: MemId) -> ViaResult<&TptRegion> {
        self.regions.get(&mem_id).ok_or(ViaError::BadId("memory"))
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Ids of every region owned by `pid` (the exit-time teardown walk).
    pub fn region_ids_for_pid(&self, pid: Pid) -> Vec<MemId> {
        self.regions
            .values()
            .filter(|r| r.pid == pid)
            .map(|r| r.mem_id)
            .collect()
    }

    /// Occupied page slots.
    pub fn used_slots(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total page-slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The NIC-side address translation: `(mem_id, user virtual addr)` →
    /// `(physical frame, in-page offset)`, with bounds and protection-tag
    /// checks. `want_tag` is the requesting VI's tag; RDMA accesses
    /// additionally require the region's matching enable attribute.
    pub fn translate(
        &self,
        mem_id: MemId,
        addr: VirtAddr,
        want_tag: ProtectionTag,
        access: Access,
    ) -> ViaResult<(FrameId, usize)> {
        let region = self.region(mem_id)?;
        if addr < region.user_addr || addr >= region.user_addr + region.len as u64 {
            return Err(ViaError::OutOfBounds);
        }
        let page_index = ((addr - region.page_base) / PAGE_SIZE as u64) as usize;
        let entry = self.slots[region.first_slot + page_index]
            .as_ref()
            .expect("region slots are filled");
        if entry.tag != want_tag {
            return Err(ViaError::ProtectionMismatch);
        }
        match access {
            Access::Local => {}
            Access::RdmaWrite if !entry.rdma_write => return Err(ViaError::RdmaDisabled),
            Access::RdmaRead if !entry.rdma_read => return Err(ViaError::RdmaDisabled),
            _ => {}
        }
        let frame = entry
            .frame
            .ok_or(ViaError::NotResident { page: page_index })?;
        Ok((frame, (addr & (PAGE_SIZE as u64 - 1)) as usize))
    }

    /// Resolve `[addr, addr+len)` of a region into maximal physically
    /// contiguous frame runs, appended to `out`. Bounds, protection-tag and
    /// RDMA-attribute checks run **once per span**, not once per page; the
    /// caller then issues one burst DMA per run.
    pub fn translate_range(
        &self,
        mem_id: MemId,
        addr: VirtAddr,
        len: usize,
        want_tag: ProtectionTag,
        access: Access,
        out: &mut Vec<DmaRun>,
    ) -> ViaResult<()> {
        let region = self.region(mem_id)?;
        self.resolve_runs(
            region.user_addr,
            region.len,
            region.page_base,
            region.first_slot,
            region.tag,
            addr,
            len,
            want_tag,
            access,
            out,
        )
    }

    /// [`Tpt::translate_range`] through a per-VI [`TranslationCache`]: a
    /// hit skips the region-directory lookup entirely. Returns `true` on a
    /// TLB hit, `false` on a miss (the entry is filled for next time).
    #[allow(clippy::too_many_arguments)]
    pub fn translate_range_tlb(
        &self,
        tlb: &mut TranslationCache,
        mem_id: MemId,
        addr: VirtAddr,
        len: usize,
        want_tag: ProtectionTag,
        access: Access,
        out: &mut Vec<DmaRun>,
    ) -> ViaResult<bool> {
        if let Some(e) = tlb.lookup(mem_id, self.generation) {
            let (user_addr, rlen, page_base, first_slot, tag) =
                (e.user_addr, e.len, e.page_base, e.first_slot, e.tag);
            // Attribute checks against the cached descriptor.
            match access {
                Access::Local => {}
                Access::RdmaWrite if !e.rdma_write => return Err(ViaError::RdmaDisabled),
                Access::RdmaRead if !e.rdma_read => return Err(ViaError::RdmaDisabled),
                _ => {}
            }
            self.resolve_runs(
                user_addr,
                rlen,
                page_base,
                first_slot,
                tag,
                addr,
                len,
                want_tag,
                Access::Local, // attributes already checked above
                out,
            )?;
            return Ok(true);
        }
        let region = self.region(mem_id)?;
        // Region attributes are uniform across its slots; cache them from
        // the first entry.
        let entry = self.slots[region.first_slot]
            .as_ref()
            .expect("region slots are filled");
        let slot = TlbSlot {
            mem: mem_id,
            generation: self.generation,
            user_addr: region.user_addr,
            len: region.len,
            page_base: region.page_base,
            first_slot: region.first_slot,
            tag: region.tag,
            rdma_write: entry.rdma_write,
            rdma_read: entry.rdma_read,
        };
        self.resolve_runs(
            region.user_addr,
            region.len,
            region.page_base,
            region.first_slot,
            region.tag,
            addr,
            len,
            want_tag,
            access,
            out,
        )?;
        tlb.fill(slot);
        Ok(false)
    }

    /// Shared core of the range translators: span checks once, then a
    /// slot walk that coalesces physically consecutive frames.
    #[allow(clippy::too_many_arguments)]
    fn resolve_runs(
        &self,
        region_addr: VirtAddr,
        region_len: usize,
        page_base: VirtAddr,
        first_slot: usize,
        region_tag: ProtectionTag,
        addr: VirtAddr,
        len: usize,
        want_tag: ProtectionTag,
        access: Access,
        out: &mut Vec<DmaRun>,
    ) -> ViaResult<()> {
        if len == 0 {
            return Ok(());
        }
        if addr < region_addr || addr + len as u64 > region_addr + region_len as u64 {
            return Err(ViaError::OutOfBounds);
        }
        if region_tag != want_tag {
            return Err(ViaError::ProtectionMismatch);
        }
        let first_page = ((addr - page_base) / PAGE_SIZE as u64) as usize;
        let last_page = ((addr + len as u64 - 1 - page_base) / PAGE_SIZE as u64) as usize;
        let first_entry = self.slots[first_slot + first_page]
            .as_ref()
            .expect("region slots are filled");
        match access {
            Access::Local => {}
            Access::RdmaWrite if !first_entry.rdma_write => return Err(ViaError::RdmaDisabled),
            Access::RdmaRead if !first_entry.rdma_read => return Err(ViaError::RdmaDisabled),
            _ => {}
        }
        let mut run_frame = first_entry
            .frame
            .ok_or(ViaError::NotResident { page: first_page })?;
        let mut run_offset = (addr & (PAGE_SIZE as u64 - 1)) as usize;
        // Bytes of the span covered by each page: the first and last pages
        // may be partial.
        let mut run_len = 0usize;
        let mut prev_frame = run_frame;
        let mut remaining = len;
        for page in first_page..=last_page {
            let covered = if page == first_page {
                remaining.min(PAGE_SIZE - run_offset)
            } else {
                remaining.min(PAGE_SIZE)
            };
            let frame = self.slots[first_slot + page]
                .as_ref()
                .expect("region slots are filled")
                .frame
                .ok_or(ViaError::NotResident { page })?;
            if page > first_page && frame.0 != prev_frame.0 + 1 {
                // Physical discontinuity: close the current run.
                out.push(DmaRun {
                    frame: run_frame,
                    offset: run_offset,
                    len: run_len,
                });
                run_frame = frame;
                run_offset = 0;
                run_len = 0;
            }
            run_len += covered;
            remaining -= covered;
            prev_frame = frame;
        }
        out.push(DmaRun {
            frame: run_frame,
            offset: run_offset,
            len: run_len,
        });
        Ok(())
    }

    /// Overwrite the frame stored for one page of a region (test hook used
    /// to model TPT staleness injection).
    #[doc(hidden)]
    pub fn poke_frame(&mut self, mem_id: MemId, page: usize, frame: FrameId) -> ViaResult<()> {
        let region = self.region(mem_id)?.clone();
        if page >= region.npages {
            return Err(ViaError::OutOfBounds);
        }
        self.slots[region.first_slot + page]
            .as_mut()
            .expect("filled")
            .frame = Some(frame);
        Ok(())
    }

    /// Install the frame for one page of a region after an on-demand repin.
    /// Bumps the generation so per-VI TLB descriptors cached before the
    /// residency change are refetched — the repin side of the TPT
    /// generation protocol.
    pub fn set_frame(&mut self, mem_id: MemId, page: usize, frame: FrameId) -> ViaResult<()> {
        let (first_slot, npages) = {
            let r = self.region(mem_id)?;
            (r.first_slot, r.npages)
        };
        if page >= npages {
            return Err(ViaError::OutOfBounds);
        }
        match self.slots[first_slot + page].as_mut() {
            Some(e) => e.frame = Some(frame),
            None => return Err(ViaError::BadId("memory")),
        }
        self.generation += 1;
        Ok(())
    }

    /// Mark every TPT entry backed by `frame` non-resident — the pull-based
    /// unpin → TPT coherence edge: the page stealer dissolved a lazy pin
    /// and the kernel queued the frame for invalidation; the kernel agent
    /// drains that queue into this call before the NIC translates again.
    /// Bumps the generation (when anything changed) so TLB-cached
    /// descriptors are refetched. Returns the number of entries
    /// invalidated.
    pub fn invalidate_frame(&mut self, frame: FrameId) -> usize {
        let mut n = 0usize;
        for slot in self.slots.iter_mut().flatten() {
            if slot.frame == Some(frame) {
                slot.frame = None;
                n += 1;
            }
        }
        if n > 0 {
            self.generation += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_tpt() -> (Tpt, MemId) {
        let mut t = Tpt::new(16);
        let id = t
            .insert_region(
                vialock::MemHandle(1),
                Pid(1),
                0x1000 + 50,
                2 * PAGE_SIZE,
                &[FrameId(100), FrameId(101), FrameId(102)].map(Some),
                ProtectionTag(7),
                true,
                false,
            )
            .unwrap();
        (t, id)
    }

    #[test]
    fn translate_checks_bounds_and_tags() {
        let (t, id) = mk_tpt();
        let (f, off) = t
            .translate(id, 0x1000 + 50, ProtectionTag(7), Access::Local)
            .unwrap();
        assert_eq!((f, off), (FrameId(100), 50));
        // Cross into second page.
        let (f, _) = t
            .translate(
                id,
                0x1000 + PAGE_SIZE as u64 + 1,
                ProtectionTag(7),
                Access::Local,
            )
            .unwrap();
        assert_eq!(f, FrameId(101));
        // Below and beyond the region.
        assert_eq!(
            t.translate(id, 0x1000, ProtectionTag(7), Access::Local),
            Err(ViaError::OutOfBounds)
        );
        assert_eq!(
            t.translate(
                id,
                0x1000 + 50 + 2 * PAGE_SIZE as u64,
                ProtectionTag(7),
                Access::Local
            ),
            Err(ViaError::OutOfBounds)
        );
        // Wrong tag.
        assert_eq!(
            t.translate(id, 0x1000 + 50, ProtectionTag(8), Access::Local),
            Err(ViaError::ProtectionMismatch)
        );
    }

    #[test]
    fn rdma_attribute_enforced() {
        let mut t = Tpt::new(8);
        let id = t
            .insert_region(
                vialock::MemHandle(2),
                Pid(1),
                0x4000,
                PAGE_SIZE,
                &[Some(FrameId(5))],
                ProtectionTag(1),
                false,
                false,
            )
            .unwrap();
        assert_eq!(
            t.translate(id, 0x4000, ProtectionTag(1), Access::RdmaWrite),
            Err(ViaError::RdmaDisabled)
        );
        assert_eq!(
            t.translate(id, 0x4000, ProtectionTag(1), Access::RdmaRead),
            Err(ViaError::RdmaDisabled)
        );
        assert!(t
            .translate(id, 0x4000, ProtectionTag(1), Access::Local)
            .is_ok());
    }

    #[test]
    fn capacity_and_reuse() {
        let mut t = Tpt::new(4);
        let frames = [FrameId(1), FrameId(2), FrameId(3)];
        let id = t
            .insert_region(
                vialock::MemHandle(1),
                Pid(1),
                0x1000,
                3 * PAGE_SIZE,
                &frames.map(Some),
                ProtectionTag(1),
                false,
                false,
            )
            .unwrap();
        // Only one slot left: a 2-page region must fail.
        assert!(t
            .insert_region(
                vialock::MemHandle(2),
                Pid(1),
                0x9000,
                2 * PAGE_SIZE,
                &[FrameId(4), FrameId(5)].map(Some),
                ProtectionTag(1),
                false,
                false,
            )
            .is_err());
        t.remove_region(id).unwrap();
        assert_eq!(t.free_slots(), 4);
        assert!(t
            .insert_region(
                vialock::MemHandle(3),
                Pid(1),
                0x9000,
                4 * PAGE_SIZE,
                &[FrameId(4), FrameId(5), FrameId(6), FrameId(7)].map(Some),
                ProtectionTag(1),
                false,
                false,
            )
            .is_ok());
    }

    #[test]
    fn remove_unknown_region() {
        let mut t = Tpt::new(4);
        assert!(t.remove_region(MemId(9)).is_err());
    }

    #[test]
    fn translate_range_coalesces_contiguous_frames() {
        let mut t = Tpt::new(16);
        // Frames 100,101,102 contiguous; then a gap; then 200.
        let id = t
            .insert_region(
                vialock::MemHandle(1),
                Pid(1),
                0x1000,
                4 * PAGE_SIZE,
                &[FrameId(100), FrameId(101), FrameId(102), FrameId(200)].map(Some),
                ProtectionTag(7),
                true,
                false,
            )
            .unwrap();
        let mut runs = Vec::new();
        t.translate_range(
            id,
            0x1000 + 10,
            3 * PAGE_SIZE,
            ProtectionTag(7),
            Access::Local,
            &mut runs,
        )
        .unwrap();
        // 10..3*PAGE+10 spans pages 0..3: one run over 100..102 (ending 10
        // bytes into frame 102's successor — no: 3*PAGE bytes from offset 10
        // covers pages 0,1,2,3) then the discontiguous 200.
        assert_eq!(
            runs,
            vec![
                DmaRun {
                    frame: FrameId(100),
                    offset: 10,
                    len: 3 * PAGE_SIZE - 10
                },
                DmaRun {
                    frame: FrameId(200),
                    offset: 0,
                    len: 10
                },
            ]
        );
        let total: usize = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 3 * PAGE_SIZE);

        // Same result as per-page translate, page by page.
        let (f, off) = t
            .translate(id, 0x1000 + 10, ProtectionTag(7), Access::Local)
            .unwrap();
        assert_eq!((f, off), (FrameId(100), 10));

        // Bounds and tag still enforced, now span-wide.
        assert_eq!(
            t.translate_range(
                id,
                0x1000 + PAGE_SIZE as u64,
                4 * PAGE_SIZE,
                ProtectionTag(7),
                Access::Local,
                &mut runs
            ),
            Err(ViaError::OutOfBounds)
        );
        assert_eq!(
            t.translate_range(
                id,
                0x1000,
                PAGE_SIZE,
                ProtectionTag(8),
                Access::Local,
                &mut runs
            ),
            Err(ViaError::ProtectionMismatch)
        );
        assert_eq!(
            t.translate_range(
                id,
                0x1000,
                PAGE_SIZE,
                ProtectionTag(7),
                Access::RdmaRead,
                &mut runs
            ),
            Err(ViaError::RdmaDisabled)
        );
    }

    #[test]
    fn tlb_hits_and_generation_invalidation() {
        let mut t = Tpt::new(16);
        let id = t
            .insert_region(
                vialock::MemHandle(1),
                Pid(1),
                0x1000,
                2 * PAGE_SIZE,
                &[FrameId(5), FrameId(6)].map(Some),
                ProtectionTag(1),
                true,
                false,
            )
            .unwrap();
        let mut tlb = TranslationCache::default();
        let mut runs = Vec::new();
        let hit = t
            .translate_range_tlb(
                &mut tlb,
                id,
                0x1000,
                64,
                ProtectionTag(1),
                Access::Local,
                &mut runs,
            )
            .unwrap();
        assert!(!hit, "first access misses");
        runs.clear();
        let hit = t
            .translate_range_tlb(
                &mut tlb,
                id,
                0x1000 + 100,
                PAGE_SIZE,
                ProtectionTag(1),
                Access::Local,
                &mut runs,
            )
            .unwrap();
        assert!(hit, "second access hits");
        assert_eq!(runs[0].frame, FrameId(5));
        // Attribute checks still enforced on the hit path.
        assert_eq!(
            t.translate_range_tlb(
                &mut tlb,
                id,
                0x1000,
                64,
                ProtectionTag(1),
                Access::RdmaRead,
                &mut runs
            ),
            Err(ViaError::RdmaDisabled)
        );
        // A directory mutation invalidates the cached descriptor.
        let id2 = t
            .insert_region(
                vialock::MemHandle(2),
                Pid(1),
                0x9000,
                PAGE_SIZE,
                &[Some(FrameId(9))],
                ProtectionTag(1),
                true,
                false,
            )
            .unwrap();
        runs.clear();
        let hit = t
            .translate_range_tlb(
                &mut tlb,
                id,
                0x1000,
                64,
                ProtectionTag(1),
                Access::Local,
                &mut runs,
            )
            .unwrap();
        assert!(!hit, "generation bump invalidates");
        // A removed region misses and then errors.
        t.remove_region(id2).unwrap();
        runs.clear();
        assert!(matches!(
            t.translate_range_tlb(
                &mut tlb,
                id2,
                0x9000,
                8,
                ProtectionTag(1),
                Access::Local,
                &mut runs
            ),
            Err(ViaError::BadId(_))
        ));
        // Frames are read live: poke_frame staleness shows up through a TLB
        // hit (no generation bump — the directory did not change).
        runs.clear();
        t.translate_range_tlb(
            &mut tlb,
            id,
            0x1000,
            64,
            ProtectionTag(1),
            Access::Local,
            &mut runs,
        )
        .unwrap();
        t.poke_frame(id, 0, FrameId(12)).unwrap();
        runs.clear();
        let hit = t
            .translate_range_tlb(
                &mut tlb,
                id,
                0x1000,
                64,
                ProtectionTag(1),
                Access::Local,
                &mut runs,
            )
            .unwrap();
        assert!(hit);
        assert_eq!(runs[0].frame, FrameId(12), "poked frame visible via TLB");
    }

    #[test]
    fn non_resident_entries_fault_typed_and_repin_bumps_generation() {
        let mut t = Tpt::new(16);
        // An on-demand region: page 1 of 3 starts non-resident.
        let id = t
            .insert_region(
                vialock::MemHandle(1),
                Pid(1),
                0x1000,
                3 * PAGE_SIZE,
                &[Some(FrameId(50)), None, Some(FrameId(52))],
                ProtectionTag(1),
                true,
                false,
            )
            .unwrap();
        // Resident pages translate; the hole faults with its page index.
        assert!(t
            .translate(id, 0x1000, ProtectionTag(1), Access::Local)
            .is_ok());
        assert_eq!(
            t.translate(
                id,
                0x1000 + PAGE_SIZE as u64,
                ProtectionTag(1),
                Access::Local
            ),
            Err(ViaError::NotResident { page: 1 })
        );
        let mut runs = Vec::new();
        assert_eq!(
            t.translate_range(
                id,
                0x1000,
                3 * PAGE_SIZE,
                ProtectionTag(1),
                Access::Local,
                &mut runs
            ),
            Err(ViaError::NotResident { page: 1 })
        );
        // Repin installs the frame and bumps the generation (TLB flush).
        let g = t.generation();
        t.set_frame(id, 1, FrameId(51)).unwrap();
        assert!(t.generation() > g);
        runs.clear();
        t.translate_range(
            id,
            0x1000,
            3 * PAGE_SIZE,
            ProtectionTag(1),
            Access::Local,
            &mut runs,
        )
        .unwrap();
        assert_eq!(runs.len(), 1, "50,51,52 coalesce once resident");
        // Pressure unpin: the frame's entries go non-resident again.
        let g = t.generation();
        assert_eq!(t.invalidate_frame(FrameId(51)), 1);
        assert!(t.generation() > g);
        assert_eq!(
            t.invalidate_frame(FrameId(51)),
            0,
            "second drain is a no-op"
        );
        assert_eq!(
            t.translate(
                id,
                0x1000 + PAGE_SIZE as u64,
                ProtectionTag(1),
                Access::Local
            ),
            Err(ViaError::NotResident { page: 1 })
        );
        // Out-of-span repin refused.
        assert_eq!(t.set_frame(id, 3, FrameId(9)), Err(ViaError::OutOfBounds));
    }
}
