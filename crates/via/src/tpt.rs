//! The Translation and Protection Table (TPT).
//!
//! At registration the kernel agent stores, for every page of the region,
//! the **physical frame number** and the owning process' **protection tag**
//! into the TPT on the NIC. From then on every DMA access translates
//! through this table: the NIC never sees the host page tables. That is why
//! an unreliably pinned page that the VM relocates leaves a *stale* TPT
//! entry — the failure mode the paper demonstrates.

use simmem::{FrameId, Pid, VirtAddr, PAGE_SIZE};

use crate::error::{ViaError, ViaResult};

/// VIA memory protection tag: processes receive a unique tag; VIs and
/// memory regions carry it; the NIC only allows accesses where they match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtectionTag(pub u32);

/// Handle naming a registered region on a particular NIC (the index the
/// VIPL hands back from `VipRegisterMem`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

/// The access class a translation is checked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Local descriptor access (gather/scatter, PIO): tag check only.
    Local,
    /// Remote RDMA write: tag check + the region's write-enable attribute.
    RdmaWrite,
    /// Remote RDMA read: tag check + the region's read-enable attribute.
    RdmaRead,
}

/// One TPT page entry.
#[derive(Debug, Clone, Copy)]
pub struct TptEntry {
    pub frame: FrameId,
    pub tag: ProtectionTag,
    pub pid: Pid,
    /// RDMA-write enable attribute of the region.
    pub rdma_write: bool,
    /// RDMA-read enable attribute of the region.
    pub rdma_read: bool,
}

/// Region-level record: the slice of TPT slots belonging to one
/// registration.
#[derive(Debug, Clone)]
pub struct TptRegion {
    pub mem_id: MemId,
    /// The `vialock` handle backing this registration (deregistration path).
    pub reg_handle: vialock::MemHandle,
    pub pid: Pid,
    /// Original user address of the registration.
    pub user_addr: VirtAddr,
    /// Length in bytes.
    pub len: usize,
    /// Page-aligned base.
    pub page_base: VirtAddr,
    /// First TPT slot.
    pub first_slot: usize,
    /// Number of slots (pages).
    pub npages: usize,
    pub tag: ProtectionTag,
}

/// The table itself: fixed-capacity slots plus the region directory.
pub struct Tpt {
    slots: Vec<Option<TptEntry>>,
    free: Vec<usize>,
    regions: std::collections::BTreeMap<MemId, TptRegion>,
    next_mem: u32,
}

impl Tpt {
    /// A TPT with `capacity` page slots.
    pub fn new(capacity: usize) -> Self {
        Tpt {
            slots: vec![None; capacity],
            free: (0..capacity).rev().collect(),
            regions: Default::default(),
            next_mem: 1,
        }
    }

    /// Free page slots remaining.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Fill slots for a freshly pinned region. Slots need not be physically
    /// contiguous in a real TPT; for simplicity (and O(1) lookup) we demand
    /// a contiguous run here and compact lazily via the free stack.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_region(
        &mut self,
        reg_handle: vialock::MemHandle,
        pid: Pid,
        user_addr: VirtAddr,
        len: usize,
        frames: &[FrameId],
        tag: ProtectionTag,
        rdma_write: bool,
        rdma_read: bool,
    ) -> ViaResult<MemId> {
        let npages = frames.len();
        if self.free.len() < npages {
            return Err(ViaError::Reg(vialock::RegError::LimitExceeded));
        }
        // Find a contiguous run of free slots (first-fit scan).
        let first_slot = self.find_contiguous(npages)?;
        for (i, &frame) in frames.iter().enumerate() {
            let slot = first_slot + i;
            debug_assert!(self.slots[slot].is_none());
            self.slots[slot] = Some(TptEntry {
                frame,
                tag,
                pid,
                rdma_write,
                rdma_read,
            });
        }
        self.free
            .retain(|&s| !(first_slot..first_slot + npages).contains(&s));
        let mem_id = MemId(self.next_mem);
        self.next_mem += 1;
        self.regions.insert(
            mem_id,
            TptRegion {
                mem_id,
                reg_handle,
                pid,
                user_addr,
                len,
                page_base: simmem::page_base(user_addr),
                first_slot,
                npages,
                tag,
            },
        );
        Ok(mem_id)
    }

    fn find_contiguous(&self, npages: usize) -> ViaResult<usize> {
        let mut run = 0usize;
        for (i, s) in self.slots.iter().enumerate() {
            if s.is_none() {
                run += 1;
                if run == npages {
                    return Ok(i + 1 - npages);
                }
            } else {
                run = 0;
            }
        }
        Err(ViaError::Reg(vialock::RegError::LimitExceeded))
    }

    /// Remove a region's slots; returns the record for the kernel agent to
    /// unpin through `vialock`.
    pub fn remove_region(&mut self, mem_id: MemId) -> ViaResult<TptRegion> {
        let region = self
            .regions
            .remove(&mem_id)
            .ok_or(ViaError::BadId("memory"))?;
        for slot in region.first_slot..region.first_slot + region.npages {
            self.slots[slot] = None;
            self.free.push(slot);
        }
        Ok(region)
    }

    /// Region record lookup.
    pub fn region(&self, mem_id: MemId) -> ViaResult<&TptRegion> {
        self.regions.get(&mem_id).ok_or(ViaError::BadId("memory"))
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The NIC-side address translation: `(mem_id, user virtual addr)` →
    /// `(physical frame, in-page offset)`, with bounds and protection-tag
    /// checks. `want_tag` is the requesting VI's tag; RDMA accesses
    /// additionally require the region's matching enable attribute.
    pub fn translate(
        &self,
        mem_id: MemId,
        addr: VirtAddr,
        want_tag: ProtectionTag,
        access: Access,
    ) -> ViaResult<(FrameId, usize)> {
        let region = self.region(mem_id)?;
        if addr < region.user_addr || addr >= region.user_addr + region.len as u64 {
            return Err(ViaError::OutOfBounds);
        }
        let page_index = ((addr - region.page_base) / PAGE_SIZE as u64) as usize;
        let entry = self.slots[region.first_slot + page_index]
            .as_ref()
            .expect("region slots are filled");
        if entry.tag != want_tag {
            return Err(ViaError::ProtectionMismatch);
        }
        match access {
            Access::Local => {}
            Access::RdmaWrite if !entry.rdma_write => return Err(ViaError::RdmaDisabled),
            Access::RdmaRead if !entry.rdma_read => return Err(ViaError::RdmaDisabled),
            _ => {}
        }
        Ok((entry.frame, (addr & (PAGE_SIZE as u64 - 1)) as usize))
    }

    /// Overwrite the frame stored for one page of a region (test hook used
    /// to model TPT staleness injection).
    #[doc(hidden)]
    pub fn poke_frame(&mut self, mem_id: MemId, page: usize, frame: FrameId) -> ViaResult<()> {
        let region = self.region(mem_id)?.clone();
        if page >= region.npages {
            return Err(ViaError::OutOfBounds);
        }
        self.slots[region.first_slot + page]
            .as_mut()
            .expect("filled")
            .frame = frame;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_tpt() -> (Tpt, MemId) {
        let mut t = Tpt::new(16);
        let id = t
            .insert_region(
                vialock::MemHandle(1),
                Pid(1),
                0x1000 + 50,
                2 * PAGE_SIZE,
                &[FrameId(100), FrameId(101), FrameId(102)],
                ProtectionTag(7),
                true,
                false,
            )
            .unwrap();
        (t, id)
    }

    #[test]
    fn translate_checks_bounds_and_tags() {
        let (t, id) = mk_tpt();
        let (f, off) = t
            .translate(id, 0x1000 + 50, ProtectionTag(7), Access::Local)
            .unwrap();
        assert_eq!((f, off), (FrameId(100), 50));
        // Cross into second page.
        let (f, _) = t
            .translate(
                id,
                0x1000 + PAGE_SIZE as u64 + 1,
                ProtectionTag(7),
                Access::Local,
            )
            .unwrap();
        assert_eq!(f, FrameId(101));
        // Below and beyond the region.
        assert_eq!(
            t.translate(id, 0x1000, ProtectionTag(7), Access::Local),
            Err(ViaError::OutOfBounds)
        );
        assert_eq!(
            t.translate(
                id,
                0x1000 + 50 + 2 * PAGE_SIZE as u64,
                ProtectionTag(7),
                Access::Local
            ),
            Err(ViaError::OutOfBounds)
        );
        // Wrong tag.
        assert_eq!(
            t.translate(id, 0x1000 + 50, ProtectionTag(8), Access::Local),
            Err(ViaError::ProtectionMismatch)
        );
    }

    #[test]
    fn rdma_attribute_enforced() {
        let mut t = Tpt::new(8);
        let id = t
            .insert_region(
                vialock::MemHandle(2),
                Pid(1),
                0x4000,
                PAGE_SIZE,
                &[FrameId(5)],
                ProtectionTag(1),
                false,
                false,
            )
            .unwrap();
        assert_eq!(
            t.translate(id, 0x4000, ProtectionTag(1), Access::RdmaWrite),
            Err(ViaError::RdmaDisabled)
        );
        assert_eq!(
            t.translate(id, 0x4000, ProtectionTag(1), Access::RdmaRead),
            Err(ViaError::RdmaDisabled)
        );
        assert!(t
            .translate(id, 0x4000, ProtectionTag(1), Access::Local)
            .is_ok());
    }

    #[test]
    fn capacity_and_reuse() {
        let mut t = Tpt::new(4);
        let frames = [FrameId(1), FrameId(2), FrameId(3)];
        let id = t
            .insert_region(
                vialock::MemHandle(1),
                Pid(1),
                0x1000,
                3 * PAGE_SIZE,
                &frames,
                ProtectionTag(1),
                false,
                false,
            )
            .unwrap();
        // Only one slot left: a 2-page region must fail.
        assert!(t
            .insert_region(
                vialock::MemHandle(2),
                Pid(1),
                0x9000,
                2 * PAGE_SIZE,
                &[FrameId(4), FrameId(5)],
                ProtectionTag(1),
                false,
                false,
            )
            .is_err());
        t.remove_region(id).unwrap();
        assert_eq!(t.free_slots(), 4);
        assert!(t
            .insert_region(
                vialock::MemHandle(3),
                Pid(1),
                0x9000,
                4 * PAGE_SIZE,
                &[FrameId(4), FrameId(5), FrameId(6), FrameId(7)],
                ProtectionTag(1),
                false,
                false,
            )
            .is_ok());
    }

    #[test]
    fn remove_unknown_region() {
        let mut t = Tpt::new(4);
        assert!(t.remove_region(MemId(9)).is_err());
    }
}
