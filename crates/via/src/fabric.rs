//! The [`Fabric`] abstraction: one surface, two fabrics.
//!
//! Everything above the NIC — the message layer, the collectives, the
//! workload drivers, the chaos harness — talks to a cluster through this
//! trait, so the same code runs on either implementation:
//!
//! * [`crate::ViaSystem`] — the deterministic fabric: every node lives on
//!   the caller's thread, [`Fabric::pump`] drains the whole cluster to
//!   quiescence in FIFO order. Reproducible to the packet; the fabric of
//!   choice for invariant checks and seeded chaos sweeps.
//! * [`crate::ThreadedCluster`] — the concurrency-faithful fabric: one OS
//!   thread per node, MPSC mailboxes between them, real interleavings. The
//!   fabric of choice for racing registration/pinning/DMA against the VM
//!   the way the paper's mechanism must survive in production.
//!
//! The trade-off is fundamental: the deterministic fabric can order every
//! delivery (and so can promise *which* packet a seeded fault hits), while
//! the threaded fabric promises only per-VI FIFO and charges real
//! synchronization costs. Code written against `Fabric` gets both.

use simmem::{Pid, VirtAddr};
use vialock::FaultHandle;

use crate::descriptor::Descriptor;
use crate::error::{ViaError, ViaResult};
use crate::nic::{NicStats, Node};
use crate::system::{NodeId, ViaSystem};
use crate::tpt::{MemId, ProtectionTag};
use crate::vi::{Completion, Reliability, ViId};

/// A cluster of VIA nodes, node-indexed. See the module docs for the two
/// implementations and their trade-off.
///
/// Methods that on a threaded fabric must cross into a node's service
/// thread take `&mut self` even where the deterministic fabric could get
/// by with `&self` (e.g. [`Fabric::nic_stats`],
/// [`Fabric::check_invariants`]): the trait models the command round-trip,
/// not the cheapest implementation.
pub trait Fabric {
    /// Number of nodes in the cluster.
    fn node_count(&self) -> usize;

    /// Spawn an unprivileged process on node `n`.
    fn spawn_process(&mut self, n: NodeId) -> Pid;

    /// Process exit on node `n`: the kernel agent reclaims every TPT
    /// entry, pin and mlock interval the process owned, breaks its VIs,
    /// then the kernel tears the address space down.
    fn exit_process(&mut self, n: NodeId, pid: Pid) -> ViaResult<()>;

    /// Anonymous mapping in a node-local process.
    fn mmap(&mut self, n: NodeId, pid: Pid, len: usize, prot: u8) -> ViaResult<VirtAddr>;

    /// Unmap a range in a node-local process.
    fn munmap(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, len: usize) -> ViaResult<()>;

    /// Fault every page of `[addr, addr+len)` present (write if `write`).
    fn touch_pages(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        write: bool,
    ) -> ViaResult<()>;

    /// CPU store into user memory (runs the fault path).
    fn write_user(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, data: &[u8]) -> ViaResult<()>;

    /// CPU load from user memory.
    fn read_user(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, out: &mut [u8]) -> ViaResult<()>;

    /// Create a VI on node `n`.
    fn create_vi(&mut self, n: NodeId, pid: Pid, tag: ProtectionTag) -> ViaResult<ViId>;

    /// Set a VI's reliability level. Delivery semantics are decided by the
    /// *receiving* VI's level, so symmetric connections should set both
    /// ends.
    fn set_reliability(&mut self, n: NodeId, vi: ViId, r: Reliability) -> ViaResult<()>;

    /// Connect two VIs (the client/server handshake collapsed into one
    /// fabric-level operation). Both must be `Idle`.
    fn connect(&mut self, a: (NodeId, ViId), b: (NodeId, ViId)) -> ViaResult<()>;

    /// Register memory on node `n` (kernel-agent trap). RDMA-write enabled,
    /// RDMA-read disabled — the common MPI setting.
    fn register_mem(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId> {
        self.register_mem_attrs(n, pid, addr, len, tag, true, false)
    }

    /// Register memory with explicit RDMA attributes.
    #[allow(clippy::too_many_arguments)]
    fn register_mem_attrs(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
        rdma_write: bool,
        rdma_read: bool,
    ) -> ViaResult<MemId>;

    /// Deregister memory on node `n`.
    fn deregister_mem(&mut self, n: NodeId, mem: MemId) -> ViaResult<()>;

    /// Post an arbitrary send-side descriptor and ring the doorbell.
    fn post_send_desc(&mut self, n: NodeId, vi: ViId, desc: Descriptor) -> ViaResult<()>;

    /// Post an arbitrary receive descriptor.
    fn post_recv_desc(&mut self, n: NodeId, vi: ViId, desc: Descriptor) -> ViaResult<()>;

    /// Post a one-segment send descriptor.
    fn post_send(
        &mut self,
        n: NodeId,
        vi: ViId,
        mem: MemId,
        addr: VirtAddr,
        len: usize,
    ) -> ViaResult<()> {
        self.post_send_desc(n, vi, Descriptor::send(mem, addr, len))
    }

    /// Post a one-segment receive descriptor.
    fn post_recv(
        &mut self,
        n: NodeId,
        vi: ViId,
        mem: MemId,
        addr: VirtAddr,
        len: usize,
    ) -> ViaResult<()> {
        self.post_recv_desc(n, vi, Descriptor::recv(mem, addr, len))
    }

    /// Post a one-segment RDMA write.
    #[allow(clippy::too_many_arguments)]
    fn post_rdma_write(
        &mut self,
        n: NodeId,
        vi: ViId,
        local_mem: MemId,
        local_addr: VirtAddr,
        len: usize,
        remote_mem: MemId,
        remote_addr: VirtAddr,
    ) -> ViaResult<()> {
        self.post_send_desc(
            n,
            vi,
            Descriptor::rdma_write(local_mem, local_addr, len, remote_mem, remote_addr),
        )
    }

    /// Post a one-segment RDMA read.
    #[allow(clippy::too_many_arguments)]
    fn post_rdma_read(
        &mut self,
        n: NodeId,
        vi: ViId,
        local_mem: MemId,
        local_addr: VirtAddr,
        len: usize,
        remote_mem: MemId,
        remote_addr: VirtAddr,
    ) -> ViaResult<()> {
        self.post_send_desc(
            n,
            vi,
            Descriptor::rdma_read(local_mem, local_addr, len, remote_mem, remote_addr),
        )
    }

    /// Post a one-segment atomic compare-and-swap: if the u64 at
    /// `(remote_mem, remote_addr)` equals `compare` it becomes `swap`;
    /// the old value lands in the 8-byte local buffer either way.
    #[allow(clippy::too_many_arguments)]
    fn post_atomic_cas(
        &mut self,
        n: NodeId,
        vi: ViId,
        local_mem: MemId,
        local_addr: VirtAddr,
        remote_mem: MemId,
        remote_addr: VirtAddr,
        compare: u64,
        swap: u64,
    ) -> ViaResult<()> {
        self.post_send_desc(
            n,
            vi,
            Descriptor::atomic_cas(
                local_mem,
                local_addr,
                remote_mem,
                remote_addr,
                compare,
                swap,
            ),
        )
    }

    /// Poll one VI's completion queue (non-blocking).
    fn poll_cq(&mut self, n: NodeId, vi: ViId) -> ViaResult<Option<Completion>>;

    /// Block until one completion is available on the VI's CQ. On the
    /// deterministic fabric this pumps the cluster to quiescence and polls;
    /// on the threaded fabric it runs the node's spin→yield→park wait
    /// ladder under the cluster's wait timeout.
    fn wait_cq(&mut self, n: NodeId, vi: ViId) -> ViaResult<Completion>;

    /// [`Fabric::wait_cq`] bounded by an explicit deadline: gives up with
    /// [`ViaError::Timeout`] once `timeout` has elapsed with no completion,
    /// so no caller blocks indefinitely on a dead or silent peer. The
    /// deterministic fabric pumps to quiescence first — if the completion
    /// is not there after a full pump it never will be, and the timeout
    /// maps onto that single check.
    fn wait_cq_deadline(
        &mut self,
        n: NodeId,
        vi: ViId,
        timeout: std::time::Duration,
    ) -> ViaResult<Completion>;

    /// Make progress: drain send queues, route and deliver packets. On the
    /// deterministic fabric this runs to quiescence and returns the total
    /// packets delivered; on the threaded fabric it is one bounded round
    /// per node (service threads also progress autonomously). Delivery
    /// errors (no receive descriptor, protection) are recorded in NIC
    /// stats and VI state; the first one observed is also returned.
    fn pump(&mut self) -> ViaResult<usize>;

    /// SCI-style programmed I/O: the CPU on `src` loads `len` bytes from
    /// its own user buffer and stores them into memory imported from `dst`
    /// (a registered region addressed by `(MemId, byte offset)`).
    fn sci_write(
        &mut self,
        src: (NodeId, Pid, VirtAddr),
        len: usize,
        dst: (NodeId, MemId, usize),
    ) -> ViaResult<()>;

    /// [`Fabric::sci_write`] with an in-flight byte buffer as source.
    fn sci_write_bytes(&mut self, data: &[u8], dst: (NodeId, MemId, usize)) -> ViaResult<()>;

    /// SCI remote read (expensive on real hardware; completeness + tests).
    fn sci_read_bytes(&mut self, src: (NodeId, MemId, usize), out: &mut [u8]) -> ViaResult<()>;

    /// Route every node's fault sites through one shared seeded plan.
    ///
    /// On the deterministic fabric the plan's rule order maps 1:1 onto the
    /// delivery order, so "fault the third packet" is meaningful; on the
    /// threaded fabric consultation order is whatever the race produces.
    fn install_fault_plan(&mut self, plan: &FaultHandle);

    /// The chaos harness's safety net: registry census, no orphaned
    /// frames, TPT occupancy, and the fabric-wide packet-pool ledger. The
    /// threaded fabric quiesces the cluster first (the ledger only
    /// balances with no packets in flight).
    fn check_invariants(&mut self) -> Result<(), String>;

    /// Snapshot one node's NIC counters.
    fn nic_stats(&mut self, n: NodeId) -> NicStats;

    /// Run a closure against one node's [`Node`] — the escape hatch for
    /// harness code that reaches below the fabric surface (antagonist
    /// processes, registry post-mortems). On the threaded fabric the
    /// closure is shipped to the node's service thread, hence the
    /// `Send + 'static` bounds.
    fn with_node<R, G>(&mut self, n: NodeId, f: G) -> R
    where
        R: Send + 'static,
        G: FnOnce(&mut Node) -> R + Send + 'static;
}

impl Fabric for ViaSystem {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn spawn_process(&mut self, n: NodeId) -> Pid {
        ViaSystem::spawn_process(self, n)
    }

    fn exit_process(&mut self, n: NodeId, pid: Pid) -> ViaResult<()> {
        ViaSystem::exit_process(self, n, pid)
    }

    fn mmap(&mut self, n: NodeId, pid: Pid, len: usize, prot: u8) -> ViaResult<VirtAddr> {
        ViaSystem::mmap(self, n, pid, len, prot)
    }

    fn munmap(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, len: usize) -> ViaResult<()> {
        ViaSystem::munmap(self, n, pid, addr, len)
    }

    fn touch_pages(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        write: bool,
    ) -> ViaResult<()> {
        ViaSystem::touch_pages(self, n, pid, addr, len, write)
    }

    fn write_user(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, data: &[u8]) -> ViaResult<()> {
        ViaSystem::write_user(self, n, pid, addr, data)
    }

    fn read_user(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, out: &mut [u8]) -> ViaResult<()> {
        ViaSystem::read_user(self, n, pid, addr, out)
    }

    fn create_vi(&mut self, n: NodeId, pid: Pid, tag: ProtectionTag) -> ViaResult<ViId> {
        ViaSystem::create_vi(self, n, pid, tag)
    }

    fn set_reliability(&mut self, n: NodeId, vi: ViId, r: Reliability) -> ViaResult<()> {
        ViaSystem::set_reliability(self, n, vi, r)
    }

    fn connect(&mut self, a: (NodeId, ViId), b: (NodeId, ViId)) -> ViaResult<()> {
        ViaSystem::connect(self, a, b)
    }

    fn register_mem_attrs(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
        rdma_write: bool,
        rdma_read: bool,
    ) -> ViaResult<MemId> {
        self.node_mut(n)
            .register_mem_attrs(pid, addr, len, tag, rdma_write, rdma_read)
    }

    fn deregister_mem(&mut self, n: NodeId, mem: MemId) -> ViaResult<()> {
        ViaSystem::deregister_mem(self, n, mem)
    }

    fn post_send_desc(&mut self, n: NodeId, vi: ViId, desc: Descriptor) -> ViaResult<()> {
        ViaSystem::post_send_desc(self, n, vi, desc)
    }

    fn post_recv_desc(&mut self, n: NodeId, vi: ViId, desc: Descriptor) -> ViaResult<()> {
        ViaSystem::post_recv_desc(self, n, vi, desc)
    }

    fn poll_cq(&mut self, n: NodeId, vi: ViId) -> ViaResult<Option<Completion>> {
        ViaSystem::poll_cq(self, n, vi)
    }

    fn wait_cq(&mut self, n: NodeId, vi: ViId) -> ViaResult<Completion> {
        if let Some(c) = ViaSystem::poll_cq(self, n, vi)? {
            return Ok(c);
        }
        ViaSystem::pump(self)?;
        ViaSystem::poll_cq(self, n, vi)?
            .ok_or(ViaError::BadState("wait_cq: no completion after pump"))
    }

    fn wait_cq_deadline(
        &mut self,
        n: NodeId,
        vi: ViId,
        _timeout: std::time::Duration,
    ) -> ViaResult<Completion> {
        // One full pump drains the deterministic fabric; a completion that
        // has not arrived by then never will, which is exactly a timeout.
        if let Some(c) = ViaSystem::poll_cq(self, n, vi)? {
            return Ok(c);
        }
        ViaSystem::pump(self)?;
        ViaSystem::poll_cq(self, n, vi)?.ok_or(ViaError::Timeout)
    }

    fn pump(&mut self) -> ViaResult<usize> {
        ViaSystem::pump(self)
    }

    fn sci_write(
        &mut self,
        src: (NodeId, Pid, VirtAddr),
        len: usize,
        dst: (NodeId, MemId, usize),
    ) -> ViaResult<()> {
        ViaSystem::sci_write(self, src, len, dst)
    }

    fn sci_write_bytes(&mut self, data: &[u8], dst: (NodeId, MemId, usize)) -> ViaResult<()> {
        ViaSystem::sci_write_bytes(self, data, dst)
    }

    fn sci_read_bytes(&mut self, src: (NodeId, MemId, usize), out: &mut [u8]) -> ViaResult<()> {
        ViaSystem::sci_read_bytes(self, src, out)
    }

    fn install_fault_plan(&mut self, plan: &FaultHandle) {
        ViaSystem::install_fault_plan(self, plan)
    }

    fn check_invariants(&mut self) -> Result<(), String> {
        ViaSystem::check_invariants(self)
    }

    fn nic_stats(&mut self, n: NodeId) -> NicStats {
        self.node(n).nic.stats
    }

    fn with_node<R, G>(&mut self, n: NodeId, f: G) -> R
    where
        R: Send + 'static,
        G: FnOnce(&mut Node) -> R + Send + 'static,
    {
        f(self.node_mut(n))
    }
}

/// A registration port: the two kernel-agent calls the registration cache
/// needs, abstracted so the cache works against a bare [`Node`] (inside a
/// service thread or the deterministic fabric) or against a
/// [`FabricNode`] adapter (through the trait, command round-trips and
/// all). Method names are deliberately distinct from the inherent
/// `register_mem`/`deregister_mem` so the `Node` impl cannot recurse.
pub trait RegPort {
    /// `VipRegisterMem` with the default attributes (RDMA-write on).
    fn port_register(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId>;

    /// `VipDeregisterMem`.
    fn port_deregister(&mut self, mem: MemId) -> ViaResult<()>;
}

impl RegPort for Node {
    fn port_register(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId> {
        self.register_mem(pid, addr, len, tag)
    }

    fn port_deregister(&mut self, mem: MemId) -> ViaResult<()> {
        self.deregister_mem(mem)
    }
}

/// One node of a fabric viewed as a [`RegPort`].
pub struct FabricNode<'a, F: Fabric> {
    pub fabric: &'a mut F,
    pub node: NodeId,
}

impl<F: Fabric> RegPort for FabricNode<'_, F> {
    fn port_register(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId> {
        self.fabric.register_mem(self.node, pid, addr, len, tag)
    }

    fn port_deregister(&mut self, mem: MemId) -> ViaResult<()> {
        self.fabric.deregister_mem(self.node, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, KernelConfig, PAGE_SIZE};
    use vialock::StrategyKind;

    /// The deterministic fabric driven exclusively through the trait: a
    /// send/recv roundtrip with `wait_cq` on both ends.
    fn roundtrip_on<F: Fabric>(fab: &mut F) {
        let pa = fab.spawn_process(0);
        let pb = fab.spawn_process(1);
        let tag = ProtectionTag(7);
        let va = fab.create_vi(0, pa, tag).unwrap();
        let vb = fab.create_vi(1, pb, tag).unwrap();
        fab.connect((0, va), (1, vb)).unwrap();
        let sbuf = fab
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = fab
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        fab.write_user(0, pa, sbuf, b"via trait").unwrap();
        let sh = fab.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        let rh = fab.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        fab.post_recv(1, vb, rh, rbuf, PAGE_SIZE).unwrap();
        fab.post_send(0, va, sh, sbuf, 9).unwrap();
        let cr = fab.wait_cq(1, vb).unwrap();
        assert_eq!(cr.len, 9);
        let cs = fab.wait_cq(0, va).unwrap();
        assert_eq!(cs.op, crate::descriptor::DescOp::Send);
        let mut out = [0u8; 9];
        fab.read_user(1, pb, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"via trait");
        assert!(fab.nic_stats(0).sends >= 1);
        fab.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_fabric_roundtrip_through_trait() {
        let mut sys = ViaSystem::new(2, KernelConfig::small(), StrategyKind::KiobufReliable);
        roundtrip_on(&mut sys);
    }

    #[test]
    fn wait_cq_without_traffic_is_bad_state() {
        let mut sys = ViaSystem::new(1, KernelConfig::small(), StrategyKind::KiobufReliable);
        let p = Fabric::spawn_process(&mut sys, 0);
        let vi = Fabric::create_vi(&mut sys, 0, p, ProtectionTag(1)).unwrap();
        assert!(matches!(
            Fabric::wait_cq(&mut sys, 0, vi),
            Err(ViaError::BadState(_))
        ));
    }

    #[test]
    fn fabric_node_is_a_reg_port() {
        let mut sys = ViaSystem::new(1, KernelConfig::small(), StrategyKind::KiobufReliable);
        let p = Fabric::spawn_process(&mut sys, 0);
        let buf = Fabric::mmap(&mut sys, 0, p, 2 * PAGE_SIZE, prot::READ | prot::WRITE).unwrap();
        let mut port = FabricNode {
            fabric: &mut sys,
            node: 0,
        };
        let mem = port
            .port_register(p, buf, 2 * PAGE_SIZE, ProtectionTag(1))
            .unwrap();
        port.port_deregister(mem).unwrap();
    }
}
