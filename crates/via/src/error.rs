//! Errors of the VIA stack.

use std::fmt;

use simmem::MmError;
use vialock::RegError;

/// Errors surfaced by NIC, fabric and VIPL operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViaError {
    /// Registration layer failure.
    Reg(RegError),
    /// Simulated-VM failure.
    Mm(MmError),
    /// Memory protection tag mismatch between a VI and a memory region —
    /// the NIC refuses the access and no data is transferred.
    ProtectionMismatch,
    /// The referenced VI is not connected.
    NotConnected,
    /// A message arrived on a VI with an empty receive queue. In reliable
    /// delivery mode the VIA breaks the connection.
    NoRecvDescriptor,
    /// The receive descriptor's buffers are smaller than the message.
    RecvTooSmall { need: usize, have: usize },
    /// Access outside the registered region.
    OutOfBounds,
    /// RDMA attempted on a region without the matching enable attribute.
    RdmaDisabled,
    /// Unknown VI / memory / node id.
    BadId(&'static str),
    /// The VI is in the wrong state for the operation.
    BadState(&'static str),
    /// The connection was broken by a previous delivery error.
    Disconnected,
    /// A completion could not be delivered because the completion queue was
    /// at capacity; the completion is lost and the VI is broken.
    CqOverrun,
    /// The service thread for the given node is gone — it panicked, was
    /// shut down, or its mailbox was closed. The fabric equivalent of a
    /// peer process dying mid-conversation.
    PeerGone(usize),
    /// Several node service threads are gone; carries the index of every
    /// dead node (the shutdown/join path reports them all, not just the
    /// first).
    NodesGone(Vec<usize>),
    /// The operation did not complete before its deadline — a blocking
    /// wait gave up rather than hang on a dead or silent peer.
    Timeout,
    /// NIC-side translation hit a non-resident TPT entry: an on-demand
    /// region whose page is not currently pinned. Carries the
    /// region-relative page index; the node's kernel agent resolves this by
    /// lazy-pinning the page, installing the frame, and retrying — it only
    /// escapes to callers that bypass the repin loop (raw TPT users).
    NotResident { page: usize },
    /// An on-demand repin attempt failed (pin refused under memory pressure
    /// or swap exhaustion): the typed degradation of the lazy-pin fault
    /// path. The descriptor completes with
    /// [`crate::descriptor::DescStatus::RepinFailed`].
    Repin(RegError),
    /// A failed batch registration could not be fully rolled back: one of
    /// the already-registered ids failed to deregister with something other
    /// than the tolerated already-gone race (a concurrent process exit
    /// tearing the region down first). Carries the id and the underlying
    /// failure so the caller can audit instead of assuming a clean state.
    BatchRollbackFailed {
        mem: crate::tpt::MemId,
        cause: Box<ViaError>,
    },
}

impl fmt::Display for ViaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViaError::Reg(e) => write!(f, "registration error: {e}"),
            ViaError::Mm(e) => write!(f, "memory error: {e}"),
            ViaError::ProtectionMismatch => write!(f, "memory protection tag mismatch"),
            ViaError::NotConnected => write!(f, "VI not connected"),
            ViaError::NoRecvDescriptor => write!(f, "no receive descriptor posted"),
            ViaError::RecvTooSmall { need, have } => {
                write!(f, "receive buffer too small: need {need}, have {have}")
            }
            ViaError::OutOfBounds => write!(f, "access outside registered region"),
            ViaError::RdmaDisabled => write!(f, "RDMA not enabled on region"),
            ViaError::BadId(what) => write!(f, "unknown {what} id"),
            ViaError::BadState(s) => write!(f, "bad VI state: {s}"),
            ViaError::Disconnected => write!(f, "connection broken"),
            ViaError::CqOverrun => write!(f, "completion queue overrun"),
            ViaError::PeerGone(node) => write!(f, "node {node} thread is gone"),
            ViaError::NodesGone(nodes) => write!(f, "node threads gone: {nodes:?}"),
            ViaError::Timeout => write!(f, "operation timed out"),
            ViaError::NotResident { page } => {
                write!(f, "TPT entry for region page {page} is not resident")
            }
            ViaError::Repin(e) => write!(f, "on-demand repin failed: {e}"),
            ViaError::BatchRollbackFailed { mem, cause } => {
                write!(f, "batch rollback failed at mem id {}: {cause}", mem.0)
            }
        }
    }
}

impl std::error::Error for ViaError {}

impl From<RegError> for ViaError {
    fn from(e: RegError) -> Self {
        ViaError::Reg(e)
    }
}

impl From<MmError> for ViaError {
    fn from(e: MmError) -> Self {
        ViaError::Mm(e)
    }
}

/// Result alias for this crate.
pub type ViaResult<T> = Result<T, ViaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: ViaError = RegError::NoSuchHandle.into();
        assert_eq!(e, ViaError::Reg(RegError::NoSuchHandle));
        let e: ViaError = MmError::OutOfMemory.into();
        assert_eq!(e, ViaError::Mm(MmError::OutOfMemory));
    }

    #[test]
    fn display() {
        assert!(ViaError::ProtectionMismatch.to_string().contains("tag"));
        assert!(ViaError::RecvTooSmall { need: 10, have: 5 }
            .to_string()
            .contains("10"));
        assert!(ViaError::PeerGone(3).to_string().contains('3'));
    }
}
