//! A VIPL-flavoured facade: the entry-point names of Intel's Virtual
//! Interface Provider Library mapped onto [`ViaSystem`].
//!
//! The examples use these so they read like the VIA programs in the paper's
//! companion articles. Each function is a thin, documented wrapper; the
//! semantics live in [`crate::system`].

#![allow(non_snake_case)]

use simmem::{Pid, VirtAddr};

use crate::error::ViaResult;
use crate::system::{NodeId, ViaSystem};
use crate::tpt::{MemId, ProtectionTag};
use crate::vi::{Completion, ViId};

/// `VipCreateVi`: create a virtual interface for `pid` under `tag`.
pub fn VipCreateVi(
    sys: &mut ViaSystem,
    node: NodeId,
    pid: Pid,
    tag: ProtectionTag,
) -> ViaResult<ViId> {
    sys.create_vi(node, pid, tag)
}

/// `VipConnectRequest` + `VipConnectAccept` collapsed into the fabric-level
/// connect.
pub fn VipConnect(sys: &mut ViaSystem, a: (NodeId, ViId), b: (NodeId, ViId)) -> ViaResult<()> {
    sys.connect(a, b)
}

/// `VipConnectWait` (server side): park a VI on a connection discriminator
/// and wait for a client.
pub fn VipConnectWait(
    sys: &mut ViaSystem,
    node: NodeId,
    vi: ViId,
    discriminator: u64,
) -> ViaResult<()> {
    sys.connect_wait(node, vi, discriminator)
}

/// `VipConnectRequest` (client side): connect to a waiting listener.
pub fn VipConnectRequest(
    sys: &mut ViaSystem,
    client: (NodeId, ViId),
    server_node: NodeId,
    discriminator: u64,
) -> ViaResult<()> {
    sys.connect_request(client, server_node, discriminator)
}

/// `VipDisconnect`: tear the connection down; queued descriptors complete
/// as `Dropped`.
pub fn VipDisconnect(sys: &mut ViaSystem, node: NodeId, vi: ViId) -> ViaResult<()> {
    sys.disconnect(node, vi)
}

/// `VipRegisterMem`: pin a user region and fill the TPT; returns the memory
/// handle.
pub fn VipRegisterMem(
    sys: &mut ViaSystem,
    node: NodeId,
    pid: Pid,
    addr: VirtAddr,
    len: usize,
    tag: ProtectionTag,
) -> ViaResult<MemId> {
    sys.register_mem(node, pid, addr, len, tag)
}

/// `VipDeregisterMem`.
pub fn VipDeregisterMem(sys: &mut ViaSystem, node: NodeId, mem: MemId) -> ViaResult<()> {
    sys.deregister_mem(node, mem)
}

/// `VipPostSend`: one-segment send descriptor + doorbell.
pub fn VipPostSend(
    sys: &mut ViaSystem,
    node: NodeId,
    vi: ViId,
    mem: MemId,
    addr: VirtAddr,
    len: usize,
) -> ViaResult<()> {
    sys.post_send(node, vi, mem, addr, len)
}

/// `VipPostRecv`: one-segment receive descriptor.
pub fn VipPostRecv(
    sys: &mut ViaSystem,
    node: NodeId,
    vi: ViId,
    mem: MemId,
    addr: VirtAddr,
    len: usize,
) -> ViaResult<()> {
    sys.post_recv(node, vi, mem, addr, len)
}

/// RDMA write (`VipPostSend` with an address segment).
#[allow(clippy::too_many_arguments)]
pub fn VipPostRdmaWrite(
    sys: &mut ViaSystem,
    node: NodeId,
    vi: ViId,
    mem: MemId,
    addr: VirtAddr,
    len: usize,
    remote_mem: MemId,
    remote_addr: VirtAddr,
) -> ViaResult<()> {
    sys.post_rdma_write(node, vi, mem, addr, len, remote_mem, remote_addr)
}

/// `VipCQDone` in polling mode: next completion, if any.
pub fn VipCQDone(sys: &mut ViaSystem, node: NodeId, vi: ViId) -> ViaResult<Option<Completion>> {
    sys.poll_cq(node, vi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, KernelConfig, PAGE_SIZE};
    use vialock::StrategyKind;

    #[test]
    fn facade_roundtrip() {
        let mut sys = ViaSystem::new(2, KernelConfig::small(), StrategyKind::KiobufReliable);
        let pa = sys.spawn_process(0);
        let pb = sys.spawn_process(1);
        let tag = ProtectionTag(11);
        let va = VipCreateVi(&mut sys, 0, pa, tag).unwrap();
        let vb = VipCreateVi(&mut sys, 1, pb, tag).unwrap();
        VipConnect(&mut sys, (0, va), (1, vb)).unwrap();
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, b"VIPL").unwrap();
        let sh = VipRegisterMem(&mut sys, 0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        let rh = VipRegisterMem(&mut sys, 1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        VipPostRecv(&mut sys, 1, vb, rh, rbuf, PAGE_SIZE).unwrap();
        VipPostSend(&mut sys, 0, va, sh, sbuf, 4).unwrap();
        sys.pump().unwrap();
        assert_eq!(VipCQDone(&mut sys, 1, vb).unwrap().unwrap().len, 4);
        let mut out = [0u8; 4];
        sys.read_user(1, pb, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"VIPL");
        VipDeregisterMem(&mut sys, 0, sh).unwrap();
        VipDeregisterMem(&mut sys, 1, rh).unwrap();
    }
}
