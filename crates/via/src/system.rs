//! The fabric: a set of [`Node`]s plus packet routing — the "cluster" a
//! VIA application runs on.
//!
//! [`ViaSystem::pump`] drains every NIC's send queues, routes the resulting
//! packets, and delivers them, looping until the fabric is quiescent. All
//! methods are node-indexed so one test can hold the entire cluster.

use simmem::{Capabilities, Kernel, KernelConfig, Pid, VirtAddr};
use vialock::{FaultSite, StrategyKind};

use crate::descriptor::Descriptor;
use crate::error::{ViaError, ViaResult};
use crate::nic::{Node, Packet, PacketKind, DEFAULT_TPT_PAGES};
use crate::tpt::{MemId, ProtectionTag};
use crate::vi::{Completion, Reliability, ViId, ViState};

/// Index of a node in the system.
pub type NodeId = usize;

/// A cluster of nodes connected by a (so far ideal) fabric.
pub struct ViaSystem {
    nodes: Vec<Node>,
    /// Packets in flight, delivered FIFO by [`ViaSystem::pump`].
    in_flight: Vec<Packet>,
    /// Packets an injected wire delay postponed past the current delivery
    /// round; re-queued (and re-subjected to ingress faults) next round.
    delayed: Vec<Packet>,
    /// Connection manager: listening endpoints keyed by
    /// (node, discriminator) — the VIA connection-establishment address.
    listeners: std::collections::HashMap<(NodeId, u64), ViId>,
    /// Scratch VI-id list reused by [`ViaSystem::pump`].
    vi_scratch: Vec<ViId>,
    /// Scratch staging buffer reused by [`ViaSystem::sci_write`].
    pio_scratch: Vec<u8>,
}

impl ViaSystem {
    /// Build `n` identical nodes with the given kernel configuration and
    /// pinning strategy.
    pub fn new(n: usize, config: KernelConfig, strategy: StrategyKind) -> Self {
        ViaSystem {
            nodes: (0..n)
                .map(|_| Node::new(config, strategy, DEFAULT_TPT_PAGES))
                .collect(),
            in_flight: Vec::new(),
            delayed: Vec::new(),
            listeners: std::collections::HashMap::new(),
            vi_scratch: Vec::new(),
            pio_scratch: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow one node.
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n]
    }

    /// Borrow one node mutably.
    pub fn node_mut(&mut self, n: NodeId) -> &mut Node {
        &mut self.nodes[n]
    }

    /// Direct access to a node's kernel (workload harnesses use this to run
    /// antagonist processes).
    pub fn kernel_mut(&mut self, n: NodeId) -> &mut Kernel {
        &mut self.nodes[n].kernel
    }

    /// Route every node's fault sites through one shared seeded plan.
    pub fn install_fault_plan(&mut self, plan: &vialock::FaultHandle) {
        for node in &mut self.nodes {
            node.install_fault_plan(plan);
        }
    }

    /// Process exit on node `n`: the kernel agent reclaims every TPT entry,
    /// pin and mlock interval the process owned, breaks its VIs, then the
    /// kernel tears the address space down.
    pub fn exit_process(&mut self, n: NodeId, pid: Pid) -> ViaResult<()> {
        self.nodes[n].exit_process(pid)
    }

    /// Scope-bound process lifetime: spawn a process on node `n`, run `f`
    /// with it, then tear it down through [`ViaSystem::exit_process`] even
    /// when `f` fails — so a mid-registration error cannot leak pins.
    pub fn with_process<T>(
        &mut self,
        n: NodeId,
        f: impl FnOnce(&mut Self, Pid) -> ViaResult<T>,
    ) -> ViaResult<T> {
        let pid = self.spawn_process(n);
        let r = f(self, pid);
        let cleanup = self.nodes[n].exit_process(pid);
        let v = r?;
        cleanup?;
        Ok(v)
    }

    /// The chaos harness's safety net, checked after every operation:
    ///
    /// 1. every node's registry census holds (per-frame pin counts equal
    ///    the live registrations covering them);
    /// 2. no orphaned frames anywhere (reliable pinning's whole promise —
    ///    callers using `RefcountOnly` should expect this to trip under
    ///    pressure, which is the paper's point);
    /// 3. TPT occupancy never exceeds capacity;
    /// 4. the packet-pool ledger balances: buffers taken minus returned,
    ///    summed fabric-wide, equals the pool-backed packets still in
    ///    flight (delayed ones included).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            node.check_local_invariants()
                .map_err(|e| format!("node {i}: {e}"))?;
        }
        let outstanding: i64 = self.nodes.iter().map(|n| n.pool.outstanding()).sum();
        let in_flight = self
            .in_flight
            .iter()
            .chain(self.delayed.iter())
            .filter(|p| p.payload.capacity() > 0)
            .count() as i64;
        if outstanding != in_flight {
            return Err(format!(
                "pool ledger imbalance: {outstanding} buffers outstanding, \
                 {in_flight} pool-backed packets in flight"
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Convenience wrappers (the VIPL facade calls these)
    // ------------------------------------------------------------------

    /// Spawn an unprivileged process on node `n`.
    pub fn spawn_process(&mut self, n: NodeId) -> Pid {
        self.nodes[n].kernel.spawn_process(Capabilities::default())
    }

    /// Anonymous mapping in a node-local process.
    pub fn mmap(&mut self, n: NodeId, pid: Pid, len: usize, prot: u8) -> ViaResult<VirtAddr> {
        Ok(self.nodes[n].kernel.mmap_anon(pid, len, prot)?)
    }

    /// Unmap a range in a node-local process.
    pub fn munmap(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, len: usize) -> ViaResult<()> {
        Ok(self.nodes[n].kernel.munmap(pid, addr, len)?)
    }

    /// Fault every page of `[addr, addr+len)` present in a node-local
    /// process (write access if `write`).
    pub fn touch_pages(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        write: bool,
    ) -> ViaResult<()> {
        Ok(self.nodes[n].kernel.touch_pages(pid, addr, len, write)?)
    }

    /// CPU store into user memory (runs the fault path).
    pub fn write_user(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        data: &[u8],
    ) -> ViaResult<()> {
        Ok(self.nodes[n].kernel.write_user(pid, addr, data)?)
    }

    /// CPU load from user memory.
    pub fn read_user(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        out: &mut [u8],
    ) -> ViaResult<()> {
        Ok(self.nodes[n].kernel.read_user(pid, addr, out)?)
    }

    /// Create a VI on node `n`.
    pub fn create_vi(&mut self, n: NodeId, pid: Pid, tag: ProtectionTag) -> ViaResult<ViId> {
        Ok(self.nodes[n].nic.create_vi(pid, tag))
    }

    /// Set a VI's reliability level. Delivery semantics are decided by the
    /// *receiving* VI's level, so symmetric connections should set both
    /// ends.
    pub fn set_reliability(&mut self, n: NodeId, vi: ViId, r: Reliability) -> ViaResult<()> {
        self.nodes[n].nic.vi_mut(vi)?.reliability = r;
        Ok(())
    }

    /// Connect two VIs (the client/server handshake collapsed into one
    /// fabric-level operation).
    pub fn connect(&mut self, a: (NodeId, ViId), b: (NodeId, ViId)) -> ViaResult<()> {
        {
            let vi = self.nodes[a.0].nic.vi_mut(a.1)?;
            if vi.state != ViState::Idle {
                return Err(ViaError::BadState("connect on non-idle VI"));
            }
            vi.peer = Some((b.0, b.1));
            vi.state = ViState::Connected;
        }
        {
            let vi = self.nodes[b.0].nic.vi_mut(b.1)?;
            if vi.state != ViState::Idle {
                return Err(ViaError::BadState("connect on non-idle VI"));
            }
            vi.peer = Some((a.0, a.1));
            vi.state = ViState::Connected;
        }
        Ok(())
    }

    /// `VipConnectWait` (server side): park an idle VI on a connection
    /// discriminator. A later [`ViaSystem::connect_request`] to the same
    /// (node, discriminator) completes the handshake.
    pub fn connect_wait(&mut self, n: NodeId, vi: ViId, discriminator: u64) -> ViaResult<()> {
        if self.listeners.contains_key(&(n, discriminator)) {
            return Err(ViaError::BadState("discriminator already has a listener"));
        }
        let v = self.nodes[n].nic.vi_mut(vi)?;
        if v.state != ViState::Idle {
            return Err(ViaError::BadState("connect_wait on non-idle VI"));
        }
        v.state = ViState::Listening;
        self.listeners.insert((n, discriminator), vi);
        Ok(())
    }

    /// `VipConnectRequest` (client side): connect the idle VI `a` to the
    /// listener parked at `(server_node, discriminator)`.
    pub fn connect_request(
        &mut self,
        a: (NodeId, ViId),
        server_node: NodeId,
        discriminator: u64,
    ) -> ViaResult<()> {
        let server_vi = self
            .listeners
            .remove(&(server_node, discriminator))
            .ok_or(ViaError::BadState("no listener at discriminator"))?;
        {
            let v = self.nodes[a.0].nic.vi_mut(a.1)?;
            if v.state != ViState::Idle {
                self.listeners
                    .insert((server_node, discriminator), server_vi);
                return Err(ViaError::BadState("connect_request on non-idle VI"));
            }
            v.peer = Some((server_node, server_vi));
            v.state = ViState::Connected;
        }
        let v = self.nodes[server_node].nic.vi_mut(server_vi)?;
        v.peer = Some(a);
        v.state = ViState::Connected;
        Ok(())
    }

    /// `VipDisconnect`: tear a connection down from either end. Both VIs
    /// return to `Idle`; descriptors still queued complete as `Dropped`.
    pub fn disconnect(&mut self, n: NodeId, vi: ViId) -> ViaResult<()> {
        let peer = {
            let v = self.nodes[n].nic.vi_mut(vi)?;
            if v.state != ViState::Connected && v.state != ViState::Error {
                return Err(ViaError::NotConnected);
            }
            v.peer.take()
        };
        self.flush_vi(n, vi)?;
        if let Some((pn, pv)) = peer {
            if let Ok(v) = self.nodes[pn].nic.vi_mut(pv) {
                v.peer = None;
            }
            let _ = self.flush_vi(pn, pv);
        }
        Ok(())
    }

    /// Complete every queued descriptor of a VI as `Dropped` and idle it.
    fn flush_vi(&mut self, n: NodeId, vi: ViId) -> ViaResult<()> {
        let v = self.nodes[n].nic.vi_mut(vi)?;
        let mut flushed: Vec<crate::descriptor::Descriptor> = v.send_q.drain(..).collect();
        flushed.extend(v.recv_q.drain(..));
        for d in flushed {
            // Best effort: a CQ already at capacity loses flush completions.
            let _ = v.push_completion(crate::vi::Completion {
                vi,
                op: d.op,
                status: crate::descriptor::DescStatus::Dropped,
                len: 0,
                imm: d.imm,
            });
        }
        v.state = ViState::Idle;
        Ok(())
    }

    /// Register memory on node `n` (kernel-agent trap).
    pub fn register_mem(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId> {
        self.nodes[n].register_mem(pid, addr, len, tag)
    }

    /// Register a batch of buffers on node `n` in one kernel-agent trap,
    /// transactionally: any failure deregisters everything registered so
    /// far and surfaces the error (mirrors the per-page rollback inside one
    /// registration, one level up).
    pub fn register_mem_batch(
        &mut self,
        n: NodeId,
        pid: Pid,
        bufs: &[(VirtAddr, usize)],
        tag: ProtectionTag,
    ) -> ViaResult<Vec<MemId>> {
        let mut out = Vec::with_capacity(bufs.len());
        for &(addr, len) in bufs {
            match self.nodes[n].register_mem(pid, addr, len, tag) {
                Ok(id) => out.push(id),
                Err(e) => {
                    self.rollback_batch(n, out)?;
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Undo a partially registered batch. An id that is already gone is
    /// tolerated: a concurrent `exit_process` (threaded fabric) may have
    /// torn the region down between the partial failure and this rollback,
    /// which leaks nothing. Any *other* deregistration failure surfaces as
    /// the typed [`ViaError::BatchRollbackFailed`] — never a silent partial
    /// success; `check_invariants` then audits the pin ledger.
    #[doc(hidden)]
    pub fn rollback_batch(&mut self, n: NodeId, ids: Vec<MemId>) -> ViaResult<()> {
        for id in ids.into_iter().rev() {
            match self.nodes[n].deregister_mem(id) {
                Ok(()) | Err(ViaError::BadId(_)) => {}
                Err(cause) => {
                    return Err(ViaError::BatchRollbackFailed {
                        mem: id,
                        cause: Box::new(cause),
                    })
                }
            }
        }
        Ok(())
    }

    /// Deregister memory on node `n`.
    pub fn deregister_mem(&mut self, n: NodeId, mem: MemId) -> ViaResult<()> {
        self.nodes[n].deregister_mem(mem)
    }

    /// Coherent registration-stats snapshot for node `n` (the only
    /// supported way to read its registry counters), with the kernel's
    /// fault counters (minor/major/protection faults, repins,
    /// pressure unpins, COW invalidations) folded in.
    pub fn registry_stats(&self, n: NodeId) -> vialock::RegistryStats {
        let node = &self.nodes[n];
        node.registry.snapshot_with(&node.kernel)
    }

    /// Post a one-segment send descriptor and ring the doorbell.
    pub fn post_send(
        &mut self,
        n: NodeId,
        vi: ViId,
        mem: MemId,
        addr: VirtAddr,
        len: usize,
    ) -> ViaResult<()> {
        self.post_send_desc(n, vi, Descriptor::send(mem, addr, len))
    }

    /// Post an arbitrary send-side descriptor.
    pub fn post_send_desc(&mut self, n: NodeId, vi: ViId, desc: Descriptor) -> ViaResult<()> {
        let v = self.nodes[n].nic.vi_mut(vi)?;
        if v.state == ViState::Error {
            return Err(ViaError::Disconnected);
        }
        v.send_q.push_back(desc);
        Ok(())
    }

    /// Post a one-segment receive descriptor.
    pub fn post_recv(
        &mut self,
        n: NodeId,
        vi: ViId,
        mem: MemId,
        addr: VirtAddr,
        len: usize,
    ) -> ViaResult<()> {
        self.post_recv_desc(n, vi, Descriptor::recv(mem, addr, len))
    }

    /// Post an arbitrary receive descriptor.
    pub fn post_recv_desc(&mut self, n: NodeId, vi: ViId, desc: Descriptor) -> ViaResult<()> {
        let v = self.nodes[n].nic.vi_mut(vi)?;
        if v.state == ViState::Error {
            return Err(ViaError::Disconnected);
        }
        v.recv_q.push_back(desc);
        Ok(())
    }

    /// Post a one-segment RDMA write.
    #[allow(clippy::too_many_arguments)]
    pub fn post_rdma_write(
        &mut self,
        n: NodeId,
        vi: ViId,
        local_mem: MemId,
        local_addr: VirtAddr,
        len: usize,
        remote_mem: MemId,
        remote_addr: VirtAddr,
    ) -> ViaResult<()> {
        self.post_send_desc(
            n,
            vi,
            Descriptor::rdma_write(local_mem, local_addr, len, remote_mem, remote_addr),
        )
    }

    /// Post a one-segment RDMA read.
    #[allow(clippy::too_many_arguments)]
    pub fn post_rdma_read(
        &mut self,
        n: NodeId,
        vi: ViId,
        local_mem: MemId,
        local_addr: VirtAddr,
        len: usize,
        remote_mem: MemId,
        remote_addr: VirtAddr,
    ) -> ViaResult<()> {
        self.post_send_desc(
            n,
            vi,
            Descriptor::rdma_read(local_mem, local_addr, len, remote_mem, remote_addr),
        )
    }

    /// Poll one VI's completion queue.
    pub fn poll_cq(&mut self, n: NodeId, vi: ViId) -> ViaResult<Option<Completion>> {
        Ok(self.nodes[n].nic.vi_mut(vi)?.poll_cq())
    }

    // ------------------------------------------------------------------
    // SCI shared-memory PIO
    // ------------------------------------------------------------------

    /// SCI-style programmed I/O: the CPU on `src` loads `len` bytes from its
    /// own user buffer and stores them into memory **imported** from `dst` —
    /// a registered (exported) region addressed by `(MemId, byte offset)`.
    ///
    /// No descriptors, no doorbells: protection on the importer side is the
    /// host MMU (modelled by the mapping existing at all), and on the
    /// exporter side the region's own tag, so translation uses the region
    /// tag. The transfer still lands through the TPT's *physical* frames —
    /// an exported page that the VM relocated under a bad pinning strategy
    /// is missed exactly as with DMA.
    pub fn sci_write(
        &mut self,
        src: (NodeId, Pid, VirtAddr),
        len: usize,
        dst: (NodeId, MemId, usize),
    ) -> ViaResult<()> {
        let (sn, spid, saddr) = src;
        let (dn, dmem, doff) = dst;
        let mut buf = std::mem::take(&mut self.pio_scratch);
        buf.clear();
        buf.resize(len, 0);
        let r = self.nodes[sn]
            .kernel
            .read_user(spid, saddr, &mut buf)
            .map_err(ViaError::from)
            .and_then(|()| self.sci_write_bytes(&buf, (dn, dmem, doff)));
        self.pio_scratch = buf;
        r
    }

    /// [`ViaSystem::sci_write`] with an in-flight byte buffer as source
    /// (used for control words built in registers rather than memory).
    pub fn sci_write_bytes(&mut self, data: &[u8], dst: (NodeId, MemId, usize)) -> ViaResult<()> {
        let (dn, dmem, doff) = dst;
        self.nodes[dn].sci_write_bytes(data, dmem, doff)
    }

    /// SCI remote *read* (expensive on real hardware — the CHEMPI paper
    /// avoids it; provided for completeness and tests).
    pub fn sci_read_bytes(&mut self, src: (NodeId, MemId, usize), out: &mut [u8]) -> ViaResult<()> {
        let (sn, smem, soff) = src;
        self.nodes[sn].sci_read_bytes(smem, soff, out)
    }

    // ------------------------------------------------------------------
    // The fabric pump
    // ------------------------------------------------------------------

    /// Drain every send queue, route packets, deliver, repeat until
    /// quiescent. Returns the number of packets delivered. Delivery errors
    /// (no receive descriptor, protection) are recorded in the NIC stats and
    /// the VI state; the first one is also returned so tests can assert on
    /// it.
    pub fn pump(&mut self) -> ViaResult<usize> {
        let mut delivered = 0usize;
        let mut first_error: Option<ViaError> = None;
        loop {
            // Collect packets from every node, batched straight into the
            // in-flight queue (no per-VI vector).
            for n in 0..self.nodes.len() {
                self.nodes[n].nic.vi_ids_into(&mut self.vi_scratch);
                for i in 0..self.vi_scratch.len() {
                    let vi = self.vi_scratch[i];
                    if self.nodes[n].nic.vi(vi)?.sends_pending() == 0 {
                        continue;
                    }
                    self.nodes[n].pump_vi_sends_into(vi, n, &mut self.in_flight)?;
                }
            }
            if self.in_flight.is_empty() {
                break;
            }
            // Deliver FIFO; deliveries may spawn response packets
            // (RDMA-read answers) that go back in flight.
            for pkt in std::mem::take(&mut self.in_flight) {
                let dst = pkt.dst_node;
                // Wire faults strike at the receiving NIC's ingress.
                if self.nodes[dst].inject(FaultSite::WireDelay) {
                    self.nodes[dst].nic.stats.wire_delays += 1;
                    self.delayed.push(pkt);
                    continue;
                }
                if self.nodes[dst].inject(FaultSite::WireDrop) {
                    let vi = pkt.dst_vi;
                    self.nodes[dst].pool.put(pkt.payload);
                    if let Err(e) = self.nodes[dst].wire_drop(vi) {
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                    continue;
                }
                if self.nodes[dst].inject(FaultSite::WireDuplicate) {
                    self.nodes[dst].nic.stats.wire_dups += 1;
                    // Reliable VIs suppress the copy (sequence numbers);
                    // unreliable datagrams really arrive twice.
                    let unreliable = self.nodes[dst]
                        .nic
                        .vi(pkt.dst_vi)
                        .map(|v| v.reliability == Reliability::Unreliable)
                        .unwrap_or(false);
                    if unreliable && matches!(pkt.kind, PacketKind::Send) {
                        let node = &mut self.nodes[dst];
                        let payload = node.pool.dup_payload(&pkt.payload, &mut node.nic.stats);
                        self.in_flight.push(Packet {
                            src_node: pkt.src_node,
                            dst_node: dst,
                            dst_vi: pkt.dst_vi,
                            kind: PacketKind::Send,
                            payload,
                            imm: pkt.imm,
                        });
                    }
                }
                match self.nodes[dst].deliver(pkt) {
                    Ok(mut responses) => {
                        delivered += 1;
                        self.in_flight.append(&mut responses);
                    }
                    Err(e) => {
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
            // Delayed packets re-enter the race next round.
            self.in_flight.append(&mut self.delayed);
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(delivered),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, PAGE_SIZE};

    fn two_node_setup(strategy: StrategyKind) -> (ViaSystem, Pid, Pid, ViId, ViId, ProtectionTag) {
        let mut sys = ViaSystem::new(2, KernelConfig::small(), strategy);
        let pa = sys.spawn_process(0);
        let pb = sys.spawn_process(1);
        let tag = ProtectionTag(1);
        let va = sys.create_vi(0, pa, tag).unwrap();
        let vb = sys.create_vi(1, pb, tag).unwrap();
        sys.connect((0, va), (1, vb)).unwrap();
        (sys, pa, pb, va, vb, tag)
    }

    #[test]
    fn send_receive_roundtrip() {
        let (mut sys, pa, pb, va, vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, b"payload!").unwrap();
        let sh = sys.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        let rh = sys.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        sys.post_recv(1, vb, rh, rbuf, PAGE_SIZE).unwrap();
        sys.post_send(0, va, sh, sbuf, 8).unwrap();
        assert_eq!(sys.pump().unwrap(), 1);

        let mut out = [0u8; 8];
        sys.read_user(1, pb, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"payload!");

        // Both sides completed.
        let cs = sys.poll_cq(0, va).unwrap().unwrap();
        assert_eq!(cs.status, crate::descriptor::DescStatus::Done);
        let cr = sys.poll_cq(1, vb).unwrap().unwrap();
        assert_eq!(cr.len, 8);
    }

    #[test]
    fn batch_registration_rolls_back_on_failure() {
        let (mut sys, pa, _pb, _va, _vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let buf = sys
            .mmap(0, pa, 8 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        // A good batch registers everything.
        let ids = sys
            .register_mem_batch(
                0,
                pa,
                &[(buf, PAGE_SIZE), (buf + 4 * PAGE_SIZE as u64, PAGE_SIZE)],
                tag,
            )
            .unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(sys.registry_stats(0).registrations, 2);
        for id in ids {
            sys.deregister_mem(0, id).unwrap();
        }
        // A batch with a bad entry (zero length) leaves no registrations.
        let before = sys.registry_stats(0);
        assert!(sys
            .register_mem_batch(0, pa, &[(buf, PAGE_SIZE), (buf, 0)], tag)
            .is_err());
        let after = sys.registry_stats(0);
        assert_eq!(
            after.registrations - before.registrations,
            after.deregistrations - before.deregistrations,
            "failed batch fully rolled back"
        );
        assert_eq!(sys.node(0).registry.live_regions(), 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn batch_rollback_tolerates_exit_race() {
        let (mut sys, pa, _pb, _va, _vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let buf = sys
            .mmap(0, pa, 4 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let ids = sys
            .register_mem_batch(
                0,
                pa,
                &[(buf, PAGE_SIZE), (buf + 2 * PAGE_SIZE as u64, PAGE_SIZE)],
                tag,
            )
            .unwrap();
        // A process exit tears the regions down before the rollback runs —
        // the race a failing batch can lose. Already-gone ids must be
        // tolerated (nothing leaked), not surfaced as rollback failure.
        sys.exit_process(0, pa).unwrap();
        sys.rollback_batch(0, ids).unwrap();
        assert_eq!(sys.node(0).registry.live_regions(), 0);
        sys.check_invariants().unwrap();
    }

    #[test]
    fn ondemand_send_receive_repins_on_access() {
        let (mut sys, pa, pb, va, vb, tag) = two_node_setup(StrategyKind::OnDemand);
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, b"lazy payload").unwrap();
        let sh = sys.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        let rh = sys.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        // Registration pinned nothing: the span is reserved, not resident.
        assert_eq!(sys.registry_stats(0).pages_pinned, 0);
        sys.post_recv(1, vb, rh, rbuf, PAGE_SIZE).unwrap();
        sys.post_send(0, va, sh, sbuf, 12).unwrap();
        assert_eq!(sys.pump().unwrap(), 1);
        let mut out = [0u8; 12];
        sys.read_user(1, pb, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"lazy payload");
        // Both sides faulted their page resident on first DMA.
        assert_eq!(sys.node(0).nic.stats.repins, 1);
        assert_eq!(sys.node(1).nic.stats.repins, 1);
        assert_eq!(sys.registry_stats(0).pages_pinned, 1);
        assert!(sys.registry_stats(0).protection_faults >= 1);
        sys.check_invariants().unwrap();

        // Pressure: dissolve the sender's lazy pin as the page stealer
        // would; the next send drains the invalidation, faults, repins.
        let frames = sys.kernel_mut(0).lazy_pinned_frames();
        assert_eq!(frames.len(), 1);
        sys.kernel_mut(0).test_dissolve_lazy_pins(frames[0].0);
        sys.post_recv(1, vb, rh, rbuf, PAGE_SIZE).unwrap();
        sys.post_send(0, va, sh, sbuf, 12).unwrap();
        assert_eq!(sys.pump().unwrap(), 1);
        assert_eq!(sys.node(0).nic.stats.repins, 2);
        assert!(sys.node(0).nic.stats.tpt_invalidations >= 1);
        sys.check_invariants().unwrap();

        // Deregistration drains the surviving lazy pins.
        sys.deregister_mem(0, sh).unwrap();
        sys.deregister_mem(1, rh).unwrap();
        sys.check_invariants().unwrap();
    }

    #[test]
    fn ondemand_repin_failure_completes_repin_failed() {
        let (mut sys, pa, pb, va, vb, tag) = two_node_setup(StrategyKind::OnDemand);
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, b"blocked").unwrap();
        let sh = sys.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        let rh = sys.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        sys.post_recv(1, vb, rh, rbuf, PAGE_SIZE).unwrap();
        sys.post_send(0, va, sh, sbuf, 7).unwrap();
        // The sender's first (and only) lazy-pin attempt is refused.
        sys.install_fault_plan(&vialock::fault::handle(
            vialock::FaultPlan::new(21).fail(FaultSite::LazyPin, 1),
        ));
        assert_eq!(sys.pump().unwrap(), 0, "nothing crossed the wire");
        let c = sys.poll_cq(0, va).unwrap().unwrap();
        assert_eq!(c.status, crate::descriptor::DescStatus::RepinFailed);
        assert_eq!(sys.node(0).nic.stats.repin_failures, 1);
        assert_eq!(sys.node(0).nic.stats.protection_errors, 0);
        assert_eq!(
            sys.node(0).nic.vi(va).unwrap().state,
            ViState::Connected,
            "degradation is per-descriptor; the connection survives"
        );
        sys.check_invariants().unwrap();
        // The transient gone, the same exchange succeeds.
        sys.post_send(0, va, sh, sbuf, 7).unwrap();
        assert_eq!(sys.pump().unwrap(), 1);
        let mut out = [0u8; 7];
        sys.read_user(1, pb, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"blocked");
        sys.check_invariants().unwrap();
    }

    #[test]
    fn send_without_recv_breaks_connection() {
        let (mut sys, pa, _pb, va, vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, b"x").unwrap();
        let sh = sys.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        sys.post_send(0, va, sh, sbuf, 1).unwrap();
        assert_eq!(sys.pump(), Err(ViaError::NoRecvDescriptor));
        assert_eq!(sys.node(1).nic.vi(vb).unwrap().state, ViState::Error);
        assert_eq!(sys.node(1).nic.stats.dropped, 1);
        // Further posts on the broken VI are refused.
        assert_eq!(
            sys.post_recv(1, vb, MemId(1), 0, 1),
            Err(ViaError::Disconnected)
        );
    }

    #[test]
    fn rdma_write_roundtrip() {
        let (mut sys, pa, pb, va, _vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, b"one-sided").unwrap();
        let sh = sys.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        let rh = sys.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        // No receive descriptor needed: one-sided.
        sys.post_rdma_write(0, va, sh, sbuf, 9, rh, rbuf).unwrap();
        sys.pump().unwrap();
        let mut out = [0u8; 9];
        sys.read_user(1, pb, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"one-sided");
    }

    #[test]
    fn protection_tag_mismatch_refused() {
        let mut sys = ViaSystem::new(2, KernelConfig::small(), StrategyKind::KiobufReliable);
        let pa = sys.spawn_process(0);
        let pb = sys.spawn_process(1);
        let va = sys.create_vi(0, pa, ProtectionTag(1)).unwrap();
        let vb = sys.create_vi(1, pb, ProtectionTag(2)).unwrap();
        sys.connect((0, va), (1, vb)).unwrap();
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        // Buffer registered with a DIFFERENT tag than the VI.
        let sh = sys
            .register_mem(0, pa, sbuf, PAGE_SIZE, ProtectionTag(9))
            .unwrap();
        sys.post_send(0, va, sh, sbuf, 4).unwrap();
        sys.pump().unwrap();
        let c = sys.poll_cq(0, va).unwrap().unwrap();
        assert_eq!(c.status, crate::descriptor::DescStatus::ProtectionError);
        assert_eq!(sys.node(0).nic.stats.protection_errors, 1);
        assert_eq!(sys.node(1).nic.stats.recvs, 0, "no data transferred");
    }

    #[test]
    fn recv_too_small_is_dropped() {
        let (mut sys, pa, pb, va, vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, &[9u8; 128]).unwrap();
        let sh = sys.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        let rh = sys.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        sys.post_recv(1, vb, rh, rbuf, 16).unwrap(); // too small
        sys.post_send(0, va, sh, sbuf, 128).unwrap();
        assert!(matches!(
            sys.pump(),
            Err(ViaError::RecvTooSmall {
                need: 128,
                have: 16
            })
        ));
        assert_eq!(sys.node(1).nic.vi(vb).unwrap().state, ViState::Error);
    }

    #[test]
    fn multi_page_transfer() {
        let (mut sys, pa, pb, va, vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let len = 5 * PAGE_SIZE + 123;
        let total = 6 * PAGE_SIZE;
        let sbuf = sys.mmap(0, pa, total, prot::READ | prot::WRITE).unwrap();
        let rbuf = sys.mmap(1, pb, total, prot::READ | prot::WRITE).unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 255) as u8).collect();
        sys.write_user(0, pa, sbuf, &data).unwrap();
        let sh = sys.register_mem(0, pa, sbuf, total, tag).unwrap();
        let rh = sys.register_mem(1, pb, rbuf, total, tag).unwrap();
        sys.post_recv(1, vb, rh, rbuf, total).unwrap();
        sys.post_send(0, va, sh, sbuf, len).unwrap();
        sys.pump().unwrap();
        let mut out = vec![0u8; len];
        sys.read_user(1, pb, rbuf, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(sys.node(0).nic.stats.bytes_tx as usize, len);
        assert_eq!(sys.node(1).nic.stats.bytes_rx as usize, len);
    }

    #[test]
    fn sci_pio_write_and_read() {
        let (mut sys, pa, pb, _va, _vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        // Receiver exports a segment; sender PIO-writes into it.
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let seg = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, b"PIO store").unwrap();
        let exported = sys.register_mem(1, pb, seg, PAGE_SIZE, tag).unwrap();
        sys.sci_write((0, pa, sbuf), 9, (1, exported, 100)).unwrap();
        // Visible to the receiving process through plain loads.
        let mut out = [0u8; 9];
        sys.read_user(1, pb, seg + 100, &mut out).unwrap();
        assert_eq!(&out, b"PIO store");
        // And to remote readers.
        let mut back = [0u8; 9];
        sys.sci_read_bytes((1, exported, 100), &mut back).unwrap();
        assert_eq!(&back, b"PIO store");
        // Bounds enforced.
        assert_eq!(
            sys.sci_write_bytes(&[0u8; 8], (1, exported, PAGE_SIZE - 4)),
            Err(ViaError::OutOfBounds)
        );
    }

    #[test]
    fn rdma_read_roundtrip() {
        let (mut sys, pa, pb, va, _vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let lbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(1, pb, rbuf, b"remote bytes").unwrap();
        let lh = sys.register_mem(0, pa, lbuf, PAGE_SIZE, tag).unwrap();
        // The remote region must carry the RDMA-read enable attribute.
        let rh = sys
            .node_mut(1)
            .register_mem_attrs(pb, rbuf, PAGE_SIZE, tag, true, true)
            .unwrap();
        sys.post_rdma_read(0, va, lh, lbuf, 12, rh, rbuf).unwrap();
        sys.pump().unwrap();
        // Completion at the requester with the fetched data in place.
        let c = sys.poll_cq(0, va).unwrap().unwrap();
        assert_eq!(c.op, crate::descriptor::DescOp::RdmaRead);
        assert_eq!(c.len, 12);
        let mut out = [0u8; 12];
        sys.read_user(0, pa, lbuf, &mut out).unwrap();
        assert_eq!(&out, b"remote bytes");
        assert_eq!(sys.node(0).nic.stats.rdma_reads, 1);
    }

    #[test]
    fn rdma_read_requires_read_enable() {
        let (mut sys, pa, pb, va, _vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let lbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let lh = sys.register_mem(0, pa, lbuf, PAGE_SIZE, tag).unwrap();
        // Default attributes: rdma_read disabled.
        let rh = sys.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        sys.post_rdma_read(0, va, lh, lbuf, 8, rh, rbuf).unwrap();
        assert_eq!(sys.pump(), Err(ViaError::RdmaDisabled));
        assert_eq!(sys.node(1).nic.stats.protection_errors, 1);
    }

    #[test]
    fn client_server_handshake() {
        let mut sys = ViaSystem::new(2, KernelConfig::small(), StrategyKind::KiobufReliable);
        let server = sys.spawn_process(0);
        let client = sys.spawn_process(1);
        let tag = ProtectionTag(1);
        let sv = sys.create_vi(0, server, tag).unwrap();
        let cv = sys.create_vi(1, client, tag).unwrap();
        // No listener yet: request fails.
        assert!(sys.connect_request((1, cv), 0, 0xBEEF).is_err());
        // Server parks on the discriminator.
        sys.connect_wait(0, sv, 0xBEEF).unwrap();
        assert_eq!(sys.node(0).nic.vi(sv).unwrap().state, ViState::Listening);
        // Duplicate listener refused.
        let sv2 = sys.create_vi(0, server, tag).unwrap();
        assert!(sys.connect_wait(0, sv2, 0xBEEF).is_err());
        // Client connects.
        sys.connect_request((1, cv), 0, 0xBEEF).unwrap();
        assert_eq!(sys.node(0).nic.vi(sv).unwrap().state, ViState::Connected);
        assert_eq!(sys.node(1).nic.vi(cv).unwrap().state, ViState::Connected);
        // Discriminator consumed.
        let cv2 = sys.create_vi(1, client, tag).unwrap();
        assert!(sys.connect_request((1, cv2), 0, 0xBEEF).is_err());
    }

    #[test]
    fn disconnect_flushes_descriptors() {
        let (mut sys, pa, pb, va, vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let rbuf = sys
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rh = sys.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        sys.post_recv(1, vb, rh, rbuf, PAGE_SIZE).unwrap();
        sys.disconnect(0, va).unwrap();
        // Both ends idle, the pre-posted receive completed as Dropped.
        assert_eq!(sys.node(0).nic.vi(va).unwrap().state, ViState::Idle);
        assert_eq!(sys.node(1).nic.vi(vb).unwrap().state, ViState::Idle);
        let c = sys.poll_cq(1, vb).unwrap().unwrap();
        assert_eq!(c.status, crate::descriptor::DescStatus::Dropped);
        // The pair can reconnect and work again.
        sys.connect((0, va), (1, vb)).unwrap();
        let sbuf = sys
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, b"again").unwrap();
        let sh = sys.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        sys.post_recv(1, vb, rh, rbuf, PAGE_SIZE).unwrap();
        sys.post_send(0, va, sh, sbuf, 5).unwrap();
        sys.pump().unwrap();
        let mut out = [0u8; 5];
        sys.read_user(1, pb, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"again");
    }

    #[test]
    fn multi_segment_gather_scatter() {
        let (mut sys, pa, pb, va, vb, tag) = two_node_setup(StrategyKind::KiobufReliable);
        let sbuf = sys
            .mmap(0, pa, 2 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(1, pb, 2 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, pa, sbuf, b"AAAA").unwrap();
        sys.write_user(0, pa, sbuf + 1000, b"BBBB").unwrap();
        let sh = sys.register_mem(0, pa, sbuf, 2 * PAGE_SIZE, tag).unwrap();
        let rh = sys.register_mem(1, pb, rbuf, 2 * PAGE_SIZE, tag).unwrap();
        // Gather from two disjoint segments, scatter into two.
        let mut send = Descriptor::send(sh, sbuf, 4);
        send.segs.push(crate::descriptor::DataSeg {
            mem: sh,
            addr: sbuf + 1000,
            len: 4,
        });
        let mut recv = Descriptor::recv(rh, rbuf + 100, 5);
        recv.segs.push(crate::descriptor::DataSeg {
            mem: rh,
            addr: rbuf + 500,
            len: 5,
        });
        sys.post_recv_desc(1, vb, recv).unwrap();
        sys.post_send_desc(0, va, send.with_imm(0xCAFE)).unwrap();
        sys.pump().unwrap();
        let c = sys.poll_cq(1, vb).unwrap().unwrap();
        assert_eq!(c.len, 8);
        assert_eq!(c.imm, Some(0xCAFE), "immediate data delivered");
        // First 5 bytes to the first segment, remaining 3 to the second.
        let mut a = [0u8; 5];
        sys.read_user(1, pb, rbuf + 100, &mut a).unwrap();
        assert_eq!(&a, b"AAAAB");
        let mut b2 = [0u8; 3];
        sys.read_user(1, pb, rbuf + 500, &mut b2).unwrap();
        assert_eq!(&b2, b"BBB");
    }

    #[test]
    fn loopback_on_one_node() {
        // Two processes on the same node, VIs connected node-locally.
        let mut sys = ViaSystem::new(1, KernelConfig::small(), StrategyKind::KiobufReliable);
        let p1 = sys.spawn_process(0);
        let p2 = sys.spawn_process(0);
        let tag = ProtectionTag(3);
        let v1 = sys.create_vi(0, p1, tag).unwrap();
        let v2 = sys.create_vi(0, p2, tag).unwrap();
        sys.connect((0, v1), (0, v2)).unwrap();
        let sbuf = sys
            .mmap(0, p1, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = sys
            .mmap(0, p2, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        sys.write_user(0, p1, sbuf, b"local").unwrap();
        let sh = sys.register_mem(0, p1, sbuf, PAGE_SIZE, tag).unwrap();
        let rh = sys.register_mem(0, p2, rbuf, PAGE_SIZE, tag).unwrap();
        sys.post_recv(0, v2, rh, rbuf, PAGE_SIZE).unwrap();
        sys.post_send(0, v1, sh, sbuf, 5).unwrap();
        sys.pump().unwrap();
        let mut out = [0u8; 5];
        sys.read_user(0, p2, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"local");
    }
}
