//! The NIC and its host node: descriptor processing, DMA through the TPT,
//! and the kernel agent's registration trap.
//!
//! All data movement uses [`simmem::Kernel::dma_read`] /
//! [`simmem::Kernel::dma_write`] with the **frame numbers stored in the
//! TPT** — the NIC never consults page tables. A stale TPT (unreliable
//! pinning + memory pressure) therefore reads/writes orphaned frames,
//! invisible to the process, with no crash: precisely the failure mode the
//! paper's locktest observes ("the first page still contained its original
//! value").

use std::collections::BTreeMap;

use simmem::{Kernel, Pid, VirtAddr, PAGE_SIZE};
use vialock::{impl_since, FaultHandle, FaultSite, MemoryRegistry, StrategyKind};

use crate::descriptor::{DescOp, DescStatus, Descriptor};
use crate::error::{ViaError, ViaResult};
use crate::tpt::{Access, DmaRun, MemId, ProtectionTag, Tpt};
use crate::vi::{Completion, Reliability, ViId, ViState, VirtualInterface};

/// Default TPT capacity in pages (Giganet's cLAN shipped with a 1 Mi-entry
/// table; we default far smaller so capacity effects are testable).
pub const DEFAULT_TPT_PAGES: usize = 4096;

/// NIC counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct NicStats {
    pub sends: u64,
    pub recvs: u64,
    pub rdma_writes: u64,
    pub rdma_reads: u64,
    pub bytes_tx: u64,
    pub bytes_rx: u64,
    /// Messages dropped for lack of a receive descriptor.
    pub dropped: u64,
    /// Accesses refused by protection checks.
    pub protection_errors: u64,
    /// Data-path translations served from a VI's mini-TLB.
    pub tlb_hits: u64,
    /// Data-path translations that walked the TPT directory.
    pub tlb_misses: u64,
    /// DMA burst operations issued (one per physically contiguous run).
    pub dma_ops: u64,
    /// Payload buffers recycled from the packet pool (zero-alloc path).
    pub pool_recycled: u64,
    /// Payload buffers that needed a fresh heap allocation.
    pub payload_allocs: u64,
    /// Packets the (injected) wire dropped.
    pub wire_drops: u64,
    /// Packets the (injected) wire duplicated.
    pub wire_dups: u64,
    /// Packets the (injected) wire delayed past later traffic.
    pub wire_delays: u64,
    /// Completions lost to a full (or fault-injected) completion queue.
    pub cq_overruns: u64,
    /// Descriptors completed with an error status instead of `Done`.
    pub desc_errors: u64,
    /// Atomic CAS descriptors issued from this node (requester side).
    pub atomic_cas: u64,
    /// Target-side CAS executions whose compare matched (swap applied).
    pub cas_applied: u64,
    /// On-demand pages the kernel agent repinned after the NIC faulted on
    /// a non-resident TPT entry.
    pub repins: u64,
    /// Repin attempts that failed (pin refused under pressure or swap
    /// exhaustion); the affected descriptor degraded with
    /// [`DescStatus::RepinFailed`].
    pub repin_failures: u64,
    /// TPT entries marked non-resident by draining the kernel's lazy-unpin
    /// queue (the pressure path's NIC-side echo).
    pub tpt_invalidations: u64,
}

impl_since!(NicStats {
    sends,
    recvs,
    rdma_writes,
    rdma_reads,
    bytes_tx,
    bytes_rx,
    dropped,
    protection_errors,
    tlb_hits,
    tlb_misses,
    dma_ops,
    pool_recycled,
    payload_allocs,
    wire_drops,
    wire_dups,
    wire_delays,
    cq_overruns,
    desc_errors,
    atomic_cas,
    cas_applied,
    repins,
    repin_failures,
    tpt_invalidations,
});

/// Recycling free list for packet payload buffers. Buffers keep their
/// capacity across uses, so a steady-state exchange allocates nothing per
/// message: `take` pops and resizes in place, `put` returns the buffer.
#[derive(Debug)]
pub struct PacketPool {
    free: Vec<Vec<u8>>,
    max_free: usize,
    /// Buffers handed out ([`PacketPool::take`] with `len > 0`).
    takes: u64,
    /// Buffers returned (capacity > 0; counted even when the free list is
    /// full and the buffer is dropped).
    puts: u64,
}

impl Default for PacketPool {
    fn default() -> Self {
        PacketPool {
            free: Vec::new(),
            max_free: 64,
            takes: 0,
            puts: 0,
        }
    }
}

impl PacketPool {
    /// A zeroed buffer of exactly `len` bytes, recycled when possible.
    /// Zero-length requests get an unaccounted dummy (capacity 0) so the
    /// take/put ledger only tracks real buffers.
    fn take(&mut self, len: usize, stats: &mut NicStats) -> Vec<u8> {
        if len == 0 {
            return Vec::new();
        }
        self.takes += 1;
        match self.free.pop() {
            Some(mut buf) => {
                if buf.capacity() >= len {
                    stats.pool_recycled += 1;
                } else {
                    stats.payload_allocs += 1;
                }
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                stats.payload_allocs += 1;
                vec![0u8; len]
            }
        }
    }

    /// Return a payload buffer to the free list (bounded; excess buffers
    /// are dropped but still accounted; zero-capacity dummies are ignored).
    pub(crate) fn put(&mut self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        self.puts += 1;
        if self.free.len() < self.max_free {
            self.free.push(buf);
        }
    }

    /// A pool-accounted copy of `data` — used when the faulty wire
    /// duplicates a packet, so the duplicate's buffer balances the ledger
    /// when the receiver returns it.
    pub(crate) fn dup_payload(&mut self, data: &[u8], stats: &mut NicStats) -> Vec<u8> {
        let mut buf = self.take(data.len(), stats);
        buf.copy_from_slice(data);
        buf
    }

    /// Buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Buffers taken minus buffers returned: with no packets in flight this
    /// is zero for the whole fabric (summed over nodes — buffers migrate
    /// from the sender's pool to the receiver's).
    pub fn outstanding(&self) -> i64 {
        self.takes as i64 - self.puts as i64
    }
}

/// A packet in flight on the fabric.
#[derive(Debug)]
pub struct Packet {
    pub src_node: usize,
    pub dst_node: usize,
    pub dst_vi: ViId,
    pub kind: PacketKind,
    pub payload: Vec<u8>,
    pub imm: Option<u32>,
}

/// What kind of transfer a packet carries.
#[derive(Debug)]
pub enum PacketKind {
    /// Two-sided send: matched against the peer's receive queue.
    Send,
    /// One-sided RDMA write: the target names its own registered memory.
    RdmaWrite {
        remote_mem: MemId,
        remote_addr: VirtAddr,
    },
    /// RDMA-read request: the target gathers `len` bytes at
    /// `(remote_mem, remote_addr)` and answers with a
    /// [`PacketKind::RdmaReadResp`].
    RdmaReadReq {
        remote_mem: MemId,
        remote_addr: VirtAddr,
        len: usize,
        /// VI at the requester to route the response back to.
        reply_vi: ViId,
    },
    /// RDMA-read response: payload for the oldest pending read of the
    /// destination VI.
    RdmaReadResp,
    /// Atomic compare-and-swap request on an aligned u64 at
    /// `(remote_mem, remote_addr)`. Payload: compare(8) ‖ swap(8), LE.
    /// The target executes the read-compare-conditional-write indivisibly
    /// (its service thread is the only writer of its memory) and answers
    /// with a [`PacketKind::AtomicCasResp`].
    AtomicCasReq {
        remote_mem: MemId,
        remote_addr: VirtAddr,
        /// VI at the requester to route the response back to.
        reply_vi: ViId,
    },
    /// CAS response: on `ok` the payload carries the old value (8 bytes);
    /// on a protection refusal the payload is empty and the requester's
    /// parked descriptor completes with `ProtectionError` instead of
    /// hanging.
    AtomicCasResp { ok: bool },
}

/// The NIC: TPT, VIs and counters.
pub struct Nic {
    pub tpt: Tpt,
    vis: BTreeMap<ViId, VirtualInterface>,
    next_vi: u32,
    pub stats: NicStats,
    /// A/B switch for benchmarking: replay the pre-overhaul data path
    /// (per-page translation, no TLB, fresh `Vec` per message).
    pub legacy_datapath: bool,
}

impl Nic {
    pub fn new(tpt_pages: usize) -> Self {
        Nic {
            tpt: Tpt::new(tpt_pages),
            vis: BTreeMap::new(),
            next_vi: 0,
            stats: NicStats::default(),
            legacy_datapath: false,
        }
    }

    /// `VipCreateVi`: allocate a VI bound to `pid` with protection `tag`.
    pub fn create_vi(&mut self, pid: Pid, tag: ProtectionTag) -> ViId {
        let id = ViId(self.next_vi);
        self.next_vi += 1;
        self.vis.insert(id, VirtualInterface::new(id, pid, tag));
        id
    }

    pub fn vi(&self, id: ViId) -> ViaResult<&VirtualInterface> {
        self.vis.get(&id).ok_or(ViaError::BadId("vi"))
    }

    pub fn vi_mut(&mut self, id: ViId) -> ViaResult<&mut VirtualInterface> {
        self.vis.get_mut(&id).ok_or(ViaError::BadId("vi"))
    }

    /// Number of VIs.
    pub fn vi_count(&self) -> usize {
        self.vis.len()
    }

    /// Iterate VI ids (for the fabric pump).
    pub fn vi_ids(&self) -> Vec<ViId> {
        self.vis.keys().copied().collect()
    }

    /// Refill `out` with the VI ids without allocating a fresh vector
    /// (the fabric pump calls this every iteration).
    pub fn vi_ids_into(&self, out: &mut Vec<ViId>) {
        out.clear();
        out.extend(self.vis.keys().copied());
    }

    /// Resolve a span into contiguous-frame DMA runs through `vi_id`'s
    /// mini-TLB, charging the hit/miss counters. The VI's protection tag
    /// is checked against the region exactly as in per-page translation.
    pub fn translate_range(
        &mut self,
        vi_id: ViId,
        mem: MemId,
        addr: VirtAddr,
        len: usize,
        access: Access,
        out: &mut Vec<DmaRun>,
    ) -> ViaResult<()> {
        let vi = self.vis.get_mut(&vi_id).ok_or(ViaError::BadId("vi"))?;
        let hit = self
            .tpt
            .translate_range_tlb(&mut vi.tlb, mem, addr, len, vi.tag, access, out)?;
        if hit {
            self.stats.tlb_hits += 1;
        } else {
            self.stats.tlb_misses += 1;
        }
        Ok(())
    }
}

/// One cluster node: a simulated kernel, its NIC and the kernel agent's
/// registration front-end.
pub struct Node {
    pub kernel: Kernel,
    pub nic: Nic,
    pub registry: MemoryRegistry,
    /// Recycled payload buffers for outgoing packets; incoming payloads are
    /// returned here after scatter, so a steady exchange is allocation-free.
    pub pool: PacketPool,
    /// Scratch run list reused across gathers/scatters (no per-message
    /// allocation once it reaches its high-water mark).
    run_scratch: Vec<DmaRun>,
}

/// Bounded pin retries the node's kernel agent attempts on a `WouldBlock`
/// before the registration path degrades or fails.
const NODE_PIN_RETRIES: u32 = 3;

impl Node {
    pub fn new(config: simmem::KernelConfig, strategy: StrategyKind, tpt_pages: usize) -> Self {
        // The node-level kernel agent registers with bounded retry and, for
        // the kiobuf strategy, the mlock degradation chain; the raw
        // `MemoryRegistry` default (fail fast) stays available for the
        // strategy-comparison experiments.
        let mut registry = MemoryRegistry::new(strategy).with_retry(NODE_PIN_RETRIES);
        if strategy == StrategyKind::KiobufReliable {
            registry = registry.with_fallback();
        }
        Node {
            kernel: Kernel::new(config),
            nic: Nic::new(tpt_pages),
            registry,
            pool: PacketPool::default(),
            run_scratch: Vec::new(),
        }
    }

    /// Route every named fault site of this node — kernel, NIC and wire —
    /// through the shared seeded plan.
    pub fn install_fault_plan(&mut self, plan: &FaultHandle) {
        self.kernel
            .set_injector(Some(vialock::fault::kernel_hook(plan)));
    }

    /// Consult the fault plan (if any) for a VIA-layer site.
    #[inline]
    pub(crate) fn inject(&mut self, site: FaultSite) -> bool {
        self.kernel.inject(site.code())
    }

    /// Push a completion onto a VI's CQ, modelling completion-queue
    /// overrun: on a full (or fault-injected) CQ the completion is lost,
    /// the VI is broken and [`ViaError::CqOverrun`] is returned.
    fn push_completion(&mut self, vi_id: ViId, c: Completion) -> ViaResult<()> {
        let forced = self.inject(FaultSite::CqOverrun);
        if c.status.is_error() {
            self.nic.stats.desc_errors += 1;
        }
        let vi = self.nic.vi_mut(vi_id)?;
        if forced || !vi.push_completion(c) {
            vi.state = ViState::Error;
            self.nic.stats.cq_overruns += 1;
            return Err(ViaError::CqOverrun);
        }
        Ok(())
    }

    /// Receive-side reaction to a wire loss. On a reliable VI the fabric
    /// guaranteed delivery, so a loss is a transport error: the oldest
    /// posted receive descriptor completes with
    /// [`DescStatus::TransportError`] and the connection breaks. An
    /// unreliable VI just counts the drop (datagrams may vanish).
    pub(crate) fn wire_drop(&mut self, vi_id: ViId) -> ViaResult<()> {
        self.nic.stats.wire_drops += 1;
        let vi = self.nic.vi_mut(vi_id)?;
        if vi.reliability == Reliability::Unreliable {
            return Ok(());
        }
        vi.state = ViState::Error;
        let lost = vi.recv_q.pop_front();
        if let Some(d) = lost {
            self.push_completion(
                vi_id,
                Completion {
                    vi: vi_id,
                    op: d.op,
                    status: DescStatus::TransportError,
                    len: 0,
                    imm: d.imm,
                },
            )?;
        }
        Ok(())
    }

    /// Tear down everything a process owns on this node: every TPT entry
    /// and registration (pins, mlock intervals), every VI, and finally the
    /// process itself. This is the kernel agent's `release` callback — the
    /// guarantee that an exiting process leaks nothing no matter what it
    /// had registered.
    pub fn exit_process(&mut self, pid: Pid) -> ViaResult<()> {
        for mem_id in self.nic.tpt.region_ids_for_pid(pid) {
            self.deregister_mem(mem_id)?;
        }
        // Break and flush the process' VIs: queued descriptors complete as
        // Dropped (best effort — an already-full CQ loses them), parked
        // reads are abandoned.
        for vi_id in self.nic.vi_ids() {
            let vi = self.nic.vi_mut(vi_id)?;
            if vi.pid != pid {
                continue;
            }
            vi.state = ViState::Error;
            vi.pending_reads.clear();
            while let Some(d) = vi.send_q.pop_front().or_else(|| vi.recv_q.pop_front()) {
                let _ = vi.push_completion(Completion {
                    vi: vi_id,
                    op: d.op,
                    status: DescStatus::Dropped,
                    len: 0,
                    imm: d.imm,
                });
            }
        }
        self.kernel.exit_process(pid)?;
        Ok(())
    }

    /// `VipRegisterMem`: the trap into the kernel agent. Pins the region
    /// with the configured strategy and fills the TPT with the physical
    /// frames. RDMA-write is enabled by default (the common MPI setting).
    pub fn register_mem(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
    ) -> ViaResult<MemId> {
        self.register_mem_attrs(pid, addr, len, tag, true, false)
    }

    /// `VipRegisterMem` with explicit RDMA attributes.
    pub fn register_mem_attrs(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
        rdma_write: bool,
        rdma_read: bool,
    ) -> ViaResult<MemId> {
        let handle = self.registry.register(&mut self.kernel, pid, addr, len)?;
        // Residency view: eager strategies yield one `Some` per page; an
        // on-demand region yields all-`None` slots that fault on first DMA.
        let frames = self.registry.tpt_frames(handle)?;
        if self.inject(FaultSite::TptFull) {
            // Injected TPT exhaustion: identical to the organic full-table
            // path below, pin rolled back.
            self.registry.deregister(&mut self.kernel, handle)?;
            return Err(ViaError::Reg(vialock::RegError::LimitExceeded));
        }
        match self
            .nic
            .tpt
            .insert_region(handle, pid, addr, len, &frames, tag, rdma_write, rdma_read)
        {
            Ok(mem_id) => Ok(mem_id),
            Err(e) => {
                // TPT full: undo the pin.
                self.registry.deregister(&mut self.kernel, handle)?;
                Err(e)
            }
        }
    }

    /// `VipDeregisterMem`.
    pub fn deregister_mem(&mut self, mem_id: MemId) -> ViaResult<()> {
        let region = self.nic.tpt.remove_region(mem_id)?;
        self.registry
            .deregister(&mut self.kernel, region.reg_handle)?;
        Ok(())
    }

    /// Pull the kernel's pending lazy-unpin invalidations into the TPT:
    /// every entry backed by a stolen frame goes non-resident and the
    /// generation bump flushes TLB-cached descriptors. The kernel cannot
    /// call upward into the NIC, so this pull — run before every
    /// translation — is the unpin → TPT coherence edge. Returns the number
    /// of entries invalidated.
    pub fn sync_lazy_invalidations(&mut self) -> usize {
        let mut n = 0usize;
        for frame in self.registry.drain_lazy_invalidations(&mut self.kernel) {
            n += self.nic.tpt.invalidate_frame(frame);
        }
        self.nic.stats.tpt_invalidations += n as u64;
        n
    }

    /// Answer one NIC residency fault: lazy-pin the page through the
    /// registry and install the frame in the TPT. A refused pin (pressure,
    /// swap exhaustion, fault injection) degrades typed as
    /// [`ViaError::Repin`].
    fn repin_page(&mut self, mem: MemId, page: usize) -> ViaResult<()> {
        let handle = self.nic.tpt.region(mem)?.reg_handle;
        match self.registry.pin_on_access(&mut self.kernel, handle, page) {
            Ok(frame) => {
                self.nic.tpt.set_frame(mem, page, frame)?;
                self.nic.stats.repins += 1;
                Ok(())
            }
            Err(e) => {
                self.nic.stats.repin_failures += 1;
                Err(ViaError::Repin(e))
            }
        }
    }

    /// [`Nic::translate_range`] with the on-demand fault loop: a
    /// [`ViaError::NotResident`] translation traps to the kernel agent,
    /// which pins the page, installs the frame and retries. Each retry
    /// makes one page resident, so the loop is bounded by the span's page
    /// count (doubled: a pin may itself trigger reclaim that steals an
    /// earlier page of the span); exhaustion degrades typed rather than
    /// spinning.
    fn translate_range_faulting(
        &mut self,
        vi_id: ViId,
        mem: MemId,
        addr: VirtAddr,
        len: usize,
        access: Access,
        out: &mut Vec<DmaRun>,
    ) -> ViaResult<()> {
        let budget = 2 * (len / PAGE_SIZE + 2);
        for _ in 0..budget {
            self.sync_lazy_invalidations();
            out.clear();
            match self.nic.translate_range(vi_id, mem, addr, len, access, out) {
                Err(ViaError::NotResident { page }) => self.repin_page(mem, page)?,
                r => return r,
            }
        }
        Err(ViaError::Repin(vialock::RegError::WouldBlock))
    }

    /// Raw-TPT counterpart of [`Node::translate_range_faulting`] for paths
    /// without a VI (SCI PIO uses the region's own tag).
    fn tpt_translate_range_faulting(
        &mut self,
        mem: MemId,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
        access: Access,
        out: &mut Vec<DmaRun>,
    ) -> ViaResult<()> {
        let budget = 2 * (len / PAGE_SIZE + 2);
        for _ in 0..budget {
            self.sync_lazy_invalidations();
            out.clear();
            match self
                .nic
                .tpt
                .translate_range(mem, addr, len, tag, access, out)
            {
                Err(ViaError::NotResident { page }) => self.repin_page(mem, page)?,
                r => return r,
            }
        }
        Err(ViaError::Repin(vialock::RegError::WouldBlock))
    }

    /// Gather the bytes of a send/RDMA descriptor out of physical memory
    /// through the TPT (the NIC-side DMA read): one burst DMA per
    /// physically contiguous frame run, into a pooled payload buffer.
    fn gather(&mut self, vi_id: ViId, desc: &Descriptor) -> ViaResult<Vec<u8>> {
        if self.nic.legacy_datapath {
            let tag = self.nic.vi(vi_id)?.tag;
            return self.gather_legacy(tag, desc);
        }
        let total = desc.total_len();
        let mut out = self.pool.take(total, &mut self.nic.stats);
        let mut base = 0usize;
        let mut runs = std::mem::take(&mut self.run_scratch);
        let r = (|| {
            for seg in &desc.segs {
                self.translate_range_faulting(
                    vi_id,
                    seg.mem,
                    seg.addr,
                    seg.len,
                    Access::Local,
                    &mut runs,
                )?;
                for run in &runs {
                    self.kernel.dma_read_run(
                        run.frame,
                        run.offset,
                        &mut out[base..base + run.len],
                    )?;
                    self.nic.stats.dma_ops += 1;
                    base += run.len;
                }
            }
            Ok(())
        })();
        self.run_scratch = runs;
        match r {
            Ok(()) => {
                debug_assert_eq!(base, total);
                Ok(out)
            }
            Err(e) => {
                self.pool.put(out);
                Err(e)
            }
        }
    }

    /// The pre-overhaul gather: per-page translate, fresh `Vec` grown
    /// chunk-by-chunk. Kept behind [`Nic::legacy_datapath`] so the bench
    /// can A/B the two paths in one binary.
    fn gather_legacy(&self, vi_tag: ProtectionTag, desc: &Descriptor) -> ViaResult<Vec<u8>> {
        let mut out = Vec::with_capacity(desc.total_len());
        for seg in &desc.segs {
            let mut remaining = seg.len;
            let mut addr = seg.addr;
            while remaining > 0 {
                let (frame, off) = self
                    .nic
                    .tpt
                    .translate(seg.mem, addr, vi_tag, Access::Local)?;
                let chunk = remaining.min(PAGE_SIZE - off);
                let base = out.len();
                out.resize(base + chunk, 0);
                self.kernel
                    .dma_read(frame, off, &mut out[base..base + chunk])?;
                addr += chunk as u64;
                remaining -= chunk;
            }
        }
        Ok(out)
    }

    /// Scatter incoming bytes into the buffers of a receive descriptor (the
    /// NIC-side DMA write), one burst DMA per contiguous run. Writes stop
    /// when the descriptor runs out of room: `written < data.len()` is a
    /// silent truncation the caller decides how to report.
    fn scatter(&mut self, vi_id: ViId, desc: &Descriptor, data: &[u8]) -> ViaResult<usize> {
        if self.nic.legacy_datapath {
            let tag = self.nic.vi(vi_id)?.tag;
            return self.scatter_legacy(tag, desc, data);
        }
        let mut written = 0usize;
        let mut runs = std::mem::take(&mut self.run_scratch);
        let r = (|| {
            for seg in &desc.segs {
                if written == data.len() {
                    break;
                }
                let take = seg.len.min(data.len() - written);
                self.translate_range_faulting(
                    vi_id,
                    seg.mem,
                    seg.addr,
                    take,
                    Access::Local,
                    &mut runs,
                )?;
                for run in &runs {
                    self.kernel.dma_write_run(
                        run.frame,
                        run.offset,
                        &data[written..written + run.len],
                    )?;
                    self.nic.stats.dma_ops += 1;
                    written += run.len;
                }
            }
            Ok(())
        })();
        self.run_scratch = runs;
        r.map(|()| written)
    }

    /// Pre-overhaul per-page scatter (see [`Node::gather_legacy`]).
    fn scatter_legacy(
        &mut self,
        vi_tag: ProtectionTag,
        desc: &Descriptor,
        data: &[u8],
    ) -> ViaResult<usize> {
        let mut written = 0usize;
        for seg in &desc.segs {
            if written == data.len() {
                break;
            }
            let mut addr = seg.addr;
            let mut room = seg.len;
            while room > 0 && written < data.len() {
                let (frame, off) = self
                    .nic
                    .tpt
                    .translate(seg.mem, addr, vi_tag, Access::Local)?;
                let chunk = room.min(PAGE_SIZE - off).min(data.len() - written);
                self.kernel
                    .dma_write(frame, off, &data[written..written + chunk])?;
                addr += chunk as u64;
                room -= chunk;
                written += chunk;
            }
        }
        Ok(written)
    }

    /// RDMA-write delivery: scatter straight into the named remote region
    /// (checking the target VI's tag and the region's RDMA-write enable).
    fn rdma_scatter(
        &mut self,
        vi_id: ViId,
        remote_mem: MemId,
        remote_addr: VirtAddr,
        data: &[u8],
    ) -> ViaResult<()> {
        if self.nic.legacy_datapath {
            let vi_tag = self.nic.vi(vi_id)?.tag;
            let mut written = 0usize;
            let mut addr = remote_addr;
            while written < data.len() {
                let (frame, off) =
                    self.nic
                        .tpt
                        .translate(remote_mem, addr, vi_tag, Access::RdmaWrite)?;
                let chunk = (data.len() - written).min(PAGE_SIZE - off);
                self.kernel
                    .dma_write(frame, off, &data[written..written + chunk])?;
                addr += chunk as u64;
                written += chunk;
            }
            return Ok(());
        }
        let mut written = 0usize;
        let mut runs = std::mem::take(&mut self.run_scratch);
        let r = (|| {
            self.translate_range_faulting(
                vi_id,
                remote_mem,
                remote_addr,
                data.len(),
                Access::RdmaWrite,
                &mut runs,
            )?;
            for run in &runs {
                self.kernel.dma_write_run(
                    run.frame,
                    run.offset,
                    &data[written..written + run.len],
                )?;
                self.nic.stats.dma_ops += 1;
                written += run.len;
            }
            Ok(())
        })();
        self.run_scratch = runs;
        r
    }

    /// Process all pending send-side descriptors of one VI, emitting
    /// packets. Send descriptors complete as soon as the DMA gather is done
    /// (data "on the wire").
    pub fn pump_vi_sends(&mut self, vi_id: ViId, node_index: usize) -> ViaResult<Vec<Packet>> {
        let mut packets = Vec::new();
        self.pump_vi_sends_into(vi_id, node_index, &mut packets)?;
        Ok(packets)
    }

    /// [`Node::pump_vi_sends`] appending into a caller-owned vector, so the
    /// fabric pump batches every VI's packets without an allocation per VI.
    /// Returns the number of packets appended.
    pub fn pump_vi_sends_into(
        &mut self,
        vi_id: ViId,
        node_index: usize,
        out: &mut Vec<Packet>,
    ) -> ViaResult<usize> {
        let mut n = 0usize;
        while let Some(desc) = self.nic.vi_mut(vi_id)?.send_q.pop_front() {
            if let Some(pkt) = self.execute_send_desc(vi_id, desc, node_index)? {
                out.push(pkt);
                n += 1;
            }
        }
        Ok(n)
    }

    /// Native-mode pump: DMA-fetch every posted descriptor from the VI's
    /// send ring (see [`crate::ring`]) and execute it — the real-hardware
    /// critical path with its extra descriptor-fetch DMA.
    pub fn pump_ring_sends(
        &mut self,
        vi_id: ViId,
        ring: &mut crate::ring::DescriptorRing,
        node_index: usize,
    ) -> ViaResult<Vec<Packet>> {
        let tag = self.nic.vi(vi_id)?.tag;
        let mut packets = Vec::new();
        while let Some(desc) = ring.fetch_next(&self.kernel, &self.nic.tpt, tag)? {
            if let Some(pkt) = self.execute_send_desc(vi_id, desc, node_index)? {
                packets.push(pkt);
            }
        }
        Ok(packets)
    }

    /// Native-mode receive prefetch: DMA-fetch posted receive descriptors
    /// from a ring into the VI's receive queue.
    pub fn prefetch_ring_recvs(
        &mut self,
        vi_id: ViId,
        ring: &mut crate::ring::DescriptorRing,
    ) -> ViaResult<usize> {
        let tag = self.nic.vi(vi_id)?.tag;
        let mut n = 0usize;
        while let Some(desc) = ring.fetch_next(&self.kernel, &self.nic.tpt, tag)? {
            if desc.op != DescOp::Recv {
                return Err(ViaError::BadState("non-recv descriptor on recv ring"));
            }
            self.nic.vi_mut(vi_id)?.recv_q.push_back(desc);
            n += 1;
        }
        Ok(n)
    }

    /// Execute one send-side descriptor: gather through the TPT, emit the
    /// packet, complete. RDMA reads park on the pending queue instead.
    fn execute_send_desc(
        &mut self,
        vi_id: ViId,
        mut desc: Descriptor,
        node_index: usize,
    ) -> ViaResult<Option<Packet>> {
        let (peer, state) = {
            let vi = self.nic.vi(vi_id)?;
            (vi.peer, vi.state)
        };
        if state != ViState::Connected {
            return Err(ViaError::NotConnected);
        }
        let (dst_node, dst_vi) = peer.ok_or(ViaError::NotConnected)?;
        // Validate the descriptor before touching memory: an RDMA opcode
        // without an address segment is VIA's "descriptor format error" —
        // completed in error, nothing transferred, connection intact.
        let rdma_seg = match desc.op {
            DescOp::RdmaWrite | DescOp::RdmaRead | DescOp::AtomicCas => match desc.rdma {
                Some(r) => Some(r),
                None => {
                    desc.status = DescStatus::FormatError;
                    self.push_completion(
                        vi_id,
                        Completion {
                            vi: vi_id,
                            op: desc.op,
                            status: DescStatus::FormatError,
                            len: 0,
                            imm: desc.imm,
                        },
                    )?;
                    return Ok(None);
                }
            },
            _ => None,
        };
        if desc.op == DescOp::AtomicCas {
            // A CAS needs its operands and an 8-byte local result buffer;
            // anything else is a descriptor format error.
            let (Some((compare, swap)), true) = (desc.cas, desc.total_len() >= 8) else {
                desc.status = DescStatus::FormatError;
                self.push_completion(
                    vi_id,
                    Completion {
                        vi: vi_id,
                        op: desc.op,
                        status: DescStatus::FormatError,
                        len: 0,
                        imm: desc.imm,
                    },
                )?;
                return Ok(None);
            };
            let r = rdma_seg.ok_or(ViaError::BadState("cas without address segment"))?;
            self.nic.stats.atomic_cas += 1;
            let mut payload = self.pool.take(16, &mut self.nic.stats);
            payload[..8].copy_from_slice(&compare.to_le_bytes());
            payload[8..].copy_from_slice(&swap.to_le_bytes());
            let pkt = Packet {
                src_node: node_index,
                dst_node,
                dst_vi,
                kind: PacketKind::AtomicCasReq {
                    remote_mem: r.remote_mem,
                    remote_addr: r.remote_addr,
                    reply_vi: vi_id,
                },
                payload,
                imm: desc.imm,
            };
            self.nic.vi_mut(vi_id)?.pending_reads.push_back(desc);
            return Ok(Some(pkt));
        }
        if desc.op == DescOp::RdmaRead {
            // No local gather yet: emit the request, park the descriptor
            // until the response arrives.
            let r = rdma_seg.ok_or(ViaError::BadState("rdma read without address segment"))?;
            let len = desc.total_len();
            self.nic.stats.rdma_reads += 1;
            let pkt = Packet {
                src_node: node_index,
                dst_node,
                dst_vi,
                kind: PacketKind::RdmaReadReq {
                    remote_mem: r.remote_mem,
                    remote_addr: r.remote_addr,
                    len,
                    reply_vi: vi_id,
                },
                payload: Vec::new(),
                imm: desc.imm,
            };
            self.nic.vi_mut(vi_id)?.pending_reads.push_back(desc);
            return Ok(Some(pkt));
        }
        match self.gather(vi_id, &desc) {
            Ok(payload) => {
                desc.status = DescStatus::Done;
                desc.done_len = payload.len();
                let kind = match desc.op {
                    DescOp::Send => {
                        self.nic.stats.sends += 1;
                        PacketKind::Send
                    }
                    DescOp::RdmaWrite => {
                        self.nic.stats.rdma_writes += 1;
                        let r = rdma_seg
                            .ok_or(ViaError::BadState("rdma write without address segment"))?;
                        PacketKind::RdmaWrite {
                            remote_mem: r.remote_mem,
                            remote_addr: r.remote_addr,
                        }
                    }
                    DescOp::Recv => return Err(ViaError::BadState("recv on send queue")),
                    // Both ops returned earlier in this function; reaching
                    // here means the dispatch above changed — fail typed,
                    // never panic on the datapath.
                    DescOp::RdmaRead | DescOp::AtomicCas => {
                        return Err(ViaError::BadState("one-sided op reached the gather path"))
                    }
                };
                self.nic.stats.bytes_tx += payload.len() as u64;
                let pkt = Packet {
                    src_node: node_index,
                    dst_node,
                    dst_vi,
                    kind,
                    payload,
                    imm: desc.imm,
                };
                if let Err(e) = self.push_completion(
                    vi_id,
                    Completion {
                        vi: vi_id,
                        op: desc.op,
                        status: DescStatus::Done,
                        len: desc.done_len,
                        imm: desc.imm,
                    },
                ) {
                    // CQ overrun broke the VI: the packet never leaves.
                    self.pool.put(pkt.payload);
                    return Err(e);
                }
                Ok(Some(pkt))
            }
            Err(e) => {
                // Residency degradation completes typed; everything else is
                // a protection refusal (repin_failures was already charged
                // where the pin was refused).
                let status = if matches!(e, ViaError::Repin(_)) {
                    DescStatus::RepinFailed
                } else {
                    self.nic.stats.protection_errors += 1;
                    DescStatus::ProtectionError
                };
                self.push_completion(
                    vi_id,
                    Completion {
                        vi: vi_id,
                        op: desc.op,
                        status,
                        len: 0,
                        imm: desc.imm,
                    },
                )?;
                let _ = e;
                Ok(None)
            }
        }
    }

    /// Deliver one incoming packet to this node; may produce response
    /// packets (RDMA-read answers) for the fabric to route.
    pub fn deliver(&mut self, packet: Packet) -> ViaResult<Vec<Packet>> {
        let vi_id = packet.dst_vi;
        self.nic.vi(vi_id)?;
        match packet.kind {
            PacketKind::Send => {
                let reliability = self.nic.vi(vi_id)?.reliability;
                let Some(mut desc) = self.nic.vi_mut(vi_id)?.recv_q.pop_front() else {
                    self.nic.stats.dropped += 1;
                    self.pool.put(packet.payload);
                    return match reliability {
                        // Reliable mode: drop the message AND break the
                        // connection.
                        Reliability::Reliable => {
                            self.nic.vi_mut(vi_id)?.state = ViState::Error;
                            Err(ViaError::NoRecvDescriptor)
                        }
                        // Unreliable delivery: a datagram into the void.
                        Reliability::Unreliable => Ok(Vec::new()),
                    };
                };
                if reliability == Reliability::Reliable && desc.total_len() < packet.payload.len() {
                    self.nic.stats.dropped += 1;
                    let (need, have) = (packet.payload.len(), desc.total_len());
                    let imm = packet.imm;
                    self.pool.put(packet.payload);
                    self.nic.vi_mut(vi_id)?.state = ViState::Error;
                    self.push_completion(
                        vi_id,
                        Completion {
                            vi: vi_id,
                            op: DescOp::Recv,
                            status: DescStatus::Dropped,
                            len: 0,
                            imm,
                        },
                    )?;
                    return Err(ViaError::RecvTooSmall { need, have });
                }
                // Unreliable mode takes a truncating delivery instead:
                // `scatter` stops at the descriptor's capacity and the
                // completion reports the bytes actually placed.
                let written = match self.scatter(vi_id, &desc, &packet.payload) {
                    Ok(w) => w,
                    Err(e) => {
                        self.pool.put(packet.payload);
                        return Err(e);
                    }
                };
                desc.status = DescStatus::Done;
                desc.done_len = written;
                self.nic.stats.recvs += 1;
                self.nic.stats.bytes_rx += written as u64;
                let imm = packet.imm;
                self.pool.put(packet.payload);
                self.push_completion(
                    vi_id,
                    Completion {
                        vi: vi_id,
                        op: DescOp::Recv,
                        status: DescStatus::Done,
                        len: written,
                        imm,
                    },
                )?;
                Ok(Vec::new())
            }
            PacketKind::RdmaWrite {
                remote_mem,
                remote_addr,
            } => {
                let n = packet.payload.len();
                let r = self.rdma_scatter(vi_id, remote_mem, remote_addr, &packet.payload);
                self.pool.put(packet.payload);
                match r {
                    Ok(()) => {
                        self.nic.stats.bytes_rx += n as u64;
                        Ok(Vec::new())
                    }
                    Err(e) => {
                        self.nic.stats.protection_errors += 1;
                        Err(e)
                    }
                }
            }
            PacketKind::RdmaReadReq {
                remote_mem,
                remote_addr,
                len,
                reply_vi,
            } => {
                // Target side: gather the requested range (tag + read-enable
                // checked) and answer.
                match self.rdma_gather(vi_id, remote_mem, remote_addr, len) {
                    Ok(payload) => {
                        self.nic.stats.bytes_tx += payload.len() as u64;
                        Ok(vec![Packet {
                            src_node: packet.dst_node,
                            dst_node: packet.src_node,
                            dst_vi: reply_vi,
                            kind: PacketKind::RdmaReadResp,
                            payload,
                            imm: packet.imm,
                        }])
                    }
                    Err(e) => {
                        self.nic.stats.protection_errors += 1;
                        Err(e)
                    }
                }
            }
            PacketKind::AtomicCasReq {
                remote_mem,
                remote_addr,
                reply_vi,
            } => {
                if packet.payload.len() != 16 {
                    self.pool.put(packet.payload);
                    return Err(ViaError::BadState("malformed CAS request"));
                }
                let compare = crate::ring::le_u64(&packet.payload, 0);
                let swap = crate::ring::le_u64(&packet.payload, 8);
                let r = self.rdma_cas(vi_id, remote_mem, remote_addr, compare, swap);
                self.pool.put(packet.payload);
                match r {
                    Ok(old) => {
                        let mut payload = self.pool.take(8, &mut self.nic.stats);
                        payload.copy_from_slice(&old.to_le_bytes());
                        self.nic.stats.bytes_tx += 8;
                        Ok(vec![Packet {
                            src_node: packet.dst_node,
                            dst_node: packet.src_node,
                            dst_vi: reply_vi,
                            kind: PacketKind::AtomicCasResp { ok: true },
                            payload,
                            imm: packet.imm,
                        }])
                    }
                    Err(_) => {
                        // Protection refusal: answer with a NACK instead of
                        // silently abandoning the requester's parked
                        // descriptor — a waiter must always get a typed
                        // completion.
                        self.nic.stats.protection_errors += 1;
                        Ok(vec![Packet {
                            src_node: packet.dst_node,
                            dst_node: packet.src_node,
                            dst_vi: reply_vi,
                            kind: PacketKind::AtomicCasResp { ok: false },
                            payload: Vec::new(),
                            imm: packet.imm,
                        }])
                    }
                }
            }
            PacketKind::AtomicCasResp { ok } => {
                // Requester side: complete the parked CAS descriptor.
                let Some(mut desc) = self.nic.vi_mut(vi_id)?.pending_reads.pop_front() else {
                    self.pool.put(packet.payload);
                    return Err(ViaError::BadState("CAS response without pending CAS"));
                };
                if desc.op != DescOp::AtomicCas {
                    self.pool.put(packet.payload);
                    return Err(ViaError::BadState("CAS response for non-CAS descriptor"));
                }
                if !ok {
                    desc.status = DescStatus::ProtectionError;
                    let imm = packet.imm;
                    self.pool.put(packet.payload);
                    self.push_completion(
                        vi_id,
                        Completion {
                            vi: vi_id,
                            op: DescOp::AtomicCas,
                            status: DescStatus::ProtectionError,
                            len: 0,
                            imm,
                        },
                    )?;
                    return Ok(Vec::new());
                }
                let written = match self.scatter(vi_id, &desc, &packet.payload) {
                    Ok(w) => w,
                    Err(e) => {
                        self.pool.put(packet.payload);
                        return Err(e);
                    }
                };
                desc.status = DescStatus::Done;
                desc.done_len = written;
                self.nic.stats.bytes_rx += written as u64;
                let imm = packet.imm;
                self.pool.put(packet.payload);
                self.push_completion(
                    vi_id,
                    Completion {
                        vi: vi_id,
                        op: DescOp::AtomicCas,
                        status: DescStatus::Done,
                        len: written,
                        imm,
                    },
                )?;
                Ok(Vec::new())
            }
            PacketKind::RdmaReadResp => {
                // Requester side: scatter into the parked read descriptor.
                let Some(mut desc) = self.nic.vi_mut(vi_id)?.pending_reads.pop_front() else {
                    self.pool.put(packet.payload);
                    return Err(ViaError::BadState("read response without pending read"));
                };
                let written = match self.scatter(vi_id, &desc, &packet.payload) {
                    Ok(w) => w,
                    Err(e) => {
                        self.pool.put(packet.payload);
                        return Err(e);
                    }
                };
                desc.status = DescStatus::Done;
                desc.done_len = written;
                self.nic.stats.bytes_rx += written as u64;
                let imm = packet.imm;
                self.pool.put(packet.payload);
                self.push_completion(
                    vi_id,
                    Completion {
                        vi: vi_id,
                        op: DescOp::RdmaRead,
                        status: DescStatus::Done,
                        len: written,
                        imm,
                    },
                )?;
                Ok(Vec::new())
            }
        }
    }

    /// SCI-style PIO store into one of this node's exported regions,
    /// addressed by `(MemId, byte offset)`. Node-local so every fabric —
    /// the deterministic system and the threaded cluster — shares one
    /// implementation; translation uses the region's own tag (importer-side
    /// protection is the host MMU).
    pub fn sci_write_bytes(&mut self, data: &[u8], dmem: MemId, doff: usize) -> ViaResult<()> {
        let region = self.nic.tpt.region(dmem)?.clone();
        if doff + data.len() > region.len {
            return Err(ViaError::OutOfBounds);
        }
        let addr = region.user_addr + doff as u64;
        let mut runs = std::mem::take(&mut self.run_scratch);
        let r = (|| {
            self.tpt_translate_range_faulting(
                dmem,
                addr,
                data.len(),
                region.tag,
                Access::Local,
                &mut runs,
            )?;
            let mut written = 0usize;
            for run in &runs {
                self.kernel.dma_write_run(
                    run.frame,
                    run.offset,
                    &data[written..written + run.len],
                )?;
                written += run.len;
            }
            Ok(())
        })();
        self.run_scratch = runs;
        r
    }

    /// SCI remote read from one of this node's exported regions (see
    /// [`Node::sci_write_bytes`]).
    pub fn sci_read_bytes(&mut self, smem: MemId, soff: usize, out: &mut [u8]) -> ViaResult<()> {
        let region = self.nic.tpt.region(smem)?.clone();
        if soff + out.len() > region.len {
            return Err(ViaError::OutOfBounds);
        }
        let addr = region.user_addr + soff as u64;
        let mut runs = std::mem::take(&mut self.run_scratch);
        let r = (|| {
            self.tpt_translate_range_faulting(
                smem,
                addr,
                out.len(),
                region.tag,
                Access::Local,
                &mut runs,
            )?;
            let mut read = 0usize;
            for run in &runs {
                self.kernel
                    .dma_read_run(run.frame, run.offset, &mut out[read..read + run.len])?;
                read += run.len;
            }
            Ok(())
        })();
        self.run_scratch = runs;
        r
    }

    /// The per-node slice of the fabric-wide invariants:
    ///
    /// 1. the registry census holds (per-frame pin counts equal the live
    ///    registrations covering them);
    /// 2. no orphaned frames (reliable pinning's whole promise);
    /// 3. TPT occupancy never exceeds capacity.
    ///
    /// The packet-pool ledger is *fabric-wide* (buffers migrate between
    /// nodes with the packets that carry them), so the fabric sums
    /// [`PacketPool::outstanding`] across nodes on top of this check.
    pub fn check_local_invariants(&self) -> Result<(), String> {
        self.registry
            .check_invariants(&self.kernel)
            .map_err(|e| e.to_string())?;
        let orphans = self.kernel.count_orphaned_frames();
        if orphans != 0 {
            return Err(format!("{orphans} orphaned frames"));
        }
        let (used, cap) = (self.nic.tpt.used_slots(), self.nic.tpt.capacity());
        if used > cap {
            return Err(format!("TPT occupancy {used} > capacity {cap}"));
        }
        Ok(())
    }

    /// Target-side atomic compare-and-swap on an aligned u64 of a named
    /// region. Both RDMA enables are required — the op reads the word and
    /// may write it — and the VI's protection tag is checked by the same
    /// translations every other access uses. The read-compare-write is
    /// indivisible because the owning node's thread is the only executor
    /// of its memory's deliveries.
    fn rdma_cas(
        &mut self,
        vi_id: ViId,
        remote_mem: MemId,
        remote_addr: VirtAddr,
        compare: u64,
        swap: u64,
    ) -> ViaResult<u64> {
        if !remote_addr.is_multiple_of(8) {
            return Err(ViaError::OutOfBounds);
        }
        let mut runs = std::mem::take(&mut self.run_scratch);
        let r = (|| {
            // Check the read enable first, then translate again under the
            // write enable; the second translation's run is the one used,
            // so a region registered read-only is refused before any DMA.
            self.translate_range_faulting(
                vi_id,
                remote_mem,
                remote_addr,
                8,
                Access::RdmaRead,
                &mut runs,
            )?;
            self.translate_range_faulting(
                vi_id,
                remote_mem,
                remote_addr,
                8,
                Access::RdmaWrite,
                &mut runs,
            )?;
            let run = runs[0];
            debug_assert_eq!(run.len, 8, "aligned u64 never spans frames");
            let mut old = [0u8; 8];
            self.kernel.dma_read_run(run.frame, run.offset, &mut old)?;
            self.nic.stats.dma_ops += 1;
            let old = u64::from_le_bytes(old);
            if old == compare {
                self.kernel
                    .dma_write_run(run.frame, run.offset, &swap.to_le_bytes())?;
                self.nic.stats.dma_ops += 1;
                self.nic.stats.cas_applied += 1;
            }
            Ok(old)
        })();
        self.run_scratch = runs;
        r
    }

    /// Gather `len` bytes from a named region for an RDMA-read request
    /// (checking the target VI's tag and the region's read-enable).
    fn rdma_gather(
        &mut self,
        vi_id: ViId,
        remote_mem: MemId,
        remote_addr: VirtAddr,
        len: usize,
    ) -> ViaResult<Vec<u8>> {
        if self.nic.legacy_datapath {
            let vi_tag = self.nic.vi(vi_id)?.tag;
            let mut out = Vec::with_capacity(len);
            let mut addr = remote_addr;
            while out.len() < len {
                let (frame, off) =
                    self.nic
                        .tpt
                        .translate(remote_mem, addr, vi_tag, Access::RdmaRead)?;
                let chunk = (len - out.len()).min(PAGE_SIZE - off);
                let base = out.len();
                out.resize(base + chunk, 0);
                self.kernel
                    .dma_read(frame, off, &mut out[base..base + chunk])?;
                addr += chunk as u64;
            }
            return Ok(out);
        }
        let mut out = self.pool.take(len, &mut self.nic.stats);
        let mut base = 0usize;
        let mut runs = std::mem::take(&mut self.run_scratch);
        let r = (|| {
            self.translate_range_faulting(
                vi_id,
                remote_mem,
                remote_addr,
                len,
                Access::RdmaRead,
                &mut runs,
            )?;
            for run in &runs {
                self.kernel
                    .dma_read_run(run.frame, run.offset, &mut out[base..base + run.len])?;
                self.nic.stats.dma_ops += 1;
                base += run.len;
            }
            Ok(())
        })();
        self.run_scratch = runs;
        match r {
            Ok(()) => Ok(out),
            Err(e) => {
                self.pool.put(out);
                Err(e)
            }
        }
    }
}
