//! VIA descriptors: the data structures a process builds in registered
//! memory and posts to a work queue to request a transfer.

use simmem::VirtAddr;

use crate::tpt::MemId;

/// Descriptor operation type (control-segment opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescOp {
    /// Two-sided send: consumes a receive descriptor at the peer.
    Send,
    /// Receive: pre-posted buffer for an incoming send.
    Recv,
    /// One-sided RDMA write into the peer's registered memory.
    RdmaWrite,
    /// One-sided RDMA read from the peer's registered memory (optional in
    /// the VIA spec; expensive — two fabric traversals).
    RdmaRead,
    /// One-sided atomic compare-and-swap on an aligned u64 in the peer's
    /// registered memory. The old value lands in the local data segment;
    /// like RdmaRead this costs two fabric traversals, but the
    /// read-compare-write at the target is indivisible.
    AtomicCas,
}

/// Completion status written back into the descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescStatus {
    /// Still on the work queue.
    Pending,
    /// Completed successfully.
    Done,
    /// Protection-tag or bounds check failed; no data transferred.
    ProtectionError,
    /// Arrived with no receive descriptor posted / buffer too small; the
    /// connection is broken in reliable mode.
    Dropped,
    /// Malformed descriptor (e.g. an RDMA opcode without an address
    /// segment) — VIA's "descriptor format error" completion.
    FormatError,
    /// The fabric lost the transfer on a reliable connection; the NIC
    /// completes the affected descriptor with this status and breaks the
    /// connection.
    TransportError,
    /// An on-demand page could not be repinned (memory pressure, swap
    /// exhaustion) while the NIC was resolving the descriptor's buffers.
    /// No data transferred; the connection stays intact — the degradation
    /// is per-descriptor, mirroring how the eager path degrades at
    /// registration time instead.
    RepinFailed,
}

impl DescStatus {
    /// `true` for every status other than `Pending`/`Done` — the msg layer
    /// uses this to recognise error completions.
    pub fn is_error(self) -> bool {
        !matches!(self, DescStatus::Pending | DescStatus::Done)
    }
}

/// One scatter/gather element: a range of *registered* user memory.
#[derive(Debug, Clone, Copy)]
pub struct DataSeg {
    pub mem: MemId,
    pub addr: VirtAddr,
    pub len: usize,
}

/// RDMA address segment: names the target range in the *remote* process'
/// registered memory. The remote `MemId` travels out of band (the VIA spec
/// leaves the exchange to the application protocol).
#[derive(Debug, Clone, Copy)]
pub struct RdmaSeg {
    pub remote_mem: MemId,
    pub remote_addr: VirtAddr,
}

/// A work-queue descriptor.
#[derive(Debug, Clone)]
pub struct Descriptor {
    pub op: DescOp,
    /// Gather (send/RDMA) or scatter (recv) list.
    pub segs: Vec<DataSeg>,
    /// Address segment for RDMA operations.
    pub rdma: Option<RdmaSeg>,
    /// Up to four bytes of immediate data carried in the descriptor itself.
    pub imm: Option<u32>,
    /// `(compare, swap)` operands of an [`DescOp::AtomicCas`] descriptor.
    pub cas: Option<(u64, u64)>,
    pub status: DescStatus,
    /// Bytes actually transferred (filled at completion).
    pub done_len: usize,
}

impl Descriptor {
    /// A one-segment send descriptor.
    pub fn send(mem: MemId, addr: VirtAddr, len: usize) -> Self {
        Descriptor {
            op: DescOp::Send,
            segs: vec![DataSeg { mem, addr, len }],
            rdma: None,
            imm: None,
            cas: None,
            status: DescStatus::Pending,
            done_len: 0,
        }
    }

    /// A one-segment receive descriptor.
    pub fn recv(mem: MemId, addr: VirtAddr, len: usize) -> Self {
        Descriptor {
            op: DescOp::Recv,
            segs: vec![DataSeg { mem, addr, len }],
            rdma: None,
            imm: None,
            cas: None,
            status: DescStatus::Pending,
            done_len: 0,
        }
    }

    /// A one-segment RDMA-write descriptor.
    pub fn rdma_write(
        mem: MemId,
        addr: VirtAddr,
        len: usize,
        remote_mem: MemId,
        remote_addr: VirtAddr,
    ) -> Self {
        Descriptor {
            op: DescOp::RdmaWrite,
            segs: vec![DataSeg { mem, addr, len }],
            rdma: Some(RdmaSeg {
                remote_mem,
                remote_addr,
            }),
            imm: None,
            cas: None,
            status: DescStatus::Pending,
            done_len: 0,
        }
    }

    /// A one-segment RDMA-read descriptor: fetch `len` bytes from the
    /// peer's `(remote_mem, remote_addr)` into local registered memory.
    pub fn rdma_read(
        mem: MemId,
        addr: VirtAddr,
        len: usize,
        remote_mem: MemId,
        remote_addr: VirtAddr,
    ) -> Self {
        Descriptor {
            op: DescOp::RdmaRead,
            segs: vec![DataSeg { mem, addr, len }],
            rdma: Some(RdmaSeg {
                remote_mem,
                remote_addr,
            }),
            imm: None,
            cas: None,
            status: DescStatus::Pending,
            done_len: 0,
        }
    }

    /// An atomic compare-and-swap descriptor: if the u64 at the peer's
    /// `(remote_mem, remote_addr)` equals `compare`, replace it with
    /// `swap`; either way the old value is scattered into the 8-byte local
    /// segment at `(mem, addr)`.
    pub fn atomic_cas(
        mem: MemId,
        addr: VirtAddr,
        remote_mem: MemId,
        remote_addr: VirtAddr,
        compare: u64,
        swap: u64,
    ) -> Self {
        Descriptor {
            op: DescOp::AtomicCas,
            segs: vec![DataSeg { mem, addr, len: 8 }],
            rdma: Some(RdmaSeg {
                remote_mem,
                remote_addr,
            }),
            imm: None,
            cas: Some((compare, swap)),
            status: DescStatus::Pending,
            done_len: 0,
        }
    }

    /// Attach immediate data.
    pub fn with_imm(mut self, imm: u32) -> Self {
        self.imm = Some(imm);
        self
    }

    /// Total bytes named by the gather/scatter list.
    pub fn total_len(&self) -> usize {
        self.segs.iter().map(|s| s.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let d = Descriptor::send(MemId(1), 0x1000, 64);
        assert_eq!(d.op, DescOp::Send);
        assert_eq!(d.total_len(), 64);
        assert_eq!(d.status, DescStatus::Pending);

        let d = Descriptor::recv(MemId(2), 0x2000, 128).with_imm(42);
        assert_eq!(d.op, DescOp::Recv);
        assert_eq!(d.imm, Some(42));

        let d = Descriptor::rdma_write(MemId(1), 0x1000, 32, MemId(9), 0x9000);
        assert_eq!(d.op, DescOp::RdmaWrite);
        assert_eq!(d.rdma.unwrap().remote_mem, MemId(9));
    }

    #[test]
    fn multi_segment_total() {
        let mut d = Descriptor::send(MemId(1), 0x1000, 10);
        d.segs.push(DataSeg {
            mem: MemId(1),
            addr: 0x3000,
            len: 20,
        });
        assert_eq!(d.total_len(), 30);
    }
}
