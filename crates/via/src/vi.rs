//! Virtual Interfaces: per-process, per-connection endpoints with send and
//! receive work queues and doorbells.

use std::collections::VecDeque;

use simmem::Pid;

use crate::descriptor::{DescStatus, Descriptor};
use crate::tpt::{ProtectionTag, TranslationCache};

/// VI identifier on one NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViId(pub u32);

/// VIA reliability level of a connection (a subset of the spec's three:
/// we model Unreliable Delivery and Reliable Delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reliability {
    /// Errors break the connection: a send arriving with no posted receive
    /// descriptor, or one too small, transitions the VI to
    /// [`ViState::Error`].
    #[default]
    Reliable,
    /// Datagram semantics: a missing receive descriptor drops the packet
    /// silently; a too-small descriptor takes a truncating delivery with
    /// the completion reporting the bytes actually written.
    Unreliable,
}

/// Connection state of a VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViState {
    Idle,
    /// Registered with the connection manager, waiting for a peer
    /// (`VipConnectWait`).
    Listening,
    Connected,
    /// A delivery error in reliable mode broke the connection.
    Error,
}

/// A completion-queue entry.
#[derive(Debug, Clone)]
pub struct Completion {
    pub vi: ViId,
    pub op: crate::descriptor::DescOp,
    pub status: DescStatus,
    pub len: usize,
    pub imm: Option<u32>,
}

/// Default completion-queue capacity. Real VIA hardware sizes CQs at
/// creation time; overrunning one is a catastrophic VI error. Large enough
/// that well-behaved workloads never notice.
pub const DEFAULT_CQ_CAPACITY: usize = 4096;

/// One virtual interface.
pub struct VirtualInterface {
    pub id: ViId,
    pub pid: Pid,
    /// The protection tag associated with this VI; the NIC compares it
    /// against the tag of every memory region a descriptor names.
    pub tag: ProtectionTag,
    pub state: ViState,
    /// Peer: (node index, VI id) once connected.
    pub peer: Option<(usize, ViId)>,
    /// Send work queue. The doorbell is the queue length: posting IS
    /// ringing.
    pub send_q: VecDeque<Descriptor>,
    /// Receive work queue.
    pub recv_q: VecDeque<Descriptor>,
    /// Completion queue shared by both work queues (one CQ per VI keeps the
    /// model simple; the spec allows sharing across VIs).
    pub cq: VecDeque<Completion>,
    /// CQ capacity; [`VirtualInterface::push_completion`] refuses entries
    /// beyond it (completion-queue overrun).
    pub cq_capacity: usize,
    /// RDMA-read descriptors awaiting their response from the target.
    pub pending_reads: VecDeque<Descriptor>,
    /// Reliability level negotiated at connect time.
    pub reliability: Reliability,
    /// Per-VI translation cache (mini-TLB) fronting the TPT directory on
    /// the data path. Invalidated wholesale by TPT generation bumps.
    pub tlb: TranslationCache,
}

impl VirtualInterface {
    pub fn new(id: ViId, pid: Pid, tag: ProtectionTag) -> Self {
        VirtualInterface {
            id,
            pid,
            tag,
            state: ViState::Idle,
            peer: None,
            send_q: VecDeque::new(),
            recv_q: VecDeque::new(),
            cq: VecDeque::new(),
            cq_capacity: DEFAULT_CQ_CAPACITY,
            pending_reads: VecDeque::new(),
            reliability: Reliability::default(),
            tlb: TranslationCache::default(),
        }
    }

    /// Pop the next completion, if any (`VipCQDone` polling).
    pub fn poll_cq(&mut self) -> Option<Completion> {
        self.cq.pop_front()
    }

    /// Append a completion, refusing when the CQ is at capacity. Returns
    /// `false` on overrun — the caller decides how to surface the loss
    /// (the NIC breaks the VI).
    #[must_use]
    pub fn push_completion(&mut self, c: Completion) -> bool {
        if self.cq.len() >= self.cq_capacity {
            return false;
        }
        self.cq.push_back(c);
        true
    }

    /// Pending send descriptors (doorbell count).
    pub fn sends_pending(&self) -> usize {
        self.send_q.len()
    }

    /// Pre-posted receive descriptors.
    pub fn recvs_posted(&self) -> usize {
        self.recv_q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::DescOp;
    use crate::tpt::MemId;

    #[test]
    fn queues_and_cq() {
        let mut vi = VirtualInterface::new(ViId(0), Pid(1), ProtectionTag(1));
        assert_eq!(vi.state, ViState::Idle);
        vi.send_q.push_back(Descriptor::send(MemId(1), 0x1000, 8));
        vi.recv_q.push_back(Descriptor::recv(MemId(1), 0x2000, 8));
        assert_eq!(vi.sends_pending(), 1);
        assert_eq!(vi.recvs_posted(), 1);
        assert!(vi.poll_cq().is_none());
        vi.cq.push_back(Completion {
            vi: ViId(0),
            op: DescOp::Send,
            status: DescStatus::Done,
            len: 8,
            imm: None,
        });
        let c = vi.poll_cq().unwrap();
        assert_eq!(c.len, 8);
        assert!(vi.poll_cq().is_none());
    }
}
