//! The conventional PCI–SCI export path: one Address Translation Unit
//! window over **contiguous physical** memory, translated linearly —
//! Dolphin's pre-VIA memory management that the volume's papers argue
//! against.
//!
//! Constraints faithfully modelled:
//!
//! * export granularity and alignment of 512 KiB (128 frames) — "exported
//!   512 kB pages must be aligned to a 512 kB boundary";
//! * the window must come from a **bigphys** reservation, because common
//!   kernels cannot hand out large contiguous aligned regions;
//! * translation is a plain linear offset — *no per-page protection tags*:
//!   any remote node that can reach the window reaches all of it;
//! * user data does not live here: communication payloads must be
//!   bounce-copied between the window and the real user buffers (unless
//!   the application uses a "special malloc", which the MPI papers reject
//!   as a violation of architecture independence).

use simmem::{BigphysBlock, Pid, VirtAddr, PAGE_SIZE};

use crate::error::{ViaError, ViaResult};
use crate::nic::Node;

/// Window alignment and granularity in frames: 512 KiB / 4 KiB.
pub const WINDOW_ALIGN_FRAMES: u32 = 128;

/// An exported ATU window.
#[derive(Debug, Clone, Copy)]
pub struct AtuWindow {
    block: BigphysBlock,
    /// Bytes actually requested (≤ the rounded-up block).
    pub len: usize,
}

impl AtuWindow {
    /// Frames actually reserved for the window (granularity-rounded).
    pub fn reserved_frames(&self) -> u32 {
        self.block.nframes
    }

    /// The window's base frame (what remote ATUs translate to).
    pub fn base(&self) -> simmem::FrameId {
        self.block.base
    }

    /// Linear translation of a byte offset: (frame, offset within frame).
    fn translate(&self, offset: usize) -> (simmem::FrameId, usize) {
        (
            simmem::FrameId(self.block.base.0 + (offset / PAGE_SIZE) as u32),
            offset % PAGE_SIZE,
        )
    }
}

impl Node {
    /// Export a window of `len` bytes the old way: round up to the 512 KiB
    /// granularity, allocate aligned contiguous frames from bigphys.
    pub fn export_window(&mut self, len: usize) -> ViaResult<AtuWindow> {
        if len == 0 {
            return Err(ViaError::BadState("empty window"));
        }
        let frames_needed = len.div_ceil(PAGE_SIZE) as u32;
        let granular = frames_needed.next_multiple_of(WINDOW_ALIGN_FRAMES);
        let area = self
            .kernel
            .bigphys_mut()
            .ok_or(ViaError::BadState("no bigphys reservation on this node"))?;
        let block = area
            .alloc(granular, WINDOW_ALIGN_FRAMES)
            .ok_or(ViaError::BadState("bigphys exhausted"))?;
        Ok(AtuWindow { block, len })
    }

    /// Tear the window down.
    pub fn release_window(&mut self, w: AtuWindow) -> ViaResult<()> {
        self.kernel
            .bigphys_mut()
            .ok_or(ViaError::BadState("no bigphys reservation"))?
            .free(w.block)
            .map_err(ViaError::Mm)
    }

    /// Map the window into a process (the driver mmap of bigphys memory) so
    /// CPU loads/stores reach it.
    pub fn map_window(&mut self, pid: Pid, w: &AtuWindow) -> ViaResult<VirtAddr> {
        let frames: Vec<_> = (0..w.block.nframes)
            .map(|i| simmem::FrameId(w.block.base.0 + i))
            .collect();
        Ok(self.kernel.map_frames(pid, &frames)?)
    }

    /// A remote store into the window: linear translation, bounds check
    /// only — no tags, no per-page attributes (the protection weakness of
    /// the conventional design). The window's frames are contiguous by
    /// construction, so any span is exactly one DMA burst.
    pub fn window_write(&mut self, w: &AtuWindow, offset: usize, data: &[u8]) -> ViaResult<()> {
        if offset + data.len() > w.len {
            return Err(ViaError::OutOfBounds);
        }
        let (frame, in_page) = w.translate(offset);
        Ok(self.kernel.dma_write_run(frame, in_page, data)?)
    }

    /// A remote load from the window (one DMA burst, see
    /// [`Node::window_write`]).
    pub fn window_read(&self, w: &AtuWindow, offset: usize, out: &mut [u8]) -> ViaResult<()> {
        if offset + out.len() > w.len {
            return Err(ViaError::OutOfBounds);
        }
        let (frame, in_page) = w.translate(offset);
        Ok(self.kernel.dma_read_run(frame, in_page, out)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{Capabilities, KernelConfig};
    use vialock::StrategyKind;

    fn node_with_bigphys() -> Node {
        let mut n = Node::new(
            KernelConfig {
                nframes: 1024,
                reserved_frames: 8,
                swap_slots: 128,
                default_rlimit_memlock: None,
                swap_cache: false,
            },
            StrategyKind::KiobufReliable,
            512,
        );
        n.kernel.reserve_bigphys(512).unwrap();
        n
    }

    #[test]
    fn export_rounds_to_window_granularity() {
        let mut n = node_with_bigphys();
        let w = n.export_window(10 * PAGE_SIZE).unwrap();
        assert_eq!(
            w.reserved_frames(),
            128,
            "10 pages cost a full 512 KiB window"
        );
        assert_eq!(w.base().0 % WINDOW_ALIGN_FRAMES, 0, "aligned");
        // A second window fits (512 − 128 ≥ 128)…
        let w2 = n.export_window(PAGE_SIZE).unwrap();
        // …but a third large one does not.
        assert!(n.export_window(300 * PAGE_SIZE).is_err());
        n.release_window(w).unwrap();
        n.release_window(w2).unwrap();
    }

    #[test]
    fn no_bigphys_no_window() {
        let mut n = Node::new(KernelConfig::small(), StrategyKind::KiobufReliable, 64);
        assert!(n.export_window(PAGE_SIZE).is_err());
    }

    #[test]
    fn remote_store_visible_through_process_mapping() {
        let mut n = node_with_bigphys();
        let pid = n.kernel.spawn_process(Capabilities::default());
        let w = n.export_window(4 * PAGE_SIZE).unwrap();
        let va = n.map_window(pid, &w).unwrap();
        // Remote side stores into the window…
        n.window_write(&w, 100, b"from afar").unwrap();
        // …the local process reads it with plain loads.
        let mut out = [0u8; 9];
        n.kernel.read_user(pid, va + 100, &mut out).unwrap();
        assert_eq!(&out, b"from afar");
        // And the reverse direction.
        n.kernel.write_user(pid, va + 2000, b"reply").unwrap();
        let mut out = [0u8; 5];
        n.window_read(&w, 2000, &mut out).unwrap();
        assert_eq!(&out, b"reply");
    }

    #[test]
    fn bounds_checked_but_nothing_else() {
        let mut n = node_with_bigphys();
        let w = n.export_window(PAGE_SIZE).unwrap();
        assert_eq!(
            n.window_write(&w, PAGE_SIZE - 2, b"xxx"),
            Err(ViaError::OutOfBounds)
        );
        // No tags: ANY writer with the window reference succeeds — the
        // whole window is one protection domain.
        n.window_write(&w, 0, b"anyone").unwrap();
    }

    #[test]
    fn window_pages_never_swap() {
        // Bigphys frames are PG_reserved: the stealer cannot touch the
        // window even under pressure (the one upside of the old design).
        let mut n = node_with_bigphys();
        let pid = n.kernel.spawn_process(Capabilities::default());
        let w = n.export_window(2 * PAGE_SIZE).unwrap();
        let va = n.map_window(pid, &w).unwrap();
        n.kernel
            .write_user(pid, va, b"pinned by construction")
            .unwrap();
        let hog = n.kernel.spawn_process(Capabilities::default());
        let hb = n
            .kernel
            .mmap_anon(
                hog,
                800 * PAGE_SIZE,
                simmem::prot::READ | simmem::prot::WRITE,
            )
            .unwrap();
        for i in 0..800 {
            let _ = n
                .kernel
                .write_user(hog, hb + (i * PAGE_SIZE) as u64, &[1u8; 8]);
        }
        let mut out = [0u8; 22];
        n.window_read(&w, 0, &mut out).unwrap();
        assert_eq!(&out, b"pinned by construction");
    }
}
