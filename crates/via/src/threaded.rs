//! A multi-threaded two-node fabric: each node (kernel + NIC + kernel
//! agent) runs on its own OS thread; packets travel over std mpsc
//! channels. This is the concurrency-faithful counterpart of the
//! deterministic single-threaded [`crate::system::ViaSystem`]: the same
//! `Node` type, real thread interleavings, no shared state beyond the
//! wire.
//!
//! Use [`connect_pair`] to wire VIs *before* splitting the nodes onto
//! threads, then [`run_pair`] with one closure per node. Each closure
//! drives its node through a [`NodeCtx`]: post descriptors on the node
//! directly, then [`NodeCtx::pump`] to ship outgoing packets and deliver
//! incoming ones, or [`NodeCtx::wait_completion`] to block until a CQ
//! entry arrives.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use vialock::FaultSite;

use crate::error::{ViaError, ViaResult};
use crate::nic::{Node, Packet, PacketKind};
use crate::vi::{Completion, Reliability, ViId};

/// How long [`NodeCtx::wait_completion`] waits before declaring the peer
/// dead.
pub const WAIT_TIMEOUT: Duration = Duration::from_secs(5);

/// Non-blocking polls of the inbound channel before
/// [`NodeCtx::wait_completion`] starts yielding (spin-yield-park). On a
/// single-core host the budget is zero: the peer can only make progress
/// once we give the core away, so every spin iteration is pure added
/// latency there.
fn spin_budget() -> usize {
    static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores > 1 {
            64
        } else {
            0
        }
    })
}

/// Polls with a `yield_now` between them after the spin budget runs out:
/// a yield hands the core to the peer without the futex sleep/wake
/// round-trip a park costs.
const YIELD_BUDGET: usize = 16;

/// How long a single park lasts once the spin budget is exhausted.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Most packets [`NodeCtx::pump`] delivers per call (bounded burst).
const DELIVER_BURST: usize = 256;

/// Wire two VIs of two (not yet split) nodes together. `a_index` and
/// `b_index` are the node indices used in packet routing (0 and 1 for
/// [`run_pair`]).
pub fn connect_pair(
    a: &mut Node,
    a_vi: ViId,
    a_index: usize,
    b: &mut Node,
    b_vi: ViId,
    b_index: usize,
) -> ViaResult<()> {
    {
        let v = a.nic.vi_mut(a_vi)?;
        v.peer = Some((b_index, b_vi));
        v.state = crate::vi::ViState::Connected;
    }
    {
        let v = b.nic.vi_mut(b_vi)?;
        v.peer = Some((a_index, a_vi));
        v.state = crate::vi::ViState::Connected;
    }
    Ok(())
}

/// Per-thread driver for one node. Packets travel in batches: one channel
/// send per pump carries every packet staged since the last one, and
/// arriving batches land in `inbound` to be delivered one at a time.
pub struct NodeCtx {
    pub node: Node,
    index: usize,
    tx: Sender<Vec<Packet>>,
    rx: Receiver<Vec<Packet>>,
    /// Packets received from the wire but not yet delivered.
    inbound: VecDeque<Packet>,
    /// Cached VI id list; VIs are only ever created, so a count check
    /// suffices to detect staleness.
    vi_ids: Vec<ViId>,
    /// Outgoing packets staged for the next batched channel send.
    outbox: Vec<Packet>,
}

impl NodeCtx {
    /// Ship every pending send and deliver a bounded burst of queued
    /// inbound packets (one at a time, a CQ stays checkable between any
    /// two). Returns (packets sent, packets delivered).
    pub fn pump(&mut self) -> ViaResult<(usize, usize)> {
        let sent = self.ship_sends()?;
        let mut delivered = 0usize;
        while delivered < DELIVER_BURST && self.deliver_one_inbound(false)? {
            delivered += 1;
        }
        Ok((sent, delivered))
    }

    /// Ship every pending send of every VI as ONE batched channel send,
    /// without touching the inbound queue.
    fn ship_sends(&mut self) -> ViaResult<usize> {
        if self.vi_ids.len() != self.node.nic.vi_count() {
            self.node.nic.vi_ids_into(&mut self.vi_ids);
        }
        let mut sent = 0usize;
        for i in 0..self.vi_ids.len() {
            sent += self
                .node
                .pump_vi_sends_into(self.vi_ids[i], self.index, &mut self.outbox)?;
        }
        if !self.outbox.is_empty() {
            if self.node.nic.legacy_datapath {
                // Pre-overhaul wire: one channel operation (and one peer
                // wakeup) per packet.
                for pkt in self.outbox.drain(..) {
                    self.tx
                        .send(vec![pkt])
                        .map_err(|_| ViaError::Disconnected)?;
                }
            } else {
                let batch = std::mem::take(&mut self.outbox);
                // A closed peer is a torn-down cluster; surface it.
                self.tx.send(batch).map_err(|_| ViaError::Disconnected)?;
            }
        }
        Ok(sent)
    }

    /// Pull whatever the wire has queued into `inbound` without blocking.
    /// Returns whether `inbound` is now non-empty.
    fn refill_inbound(&mut self) -> bool {
        while let Ok(batch) = self.rx.try_recv() {
            self.inbound.extend(batch);
        }
        !self.inbound.is_empty()
    }

    /// Deliver exactly ONE inbound packet, if any is queued. This is the
    /// single choke point both `pump` and the disconnected drain go
    /// through, so the one-packet-per-CQ-check rule holds everywhere.
    /// With `best_effort_tx` a dead peer channel swallows responses
    /// instead of erroring (used while draining after a disconnect).
    fn deliver_one_inbound(&mut self, best_effort_tx: bool) -> ViaResult<bool> {
        if self.inbound.is_empty() && !self.refill_inbound() {
            return Ok(false);
        }
        let pkt = self.inbound.pop_front().expect("refill_inbound said so");
        // Wire faults strike at this NIC's ingress, exactly as in the
        // single-threaded fabric.
        if self.node.inject(FaultSite::WireDelay) {
            self.node.nic.stats.wire_delays += 1;
            // Requeue behind everything already waiting: the packet is
            // overtaken by later traffic.
            self.inbound.push_back(pkt);
            return Ok(true);
        }
        if self.node.inject(FaultSite::WireDrop) {
            let vi = pkt.dst_vi;
            self.node.pool.put(pkt.payload);
            self.node.wire_drop(vi)?;
            return Ok(true);
        }
        if self.node.inject(FaultSite::WireDuplicate) {
            self.node.nic.stats.wire_dups += 1;
            // Reliable VIs suppress the copy; unreliable datagrams arrive
            // twice.
            let unreliable = self
                .node
                .nic
                .vi(pkt.dst_vi)
                .map(|v| v.reliability == Reliability::Unreliable)
                .unwrap_or(false);
            if unreliable && matches!(pkt.kind, PacketKind::Send) {
                let payload = self
                    .node
                    .pool
                    .dup_payload(&pkt.payload, &mut self.node.nic.stats);
                self.inbound.push_back(Packet {
                    src_node: pkt.src_node,
                    dst_node: pkt.dst_node,
                    dst_vi: pkt.dst_vi,
                    kind: PacketKind::Send,
                    payload,
                    imm: pkt.imm,
                });
            }
        }
        let resps = self.node.deliver(pkt)?;
        if !resps.is_empty() {
            if best_effort_tx {
                let _ = self.tx.send(resps);
            } else {
                self.tx.send(resps).map_err(|_| ViaError::Disconnected)?;
            }
        }
        Ok(true)
    }

    /// Block until a completion appears on `vi`'s CQ (pumping while
    /// waiting), or time out.
    ///
    /// Inbound packets are delivered one at a time with a CQ check in
    /// between, never drained in bulk: once the awaited completion is on
    /// the CQ the caller gets control back before we consume a message
    /// whose receive descriptor it has not posted yet. (Bulk draining
    /// here loses the race against a fast peer: its next message lands
    /// before our next receive is posted and reliable mode rejects it
    /// with `NoRecvDescriptor`, tearing the node down.)
    ///
    /// While idle the wait spins on non-blocking channel polls for
    /// [`spin_budget`] iterations (latency path: the peer usually answers
    /// within microseconds), yields the core for up to [`YIELD_BUDGET`]
    /// more polls, and only then parks for [`PARK_TIMEOUT`].
    pub fn wait_completion(&mut self, vi: ViId) -> ViaResult<Completion> {
        let deadline = Instant::now() + WAIT_TIMEOUT;
        loop {
            self.ship_sends()?;
            if let Some(c) = self.node.nic.vi_mut(vi)?.poll_cq() {
                return Ok(c);
            }
            if self.deliver_one_inbound(false)? {
                continue;
            }
            // Nothing queued: spin briefly, then park so we neither burn
            // the core nor miss a wakeup. The legacy path parked
            // immediately (the pre-overhaul fixed 1 ms park), paying a
            // futex sleep/wake on every idle wait.
            let mut woke = false;
            if !self.node.nic.legacy_datapath {
                let spins = spin_budget();
                for i in 0..spins + YIELD_BUDGET {
                    if self.refill_inbound() {
                        woke = true;
                        break;
                    }
                    if i < spins {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
            if !woke {
                match self.rx.recv_timeout(PARK_TIMEOUT) {
                    Ok(batch) => self.inbound.extend(batch),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        return self.drain_disconnected(vi);
                    }
                }
            }
            if Instant::now() > deadline {
                return Err(ViaError::BadState("wait_completion timed out"));
            }
        }
    }

    /// Peer thread finished: deliver what it left behind — still one
    /// packet per CQ check — then report the disconnect if the awaited
    /// completion never materialises.
    fn drain_disconnected(&mut self, vi: ViId) -> ViaResult<Completion> {
        loop {
            if let Some(c) = self.node.nic.vi_mut(vi)?.poll_cq() {
                return Ok(c);
            }
            if !self.deliver_one_inbound(true)? {
                return Err(ViaError::Disconnected);
            }
        }
    }
}

/// Run two nodes on two threads. The closures receive their [`NodeCtx`];
/// node 0 routes packets with `src_node = 0` to node 1 and vice versa.
/// Returns both closure results plus the nodes (for post-mortem
/// inspection).
pub fn run_pair<R0, R1, F0, F1>(
    node0: Node,
    node1: Node,
    f0: F0,
    f1: F1,
) -> ViaResult<((R0, Node), (R1, Node))>
where
    R0: Send,
    R1: Send,
    F0: FnOnce(&mut NodeCtx) -> ViaResult<R0> + Send,
    F1: FnOnce(&mut NodeCtx) -> ViaResult<R1> + Send,
{
    let (tx01, rx01) = channel::<Vec<Packet>>();
    let (tx10, rx10) = channel::<Vec<Packet>>();
    let mut ctx0 = NodeCtx {
        node: node0,
        index: 0,
        tx: tx01,
        rx: rx10,
        inbound: VecDeque::new(),
        vi_ids: Vec::new(),
        outbox: Vec::new(),
    };
    let mut ctx1 = NodeCtx {
        node: node1,
        index: 1,
        tx: tx10,
        rx: rx01,
        inbound: VecDeque::new(),
        vi_ids: Vec::new(),
        outbox: Vec::new(),
    };

    std::thread::scope(|s| {
        let h0 = s.spawn(move || -> ViaResult<(R0, Node)> {
            let r = f0(&mut ctx0)?;
            // Final drain so late arrivals are not lost.
            let _ = ctx0.pump();
            Ok((r, ctx0.node))
        });
        let h1 = s.spawn(move || -> ViaResult<(R1, Node)> {
            let r = f1(&mut ctx1)?;
            let _ = ctx1.pump();
            Ok((r, ctx1.node))
        });
        // Join both threads before propagating either error: bailing on
        // node 0's error would detach node 1's scope guard mid-run.
        let r0 = h0
            .join()
            .map_err(|_| ViaError::BadState("node 0 thread panicked"))?;
        let r1 = h1
            .join()
            .map_err(|_| ViaError::BadState("node 1 thread panicked"))?;
        let r0 = r0?;
        let r1 = r1?;
        Ok((r0, r1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpt::ProtectionTag;
    use simmem::{prot, Capabilities, KernelConfig, PAGE_SIZE};
    use vialock::StrategyKind;

    fn node() -> Node {
        Node::new(KernelConfig::medium(), StrategyKind::KiobufReliable, 1024)
    }

    #[test]
    fn threaded_ping_pong() {
        let mut n0 = node();
        let mut n1 = node();
        let tag = ProtectionTag(1);
        let p0 = n0.kernel.spawn_process(Capabilities::default());
        let p1 = n1.kernel.spawn_process(Capabilities::default());
        let v0 = n0.nic.create_vi(p0, tag);
        let v1 = n1.nic.create_vi(p1, tag);
        connect_pair(&mut n0, v0, 0, &mut n1, v1, 1).unwrap();

        let len = 2 * PAGE_SIZE;
        let b0 = n0
            .kernel
            .mmap_anon(p0, len, prot::READ | prot::WRITE)
            .unwrap();
        let b1 = n1
            .kernel
            .mmap_anon(p1, len, prot::READ | prot::WRITE)
            .unwrap();
        let m0 = n0.register_mem(p0, b0, len, tag).unwrap();
        let m1 = n1.register_mem(p1, b1, len, tag).unwrap();

        const ROUNDS: usize = 50;
        let ((sent, _n0), (got, _n1)) = run_pair(
            n0,
            n1,
            move |ctx| {
                let mut sent = 0usize;
                for i in 0..ROUNDS {
                    let msg = vec![i as u8; 256];
                    ctx.node.kernel.write_user(p0, b0, &msg)?;
                    // Pre-post the pong receive BEFORE sending the ping
                    // (reliable mode drops unmatched messages).
                    ctx.node
                        .nic
                        .vi_mut(v0)?
                        .recv_q
                        .push_back(crate::descriptor::Descriptor::recv(m0, b0, len));
                    ctx.node
                        .nic
                        .vi_mut(v0)?
                        .send_q
                        .push_back(crate::descriptor::Descriptor::send(m0, b0, 256));
                    // Send completion, then pong arrival.
                    let c = ctx.wait_completion(v0)?;
                    assert_eq!(c.op, crate::descriptor::DescOp::Send);
                    let c = ctx.wait_completion(v0)?;
                    assert_eq!(c.op, crate::descriptor::DescOp::Recv);
                    assert_eq!(c.len, 256);
                    sent += 1;
                }
                Ok(sent)
            },
            move |ctx| {
                let mut got = 0usize;
                for i in 0..ROUNDS {
                    ctx.node
                        .nic
                        .vi_mut(v1)?
                        .recv_q
                        .push_back(crate::descriptor::Descriptor::recv(m1, b1, len));
                    // Wait for the ping.
                    loop {
                        let c = ctx.wait_completion(v1)?;
                        if c.op == crate::descriptor::DescOp::Recv {
                            assert_eq!(c.len, 256);
                            let mut out = vec![0u8; 256];
                            ctx.node.kernel.read_user(p1, b1, &mut out)?;
                            assert!(out.iter().all(|&b| b == i as u8), "round {i}");
                            got += 1;
                            break;
                        }
                    }
                    // Pong it back.
                    ctx.node
                        .nic
                        .vi_mut(v1)?
                        .send_q
                        .push_back(crate::descriptor::Descriptor::send(m1, b1, 256));
                    let c = ctx.wait_completion(v1)?;
                    assert_eq!(c.op, crate::descriptor::DescOp::Send);
                }
                Ok(got)
            },
        )
        .unwrap();
        assert_eq!(sent, ROUNDS);
        assert_eq!(got, ROUNDS);
    }

    #[test]
    fn threaded_rdma_write_stream() {
        let mut n0 = node();
        let mut n1 = node();
        let tag = ProtectionTag(2);
        let p0 = n0.kernel.spawn_process(Capabilities::default());
        let p1 = n1.kernel.spawn_process(Capabilities::default());
        let v0 = n0.nic.create_vi(p0, tag);
        let v1 = n1.nic.create_vi(p1, tag);
        connect_pair(&mut n0, v0, 0, &mut n1, v1, 1).unwrap();

        let len = 8 * PAGE_SIZE;
        let b0 = n0
            .kernel
            .mmap_anon(p0, len, prot::READ | prot::WRITE)
            .unwrap();
        let b1 = n1
            .kernel
            .mmap_anon(p1, len, prot::READ | prot::WRITE)
            .unwrap();
        n0.kernel.write_user(p0, b0, &vec![0xEE; len]).unwrap();
        let m0 = n0.register_mem(p0, b0, len, tag).unwrap();
        let m1 = n1.register_mem(p1, b1, len, tag).unwrap();

        let ((), _n0, _n1) = {
            let ((a, n0), ((), n1)) = run_pair(
                n0,
                n1,
                move |ctx| {
                    // Stream 16 RDMA writes, one page each.
                    for i in 0..16usize {
                        let off = (i % 8) * PAGE_SIZE;
                        ctx.node.nic.vi_mut(v0)?.send_q.push_back(
                            crate::descriptor::Descriptor::rdma_write(
                                m0,
                                b0 + off as u64,
                                PAGE_SIZE,
                                m1,
                                b1 + off as u64,
                            ),
                        );
                        let c = ctx.wait_completion(v0)?;
                        assert_eq!(c.op, crate::descriptor::DescOp::RdmaWrite);
                    }
                    Ok(())
                },
                move |ctx| {
                    // One-sided: the target just pumps until the data shows
                    // up everywhere.
                    let deadline = Instant::now() + WAIT_TIMEOUT;
                    loop {
                        ctx.pump()?;
                        let mut all = vec![0u8; len];
                        ctx.node.kernel.read_user(p1, b1, &mut all)?;
                        if all.iter().all(|&b| b == 0xEE) {
                            return Ok(());
                        }
                        if Instant::now() > deadline {
                            return Err(ViaError::BadState("rdma stream never completed"));
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                },
            )
            .unwrap();
            (a, n0, n1)
        };
    }
}
