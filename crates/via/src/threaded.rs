//! A multi-threaded N-node fabric: each node (kernel + NIC + kernel
//! agent) runs on its own OS thread; packets travel over **per-pair
//! lock-free SPSC rings** ([`crate::spsc`]) — the producer writes
//! directly into the consumer's queue, one release-store publishes a
//! whole batch, and a per-node [`Doorbell`] wakes a parked consumer
//! without touching a lock unless it is actually asleep. This is the
//! concurrency-faithful counterpart of the deterministic
//! single-threaded [`crate::system::ViaSystem`]: the same `Node` type,
//! real thread interleavings, no shared state beyond the wire.
//!
//! The control plane stays off the data path: [`Fabric`] commands
//! round-trip over a plain (low-rate) mpsc channel per node, so RPC
//! traffic never contends with packet flow. Peer death is detected
//! through the rings' explicit `Closed` state — the replacement for the
//! channel-disconnect semantics of the retired mailbox transport.
//!
//! Two ways to drive it:
//!
//! * [`ThreadedCluster`] — the fabric as a service. Node threads run a
//!   command loop; the cluster handle implements [`Fabric`], so the
//!   message layer and the workload drivers run on it unchanged. Build
//!   one with [`ClusterBuilder`] (node count, kernel config, pinning
//!   strategy, ring capacity, wait timeout).
//! * [`run_cluster`] — one closure per node, each driving its node
//!   through a [`NodeCtx`]: post descriptors on the node directly, then
//!   [`NodeCtx::pump`] to ship outgoing packets and deliver incoming
//!   ones, or [`NodeCtx::wait_completion`] to block until a CQ entry
//!   arrives. Wire VIs first with [`connect_nodes`].

use std::any::Any;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use simmem::{Capabilities, KernelConfig, Pid, VirtAddr};
use vialock::{impl_since, FaultHandle, FaultSite, StrategyKind};

use crate::descriptor::Descriptor;
use crate::error::{ViaError, ViaResult};
use crate::fabric::Fabric;
use crate::nic::{NicStats, Node, Packet, PacketKind, DEFAULT_TPT_PAGES};
use crate::spsc::{self, Consumer, Doorbell, Producer, PushError};
use crate::system::NodeId;
use crate::tpt::{MemId, ProtectionTag};
use crate::vi::{Completion, Reliability, ViId, ViState};

/// Default for how long [`NodeCtx::wait_completion`] (and the cluster's
/// [`Fabric::wait_cq`]) waits before declaring the peer dead. Override
/// per cluster with [`ClusterBuilder::wait_timeout`].
pub const WAIT_TIMEOUT: Duration = Duration::from_secs(5);

/// Non-blocking polls of the inbound mailbox before
/// [`NodeCtx::wait_completion`] starts yielding (spin-yield-park). On a
/// single-core host the budget is zero: the peer can only make progress
/// once we give the core away, so every spin iteration is pure added
/// latency there.
fn spin_budget() -> usize {
    static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores > 1 {
            64
        } else {
            0
        }
    })
}

/// Polls with a `yield_now` between them after the spin budget runs out:
/// a yield hands the core to the peer without the futex sleep/wake
/// round-trip a park costs.
const YIELD_BUDGET: usize = 16;

/// How long a single park lasts once the spin budget is exhausted.
/// Doorbell rings cut it short; the timeout only bounds the damage of a
/// wedged peer so wait budgets and chaos timeouts still fire.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Idle park of the autonomous service loop. Longer than
/// [`PARK_TIMEOUT`]: every packet batch and every command rings the
/// node's doorbell, so the timeout is pure belt-and-braces (it also
/// bounds how long an abandoned node lingers after its controller dies
/// without an orderly shutdown).
const SERVICE_PARK_TIMEOUT: Duration = Duration::from_millis(25);

/// Default slot count of each per-pair wire ring (power of two). A ring
/// holds packet headers, not payload bytes — payloads ride pooled
/// buffers — so capacity bounds in-flight *packets* per (src, dst) pair.
/// Override per cluster with [`ClusterBuilder::ring_capacity`].
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Most packets [`NodeCtx::pump`] delivers per call (bounded burst).
const DELIVER_BURST: usize = 256;

/// Service-loop rounds [`ThreadedCluster::quiesce`] tolerates before
/// declaring the cluster livelocked.
const QUIESCE_ROUND_CAP: usize = 10_000;

/// Per-node counters of the threaded fabric itself (not the NIC): wire
/// batching, routing, and wait-ladder behaviour. Diffable with
/// [`FabricStats::since`] like every other stats block.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FabricStats {
    /// Ring publishes (one release-store per destination per flush,
    /// however many packets each exposed).
    pub batches_sent: u64,
    /// Packets routed into another node's ring.
    pub packets_routed: u64,
    /// Packets delivered into this node's NIC.
    pub delivered: u64,
    /// Times the node parked on its doorbell (idle or wait-ladder park).
    pub parks: u64,
    /// Times the spin/yield phase of the wait ladder caught new work
    /// before a park was needed.
    pub spin_wakes: u64,
    /// Fabric commands served by this node's thread.
    pub commands: u64,
    /// High-water mark of the inbound queue (monotone) — the occupancy
    /// stat the mailbox transport called by the same name.
    pub mailbox_peak: u64,
    /// Doorbells rung at peers (at most one per published batch).
    pub doorbell_rings: u64,
    /// Backpressure rounds: a wire ring was full and the producer had to
    /// publish early, drain its own inbound and retry.
    pub wire_stalls: u64,
}

impl_since!(FabricStats {
    batches_sent,
    packets_routed,
    delivered,
    parks,
    spin_wakes,
    commands,
    mailbox_peak,
    doorbell_rings,
    wire_stalls,
});

/// A closure shipped to a node's service thread by [`Fabric::with_node`].
type NodeFn = Box<dyn FnOnce(&mut Node) -> Box<dyn Any + Send> + Send>;

/// The fabric-surface operations a [`ThreadedCluster`] ships to a node's
/// service thread. One command, one [`Reply`], in lockstep.
enum Command {
    SpawnProcess,
    ExitProcess(Pid),
    Mmap {
        pid: Pid,
        len: usize,
        prot: u8,
    },
    Munmap {
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    },
    TouchPages {
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        write: bool,
    },
    WriteUser {
        pid: Pid,
        addr: VirtAddr,
        data: Vec<u8>,
    },
    ReadUser {
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    },
    CreateVi {
        pid: Pid,
        tag: ProtectionTag,
    },
    SetReliability {
        vi: ViId,
        r: Reliability,
    },
    /// Half of a cross-node connect: point `vi` at `peer` (must be idle).
    SetPeer {
        vi: ViId,
        peer: (NodeId, ViId),
    },
    /// Roll back a half-applied connect whose other side failed.
    RevertPeer {
        vi: ViId,
    },
    /// Same-node connect: both VIs live here.
    ConnectLocal {
        a: ViId,
        b: ViId,
    },
    RegisterMem {
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
        rdma_write: bool,
        rdma_read: bool,
    },
    DeregisterMem(MemId),
    PostSend {
        vi: ViId,
        desc: Descriptor,
    },
    PostRecv {
        vi: ViId,
        desc: Descriptor,
    },
    PollCq(ViId),
    WaitCq(ViId),
    /// [`Command::WaitCq`] with an explicit per-call deadline instead of
    /// the cluster-wide wait budget.
    WaitCqDeadline {
        vi: ViId,
        timeout: Duration,
    },
    Pump,
    SciWriteBytes {
        data: Vec<u8>,
        mem: MemId,
        off: usize,
    },
    SciReadBytes {
        mem: MemId,
        off: usize,
        len: usize,
    },
    InstallFaultPlan(FaultHandle),
    NicStats,
    FabricStats,
    /// Local invariants + pool ledger contribution + inbound depth.
    CheckNode,
    WithNode(NodeFn),
    Shutdown,
    /// Simulated crash: the service thread exits *immediately* — no
    /// reply, no flush of staged wire traffic, no retirement handshake.
    /// The reply channel and wire rings close as the thread unwinds, so
    /// the controller and every peer observe [`ViaError::PeerGone`].
    Die,
}

/// Service-thread answers, one per [`Command`].
enum Reply {
    Pid(Pid),
    Unit(ViaResult<()>),
    Addr(ViaResult<VirtAddr>),
    Bytes(ViaResult<Vec<u8>>),
    Vi(ViaResult<ViId>),
    Mem(ViaResult<MemId>),
    Maybe(ViaResult<Option<Completion>>),
    Completion(ViaResult<Completion>),
    Pumped {
        delivered: usize,
        idle: bool,
        error: Option<ViaError>,
    },
    Stats(NicStats),
    Fabric(FabricStats),
    Check {
        local: Result<(), String>,
        outstanding: i64,
        inbound: usize,
    },
    Any(Box<dyn Any + Send>),
}

/// The wire endpoints one node owns: a producer per destination, a
/// consumer per source, and everyone's doorbells.
struct WirePorts {
    /// `tx[dst]` is this node's private ring into `dst` (`None` for the
    /// self slot — loopback short-circuits through `inbound`).
    tx: Vec<Option<Producer<Packet>>>,
    /// `rx[src]` is `src`'s private ring into this node.
    rx: Vec<Option<Consumer<Packet>>>,
    /// Every node's doorbell; `bells[i]` is rung after publishing into
    /// `tx[i]`. The self slot is this node's own bell.
    bells: Vec<Arc<Doorbell>>,
}

impl WirePorts {
    /// This node's own doorbell.
    fn own_bell(&self, index: usize) -> &Doorbell {
        &self.bells[index]
    }

    /// Packets sitting published-but-unconsumed in this node's inbound
    /// rings (approximate while producers run).
    fn queued(&self) -> usize {
        self.rx.iter().flatten().map(Consumer::len).sum()
    }

    /// Whether every peer has closed its ring into this node.
    fn all_peers_closed(&self) -> bool {
        self.rx.iter().flatten().all(Consumer::is_closed)
    }
}

/// Build the full wire mesh for `n` nodes: one SPSC ring per ordered
/// (src, dst) pair plus one doorbell per node. Returns per-node ports.
fn wire_mesh(n: usize, ring_capacity: usize) -> Vec<WirePorts> {
    let bells: Vec<Arc<Doorbell>> = (0..n).map(|_| Arc::new(Doorbell::default())).collect();
    // rings[src][dst]
    let mut txs: Vec<Vec<Option<Producer<Packet>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut rxs: Vec<Vec<Option<Consumer<Packet>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let (p, c) = spsc::ring(ring_capacity);
            txs[src][dst] = Some(p);
            rxs[dst][src] = Some(c);
        }
    }
    txs.into_iter()
        .zip(rxs)
        .map(|(tx, rx)| WirePorts {
            tx,
            rx,
            bells: bells.clone(),
        })
        .collect()
}

/// Per-thread driver for one node of an N-node cluster. Outgoing packets
/// are written straight into the destination's SPSC ring and published
/// in batches — one release-store plus at most one doorbell ring per
/// destination per flush; arriving packets are popped into `inbound` to
/// be delivered one at a time.
pub struct NodeCtx {
    pub node: Node,
    index: usize,
    /// The data plane: per-pair rings and doorbells.
    wire: WirePorts,
    /// The control plane: fabric commands from the cluster handle (a
    /// dead channel in closure mode). Low-rate by construction, so RPC
    /// never contends with the rings.
    cmd_rx: Receiver<Command>,
    /// The command channel disconnected: the cluster handle (or closure
    /// harness) is gone. Together with every inbound ring closed this is
    /// the transport's "everyone else is gone" signal.
    controller_gone: bool,
    /// Packets received from the wire but not yet delivered.
    inbound: VecDeque<Packet>,
    /// Fabric commands that arrived while this thread was mid-wait;
    /// served by the service loop in arrival order.
    backlog: VecDeque<Command>,
    /// Cached VI id list; VIs are only ever created, so a count check
    /// suffices to detect staleness.
    vi_ids: Vec<ViId>,
    /// Outgoing packets staged for the next routed flush.
    outbox: Vec<Packet>,
    /// Destinations with deferred (unpublished) ring entries.
    touched: Vec<bool>,
    /// Doorbell event count as of the last inbound-ring scan. Every
    /// publish toward us rings our bell, so an unchanged count means a
    /// scan would find nothing: the idle poll stays O(1) instead of
    /// walking N-1 consumers.
    last_events: u64,
    /// Deadline budget for [`NodeCtx::wait_completion`] and
    /// backpressure stalls.
    wait_timeout: Duration,
    stats: FabricStats,
    /// First error the autonomous service pump swallowed; surfaced on
    /// the next `Pump` command.
    pending_error: Option<ViaError>,
}

impl NodeCtx {
    fn new(
        node: Node,
        index: usize,
        wire: WirePorts,
        cmd_rx: Receiver<Command>,
        wait_timeout: Duration,
    ) -> Self {
        let n = wire.bells.len();
        NodeCtx {
            node,
            index,
            wire,
            cmd_rx,
            controller_gone: false,
            inbound: VecDeque::new(),
            backlog: VecDeque::new(),
            vi_ids: Vec::new(),
            outbox: Vec::new(),
            touched: vec![false; n],
            // MAX forces the first refill to scan regardless of bell
            // state.
            last_events: u64::MAX,
            wait_timeout,
            stats: FabricStats::default(),
            pending_error: None,
        }
    }

    /// This node's index in the cluster (its routing address).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Fabric-layer counters for this node.
    pub fn fabric_stats(&self) -> FabricStats {
        self.stats
    }

    /// Ship every pending send and deliver a bounded burst of queued
    /// inbound packets (one at a time, a CQ stays checkable between any
    /// two). Returns (packets sent, packets delivered).
    pub fn pump(&mut self) -> ViaResult<(usize, usize)> {
        let sent = self.ship_sends()?;
        let mut delivered = 0usize;
        while delivered < DELIVER_BURST && self.deliver_one_inbound(false)? {
            delivered += 1;
        }
        Ok((sent, delivered))
    }

    /// Route one outbound packet: self-destined short-circuits into
    /// `inbound`, everything else is written (deferred, unpublished) into
    /// the destination's ring. A full ring is backpressure: publish what
    /// we have, drain our own inbound rings (so a mutual-full cycle
    /// always unwinds — popping needs no CQ progress), and retry until
    /// the wait budget runs out. A closed ring is a gone peer: the
    /// payload returns to the pool and — unless `best_effort` — the
    /// stall surfaces as [`ViaError::PeerGone`].
    fn stage(&mut self, pkt: Packet, best_effort: bool) -> ViaResult<()> {
        if pkt.dst_node == self.index {
            self.inbound.push_back(pkt);
            self.stats.mailbox_peak = self.stats.mailbox_peak.max(self.inbound.len() as u64);
            return Ok(());
        }
        let dst = pkt.dst_node;
        let mut pkt = pkt;
        let mut deadline: Option<Instant> = None;
        loop {
            let prod = self.wire.tx[dst]
                .as_mut()
                .expect("non-self destination has a ring");
            match prod.push_deferred(pkt) {
                Ok(()) => {
                    self.touched[dst] = true;
                    self.stats.packets_routed += 1;
                    return Ok(());
                }
                Err(PushError::Closed(p)) => {
                    // Return the payload so the pool ledger stays
                    // balanced even across a peer death.
                    self.node.pool.put(p.payload);
                    return if best_effort {
                        Ok(())
                    } else {
                        Err(ViaError::PeerGone(dst))
                    };
                }
                Err(PushError::Full(p)) => {
                    pkt = p;
                    self.stats.wire_stalls += 1;
                    // Expose what we already staged so the consumer can
                    // make progress, then absorb our own inbound.
                    if self.wire.tx[dst].as_mut().unwrap().publish() > 0 {
                        self.stats.batches_sent += 1;
                        self.stats.doorbell_rings += 1;
                        self.wire.bells[dst].ring();
                    }
                    self.touched[dst] = false;
                    self.refill_wire();
                    std::thread::yield_now();
                    let d = *deadline.get_or_insert_with(|| Instant::now() + self.wait_timeout);
                    if Instant::now() > d {
                        self.node.pool.put(pkt.payload);
                        return Err(ViaError::BadState("wire backpressure stall"));
                    }
                }
            }
        }
    }

    /// Publish every touched destination ring — ONE release-store and at
    /// most one doorbell ring per destination, however many packets the
    /// flush carried.
    fn flush_wire(&mut self) {
        for dst in 0..self.touched.len() {
            if !self.touched[dst] {
                continue;
            }
            self.touched[dst] = false;
            let Some(prod) = self.wire.tx[dst].as_mut() else {
                continue;
            };
            if prod.publish() > 0 {
                self.stats.batches_sent += 1;
                self.stats.doorbell_rings += 1;
                self.wire.bells[dst].ring();
            }
        }
    }

    /// Stage-and-flush the whole outbox. On a hard error (dead peer,
    /// backpressure timeout) the not-yet-staged remainder returns its
    /// payloads to the pool so the ledger survives the failure.
    fn route_outbox(&mut self, best_effort: bool) -> ViaResult<()> {
        let mut pkts = std::mem::take(&mut self.outbox).into_iter();
        let mut result = Ok(());
        for pkt in pkts.by_ref() {
            if let Err(e) = self.stage(pkt, best_effort) {
                result = Err(e);
                break;
            }
        }
        for pkt in pkts {
            self.node.pool.put(pkt.payload);
        }
        self.flush_wire();
        result
    }

    /// Ship every pending send of every VI, batched per destination,
    /// without touching the inbound queue (beyond loopback traffic).
    fn ship_sends(&mut self) -> ViaResult<usize> {
        if self.vi_ids.len() != self.node.nic.vi_count() {
            self.node.nic.vi_ids_into(&mut self.vi_ids);
        }
        let mut sent = 0usize;
        for i in 0..self.vi_ids.len() {
            sent += self
                .node
                .pump_vi_sends_into(self.vi_ids[i], self.index, &mut self.outbox)?;
        }
        if self.outbox.is_empty() {
            return Ok(sent);
        }
        if self.node.nic.legacy_datapath {
            // Pre-overhaul wire: one publish (and one peer wakeup) per
            // packet instead of one per destination per flush.
            let mut pkts = std::mem::take(&mut self.outbox).into_iter();
            let mut result = Ok(());
            for pkt in pkts.by_ref() {
                if let Err(e) = self.stage(pkt, false) {
                    result = Err(e);
                    break;
                }
                self.flush_wire();
            }
            for pkt in pkts {
                self.node.pool.put(pkt.payload);
            }
            result?;
            return Ok(sent);
        }
        self.route_outbox(false)?;
        Ok(sent)
    }

    /// Drain the control channel into the backlog, noting a disconnect
    /// (the cluster handle is gone).
    fn drain_commands(&mut self) {
        loop {
            match self.cmd_rx.try_recv() {
                Ok(cmd) => self.backlog.push_back(cmd),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.controller_gone = true;
                    break;
                }
            }
        }
    }

    /// Pop everything currently published in the inbound rings into
    /// `inbound`, tracking the high-water mark. Unconditional scan —
    /// prefer [`NodeCtx::refill_wire`], which skips it when the doorbell
    /// says nothing arrived.
    fn scan_wire(&mut self) {
        for src in 0..self.wire.rx.len() {
            if let Some(cons) = self.wire.rx[src].as_mut() {
                while let Ok(pkt) = cons.pop() {
                    self.inbound.push_back(pkt);
                }
            }
        }
        self.stats.mailbox_peak = self.stats.mailbox_peak.max(self.inbound.len() as u64);
    }

    /// [`NodeCtx::scan_wire`], gated on the doorbell: every publish into
    /// one of our rings rings our bell *after* the release-store, so an
    /// unchanged event count proves the scan would come up empty. The
    /// snapshot is taken before the scan — a publish landing mid-scan
    /// bumps the count past the snapshot and forces the next scan.
    fn refill_wire(&mut self) {
        let events = self.wire.own_bell(self.index).events();
        if events == self.last_events {
            return;
        }
        self.last_events = events;
        self.scan_wire();
    }

    /// Pull whatever the wire and the control channel have queued into
    /// `inbound`/`backlog` without blocking. Returns whether `inbound`
    /// is now non-empty.
    fn refill_inbound(&mut self) -> bool {
        self.drain_commands();
        self.refill_wire();
        !self.inbound.is_empty()
    }

    /// The transport-level "everyone else is gone" signal: the control
    /// channel is disconnected and every peer closed its inbound ring.
    /// (In closure mode the control channel is born disconnected, so
    /// this reduces to all-peers-closed, exactly the old mailbox
    /// disconnect condition.)
    fn all_peers_gone(&self) -> bool {
        self.controller_gone && self.wire.all_peers_closed()
    }

    /// Leave the wire: close every outbound ring (publishing anything
    /// still deferred) and ring every peer's bell so their event-gated
    /// scans notice both the final packets and the close. Called before
    /// the node is handed back; the thread is done with the fabric.
    fn retire(&mut self) {
        for tx in self.wire.tx.iter_mut() {
            // Dropping the producer closes the ring, publishing pending
            // slots first.
            drop(tx.take());
        }
        for (i, bell) in self.wire.bells.iter().enumerate() {
            if i != self.index {
                bell.ring();
            }
        }
    }

    /// Deliver exactly ONE inbound packet, if any is queued. This is the
    /// single choke point every drain path goes through, so the
    /// one-packet-per-CQ-check rule holds everywhere. With
    /// `best_effort_tx` a dead peer mailbox swallows responses instead
    /// of erroring (used while draining after a disconnect and by the
    /// autonomous service pump).
    fn deliver_one_inbound(&mut self, best_effort_tx: bool) -> ViaResult<bool> {
        if self.inbound.is_empty() && !self.refill_inbound() {
            return Ok(false);
        }
        let pkt = self.inbound.pop_front().expect("refill_inbound said so");
        // Wire faults strike at this NIC's ingress, exactly as in the
        // single-threaded fabric.
        if self.node.inject(FaultSite::WireDelay) {
            self.node.nic.stats.wire_delays += 1;
            // Requeue behind everything already waiting: the packet is
            // overtaken by later traffic.
            self.inbound.push_back(pkt);
            return Ok(true);
        }
        if self.node.inject(FaultSite::WireDrop) {
            let vi = pkt.dst_vi;
            self.node.pool.put(pkt.payload);
            self.node.wire_drop(vi)?;
            return Ok(true);
        }
        if self.node.inject(FaultSite::WireDuplicate) {
            self.node.nic.stats.wire_dups += 1;
            // Reliable VIs suppress the copy; unreliable datagrams arrive
            // twice.
            let unreliable = self
                .node
                .nic
                .vi(pkt.dst_vi)
                .map(|v| v.reliability == Reliability::Unreliable)
                .unwrap_or(false);
            if unreliable && matches!(pkt.kind, PacketKind::Send) {
                let payload = self
                    .node
                    .pool
                    .dup_payload(&pkt.payload, &mut self.node.nic.stats);
                self.inbound.push_back(Packet {
                    src_node: pkt.src_node,
                    dst_node: pkt.dst_node,
                    dst_vi: pkt.dst_vi,
                    kind: PacketKind::Send,
                    payload,
                    imm: pkt.imm,
                });
            }
        }
        let resps = self.node.deliver(pkt)?;
        self.stats.delivered += 1;
        if !resps.is_empty() {
            self.outbox.extend(resps);
            self.route_outbox(best_effort_tx)?;
        }
        Ok(true)
    }

    /// Block until a completion appears on `vi`'s CQ (pumping while
    /// waiting), or time out after the cluster's wait budget.
    ///
    /// Inbound packets are delivered one at a time with a CQ check in
    /// between, never drained in bulk: once the awaited completion is on
    /// the CQ the caller gets control back before we consume a message
    /// whose receive descriptor it has not posted yet. (Bulk draining
    /// here loses the race against a fast peer: its next message lands
    /// before our next receive is posted and reliable mode rejects it
    /// with `NoRecvDescriptor`, tearing the node down.)
    ///
    /// While idle the wait spins on non-blocking wire polls for
    /// [`spin_budget`] iterations (latency path: the peer usually answers
    /// within microseconds), yields the core for up to [`YIELD_BUDGET`]
    /// more polls, and only then parks on the doorbell for
    /// [`PARK_TIMEOUT`]. The doorbell snapshot is taken *before* the
    /// final emptiness re-check, so a publish that lands between the
    /// check and the park still wakes us immediately.
    pub fn wait_completion(&mut self, vi: ViId) -> ViaResult<Completion> {
        self.wait_completion_for(vi, self.wait_timeout)
    }

    /// [`NodeCtx::wait_completion`] with an explicit wait budget — the
    /// deadline-aware variant DLM clients (and anything else talking to a
    /// possibly-dead peer) use so they can never hang past their lease.
    pub fn wait_completion_for(&mut self, vi: ViId, timeout: Duration) -> ViaResult<Completion> {
        let deadline = Instant::now() + timeout;
        loop {
            self.ship_sends()?;
            if let Some(c) = self.node.nic.vi_mut(vi)?.poll_cq() {
                return Ok(c);
            }
            if self.deliver_one_inbound(false)? {
                continue;
            }
            // Nothing queued: spin briefly, then park so we neither burn
            // the core nor miss a wakeup. The legacy path parked
            // immediately (the pre-overhaul fixed 1 ms park), paying a
            // futex sleep/wake on every idle wait.
            let mut woke = false;
            if !self.node.nic.legacy_datapath {
                let spins = spin_budget();
                for i in 0..spins + YIELD_BUDGET {
                    if self.refill_inbound() {
                        woke = true;
                        self.stats.spin_wakes += 1;
                        break;
                    }
                    if i < spins {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
            if !woke {
                if self.all_peers_gone() {
                    return self.drain_disconnected(vi);
                }
                let observed = self.wire.own_bell(self.index).events();
                // Ungated scan on the park path: a peer that closed
                // without ringing (panicked thread) must not stall us a
                // full park interval per packet it left behind.
                self.drain_commands();
                self.scan_wire();
                if self.inbound.is_empty() && self.backlog.is_empty() {
                    self.stats.parks += 1;
                    self.wire.own_bell(self.index).wait(observed, PARK_TIMEOUT);
                }
            }
            if Instant::now() > deadline {
                return Err(ViaError::Timeout);
            }
        }
    }

    /// Every other thread finished: deliver what they left behind —
    /// still one packet per CQ check — then report the disconnect if the
    /// awaited completion never materialises.
    fn drain_disconnected(&mut self, vi: ViId) -> ViaResult<Completion> {
        loop {
            if let Some(c) = self.node.nic.vi_mut(vi)?.poll_cq() {
                return Ok(c);
            }
            // Ungated scan: a peer that died without ringing (a panicked
            // thread) may have published right before closing.
            self.scan_wire();
            if !self.deliver_one_inbound(true)? {
                return Err(ViaError::Disconnected);
            }
        }
    }

    /// Remember the first error the autonomous pump swallowed.
    fn note_error(&mut self, e: ViaError) {
        self.pending_error.get_or_insert(e);
    }

    /// One best-effort progress round for the service loop: ship, then
    /// deliver a bounded burst. Errors are noted (and the offending
    /// packet consumed) rather than propagated — a service thread must
    /// outlive a torn-down VI. Returns whether any progress was made.
    fn pump_round(&mut self) -> bool {
        let mut progressed = false;
        match self.ship_sends() {
            Ok(sent) => progressed |= sent > 0,
            Err(e) => self.note_error(e),
        }
        let mut delivered = 0usize;
        while delivered < DELIVER_BURST {
            match self.deliver_one_inbound(true) {
                Ok(true) => delivered += 1,
                Ok(false) => break,
                Err(e) => {
                    // The packet was consumed; the error is the result of
                    // its delivery (e.g. a reliable VI torn down). Finite,
                    // so it counts as progress.
                    self.note_error(e);
                    delivered += 1;
                }
            }
        }
        progressed | (delivered > 0)
    }
}

// ----------------------------------------------------------------------
// The service loop: a NodeCtx driven by commands from the cluster handle
// ----------------------------------------------------------------------

impl NodeCtx {
    /// Execute one fabric command against this node. `WaitCq` and `Pump`
    /// recurse into the normal pump/wait machinery, so wire traffic keeps
    /// flowing while a command is being served.
    fn handle(&mut self, cmd: Command) -> Reply {
        match cmd {
            Command::SpawnProcess => {
                Reply::Pid(self.node.kernel.spawn_process(Capabilities::default()))
            }
            Command::ExitProcess(pid) => Reply::Unit(self.node.exit_process(pid)),
            Command::Mmap { pid, len, prot } => Reply::Addr(
                self.node
                    .kernel
                    .mmap_anon(pid, len, prot)
                    .map_err(ViaError::from),
            ),
            Command::Munmap { pid, addr, len } => Reply::Unit(
                self.node
                    .kernel
                    .munmap(pid, addr, len)
                    .map_err(ViaError::from),
            ),
            Command::TouchPages {
                pid,
                addr,
                len,
                write,
            } => Reply::Unit(
                self.node
                    .kernel
                    .touch_pages(pid, addr, len, write)
                    .map_err(ViaError::from),
            ),
            Command::WriteUser { pid, addr, data } => Reply::Unit(
                self.node
                    .kernel
                    .write_user(pid, addr, &data)
                    .map_err(ViaError::from),
            ),
            Command::ReadUser { pid, addr, len } => {
                let mut buf = vec![0u8; len];
                Reply::Bytes(
                    self.node
                        .kernel
                        .read_user(pid, addr, &mut buf)
                        .map(|()| buf)
                        .map_err(ViaError::from),
                )
            }
            Command::CreateVi { pid, tag } => Reply::Vi(Ok(self.node.nic.create_vi(pid, tag))),
            Command::SetReliability { vi, r } => {
                Reply::Unit(self.node.nic.vi_mut(vi).map(|v| v.reliability = r))
            }
            Command::SetPeer { vi, peer } => Reply::Unit(self.set_peer(vi, peer)),
            Command::RevertPeer { vi } => Reply::Unit(self.node.nic.vi_mut(vi).map(|v| {
                v.peer = None;
                v.state = ViState::Idle;
            })),
            Command::ConnectLocal { a, b } => Reply::Unit(self.connect_local(a, b)),
            Command::RegisterMem {
                pid,
                addr,
                len,
                tag,
                rdma_write,
                rdma_read,
            } => Reply::Mem(
                self.node
                    .register_mem_attrs(pid, addr, len, tag, rdma_write, rdma_read),
            ),
            Command::DeregisterMem(mem) => Reply::Unit(self.node.deregister_mem(mem)),
            Command::PostSend { vi, desc } => Reply::Unit(self.post(vi, desc, true)),
            Command::PostRecv { vi, desc } => Reply::Unit(self.post(vi, desc, false)),
            Command::PollCq(vi) => Reply::Maybe(self.node.nic.vi_mut(vi).map(|v| v.poll_cq())),
            Command::WaitCq(vi) => Reply::Completion(self.wait_completion(vi)),
            Command::WaitCqDeadline { vi, timeout } => {
                Reply::Completion(self.wait_completion_for(vi, timeout))
            }
            Command::Pump => {
                let before = self.stats.delivered;
                let progressed = self.pump_round();
                let delivered = (self.stats.delivered - before) as usize;
                Reply::Pumped {
                    delivered,
                    idle: !progressed && self.inbound.is_empty() && self.outbox.is_empty(),
                    error: self.pending_error.take(),
                }
            }
            Command::SciWriteBytes { data, mem, off } => {
                Reply::Unit(self.node.sci_write_bytes(&data, mem, off))
            }
            Command::SciReadBytes { mem, off, len } => {
                let mut out = vec![0u8; len];
                Reply::Bytes(self.node.sci_read_bytes(mem, off, &mut out).map(|()| out))
            }
            Command::InstallFaultPlan(plan) => {
                self.node.install_fault_plan(&plan);
                Reply::Unit(Ok(()))
            }
            Command::NicStats => Reply::Stats(self.node.nic.stats),
            Command::FabricStats => Reply::Fabric(self.stats),
            Command::CheckNode => Reply::Check {
                local: self.node.check_local_invariants(),
                outstanding: self.node.pool.outstanding(),
                // Undelivered work is both the local queue and anything
                // still sitting published in our inbound rings.
                inbound: self.inbound.len() + self.wire.queued(),
            },
            Command::WithNode(f) => Reply::Any(f(&mut self.node)),
            Command::Shutdown => Reply::Unit(Ok(())),
            Command::Die => unreachable!("Die is intercepted by the service loop"),
        }
    }

    fn set_peer(&mut self, vi: ViId, peer: (NodeId, ViId)) -> ViaResult<()> {
        let v = self.node.nic.vi_mut(vi)?;
        if v.state != ViState::Idle {
            return Err(ViaError::BadState("connect on non-idle VI"));
        }
        v.peer = Some(peer);
        v.state = ViState::Connected;
        Ok(())
    }

    fn connect_local(&mut self, a: ViId, b: ViId) -> ViaResult<()> {
        if self.node.nic.vi(a)?.state != ViState::Idle
            || self.node.nic.vi(b)?.state != ViState::Idle
        {
            return Err(ViaError::BadState("connect on non-idle VI"));
        }
        let index = self.index;
        {
            let v = self.node.nic.vi_mut(a)?;
            v.peer = Some((index, b));
            v.state = ViState::Connected;
        }
        {
            let v = self.node.nic.vi_mut(b)?;
            v.peer = Some((index, a));
            v.state = ViState::Connected;
        }
        Ok(())
    }

    fn post(&mut self, vi: ViId, desc: Descriptor, send: bool) -> ViaResult<()> {
        let v = self.node.nic.vi_mut(vi)?;
        if v.state == ViState::Error {
            return Err(ViaError::Disconnected);
        }
        if send {
            v.send_q.push_back(desc);
        } else {
            v.recv_q.push_back(desc);
        }
        Ok(())
    }
}

/// The per-node service thread: serve backlogged commands, make
/// autonomous wire progress, and park on the doorbell when idle. Returns
/// the node for post-mortem inspection once the cluster shuts down.
fn service(mut ctx: NodeCtx, reply_tx: Sender<Reply>) -> Node {
    loop {
        ctx.drain_commands();
        while let Some(cmd) = ctx.backlog.pop_front() {
            ctx.stats.commands += 1;
            if matches!(cmd, Command::Die) {
                // Simulated crash: drop everything on the floor. Peers
                // discover the death through their closed wire rings,
                // the controller through the closed reply channel.
                return ctx.node;
            }
            let shutdown = matches!(cmd, Command::Shutdown);
            if shutdown {
                // Flush anything still staged so peers draining their
                // rings see it.
                let _ = ctx.pump_round();
            }
            let reply = ctx.handle(cmd);
            if reply_tx.send(reply).is_err() || shutdown {
                // Controller gone (or orderly shutdown): we're done.
                ctx.retire();
                return ctx.node;
            }
        }
        if ctx.controller_gone {
            // The handle was dropped without a shutdown: flush what we
            // can so draining peers see it, then leave.
            let _ = ctx.pump_round();
            ctx.retire();
            return ctx.node;
        }
        if ctx.pump_round() {
            continue;
        }
        if !ctx.backlog.is_empty() || ctx.refill_inbound() {
            continue;
        }
        // Fully idle: park on the doorbell until a peer publishes or the
        // controller sends a command (commands ring the bell too). The
        // snapshot-then-recheck order makes the sleep lost-wakeup-free;
        // the recheck scans ungated so a peer that closed without
        // ringing cannot stall us, and the timeout bounds everything
        // else.
        let observed = ctx.wire.own_bell(ctx.index).events();
        ctx.drain_commands();
        ctx.scan_wire();
        if !ctx.inbound.is_empty() || !ctx.backlog.is_empty() {
            continue;
        }
        ctx.stats.parks += 1;
        ctx.wire
            .own_bell(ctx.index)
            .wait(observed, SERVICE_PARK_TIMEOUT);
    }
}

// ----------------------------------------------------------------------
// The cluster handle
// ----------------------------------------------------------------------

/// Configuration for a [`ThreadedCluster`].
pub struct ClusterBuilder {
    nodes: usize,
    config: KernelConfig,
    strategy: StrategyKind,
    tpt_pages: usize,
    wait_timeout: Duration,
    ring_capacity: usize,
}

impl ClusterBuilder {
    /// `nodes` identical nodes with the given kernel configuration and
    /// pinning strategy.
    pub fn new(nodes: usize, config: KernelConfig, strategy: StrategyKind) -> Self {
        ClusterBuilder {
            nodes,
            config,
            strategy,
            tpt_pages: DEFAULT_TPT_PAGES,
            wait_timeout: WAIT_TIMEOUT,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// TPT capacity per node, in pages.
    pub fn tpt_pages(mut self, pages: usize) -> Self {
        self.tpt_pages = pages;
        self
    }

    /// How long a blocking wait ([`Fabric::wait_cq`],
    /// [`NodeCtx::wait_completion`]) may stall before erroring. Tighten
    /// for tests that expect to time out; loosen for heavily oversubscribed
    /// hosts.
    pub fn wait_timeout(mut self, timeout: Duration) -> Self {
        self.wait_timeout = timeout;
        self
    }

    /// Per-(src, dst) wire ring capacity in packets, rounded up to a
    /// power of two (minimum 2). Smaller rings exercise backpressure;
    /// larger rings absorb burstier flushes.
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Spawn the node threads and hand back the cluster.
    pub fn build(self) -> ThreadedCluster {
        let nodes = (0..self.nodes)
            .map(|_| Node::new(self.config, self.strategy, self.tpt_pages))
            .collect();
        ThreadedCluster::launch(nodes, self.wait_timeout, self.ring_capacity)
    }
}

/// An N-node threaded fabric behind a [`Fabric`] surface: one service
/// thread per node, commands round-trip over the node's control channel
/// (ringing its doorbell so a parked thread wakes). Dropping the handle
/// shuts the threads down; [`ThreadedCluster::into_nodes`] shuts down
/// *and* returns the nodes for post-mortem inspection.
pub struct ThreadedCluster {
    cmd_txs: Vec<Sender<Command>>,
    bells: Vec<Arc<Doorbell>>,
    replies: Vec<Receiver<Reply>>,
    handles: Vec<Option<JoinHandle<Node>>>,
    wait_timeout: Duration,
}

impl ThreadedCluster {
    /// A cluster with default TPT capacity, ring capacity and wait
    /// timeout. See [`ClusterBuilder`] for the knobs.
    pub fn new(nodes: usize, config: KernelConfig, strategy: StrategyKind) -> Self {
        ClusterBuilder::new(nodes, config, strategy).build()
    }

    /// Put pre-built nodes on service threads.
    fn launch(nodes: Vec<Node>, wait_timeout: Duration, ring_capacity: usize) -> Self {
        let n = nodes.len();
        let mut ports = wire_mesh(n, ring_capacity);
        let bells = ports[0].bells.clone();
        let mut cmd_txs = Vec::with_capacity(n);
        let mut replies = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (i, node) in nodes.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = channel::<Command>();
            let wire = std::mem::replace(
                &mut ports[i],
                WirePorts {
                    tx: Vec::new(),
                    rx: Vec::new(),
                    bells: Vec::new(),
                },
            );
            let ctx = NodeCtx::new(node, i, wire, cmd_rx, wait_timeout);
            let (reply_tx, reply_rx) = channel::<Reply>();
            cmd_txs.push(cmd_tx);
            replies.push(reply_rx);
            let handle = std::thread::Builder::new()
                .name(format!("via-node-{i}"))
                .spawn(move || service(ctx, reply_tx))
                .expect("spawn via node thread");
            handles.push(Some(handle));
        }
        ThreadedCluster {
            cmd_txs,
            bells,
            replies,
            handles,
            wait_timeout,
        }
    }

    /// The configured wait budget.
    pub fn wait_timeout(&self) -> Duration {
        self.wait_timeout
    }

    /// One command round-trip to node `n`'s service thread: send on the
    /// control channel, ring the node's doorbell (it may be parked), wait
    /// for the reply. A closed channel means the thread is gone (panicked
    /// or shut down) — [`ViaError::PeerGone`].
    fn command(&mut self, n: NodeId, cmd: Command) -> ViaResult<Reply> {
        self.cmd_txs[n]
            .send(cmd)
            .map_err(|_| ViaError::PeerGone(n))?;
        self.bells[n].ring();
        // A panicking service thread drops its reply sender, so this
        // cannot deadlock.
        self.replies[n].recv().map_err(|_| ViaError::PeerGone(n))
    }

    fn unit(&mut self, n: NodeId, cmd: Command) -> ViaResult<()> {
        match self.command(n, cmd)? {
            Reply::Unit(r) => r,
            _ => unreachable!("reply type mismatch for unit command"),
        }
    }

    fn bytes(&mut self, n: NodeId, cmd: Command) -> ViaResult<Vec<u8>> {
        match self.command(n, cmd)? {
            Reply::Bytes(r) => r,
            _ => unreachable!("reply type mismatch for bytes command"),
        }
    }

    /// One bounded, best-effort progress round on node `n`. Returns
    /// (packets delivered, node idle, first autonomous error).
    fn pump_node(&mut self, n: NodeId) -> ViaResult<(usize, bool, Option<ViaError>)> {
        match self.command(n, Command::Pump)? {
            Reply::Pumped {
                delivered,
                idle,
                error,
            } => Ok((delivered, idle, error)),
            _ => unreachable!("reply type mismatch for Pump"),
        }
    }

    /// Pump every node until two consecutive all-idle rounds — the
    /// threaded analogue of the deterministic fabric's pump-to-quiescence.
    /// Autonomous delivery errors encountered on the way are dropped (they
    /// are already recorded in NIC stats and VI state); callers that care
    /// should use [`ThreadedCluster::pump`] and inspect its error. Errors
    /// from this method itself mean the cluster is unhealthy (a thread is
    /// gone, or the fabric would not settle).
    pub fn quiesce(&mut self) -> ViaResult<usize> {
        let n = self.cmd_txs.len();
        let mut total = 0usize;
        let mut idle_rounds = 0usize;
        let mut rounds = 0usize;
        while idle_rounds < 2 {
            rounds += 1;
            if rounds > QUIESCE_ROUND_CAP {
                return Err(ViaError::BadState("quiesce: cluster would not settle"));
            }
            let mut all_idle = true;
            for i in 0..n {
                let (delivered, idle, _autonomous) = self.pump_node(i)?;
                total += delivered;
                if delivered > 0 || !idle {
                    all_idle = false;
                }
            }
            if all_idle {
                idle_rounds += 1;
            } else {
                idle_rounds = 0;
            }
        }
        Ok(total)
    }

    /// Fabric-layer counters of node `n`'s service thread.
    pub fn fabric_stats(&mut self, n: NodeId) -> ViaResult<FabricStats> {
        match self.command(n, Command::FabricStats)? {
            Reply::Fabric(s) => Ok(s),
            _ => unreachable!("reply type mismatch for FabricStats"),
        }
    }

    /// Crash node `n`: its service thread exits immediately without
    /// replying, flushing staged wire traffic, or retiring, so every
    /// subsequent command to it — and every peer's send toward it —
    /// surfaces [`ViaError::PeerGone`] (or, for a blocking wait that was
    /// counting on its traffic, [`ViaError::Timeout`] once the wait
    /// ladder expires). Joins the thread so the death is complete, not
    /// merely requested, when this returns. The node's state dies with
    /// it; [`ThreadedCluster::into_nodes`] reports it among the dead.
    pub fn kill_node(&mut self, n: NodeId) -> ViaResult<()> {
        self.cmd_txs[n]
            .send(Command::Die)
            .map_err(|_| ViaError::PeerGone(n))?;
        self.bells[n].ring();
        if let Some(handle) = self.handles[n].take() {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Shut every node thread down and return the nodes for post-mortem
    /// inspection (registries, stats, VI state).
    pub fn into_nodes(mut self) -> ViaResult<Vec<Node>> {
        let cmd_txs = std::mem::take(&mut self.cmd_txs);
        let replies = std::mem::take(&mut self.replies);
        let mut handles = std::mem::take(&mut self.handles);
        for (i, tx) in cmd_txs.iter().enumerate() {
            let _ = tx.send(Command::Shutdown);
            self.bells[i].ring();
        }
        drop(cmd_txs);
        drop(replies);
        // Join every thread before reporting: a panicked node must not
        // leave the rest detached, and all dead indices are reported, not
        // just the first.
        let mut nodes = Vec::with_capacity(handles.len());
        let mut dead: Vec<usize> = Vec::new();
        for (i, slot) in handles.iter_mut().enumerate() {
            // A `None` slot is a node killed earlier via `kill_node`.
            let Some(handle) = slot.take() else {
                dead.push(i);
                continue;
            };
            match handle.join() {
                Ok(node) => nodes.push(node),
                Err(_) => dead.push(i),
            }
        }
        match dead.len() {
            0 => Ok(nodes),
            1 => Err(ViaError::PeerGone(dead[0])),
            _ => Err(ViaError::NodesGone(dead)),
        }
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        for (i, tx) in self.cmd_txs.iter().enumerate() {
            let _ = tx.send(Command::Shutdown);
            self.bells[i].ring();
        }
        self.cmd_txs.clear();
        self.replies.clear();
        for handle in self.handles.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
    }
}

impl Fabric for ThreadedCluster {
    fn node_count(&self) -> usize {
        self.cmd_txs.len()
    }

    fn spawn_process(&mut self, n: NodeId) -> Pid {
        match self
            .command(n, Command::SpawnProcess)
            .unwrap_or_else(|e| panic!("spawn_process: node {n} unreachable: {e}"))
        {
            Reply::Pid(p) => p,
            _ => unreachable!("reply type mismatch for SpawnProcess"),
        }
    }

    fn exit_process(&mut self, n: NodeId, pid: Pid) -> ViaResult<()> {
        self.unit(n, Command::ExitProcess(pid))
    }

    fn mmap(&mut self, n: NodeId, pid: Pid, len: usize, prot: u8) -> ViaResult<VirtAddr> {
        match self.command(n, Command::Mmap { pid, len, prot })? {
            Reply::Addr(r) => r,
            _ => unreachable!("reply type mismatch for Mmap"),
        }
    }

    fn munmap(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, len: usize) -> ViaResult<()> {
        self.unit(n, Command::Munmap { pid, addr, len })
    }

    fn touch_pages(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        write: bool,
    ) -> ViaResult<()> {
        self.unit(
            n,
            Command::TouchPages {
                pid,
                addr,
                len,
                write,
            },
        )
    }

    fn write_user(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, data: &[u8]) -> ViaResult<()> {
        self.unit(
            n,
            Command::WriteUser {
                pid,
                addr,
                data: data.to_vec(),
            },
        )
    }

    fn read_user(&mut self, n: NodeId, pid: Pid, addr: VirtAddr, out: &mut [u8]) -> ViaResult<()> {
        let bytes = self.bytes(
            n,
            Command::ReadUser {
                pid,
                addr,
                len: out.len(),
            },
        )?;
        out.copy_from_slice(&bytes);
        Ok(())
    }

    fn create_vi(&mut self, n: NodeId, pid: Pid, tag: ProtectionTag) -> ViaResult<ViId> {
        match self.command(n, Command::CreateVi { pid, tag })? {
            Reply::Vi(r) => r,
            _ => unreachable!("reply type mismatch for CreateVi"),
        }
    }

    fn set_reliability(&mut self, n: NodeId, vi: ViId, r: Reliability) -> ViaResult<()> {
        self.unit(n, Command::SetReliability { vi, r })
    }

    fn connect(&mut self, a: (NodeId, ViId), b: (NodeId, ViId)) -> ViaResult<()> {
        if a.0 == b.0 {
            if a.1 == b.1 {
                return Err(ViaError::BadState("connect VI to itself"));
            }
            return self.unit(a.0, Command::ConnectLocal { a: a.1, b: b.1 });
        }
        self.unit(
            a.0,
            Command::SetPeer {
                vi: a.1,
                peer: (b.0, b.1),
            },
        )?;
        match self.unit(
            b.0,
            Command::SetPeer {
                vi: b.1,
                peer: (a.0, a.1),
            },
        ) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Roll the first half back so a failed connect leaves
                // both VIs idle.
                let _ = self.unit(a.0, Command::RevertPeer { vi: a.1 });
                Err(e)
            }
        }
    }

    fn register_mem_attrs(
        &mut self,
        n: NodeId,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
        tag: ProtectionTag,
        rdma_write: bool,
        rdma_read: bool,
    ) -> ViaResult<MemId> {
        match self.command(
            n,
            Command::RegisterMem {
                pid,
                addr,
                len,
                tag,
                rdma_write,
                rdma_read,
            },
        )? {
            Reply::Mem(r) => r,
            _ => unreachable!("reply type mismatch for RegisterMem"),
        }
    }

    fn deregister_mem(&mut self, n: NodeId, mem: MemId) -> ViaResult<()> {
        self.unit(n, Command::DeregisterMem(mem))
    }

    fn post_send_desc(&mut self, n: NodeId, vi: ViId, desc: Descriptor) -> ViaResult<()> {
        self.unit(n, Command::PostSend { vi, desc })
    }

    fn post_recv_desc(&mut self, n: NodeId, vi: ViId, desc: Descriptor) -> ViaResult<()> {
        self.unit(n, Command::PostRecv { vi, desc })
    }

    fn poll_cq(&mut self, n: NodeId, vi: ViId) -> ViaResult<Option<Completion>> {
        match self.command(n, Command::PollCq(vi))? {
            Reply::Maybe(r) => r,
            _ => unreachable!("reply type mismatch for PollCq"),
        }
    }

    fn wait_cq(&mut self, n: NodeId, vi: ViId) -> ViaResult<Completion> {
        match self.command(n, Command::WaitCq(vi))? {
            Reply::Completion(r) => r,
            _ => unreachable!("reply type mismatch for WaitCq"),
        }
    }

    fn wait_cq_deadline(
        &mut self,
        n: NodeId,
        vi: ViId,
        timeout: Duration,
    ) -> ViaResult<Completion> {
        match self.command(n, Command::WaitCqDeadline { vi, timeout })? {
            Reply::Completion(r) => r,
            _ => unreachable!("reply type mismatch for WaitCqDeadline"),
        }
    }

    fn pump(&mut self) -> ViaResult<usize> {
        let n = self.cmd_txs.len();
        let mut delivered = 0usize;
        let mut first_error: Option<ViaError> = None;
        for i in 0..n {
            let (d, _idle, autonomous) = self.pump_node(i)?;
            delivered += d;
            if first_error.is_none() {
                first_error = autonomous;
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(delivered),
        }
    }

    fn sci_write(
        &mut self,
        src: (NodeId, Pid, VirtAddr),
        len: usize,
        dst: (NodeId, MemId, usize),
    ) -> ViaResult<()> {
        let (sn, spid, saddr) = src;
        let data = self.bytes(
            sn,
            Command::ReadUser {
                pid: spid,
                addr: saddr,
                len,
            },
        )?;
        self.sci_write_bytes(&data, dst)
    }

    fn sci_write_bytes(&mut self, data: &[u8], dst: (NodeId, MemId, usize)) -> ViaResult<()> {
        let (dn, dmem, doff) = dst;
        self.unit(
            dn,
            Command::SciWriteBytes {
                data: data.to_vec(),
                mem: dmem,
                off: doff,
            },
        )
    }

    fn sci_read_bytes(&mut self, src: (NodeId, MemId, usize), out: &mut [u8]) -> ViaResult<()> {
        let (sn, smem, soff) = src;
        let bytes = self.bytes(
            sn,
            Command::SciReadBytes {
                mem: smem,
                off: soff,
                len: out.len(),
            },
        )?;
        out.copy_from_slice(&bytes);
        Ok(())
    }

    fn install_fault_plan(&mut self, plan: &FaultHandle) {
        for n in 0..self.cmd_txs.len() {
            self.unit(n, Command::InstallFaultPlan(plan.clone()))
                .unwrap_or_else(|e| panic!("install_fault_plan: node {n} unreachable: {e}"));
        }
    }

    fn check_invariants(&mut self) -> Result<(), String> {
        // The pool ledger only balances with no packets in flight, so
        // settle the fabric first.
        self.quiesce().map_err(|e| format!("quiesce: {e}"))?;
        let n = self.cmd_txs.len();
        let mut outstanding_total = 0i64;
        for i in 0..n {
            match self
                .command(i, Command::CheckNode)
                .map_err(|e| format!("node {i}: {e}"))?
            {
                Reply::Check {
                    local,
                    outstanding,
                    inbound,
                } => {
                    local.map_err(|e| format!("node {i}: {e}"))?;
                    if inbound != 0 {
                        return Err(format!(
                            "node {i}: {inbound} packets still queued after quiesce"
                        ));
                    }
                    outstanding_total += outstanding;
                }
                _ => unreachable!("reply type mismatch for CheckNode"),
            }
        }
        if outstanding_total != 0 {
            return Err(format!(
                "pool ledger imbalance: {outstanding_total} buffers outstanding \
                 with the fabric quiescent"
            ));
        }
        Ok(())
    }

    fn nic_stats(&mut self, n: NodeId) -> NicStats {
        match self
            .command(n, Command::NicStats)
            .unwrap_or_else(|e| panic!("nic_stats: node {n} unreachable: {e}"))
        {
            Reply::Stats(s) => s,
            _ => unreachable!("reply type mismatch for NicStats"),
        }
    }

    fn with_node<R, G>(&mut self, n: NodeId, f: G) -> R
    where
        R: Send + 'static,
        G: FnOnce(&mut Node) -> R + Send + 'static,
    {
        let boxed: NodeFn = Box::new(move |node| Box::new(f(node)) as Box<dyn Any + Send>);
        match self
            .command(n, Command::WithNode(boxed))
            .unwrap_or_else(|e| panic!("with_node: node {n} unreachable: {e}"))
        {
            Reply::Any(any) => *any.downcast::<R>().expect("with_node reply type"),
            _ => unreachable!("reply type mismatch for WithNode"),
        }
    }
}

// ----------------------------------------------------------------------
// Closure mode: one thread per node, caller-supplied drivers
// ----------------------------------------------------------------------

/// Wire two VIs of two (not yet split) nodes together; slice-indexed, so
/// same-node connects work too. Both VIs must be idle.
pub fn connect_nodes(nodes: &mut [Node], a: (usize, ViId), b: (usize, ViId)) -> ViaResult<()> {
    if a.0 == b.0 && a.1 == b.1 {
        return Err(ViaError::BadState("connect VI to itself"));
    }
    if nodes[a.0].nic.vi(a.1)?.state != ViState::Idle
        || nodes[b.0].nic.vi(b.1)?.state != ViState::Idle
    {
        return Err(ViaError::BadState("connect on non-idle VI"));
    }
    {
        let v = nodes[a.0].nic.vi_mut(a.1)?;
        v.peer = Some((b.0, b.1));
        v.state = ViState::Connected;
    }
    {
        let v = nodes[b.0].nic.vi_mut(b.1)?;
        v.peer = Some((a.0, a.1));
        v.state = ViState::Connected;
    }
    Ok(())
}

/// Run N nodes on N threads with the default [`WAIT_TIMEOUT`]. See
/// [`run_cluster_with_timeout`].
pub fn run_cluster<R, F>(nodes: Vec<Node>, fns: Vec<F>) -> ViaResult<Vec<(R, Node)>>
where
    R: Send,
    F: FnOnce(&mut NodeCtx) -> ViaResult<R> + Send,
{
    run_cluster_with_timeout(nodes, WAIT_TIMEOUT, fns)
}

/// Run N nodes on N threads, one closure per node (use boxed closures if
/// the per-node drivers differ in type). Node `i` routes packets with
/// `src_node = i`; wire the VIs first with [`connect_nodes`]. Returns
/// every closure result plus its node (for post-mortem inspection), in
/// node order. All threads are joined before any error is propagated; a
/// panicked node thread reports [`ViaError::PeerGone`] with its index.
pub fn run_cluster_with_timeout<R, F>(
    nodes: Vec<Node>,
    wait_timeout: Duration,
    fns: Vec<F>,
) -> ViaResult<Vec<(R, Node)>>
where
    R: Send,
    F: FnOnce(&mut NodeCtx) -> ViaResult<R> + Send,
{
    if nodes.len() != fns.len() {
        return Err(ViaError::BadState("run_cluster: one closure per node"));
    }
    let n = nodes.len();
    let ctxs: Vec<NodeCtx> = nodes
        .into_iter()
        .zip(wire_mesh(n, DEFAULT_RING_CAPACITY))
        .enumerate()
        .map(|(i, (node, wire))| {
            // No cluster handle in closure mode: the control channel is
            // born disconnected, so `all_peers_gone` reduces to every
            // peer having closed its ring (dropped its NodeCtx).
            let (_, cmd_rx) = channel::<Command>();
            NodeCtx::new(node, i, wire, cmd_rx, wait_timeout)
        })
        .collect();

    std::thread::scope(|s| {
        let mut joins = Vec::with_capacity(n);
        for (mut ctx, f) in ctxs.into_iter().zip(fns) {
            joins.push(s.spawn(move || -> ViaResult<(R, Node)> {
                let r = f(&mut ctx)?;
                // Final drain so late arrivals are not lost, then leave
                // the wire (close + ring) so peers notice promptly.
                let _ = ctx.pump();
                ctx.retire();
                Ok((r, ctx.node))
            }));
        }
        // Join every thread before propagating any error: bailing early
        // would detach the other scope guards mid-run. Every failed node
        // is collected — one dead node commonly cascades (peers see closed
        // rings), and reporting only the first would hide the cascade's
        // true extent.
        let mut results = Vec::with_capacity(n);
        let mut first_error: Option<ViaError> = None;
        let mut dead: Vec<usize> = Vec::new();
        for (i, join) in joins.into_iter().enumerate() {
            match join.join() {
                Ok(Ok(r)) => results.push(Some(r)),
                Ok(Err(e)) => {
                    results.push(None);
                    dead.push(i);
                    first_error.get_or_insert(e);
                }
                Err(_) => {
                    results.push(None);
                    dead.push(i);
                    first_error.get_or_insert(ViaError::PeerGone(i));
                }
            }
        }
        if dead.len() > 1 {
            return Err(ViaError::NodesGone(dead));
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("no error, so every result is present"))
            .collect())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpt::ProtectionTag;
    use simmem::{prot, KernelConfig, PAGE_SIZE};
    use vialock::StrategyKind;

    type Driver<R> = Box<dyn FnOnce(&mut NodeCtx) -> ViaResult<R> + Send>;

    fn node() -> Node {
        Node::new(KernelConfig::medium(), StrategyKind::KiobufReliable, 1024)
    }

    #[test]
    fn threaded_ping_pong() {
        let mut nodes = vec![node(), node()];
        let tag = ProtectionTag(1);
        let p0 = nodes[0].kernel.spawn_process(Capabilities::default());
        let p1 = nodes[1].kernel.spawn_process(Capabilities::default());
        let v0 = nodes[0].nic.create_vi(p0, tag);
        let v1 = nodes[1].nic.create_vi(p1, tag);
        connect_nodes(&mut nodes, (0, v0), (1, v1)).unwrap();

        let len = 2 * PAGE_SIZE;
        let b0 = nodes[0]
            .kernel
            .mmap_anon(p0, len, prot::READ | prot::WRITE)
            .unwrap();
        let b1 = nodes[1]
            .kernel
            .mmap_anon(p1, len, prot::READ | prot::WRITE)
            .unwrap();
        let m0 = nodes[0].register_mem(p0, b0, len, tag).unwrap();
        let m1 = nodes[1].register_mem(p1, b1, len, tag).unwrap();

        const ROUNDS: usize = 50;
        let drivers: Vec<Driver<usize>> = vec![
            Box::new(move |ctx| {
                let mut sent = 0usize;
                for i in 0..ROUNDS {
                    let msg = vec![i as u8; 256];
                    ctx.node.kernel.write_user(p0, b0, &msg)?;
                    // Pre-post the pong receive BEFORE sending the ping
                    // (reliable mode drops unmatched messages).
                    ctx.node
                        .nic
                        .vi_mut(v0)?
                        .recv_q
                        .push_back(crate::descriptor::Descriptor::recv(m0, b0, len));
                    ctx.node
                        .nic
                        .vi_mut(v0)?
                        .send_q
                        .push_back(crate::descriptor::Descriptor::send(m0, b0, 256));
                    // Send completion, then pong arrival.
                    let c = ctx.wait_completion(v0)?;
                    assert_eq!(c.op, crate::descriptor::DescOp::Send);
                    let c = ctx.wait_completion(v0)?;
                    assert_eq!(c.op, crate::descriptor::DescOp::Recv);
                    assert_eq!(c.len, 256);
                    sent += 1;
                }
                Ok(sent)
            }),
            Box::new(move |ctx| {
                let mut got = 0usize;
                for i in 0..ROUNDS {
                    ctx.node
                        .nic
                        .vi_mut(v1)?
                        .recv_q
                        .push_back(crate::descriptor::Descriptor::recv(m1, b1, len));
                    // Wait for the ping.
                    loop {
                        let c = ctx.wait_completion(v1)?;
                        if c.op == crate::descriptor::DescOp::Recv {
                            assert_eq!(c.len, 256);
                            let mut out = vec![0u8; 256];
                            ctx.node.kernel.read_user(p1, b1, &mut out)?;
                            assert!(out.iter().all(|&b| b == i as u8), "round {i}");
                            got += 1;
                            break;
                        }
                    }
                    // Pong it back.
                    ctx.node
                        .nic
                        .vi_mut(v1)?
                        .send_q
                        .push_back(crate::descriptor::Descriptor::send(m1, b1, 256));
                    let c = ctx.wait_completion(v1)?;
                    assert_eq!(c.op, crate::descriptor::DescOp::Send);
                }
                Ok(got)
            }),
        ];
        let mut results = run_cluster(nodes, drivers).unwrap();
        let (got, _n1) = results.pop().unwrap();
        let (sent, _n0) = results.pop().unwrap();
        assert_eq!(sent, ROUNDS);
        assert_eq!(got, ROUNDS);
    }

    #[test]
    fn threaded_rdma_write_stream() {
        let mut nodes = vec![node(), node()];
        let tag = ProtectionTag(2);
        let p0 = nodes[0].kernel.spawn_process(Capabilities::default());
        let p1 = nodes[1].kernel.spawn_process(Capabilities::default());
        let v0 = nodes[0].nic.create_vi(p0, tag);
        let v1 = nodes[1].nic.create_vi(p1, tag);
        connect_nodes(&mut nodes, (0, v0), (1, v1)).unwrap();

        let len = 8 * PAGE_SIZE;
        let b0 = nodes[0]
            .kernel
            .mmap_anon(p0, len, prot::READ | prot::WRITE)
            .unwrap();
        let b1 = nodes[1]
            .kernel
            .mmap_anon(p1, len, prot::READ | prot::WRITE)
            .unwrap();
        nodes[0]
            .kernel
            .write_user(p0, b0, &vec![0xEE; len])
            .unwrap();
        let m0 = nodes[0].register_mem(p0, b0, len, tag).unwrap();
        let m1 = nodes[1].register_mem(p1, b1, len, tag).unwrap();

        let drivers: Vec<Driver<()>> = vec![
            Box::new(move |ctx| {
                // Stream 16 RDMA writes, one page each.
                for i in 0..16usize {
                    let off = (i % 8) * PAGE_SIZE;
                    ctx.node.nic.vi_mut(v0)?.send_q.push_back(
                        crate::descriptor::Descriptor::rdma_write(
                            m0,
                            b0 + off as u64,
                            PAGE_SIZE,
                            m1,
                            b1 + off as u64,
                        ),
                    );
                    let c = ctx.wait_completion(v0)?;
                    assert_eq!(c.op, crate::descriptor::DescOp::RdmaWrite);
                }
                Ok(())
            }),
            Box::new(move |ctx| {
                // One-sided: the target just pumps until the data shows
                // up everywhere.
                let deadline = Instant::now() + WAIT_TIMEOUT;
                loop {
                    ctx.pump()?;
                    let mut all = vec![0u8; len];
                    ctx.node.kernel.read_user(p1, b1, &mut all)?;
                    if all.iter().all(|&b| b == 0xEE) {
                        return Ok(());
                    }
                    if Instant::now() > deadline {
                        return Err(ViaError::BadState("rdma stream never completed"));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }),
        ];
        run_cluster(nodes, drivers).unwrap();
    }

    /// Three nodes in a line, traffic relayed by the middle one: packets
    /// route by destination, not to "the peer".
    #[test]
    fn three_node_relay() {
        let mut nodes = vec![node(), node(), node()];
        let tag = ProtectionTag(3);
        let pids: Vec<_> = nodes
            .iter_mut()
            .map(|n| n.kernel.spawn_process(Capabilities::default()))
            .collect();
        // 0 <-> 1 and 1 <-> 2.
        let v0 = nodes[0].nic.create_vi(pids[0], tag);
        let v1a = nodes[1].nic.create_vi(pids[1], tag);
        let v1b = nodes[1].nic.create_vi(pids[1], tag);
        let v2 = nodes[2].nic.create_vi(pids[2], tag);
        connect_nodes(&mut nodes, (0, v0), (1, v1a)).unwrap();
        connect_nodes(&mut nodes, (1, v1b), (2, v2)).unwrap();

        let len = PAGE_SIZE;
        let bufs: Vec<_> = nodes
            .iter_mut()
            .zip(&pids)
            .map(|(n, &p)| {
                n.kernel
                    .mmap_anon(p, len, prot::READ | prot::WRITE)
                    .unwrap()
            })
            .collect();
        let mems: Vec<_> = nodes
            .iter_mut()
            .zip(&pids)
            .zip(&bufs)
            .map(|((n, &p), &b)| n.register_mem(p, b, len, tag).unwrap())
            .collect();

        let (p0, _p1, p2) = (pids[0], pids[1], pids[2]);
        let (b0, b1, b2) = (bufs[0], bufs[1], bufs[2]);
        let (m0, m1, m2) = (mems[0], mems[1], mems[2]);
        let drivers: Vec<Driver<()>> = vec![
            Box::new(move |ctx| {
                ctx.node.kernel.write_user(p0, b0, b"relay me!")?;
                ctx.node
                    .nic
                    .vi_mut(v0)?
                    .send_q
                    .push_back(crate::descriptor::Descriptor::send(m0, b0, 9));
                let c = ctx.wait_completion(v0)?;
                assert_eq!(c.op, crate::descriptor::DescOp::Send);
                Ok(())
            }),
            Box::new(move |ctx| {
                // Receive from node 0, forward to node 2.
                ctx.node
                    .nic
                    .vi_mut(v1a)?
                    .recv_q
                    .push_back(crate::descriptor::Descriptor::recv(m1, b1, len));
                let c = ctx.wait_completion(v1a)?;
                assert_eq!(c.op, crate::descriptor::DescOp::Recv);
                ctx.node
                    .nic
                    .vi_mut(v1b)?
                    .send_q
                    .push_back(crate::descriptor::Descriptor::send(m1, b1, c.len));
                let c = ctx.wait_completion(v1b)?;
                assert_eq!(c.op, crate::descriptor::DescOp::Send);
                Ok(())
            }),
            Box::new(move |ctx| {
                ctx.node
                    .nic
                    .vi_mut(v2)?
                    .recv_q
                    .push_back(crate::descriptor::Descriptor::recv(m2, b2, len));
                let c = ctx.wait_completion(v2)?;
                assert_eq!(c.op, crate::descriptor::DescOp::Recv);
                assert_eq!(c.len, 9);
                let mut out = [0u8; 9];
                ctx.node.kernel.read_user(p2, b2, &mut out)?;
                assert_eq!(&out, b"relay me!");
                Ok(())
            }),
        ];
        run_cluster(nodes, drivers).unwrap();
    }

    /// The cluster-as-a-service surface: a roundtrip entirely through the
    /// `Fabric` trait, then invariants and an orderly teardown.
    #[test]
    fn cluster_service_roundtrip() {
        let mut fab = ThreadedCluster::new(2, KernelConfig::small(), StrategyKind::KiobufReliable);
        assert_eq!(fab.node_count(), 2);
        let pa = fab.spawn_process(0);
        let pb = fab.spawn_process(1);
        let tag = ProtectionTag(7);
        let va = fab.create_vi(0, pa, tag).unwrap();
        let vb = fab.create_vi(1, pb, tag).unwrap();
        fab.connect((0, va), (1, vb)).unwrap();
        let sbuf = fab
            .mmap(0, pa, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let rbuf = fab
            .mmap(1, pb, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        fab.write_user(0, pa, sbuf, b"via threads").unwrap();
        let sh = fab.register_mem(0, pa, sbuf, PAGE_SIZE, tag).unwrap();
        let rh = fab.register_mem(1, pb, rbuf, PAGE_SIZE, tag).unwrap();
        fab.post_recv(1, vb, rh, rbuf, PAGE_SIZE).unwrap();
        fab.post_send(0, va, sh, sbuf, 11).unwrap();
        let cr = fab.wait_cq(1, vb).unwrap();
        assert_eq!(cr.op, crate::descriptor::DescOp::Recv);
        assert_eq!(cr.len, 11);
        let cs = fab.wait_cq(0, va).unwrap();
        assert_eq!(cs.op, crate::descriptor::DescOp::Send);
        let mut out = [0u8; 11];
        fab.read_user(1, pb, rbuf, &mut out).unwrap();
        assert_eq!(&out, b"via threads");
        assert!(fab.nic_stats(0).sends >= 1);
        let fs = fab.fabric_stats(0).unwrap();
        assert!(fs.commands > 0);
        fab.check_invariants().unwrap();
        let nodes = fab.into_nodes().unwrap();
        assert_eq!(nodes.len(), 2);
        assert!(nodes[1].nic.stats.recvs >= 1);
    }

    /// `with_node` ships a closure into the service thread and returns
    /// its result; `sci_write_bytes`/`sci_read_bytes` round-trip through
    /// the command layer.
    #[test]
    fn cluster_with_node_and_sci() {
        let mut fab = ThreadedCluster::new(2, KernelConfig::small(), StrategyKind::KiobufReliable);
        let p = fab.spawn_process(1);
        let tag = ProtectionTag(4);
        let buf = fab.mmap(1, p, PAGE_SIZE, prot::READ | prot::WRITE).unwrap();
        let mem = fab.register_mem(1, p, buf, PAGE_SIZE, tag).unwrap();
        fab.sci_write_bytes(b"remote pio", (1, mem, 16)).unwrap();
        let mut out = [0u8; 10];
        fab.sci_read_bytes((1, mem, 16), &mut out).unwrap();
        assert_eq!(&out, b"remote pio");
        let pins = fab.with_node(1, |node| node.nic.stats.sends);
        assert_eq!(pins, 0);
        fab.check_invariants().unwrap();
    }

    /// A tightened wait budget actually bites: waiting on a CQ nobody
    /// will ever complete surfaces the typed [`ViaError::Timeout`]
    /// quickly instead of after 5 s.
    #[test]
    fn cluster_wait_timeout_is_configurable() {
        let mut fab = ClusterBuilder::new(2, KernelConfig::small(), StrategyKind::KiobufReliable)
            .wait_timeout(Duration::from_millis(50))
            .build();
        assert_eq!(fab.wait_timeout(), Duration::from_millis(50));
        let p = fab.spawn_process(0);
        let vi = fab.create_vi(0, p, ProtectionTag(1)).unwrap();
        let start = Instant::now();
        let r = fab.wait_cq(0, vi);
        assert!(matches!(r, Err(ViaError::Timeout)), "got {r:?}");
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    /// Connecting across non-idle VIs fails atomically: the first half is
    /// rolled back.
    #[test]
    fn cluster_connect_rolls_back() {
        let mut fab = ThreadedCluster::new(2, KernelConfig::small(), StrategyKind::KiobufReliable);
        let pa = fab.spawn_process(0);
        let pb = fab.spawn_process(1);
        let tag = ProtectionTag(2);
        let va = fab.create_vi(0, pa, tag).unwrap();
        let vb = fab.create_vi(1, pb, tag).unwrap();
        let vc = fab.create_vi(1, pb, tag).unwrap();
        fab.connect((0, va), (1, vb)).unwrap();
        // vb is now connected; connecting a fresh VI to it must fail and
        // leave the fresh VI idle.
        let vd = fab.create_vi(0, pa, tag).unwrap();
        assert!(fab.connect((0, vd), (1, vb)).is_err());
        // vd was rolled back to idle, so this connect succeeds.
        fab.connect((0, vd), (1, vc)).unwrap();
    }

    /// A tiny ring capacity forces the backpressure path: stage hits
    /// `Full`, publishes early, drains its own inbound, and the burst
    /// still lands intact.
    #[test]
    fn tiny_rings_backpressure_without_deadlock() {
        let mut fab = ClusterBuilder::new(2, KernelConfig::medium(), StrategyKind::KiobufReliable)
            .ring_capacity(2)
            .build();
        let tag = ProtectionTag(1);
        let p0 = fab.spawn_process(0);
        let p1 = fab.spawn_process(1);
        let v0 = fab.create_vi(0, p0, tag).unwrap();
        let v1 = fab.create_vi(1, p1, tag).unwrap();
        fab.connect((0, v0), (1, v1)).unwrap();
        let len = 4 * PAGE_SIZE;
        let b0 = fab.mmap(0, p0, len, prot::READ | prot::WRITE).unwrap();
        let b1 = fab.mmap(1, p1, len, prot::READ | prot::WRITE).unwrap();
        fab.write_user(0, p0, b0, &[7u8; 64]).unwrap();
        let m0 = fab.register_mem(0, p0, b0, len, tag).unwrap();
        let m1 = fab.register_mem(1, p1, b1, len, tag).unwrap();
        // Many small messages through a 2-slot ring. The sends are all
        // queued in ONE `with_node` call, so the next autonomous
        // `ship_sends` flushes a 16-packet batch through a 2-slot ring:
        // the third deferred push *must* observe Full (deferred slots
        // are invisible to the consumer, so it cannot help).
        const BURST: usize = 16;
        for _ in 0..BURST {
            fab.post_recv(1, v1, m1, b1, 64).unwrap();
        }
        fab.with_node(0, move |node| {
            let vi = node.nic.vi_mut(v0).expect("sender VI");
            for _ in 0..BURST {
                vi.send_q
                    .push_back(crate::descriptor::Descriptor::send(m0, b0, 64));
            }
        });
        for _ in 0..BURST {
            let c = fab.wait_cq(0, v0).unwrap();
            assert!(!c.status.is_error(), "send errored under backpressure");
        }
        for _ in 0..BURST {
            let c = fab.wait_cq(1, v1).unwrap();
            assert!(!c.status.is_error(), "recv errored under backpressure");
            assert_eq!(c.len, 64);
        }
        let stats = fab.fabric_stats(0).unwrap();
        assert!(stats.wire_stalls > 0, "2-slot ring never filled");
        fab.check_invariants().unwrap();
    }
}
