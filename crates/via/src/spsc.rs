//! Lock-free bounded SPSC rings and the doorbell wakeup protocol — the
//! data plane of the threaded cluster.
//!
//! The per-node mpsc mailbox the cluster shipped with serialized every
//! producer through one channel (a lock, an allocation per batch, and a
//! futex wake per send). In the spirit of *Virtual-Link*, each
//! (producer, consumer) node pair instead owns a private bounded ring:
//! the producer writes packets directly into the consumer's queue with
//! plain stores and publishes them with **one release-store per flush**,
//! so a whole `ship_sends` batch costs a single atomic on the shared
//! cache line. Wakeups ride a per-node [`Doorbell`] — a compact event
//! counter whose slow path (a condvar) is only touched when the consumer
//! has actually parked, in the spirit of compact per-node signaling.
//!
//! Layout and ordering (the argument DESIGN.md §12 spells out in full):
//!
//! * `head` is the producer's publish cursor, `tail` the consumer's; both
//!   are monotonically increasing `u64`s indexed mod the power-of-two
//!   capacity, each on its own cache line ([`CachePadded`]).
//! * The producer keeps a **cached tail** and the consumer a **cached
//!   head**, refreshed from the shared atomics only when the cached view
//!   says full/empty — the fast path never loads the counterpart's line.
//! * Slot writes happen-before the `Release` store of `head`; the
//!   consumer's `Acquire` load of `head` therefore sees fully written
//!   slots. Symmetrically the consumer's `Release` store of `tail`
//!   happens-after the slot read, so the producer's `Acquire` refresh
//!   can safely reuse the slot.
//! * `closed` is a `Release`-stored flag either side sets on drop (the
//!   producer publishes its pending batch first). A pop on an empty ring
//!   re-checks `head` *after* observing `closed`, so a close can never
//!   hide items published just before it.
//!
//! The explicit [`PopError::Closed`] / [`PushError::Closed`] states
//! replace the channel-disconnect semantics the old transport relied on
//! for `PeerGone` detection.

use std::mem::MaybeUninit;
use std::sync::Arc;
use std::time::Duration;

// The sync shim: std re-exports in normal builds; under `--cfg viamodel`
// the model checker's instrumented primitives, so `cargo test -p check`
// can exhaustively explore this module's interleavings (DESIGN.md §15).
use check::sync::cell::UnsafeCell;
use check::sync::{AtomicBool, AtomicU32, AtomicU64, Condvar, Mutex, Ordering};

/// Pads and aligns a value to 128 bytes — two x86 cache lines, covering
/// the adjacent-line prefetcher — so the producer's and consumer's hot
/// cursors never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// Why a push was refused. The rejected value rides back to the caller
/// so a packet is never dropped by the transport itself.
#[derive(Debug)]
pub enum PushError<T> {
    /// The ring has no free slot (consumer lagging). Retry after the
    /// consumer drains, or treat as backpressure.
    Full(T),
    /// The consumer side is gone; no push will ever succeed again.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recover the value that was refused.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Closed(v) => v,
        }
    }
}

/// Why a pop produced nothing.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum PopError {
    /// Nothing published right now; more may arrive.
    Empty,
    /// The ring is empty *and* the producer side is gone: nothing will
    /// ever arrive again.
    Closed,
}

/// The shared core of one ring. Owned jointly by one [`Producer`] and
/// one [`Consumer`]; never touched by anyone else.
struct Ring<T> {
    /// Publish cursor: slots `< head` are visible to the consumer.
    head: CachePadded<AtomicU64>,
    /// Consume cursor: slots `< tail` are free for the producer.
    tail: CachePadded<AtomicU64>,
    /// Either endpoint dropped (or explicitly closed).
    closed: AtomicBool,
    /// `capacity` slots, `capacity` a power of two.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: u64,
}

// SAFETY: the producer only writes slots in `[head, tail + capacity)` and
// the consumer only reads slots in `[tail, head)`; the release/acquire
// pairs on `head` and `tail` order those accesses. Only one producer and
// one consumer exist (the handles are neither Clone nor Sync).
unsafe impl<T: Send> Sync for Ring<T> {}
// SAFETY: the ring owns its slots; moving the whole ring moves T values,
// which is safe exactly when T: Send.
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both handles are gone (Arc refcount hit zero), so the atomics
        // are exact: drain every published-but-unconsumed slot.
        // relaxed: `&mut self` proves exclusive access — the Arc refcount
        // decrement that dropped the last handle is the synchronization.
        let head = self.head.0.load(Ordering::Relaxed);
        // relaxed: same argument as `head` above.
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        while tail != head {
            let idx = (tail & self.mask) as usize;
            self.slots[idx].with_mut(|p| {
                // SAFETY: slot was published and never consumed; we have
                // exclusive access in Drop.
                unsafe { (*p).assume_init_drop() }
            });
            tail += 1;
        }
    }
}

/// The producer endpoint of a bounded SPSC ring. Not `Clone`: single
/// producer is what makes the ring's plain stores sound.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Next slot to write (local; published to `ring.head` on
    /// [`Producer::publish`]).
    next: u64,
    /// Last value of `ring.head` we stored (so `publish` can skip the
    /// release-store when nothing is pending).
    published: u64,
    /// Cached view of `ring.tail`; refreshed only when apparently full.
    cached_tail: u64,
}

/// The consumer endpoint. Not `Clone`.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Next slot to read (local mirror of `ring.tail`).
    next: u64,
    /// Cached view of `ring.head`; refreshed only when apparently empty.
    cached_head: u64,
}

/// A bounded lock-free SPSC ring of `capacity` slots (rounded up to a
/// power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two() as u64;
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
        closed: AtomicBool::new(false),
        slots,
        mask: cap - 1,
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            next: 0,
            published: 0,
            cached_tail: 0,
        },
        Consumer {
            ring,
            next: 0,
            cached_head: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Slot count.
    pub fn capacity(&self) -> usize {
        (self.ring.mask + 1) as usize
    }

    /// Whether the counterpart has closed the ring.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// Entries written but not yet visible to the consumer.
    pub fn pending(&self) -> usize {
        (self.next - self.published) as usize
    }

    /// Write `v` into the next free slot **without publishing it**: the
    /// consumer cannot see it until [`Producer::publish`]. This is the
    /// batching half of the fast path — stage a whole flush, then pay
    /// one release-store.
    pub fn push_deferred(&mut self, v: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(v));
        }
        let cap = self.ring.mask + 1;
        if self.next - self.cached_tail == cap {
            self.cached_tail = self.ring.tail.0.load(Ordering::Acquire);
            if self.next - self.cached_tail == cap {
                return Err(PushError::Full(v));
            }
        }
        let idx = (self.next & self.ring.mask) as usize;
        self.ring.slots[idx].with_mut(|p| {
            // SAFETY: `next < cached_tail + capacity`, so this slot's
            // previous occupant (if any) was consumed; only this producer
            // writes slots.
            unsafe { (*p).write(v) };
        });
        self.next += 1;
        Ok(())
    }

    /// Make every deferred entry visible to the consumer with a single
    /// release-store. Returns how many entries this publish exposed.
    pub fn publish(&mut self) -> usize {
        let n = (self.next - self.published) as usize;
        if n > 0 {
            self.ring.head.0.store(self.next, Ordering::Release);
            self.published = self.next;
        }
        n
    }

    /// Push-and-publish in one call (the unbatched/legacy path).
    pub fn push(&mut self, v: T) -> Result<(), PushError<T>> {
        self.push_deferred(v)?;
        self.publish();
        Ok(())
    }

    /// Close the ring from the producer side. Pending entries are
    /// published first so nothing staged is lost.
    pub fn close(&mut self) {
        self.publish();
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> Consumer<T> {
    /// Whether the counterpart has closed the ring. Note a closed ring
    /// may still hold published items — [`Consumer::pop`] drains them
    /// before reporting [`PopError::Closed`].
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// Published entries not yet consumed (approximate while the
    /// producer runs: may under-count in-flight publishes).
    pub fn len(&self) -> usize {
        (self.ring.head.0.load(Ordering::Acquire) - self.next) as usize
    }

    /// Whether [`Consumer::len`] is zero (same staleness caveat).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pop the oldest published entry.
    pub fn pop(&mut self) -> Result<T, PopError> {
        if self.next == self.cached_head {
            self.cached_head = self.ring.head.0.load(Ordering::Acquire);
            if self.next == self.cached_head {
                if !self.is_closed() {
                    return Err(PopError::Empty);
                }
                // Closed — but the producer publishes before it closes,
                // so re-read head after observing the flag: items
                // published in the close race must not be lost.
                self.cached_head = self.ring.head.0.load(Ordering::Acquire);
                if self.next == self.cached_head {
                    return Err(PopError::Closed);
                }
            }
        }
        let idx = (self.next & self.ring.mask) as usize;
        let v = self.ring.slots[idx].with(|p| {
            // SAFETY: `next < cached_head <= head`, so the slot is
            // published and not yet consumed; only this consumer reads
            // slots.
            unsafe { (*p).assume_init_read() }
        });
        self.next += 1;
        // The release-store hands the slot back to the producer: it
        // happens-after the read above.
        self.ring.tail.0.store(self.next, Ordering::Release);
        Ok(v)
    }

    /// Close the ring from the consumer side: the producer's next push
    /// fails with [`PushError::Closed`] (its PeerGone signal).
    pub fn close(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

// ----------------------------------------------------------------------
// Doorbell
// ----------------------------------------------------------------------

/// A per-node wakeup line: producers ring it after publishing, the owner
/// parks on it when idle.
///
/// The fast path is one `fetch_add` on the event counter plus one load of
/// the sleeper count — **no lock, no syscall** unless the owner is
/// actually parked. The park protocol is lost-wakeup-free:
///
/// 1. the waiter registers itself in `sleepers` (SeqCst), takes the lock,
///    and re-checks the event counter *before* waiting;
/// 2. the ringer bumps `events` (SeqCst) and only then reads `sleepers`;
///    if it sees a sleeper it acquires the same lock and notifies.
///
/// In the SeqCst total order either the waiter's re-check sees the new
/// event, or the ringer's `sleepers` load sees the waiter — and the lock
/// serializes the re-check/wait against the notify, so the wake cannot
/// slip between them. Parks still use a bounded timeout so cluster wait
/// budgets (and chaos timeouts) fire even if the peer wedges.
#[derive(Default)]
pub struct Doorbell {
    /// Bumped on every ring; waiters detect "something happened since I
    /// last looked" by comparing against a snapshot.
    events: AtomicU64,
    /// Number of threads inside [`Doorbell::wait`]'s slow path.
    sleepers: AtomicU32,
    gate: Mutex<()>,
    cv: Condvar,
}

impl Doorbell {
    /// Snapshot the event counter (take one before the work-check that
    /// precedes a [`Doorbell::wait`]).
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }

    /// Signal the owner: new work is visible. Cheap when nobody sleeps.
    pub fn ring(&self) {
        self.events.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) != 0 {
            // Taking the gate serializes this notify against a waiter
            // between its re-check and its wait.
            drop(self.gate.lock().unwrap_or_else(|e| e.into_inner()));
            self.cv.notify_all();
        }
    }

    /// Park until the event counter moves past `observed` or `timeout`
    /// elapses. Returns a fresh snapshot (callers re-check their queues
    /// regardless — the doorbell carries no payload).
    pub fn wait(&self, observed: u64, timeout: Duration) -> u64 {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        if self.events.load(Ordering::SeqCst) == observed {
            let _ = self
                .cv
                .wait_timeout(guard, timeout)
                .unwrap_or_else(|e| e.into_inner());
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        self.events.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = ring::<u32>(100);
        assert_eq!(p.capacity(), 128);
        let (p, _c) = ring::<u32>(0);
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn deferred_items_invisible_until_publish() {
        let (mut p, mut c) = ring::<u32>(8);
        p.push_deferred(1).unwrap();
        p.push_deferred(2).unwrap();
        assert_eq!(c.pop(), Err(PopError::Empty));
        assert_eq!(p.pending(), 2);
        assert_eq!(p.publish(), 2);
        assert_eq!(p.pending(), 0);
        assert_eq!(c.pop(), Ok(1));
        assert_eq!(c.pop(), Ok(2));
        assert_eq!(c.pop(), Err(PopError::Empty));
        // An empty publish is free.
        assert_eq!(p.publish(), 0);
    }

    #[test]
    fn full_ring_refuses_then_recovers() {
        let (mut p, mut c) = ring::<u32>(4);
        for i in 0..4 {
            p.push(i).unwrap();
        }
        match p.push(99) {
            Err(PushError::Full(v)) => assert_eq!(v, 99),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(c.pop(), Ok(0));
        p.push(99).unwrap();
        for want in [1, 2, 3, 99] {
            assert_eq!(c.pop(), Ok(want));
        }
    }

    #[test]
    fn producer_close_publishes_pending_first() {
        let (mut p, mut c) = ring::<String>(8);
        p.push_deferred("staged".to_string()).unwrap();
        drop(p);
        assert_eq!(c.pop(), Ok("staged".to_string()));
        assert_eq!(c.pop(), Err(PopError::Closed));
    }

    #[test]
    fn consumer_close_fails_pushes() {
        let (mut p, c) = ring::<u32>(8);
        drop(c);
        match p.push(5) {
            Err(PushError::Closed(v)) => assert_eq!(v, 5),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn drop_drains_unconsumed_items() {
        // Leak-checked implicitly: Rc would abort under miri; here we at
        // least prove Drop runs for queued items.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, c) = ring::<D>(8);
        for _ in 0..5 {
            p.push(D).unwrap();
        }
        drop(p);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn doorbell_wakes_parked_waiter() {
        let bell = Arc::new(Doorbell::default());
        let b2 = Arc::clone(&bell);
        let observed = bell.events();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            b2.ring();
        });
        // Generous timeout: the ring must cut it short.
        let now = bell.wait(observed, Duration::from_secs(10));
        assert!(now > observed);
        h.join().unwrap();
    }

    #[test]
    fn doorbell_wait_returns_immediately_when_stale() {
        let bell = Doorbell::default();
        let observed = bell.events();
        bell.ring();
        let t = std::time::Instant::now();
        let now = bell.wait(observed, Duration::from_secs(10));
        assert!(now > observed);
        assert!(t.elapsed() < Duration::from_secs(1));
    }
}
