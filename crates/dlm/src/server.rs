//! The server-mediated lock design: a manager rank owns the table.
//!
//! Clients send fixed 32-byte acquire/release requests over [`msg::Comm`]
//! and the manager answers with typed replies. Each lock keeps a FIFO
//! wait queue of compact packed waiter entries (`rank << 32 | client` in
//! one u64 — the queue-node-per-waiter equivalent of the compact queue
//! nodes in CNA-style locks). Grants carry leases stamped from the
//! manager's logical clock; the manager sweeps expired leases on every
//! serve step, frees the lock, and wakes the next waiter with a fresh
//! grant — a *typed* completion, never a silent drop.
//!
//! Failure handling:
//!
//! * a crashed **holder** is reclaimed either eagerly
//!   ([`Manager::client_exited`] / [`Manager::rank_died`], driven by the
//!   process-exit path) or lazily by lease expiry — waiters behind it are
//!   woken either way;
//! * a crashed **waiter** is dropped from every queue so it can never be
//!   granted a lock nobody will release;
//! * a crashed **manager** surfaces to clients as
//!   [`DlmError::ManagerUnreachable`] through the budgeted receive, not
//!   as a hang.

use std::collections::{HashMap, VecDeque};

use msg::{Comm, RankId};
use simmem::VirtAddr;
use via::{Fabric, ViaError, ViaResult};

use crate::{ClientId, DlmError, DlmResult, Grant, LockKey};

/// Request tag (clients → manager).
pub const TAG_REQ: u32 = 0x4D52_0001;
/// Reply tag base: the low 24 bits carry the client id, so thousands of
/// logical clients can multiplex one rank's receive path.
pub const TAG_REP_BASE: u32 = 0x4700_0000;

/// Fixed message size for both directions.
pub const MSG_BYTES: usize = 32;

const OP_ACQUIRE: u8 = 1;
const OP_RELEASE: u8 = 2;
const OP_CLIENT_EXIT: u8 = 3;

const ST_GRANTED: u8 = 1;
const ST_STALE: u8 = 2;
const ST_RELEASED: u8 = 3;
const ST_NOT_HELD: u8 = 4;
const ST_EXIT_ACK: u8 = 5;

/// Manager-side counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct ManagerStats {
    /// Grants issued (immediate and queued).
    pub grants: u64,
    /// Requests that had to queue behind a holder.
    pub queued: u64,
    /// Leases expired by the sweep.
    pub expiries: u64,
    /// Releases rejected for a stale fencing token.
    pub stale_rejections: u64,
    /// Locks reclaimed through exit/death notifications.
    pub reclaimed: u64,
    /// Waiters woken with a grant after an expiry or reclamation.
    pub woken: u64,
    /// Waiters dropped because their rank died mid-acquire.
    pub waiters_dropped: u64,
}

#[derive(Debug, Clone, Copy)]
struct Holder {
    client: ClientId,
    rank: RankId,
    token: u64,
    expires: u64,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<Holder>,
    /// Monotonic fencing-token source for this lock.
    next_token: u64,
    /// FIFO of packed `(rank << 32) | client` waiter entries.
    waiters: VecDeque<u64>,
}

fn pack_waiter(rank: RankId, client: ClientId) -> u64 {
    ((rank as u64) << 32) | client as u64
}

fn unpack_waiter(w: u64) -> (RankId, ClientId) {
    ((w >> 32) as RankId, (w & 0xFFFF_FFFF) as ClientId)
}

/// The lock manager, living on one communicator rank.
pub struct Manager {
    pub rank: RankId,
    recv_buf: VirtAddr,
    send_buf: VirtAddr,
    locks: HashMap<LockKey, LockState>,
    /// Locks currently held, per client — the eager-reclamation index.
    held_by: HashMap<ClientId, Vec<LockKey>>,
    /// Ranks known dead: their clients are never granted anything.
    dead_ranks: Vec<RankId>,
    pub lease_ticks: u64,
    pub stats: ManagerStats,
}

impl Manager {
    /// Set the manager up on `rank` with its fixed message buffers.
    pub fn new<F: Fabric>(c: &mut Comm<F>, rank: RankId, lease_ticks: u64) -> ViaResult<Self> {
        Ok(Manager {
            rank,
            recv_buf: c.alloc_buffer(rank, MSG_BYTES)?,
            send_buf: c.alloc_buffer(rank, MSG_BYTES)?,
            locks: HashMap::new(),
            held_by: HashMap::new(),
            dead_ranks: Vec::new(),
            lease_ticks,
            stats: ManagerStats::default(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn reply<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        to_rank: RankId,
        client: ClientId,
        status: u8,
        key: LockKey,
        token: u64,
        expires: u64,
    ) -> ViaResult<()> {
        if self.dead_ranks.contains(&to_rank) {
            return Ok(());
        }
        let mut m = [0u8; MSG_BYTES];
        m[0] = status;
        m[4..8].copy_from_slice(&key.to_le_bytes());
        m[8..16].copy_from_slice(&token.to_le_bytes());
        m[16..24].copy_from_slice(&expires.to_le_bytes());
        c.fill_buffer(self.rank, self.send_buf, &m)?;
        let tag = TAG_REP_BASE | (client & 0x00FF_FFFF);
        // Fire and forget: a 32-byte message rides the PIO path, which
        // copies the payload out during `send` itself; the pending-send
        // slot is reaped by any later progress round. Blocking here would
        // deadlock the single-driver interleave (the client only recvs
        // on its next turn). A failed send means the rank is dying —
        // record the death and keep serving the living.
        match c.send(self.rank, to_rank, tag, self.send_buf, MSG_BYTES) {
            Ok(_) => Ok(()),
            Err(_) => {
                self.rank_died_local(to_rank);
                Ok(())
            }
        }
    }

    fn grant_to<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        key: LockKey,
        rank: RankId,
        client: ClientId,
        now: u64,
    ) -> ViaResult<()> {
        let lease = self.lease_ticks;
        let st = self.locks.entry(key).or_default();
        st.next_token += 1;
        let token = st.next_token;
        let expires = now + lease;
        st.holder = Some(Holder {
            client,
            rank,
            token,
            expires,
        });
        self.held_by.entry(client).or_default().push(key);
        self.stats.grants += 1;
        self.reply(c, rank, client, ST_GRANTED, key, token, expires)
    }

    /// Free `key` and grant it to the next *live* waiter, dropping dead
    /// ones. Every woken waiter gets a typed grant message.
    fn free_and_wake<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        key: LockKey,
        now: u64,
    ) -> ViaResult<()> {
        loop {
            let next = {
                let st = self.locks.entry(key).or_default();
                st.holder = None;
                st.waiters.pop_front()
            };
            let Some(w) = next else { return Ok(()) };
            let (rank, client) = unpack_waiter(w);
            if self.dead_ranks.contains(&rank) {
                self.stats.waiters_dropped += 1;
                continue;
            }
            self.stats.woken += 1;
            return self.grant_to(c, key, rank, client, now);
        }
    }

    fn drop_held(&mut self, client: ClientId, key: LockKey) {
        if let Some(keys) = self.held_by.get_mut(&client) {
            keys.retain(|&k| k != key);
            if keys.is_empty() {
                self.held_by.remove(&client);
            }
        }
    }

    /// Sweep expired leases: free each one and wake its next waiter. The
    /// expired holder keeps its (now stale) token — its eventual release
    /// is rejected.
    pub fn sweep_leases<F: Fabric>(&mut self, c: &mut Comm<F>, now: u64) -> ViaResult<usize> {
        let expired: Vec<(LockKey, ClientId)> = self
            .locks
            .iter()
            .filter_map(|(&k, st)| {
                st.holder
                    .filter(|h| h.expires <= now)
                    .map(|h| (k, h.client))
            })
            .collect();
        let n = expired.len();
        for (key, client) in expired {
            self.stats.expiries += 1;
            self.drop_held(client, key);
            self.free_and_wake(c, key, now)?;
        }
        Ok(n)
    }

    /// Eager reclamation: `client` exited — release everything it holds
    /// (waking waiters) and remove it from every wait queue.
    pub fn client_exited<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        client: ClientId,
        now: u64,
    ) -> ViaResult<usize> {
        let held = self.held_by.remove(&client).unwrap_or_default();
        let n = held.len();
        for key in held {
            if self
                .locks
                .get(&key)
                .and_then(|st| st.holder)
                .is_some_and(|h| h.client == client)
            {
                self.stats.reclaimed += 1;
                self.free_and_wake(c, key, now)?;
            }
        }
        for st in self.locks.values_mut() {
            let before = st.waiters.len();
            st.waiters.retain(|&w| unpack_waiter(w).1 != client);
            self.stats.waiters_dropped += (before - st.waiters.len()) as u64;
        }
        Ok(n)
    }

    fn rank_died_local(&mut self, rank: RankId) {
        if !self.dead_ranks.contains(&rank) {
            self.dead_ranks.push(rank);
        }
    }

    /// A whole rank (node/process) died: reclaim every lock its clients
    /// held, wake the survivors queued behind them, and purge its
    /// waiters. Driven by `PeerGone` detection or the process-exit path.
    pub fn rank_died<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        rank: RankId,
        now: u64,
    ) -> ViaResult<usize> {
        self.rank_died_local(rank);
        let victims: Vec<ClientId> = self
            .locks
            .values()
            .filter_map(|st| st.holder.filter(|h| h.rank == rank).map(|h| h.client))
            .collect();
        let mut reclaimed = 0;
        for client in victims {
            reclaimed += self.client_exited(c, client, now)?;
        }
        // Purge queued waiters from the dead rank.
        for st in self.locks.values_mut() {
            let before = st.waiters.len();
            st.waiters.retain(|&w| unpack_waiter(w).0 != rank);
            self.stats.waiters_dropped += (before - st.waiters.len()) as u64;
        }
        Ok(reclaimed)
    }

    /// Serve one request if one is pending within `budget` progress
    /// rounds, then sweep leases. Returns how many requests were served
    /// (0 or 1) — the caller loops this as its serve loop.
    pub fn serve_step<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        now: u64,
        budget: usize,
    ) -> ViaResult<usize> {
        self.sweep_leases(c, now)?;
        let (src, n) = match c.recv_any_budget(self.rank, TAG_REQ, self.recv_buf, MSG_BYTES, budget)
        {
            Ok(r) => r,
            Err(ViaError::Timeout) => return Ok(0),
            Err(e) => return Err(e),
        };
        debug_assert_eq!(n, MSG_BYTES);
        let mut m = [0u8; MSG_BYTES];
        c.read_buffer(self.rank, self.recv_buf, &mut m)?;
        let op = m[0];
        let key = LockKey::from_le_bytes(m[4..8].try_into().unwrap());
        let client = ClientId::from_le_bytes(m[8..12].try_into().unwrap());
        let token = u64::from_le_bytes(m[16..24].try_into().unwrap());
        match op {
            OP_ACQUIRE => {
                let st = self.locks.entry(key).or_default();
                match st.holder {
                    None => self.grant_to(c, key, src, client, now)?,
                    Some(_) => {
                        // FIFO: queue the compact waiter entry.
                        st.waiters.push_back(pack_waiter(src, client));
                        self.stats.queued += 1;
                    }
                }
            }
            OP_RELEASE => {
                let holder = self.locks.get(&key).and_then(|st| st.holder);
                match holder {
                    Some(h) if h.client == client && h.token == token => {
                        self.drop_held(client, key);
                        self.free_and_wake(c, key, now)?;
                        self.reply(c, src, client, ST_RELEASED, key, token, 0)?;
                    }
                    Some(h) => {
                        // Stale token or not the holder: reject, with the
                        // current epoch in the reply.
                        self.stats.stale_rejections += 1;
                        self.reply(c, src, client, ST_STALE, key, h.token, h.expires)?;
                    }
                    None => {
                        let current = self.locks.get(&key).map_or(0, |st| st.next_token);
                        if current > token {
                            self.stats.stale_rejections += 1;
                            self.reply(c, src, client, ST_STALE, key, current, 0)?;
                        } else {
                            self.reply(c, src, client, ST_NOT_HELD, key, token, 0)?;
                        }
                    }
                }
            }
            OP_CLIENT_EXIT => {
                self.client_exited(c, client, now)?;
                self.reply(c, src, client, ST_EXIT_ACK, key, 0, 0)?;
            }
            _ => return Err(ViaError::BadState("unknown DLM opcode")),
        }
        Ok(1)
    }

    /// Locks currently held whose holder fails `is_live` — the
    /// zero-orphans audit for the server design.
    pub fn orphans(&self, is_live: impl Fn(ClientId) -> bool) -> Vec<(LockKey, ClientId)> {
        self.locks
            .iter()
            .filter_map(|(&k, st)| st.holder.map(|h| (k, h.client)))
            .filter(|&(_, c)| !is_live(c))
            .collect()
    }

    /// Total queued waiters (audit: must drain to zero when clients stop
    /// requesting).
    pub fn queued_waiters(&self) -> usize {
        self.locks.values().map(|st| st.waiters.len()).sum()
    }

    /// The holder of `key`, if any (tests and audits).
    pub fn holder_of(&self, key: LockKey) -> Option<(ClientId, u64, u64)> {
        self.locks
            .get(&key)
            .and_then(|st| st.holder)
            .map(|h| (h.client, h.token, h.expires))
    }

    /// The chaos-harness invariant: no lock whose holder has exited may
    /// remain held past its lease bound. Call with the `now` of the most
    /// recent sweep — between sweeps an expired-but-not-yet-swept lease
    /// is legal (the manager is lazy, not omniscient).
    pub fn check_lease_invariant(
        &self,
        now: u64,
        is_live: impl Fn(ClientId) -> bool,
    ) -> Result<(), String> {
        for (key, client) in self.orphans(is_live) {
            let (_, _, expires) = self.holder_of(key).expect("orphan listed without a holder");
            if now > expires {
                return Err(format!(
                    "lock {key} held by exited client {client} past its \
                     lease bound (now {now} > expires {expires})"
                ));
            }
        }
        Ok(())
    }

    /// Queued waiters whose client fails `is_live` — the zero-hung-waiters
    /// audit. A dead client parked in a wait queue can never consume its
    /// grant; once death notifications and sweeps have run, this must be
    /// empty.
    pub fn hung_waiters(&self, is_live: impl Fn(ClientId) -> bool) -> Vec<(LockKey, ClientId)> {
        self.locks
            .iter()
            .flat_map(|(&k, st)| st.waiters.iter().map(move |&w| (k, unpack_waiter(w).1)))
            .filter(|&(_, c)| !is_live(c))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Client side: stateless helpers over a per-client 32-byte buffer.
// ---------------------------------------------------------------------

/// A client endpoint: its rank, id, and fixed message buffer.
#[derive(Debug, Clone, Copy)]
pub struct ClientEndpoint {
    pub rank: RankId,
    pub client: ClientId,
    pub buf: VirtAddr,
}

impl ClientEndpoint {
    pub fn new<F: Fabric>(c: &mut Comm<F>, rank: RankId, client: ClientId) -> ViaResult<Self> {
        Ok(ClientEndpoint {
            rank,
            client,
            buf: c.alloc_buffer(rank, MSG_BYTES)?,
        })
    }

    fn request<F: Fabric>(
        &self,
        c: &mut Comm<F>,
        manager: RankId,
        op: u8,
        key: LockKey,
        token: u64,
    ) -> DlmResult<()> {
        let mut m = [0u8; MSG_BYTES];
        m[0] = op;
        m[4..8].copy_from_slice(&key.to_le_bytes());
        m[8..12].copy_from_slice(&self.client.to_le_bytes());
        m[16..24].copy_from_slice(&token.to_le_bytes());
        c.fill_buffer(self.rank, self.buf, &m)
            .map_err(DlmError::from)?;
        // Fire and forget (PIO copies the payload during `send`); the
        // pending slot drains through later progress rounds. Blocking on
        // completion here would deadlock the single-driver interleave —
        // the manager only recvs on its next serve step.
        match c.send(self.rank, manager, TAG_REQ, self.buf, MSG_BYTES) {
            Ok(_) => Ok(()),
            // Every slot to the manager is in flight: transient, retry.
            Err(ViaError::BadState("no free message slot")) => Err(DlmError::Backpressure),
            Err(e) => Err(e.into()),
        }
    }

    /// Fire an acquire request; the grant arrives later via
    /// [`ClientEndpoint::poll_reply`] (FIFO position is assigned on
    /// receipt at the manager).
    pub fn send_acquire<F: Fabric>(
        &self,
        c: &mut Comm<F>,
        manager: RankId,
        key: LockKey,
    ) -> DlmResult<()> {
        self.request(c, manager, OP_ACQUIRE, key, 0)
    }

    /// Fire a release carrying the grant's fencing token.
    pub fn send_release<F: Fabric>(
        &self,
        c: &mut Comm<F>,
        manager: RankId,
        key: LockKey,
        token: u64,
    ) -> DlmResult<()> {
        self.request(c, manager, OP_RELEASE, key, token)
    }

    /// Announce this client's orderly exit (the manager reclaims its
    /// locks eagerly).
    pub fn send_exit<F: Fabric>(&self, c: &mut Comm<F>, manager: RankId) -> DlmResult<()> {
        self.request(c, manager, OP_CLIENT_EXIT, 0, 0)
    }

    /// Poll for this client's next manager reply within `budget` progress
    /// rounds. `Ok(None)` means nothing yet; transport loss of the
    /// manager maps to [`DlmError::ManagerUnreachable`] at the caller's
    /// discretion (a bare budget exhaustion here is just "not yet").
    pub fn poll_reply<F: Fabric>(
        &self,
        c: &mut Comm<F>,
        manager: RankId,
        budget: usize,
    ) -> DlmResult<Option<Reply>> {
        let tag = TAG_REP_BASE | (self.client & 0x00FF_FFFF);
        match c.recv_budget(self.rank, manager, tag, self.buf, MSG_BYTES, budget) {
            Ok(n) => {
                debug_assert_eq!(n, MSG_BYTES);
                let mut m = [0u8; MSG_BYTES];
                c.read_buffer(self.rank, self.buf, &mut m)
                    .map_err(DlmError::from)?;
                let key = LockKey::from_le_bytes(m[4..8].try_into().unwrap());
                let token = u64::from_le_bytes(m[8..16].try_into().unwrap());
                let expires = u64::from_le_bytes(m[16..24].try_into().unwrap());
                Ok(Some(match m[0] {
                    ST_GRANTED => Reply::Granted(Grant {
                        key,
                        token,
                        expires,
                    }),
                    ST_RELEASED => Reply::Released { key },
                    ST_STALE => Reply::Stale {
                        key,
                        current: token,
                    },
                    ST_NOT_HELD => Reply::NotHeld { key },
                    ST_EXIT_ACK => Reply::ExitAck,
                    _ => return Err(DlmError::Via(ViaError::BadState("unknown DLM reply"))),
                }))
            }
            Err(ViaError::Timeout) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// Decoded manager replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reply {
    Granted(Grant),
    Released {
        key: LockKey,
    },
    /// Release rejected: the lock's current epoch outran the caller.
    Stale {
        key: LockKey,
        current: u64,
    },
    NotHeld {
        key: LockKey,
    },
    ExitAck,
}

#[cfg(test)]
mod tests {
    use super::*;
    use msg::MsgConfig;
    use simmem::KernelConfig;
    use vialock::StrategyKind;

    fn setup() -> (Comm, Manager, ClientEndpoint, ClientEndpoint) {
        let mut c = Comm::new(
            3,
            3,
            KernelConfig::medium(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap();
        let m = Manager::new(&mut c, 0, 50).unwrap();
        let a = ClientEndpoint::new(&mut c, 1, 100).unwrap();
        let b = ClientEndpoint::new(&mut c, 2, 200).unwrap();
        (c, m, a, b)
    }

    /// Drive the manager until `ep` has a reply (bounded).
    fn pump_for_reply(c: &mut Comm, m: &mut Manager, ep: &ClientEndpoint, now: &mut u64) -> Reply {
        for _ in 0..100 {
            *now += 1;
            m.serve_step(c, *now, 8).unwrap();
            if let Some(r) = ep.poll_reply(c, m.rank, 8).unwrap() {
                return r;
            }
        }
        panic!("no reply within bound");
    }

    #[test]
    fn grant_queue_fifo_and_release() {
        let (mut c, mut m, a, b) = setup();
        let mut now = 0;
        a.send_acquire(&mut c, 0, 7).unwrap();
        let Reply::Granted(ga) = pump_for_reply(&mut c, &mut m, &a, &mut now) else {
            panic!("expected grant");
        };
        assert_eq!(ga.token, 1);
        // B queues behind A.
        b.send_acquire(&mut c, 0, 7).unwrap();
        now += 1;
        m.serve_step(&mut c, now, 8).unwrap();
        assert_eq!(m.queued_waiters(), 1);
        assert!(b.poll_reply(&mut c, 0, 4).unwrap().is_none());
        // A releases: B is woken with the next token.
        a.send_release(&mut c, 0, 7, ga.token).unwrap();
        let Reply::Granted(gb) = pump_for_reply(&mut c, &mut m, &b, &mut now) else {
            panic!("expected queued grant");
        };
        assert_eq!(gb.token, 2);
        assert_eq!(
            pump_for_reply(&mut c, &mut m, &a, &mut now),
            Reply::Released { key: 7 }
        );
        assert_eq!(m.stats.woken, 1);
    }

    #[test]
    fn expired_lease_wakes_waiter_and_stale_release_rejected() {
        let (mut c, mut m, a, b) = setup();
        let mut now = 0;
        a.send_acquire(&mut c, 0, 3).unwrap();
        let Reply::Granted(ga) = pump_for_reply(&mut c, &mut m, &a, &mut now) else {
            panic!()
        };
        b.send_acquire(&mut c, 0, 3).unwrap();
        now += 1;
        m.serve_step(&mut c, now, 8).unwrap();
        // Jump past A's lease: the sweep frees the lock and wakes B.
        now = ga.expires + 1;
        let Reply::Granted(gb) = pump_for_reply(&mut c, &mut m, &b, &mut now) else {
            panic!("waiter not woken after expiry")
        };
        assert!(gb.token > ga.token);
        assert_eq!(m.stats.expiries, 1);
        // A's late release presents a stale token and must be rejected.
        a.send_release(&mut c, 0, 3, ga.token).unwrap();
        assert_eq!(
            pump_for_reply(&mut c, &mut m, &a, &mut now),
            Reply::Stale {
                key: 3,
                current: gb.token
            }
        );
        assert_eq!(m.stats.stale_rejections, 1);
    }

    #[test]
    fn client_exit_reclaims_and_wakes() {
        let (mut c, mut m, a, b) = setup();
        let mut now = 0;
        a.send_acquire(&mut c, 0, 1).unwrap();
        let Reply::Granted(_) = pump_for_reply(&mut c, &mut m, &a, &mut now) else {
            panic!()
        };
        b.send_acquire(&mut c, 0, 1).unwrap();
        now += 1;
        m.serve_step(&mut c, now, 8).unwrap();
        // A dies (announced exit): B must be woken with a grant.
        a.send_exit(&mut c, 0).unwrap();
        let Reply::Granted(gb) = pump_for_reply(&mut c, &mut m, &b, &mut now) else {
            panic!("waiter not woken after holder exit")
        };
        assert_eq!(gb.key, 1);
        assert_eq!(m.stats.reclaimed, 1);
        assert!(m.orphans(|cl| cl != 100).is_empty());
    }

    #[test]
    fn rank_death_reclaims_holders_and_purges_waiters() {
        let (mut c, mut m, a, b) = setup();
        let mut now = 0;
        // A holds key 5; B queues behind it, then A's whole rank dies.
        a.send_acquire(&mut c, 0, 5).unwrap();
        let Reply::Granted(_) = pump_for_reply(&mut c, &mut m, &a, &mut now) else {
            panic!()
        };
        b.send_acquire(&mut c, 0, 5).unwrap();
        now += 1;
        m.serve_step(&mut c, now, 8).unwrap();
        m.rank_died(&mut c, a.rank, now).unwrap();
        // B is woken with the grant; A's entries are gone.
        let Reply::Granted(gb) = pump_for_reply(&mut c, &mut m, &b, &mut now) else {
            panic!("survivor waiter not woken after rank death")
        };
        assert_eq!(gb.key, 5);
        assert!(m.orphans(|cl| cl == 200).is_empty());
        assert_eq!(m.holder_of(5).unwrap().0, 200);
    }
}
