//! The one-sided lock design: clients CAS the lock word directly.
//!
//! The lock table is a window of `nlocks` 16-byte slots in the table
//! host's registered memory — `[lock word, lease expiry]` pairs. Every
//! operation is one-sided: a `get` to observe, a `Window::cas` (RDMA
//! atomic compare-and-swap, TPT-checked at the table host) to take or
//! free the word, a `put` to stamp the lease. The table host's CPU is
//! never involved — exactly the "lock table in network-accessible
//! memory" design from the RDMA lock-management literature.
//!
//! Liveness under crashes comes from lease *stealing*: a contender that
//! observes an expired lease CASes the held word straight to its own
//! ownership with a bumped fencing token. Safety survives the race
//! because the dead (or slow) holder's token is now behind the word's:
//! its eventual release is rejected as [`DlmError::StaleToken`].

use msg::{Comm, RankId, Window};
use simmem::VirtAddr;
use via::{Fabric, ViaResult};

use crate::wordproto::{
    classify_release, lost_race_busy, plan_acquire, release_words, AcquirePlan, ReleaseOutcome,
};
use crate::{decode_word, encode_word, ClientId, DlmError, DlmResult, Grant, LockKey};

/// Bytes per lock slot: the CAS word plus the lease-expiry word.
pub const SLOT_BYTES: usize = 16;

/// Counters for the one-sided design (per table handle).
#[derive(Debug, Default, Clone, Copy)]
pub struct OneSidedStats {
    /// CAS descriptors issued (includes lost races).
    pub cas_attempts: u64,
    /// Successful acquisitions of a free lock.
    pub acquires: u64,
    /// Successful steals of an expired lease.
    pub steals: u64,
    /// Releases rejected because the presented token was stale.
    pub stale_rejections: u64,
    /// Clean releases.
    pub releases: u64,
    /// Locks freed by crash reclamation sweeps.
    pub reclaimed: u64,
}

/// Outcome of a single non-blocking acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryAcquire {
    Acquired(Grant),
    /// Validly held: who holds it and when their lease ends.
    Busy {
        holder: ClientId,
        expires: u64,
    },
}

/// A one-sided lock table: the exposed window plus per-origin scratch
/// buffers for observing slots.
pub struct OneSidedTable {
    pub win: Window,
    pub nlocks: usize,
    pub stats: OneSidedStats,
    /// Per-rank 16-byte observation buffers, allocated lazily.
    scratch: std::collections::HashMap<RankId, VirtAddr>,
}

impl OneSidedTable {
    /// Host a zeroed table of `nlocks` locks in `host`'s memory. A zeroed
    /// slot is a free lock at fencing token 0.
    pub fn create<F: Fabric>(c: &mut Comm<F>, host: RankId, nlocks: usize) -> ViaResult<Self> {
        let len = nlocks * SLOT_BYTES;
        let base = c.alloc_buffer(host, len)?;
        c.fill_buffer(host, base, &vec![0u8; len])?;
        let win = c.expose_window(host, base, len)?;
        Ok(OneSidedTable {
            win,
            nlocks,
            stats: OneSidedStats::default(),
            scratch: std::collections::HashMap::new(),
        })
    }

    fn word_off(&self, key: LockKey) -> usize {
        assert!((key as usize) < self.nlocks, "lock key out of table");
        key as usize * SLOT_BYTES
    }

    fn scratch_for<F: Fabric>(&mut self, c: &mut Comm<F>, origin: RankId) -> ViaResult<VirtAddr> {
        if let Some(&a) = self.scratch.get(&origin) {
            return Ok(a);
        }
        let a = c.alloc_buffer(origin, SLOT_BYTES)?;
        self.scratch.insert(origin, a);
        Ok(a)
    }

    /// Observe a slot: `(word, lease_expiry)` via a one-sided get.
    pub fn read_slot<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        origin: RankId,
        key: LockKey,
    ) -> ViaResult<(u64, u64)> {
        let off = self.word_off(key);
        let s = self.scratch_for(c, origin)?;
        c.get(origin, s, SLOT_BYTES, &self.win, off)?;
        let mut raw = [0u8; SLOT_BYTES];
        c.read_buffer(origin, s, &mut raw)?;
        Ok((
            u64::from_le_bytes(raw[0..8].try_into().unwrap()),
            u64::from_le_bytes(raw[8..16].try_into().unwrap()),
        ))
    }

    /// Stamp the lease-expiry word of a slot (holder-only, after a
    /// successful CAS).
    fn write_lease<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        origin: RankId,
        key: LockKey,
        expires: u64,
    ) -> ViaResult<()> {
        let off = self.word_off(key) + 8;
        let s = self.scratch_for(c, origin)?;
        c.fill_buffer(origin, s, &expires.to_le_bytes())?;
        c.put(origin, s, 8, &self.win, off)
    }

    /// One acquire attempt for `client` at `origin`: observe the slot,
    /// then CAS for it if it is free or its lease has expired. A lost
    /// race or a validly held lock returns [`TryAcquire::Busy`]; the
    /// caller backs off and retries.
    pub fn try_acquire<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        origin: RankId,
        client: ClientId,
        key: LockKey,
        now: u64,
        lease_ticks: u64,
    ) -> DlmResult<TryAcquire> {
        let (word, expiry) = self.read_slot(c, origin, key)?;
        // The decision logic is shared with the model-checked replica in
        // crates/check — see crate::wordproto.
        let (expect, propose, token, stealing) = match plan_acquire(word, expiry, client, now) {
            AcquirePlan::Busy { holder, expires } => {
                return Ok(TryAcquire::Busy { holder, expires })
            }
            AcquirePlan::Cas {
                expect,
                propose,
                token,
                steal,
            } => (expect, propose, token, steal),
        };
        self.stats.cas_attempts += 1;
        let old = c.cas(origin, &self.win, self.word_off(key), expect, propose)?;
        if old != expect {
            let (holder, expires) = lost_race_busy(old, client, now, expiry);
            return Ok(TryAcquire::Busy { holder, expires });
        }
        let expires = now + lease_ticks;
        self.write_lease(c, origin, key, expires)?;
        if stealing {
            self.stats.steals += 1;
        } else {
            self.stats.acquires += 1;
        }
        Ok(TryAcquire::Acquired(Grant {
            key,
            token,
            expires,
        }))
    }

    /// Blocking acquire with exponential backoff and a deadline. Backoff
    /// advances the caller's logical clock (`now`), which is what makes
    /// the loop total: once the holder's lease falls behind `*now`, the
    /// steal path opens. `max_attempts` bounds the wait — exhausting it
    /// is the typed [`DlmError::Deadline`], never a hang.
    #[allow(clippy::too_many_arguments)]
    pub fn acquire<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        origin: RankId,
        client: ClientId,
        key: LockKey,
        now: &mut u64,
        lease_ticks: u64,
        max_attempts: u32,
    ) -> DlmResult<Grant> {
        let mut backoff = 1u64;
        for _ in 0..max_attempts {
            match self.try_acquire(c, origin, client, key, *now, lease_ticks)? {
                TryAcquire::Acquired(g) => return Ok(g),
                TryAcquire::Busy { .. } => {
                    *now += backoff;
                    backoff = (backoff * 2).min(lease_ticks.max(2));
                }
            }
        }
        Err(DlmError::Deadline)
    }

    /// Release `key` with the fencing token from the grant. The CAS
    /// demands the exact `(client, token)` word: if the lease expired and
    /// the lock was stolen or re-acquired, the word moved on and the CAS
    /// fails — the stale holder is told so, and the current holder is
    /// untouched.
    pub fn release<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        origin: RankId,
        client: ClientId,
        key: LockKey,
        token: u64,
    ) -> DlmResult<()> {
        // Freeing keeps the token: the monotonic sequence continues at
        // the next acquisition. Decision logic shared with the model —
        // see crate::wordproto.
        let (held, freed) = release_words(client, token);
        self.stats.cas_attempts += 1;
        let old = c.cas(origin, &self.win, self.word_off(key), held, freed)?;
        match classify_release(old, client, token) {
            ReleaseOutcome::Released => {
                self.stats.releases += 1;
                Ok(())
            }
            ReleaseOutcome::NotHeld => {
                self.stats.stale_rejections += 1;
                Err(DlmError::NotHeld)
            }
            ReleaseOutcome::Stale { current } => {
                self.stats.stale_rejections += 1;
                Err(DlmError::StaleToken {
                    presented: token,
                    current,
                })
            }
        }
    }

    /// Crash reclamation sweep: free every lock whose owner `is_dead`,
    /// keeping each word's token so later acquisitions stay monotonic.
    /// Returns the number of locks reclaimed.
    pub fn reclaim<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        origin: RankId,
        is_dead: impl Fn(ClientId) -> bool,
    ) -> DlmResult<usize> {
        let mut freed = 0;
        for key in 0..self.nlocks as LockKey {
            let (word, _) = self.read_slot(c, origin, key)?;
            let (owner, token) = decode_word(word);
            if let Some(o) = owner {
                if is_dead(o) {
                    self.stats.cas_attempts += 1;
                    let old = c.cas(
                        origin,
                        &self.win,
                        self.word_off(key),
                        word,
                        encode_word(None, token),
                    )?;
                    if old == word {
                        freed += 1;
                        self.stats.reclaimed += 1;
                    }
                    // A lost race means someone stole the expired lease
                    // concurrently — also a resolution, not a leak.
                }
            }
        }
        Ok(freed)
    }

    /// Audit: every lock whose owner fails `is_live`. Chaos harnesses
    /// assert this is empty after reclamation — the zero-orphans
    /// invariant.
    pub fn orphans<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        origin: RankId,
        is_live: impl Fn(ClientId) -> bool,
    ) -> DlmResult<Vec<(LockKey, ClientId)>> {
        let mut out = Vec::new();
        for key in 0..self.nlocks as LockKey {
            let (word, _) = self.read_slot(c, origin, key)?;
            if let (Some(o), _) = decode_word(word) {
                if !is_live(o) {
                    out.push((key, o));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msg::MsgConfig;
    use simmem::KernelConfig;
    use vialock::StrategyKind;

    fn comm() -> Comm {
        Comm::new(
            4,
            2,
            KernelConfig::medium(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap()
    }

    #[test]
    fn acquire_release_cycle() {
        let mut c = comm();
        let mut t = OneSidedTable::create(&mut c, 0, 8).unwrap();
        let mut now = 0;
        let g = t.acquire(&mut c, 1, 11, 3, &mut now, 100, 10).unwrap();
        assert_eq!(g.token, 1);
        // Second client bounces while the lease is valid.
        assert!(matches!(
            t.try_acquire(&mut c, 2, 22, 3, now, 100).unwrap(),
            TryAcquire::Busy { holder: 11, .. }
        ));
        t.release(&mut c, 1, 11, 3, g.token).unwrap();
        let g2 = t.acquire(&mut c, 2, 22, 3, &mut now, 100, 10).unwrap();
        assert_eq!(g2.token, 2, "tokens are monotonic per lock");
        assert_eq!(t.stats.acquires, 2);
        assert_eq!(t.stats.releases, 1);
    }

    #[test]
    fn expired_lease_is_stolen_and_stale_release_rejected() {
        let mut c = comm();
        let mut t = OneSidedTable::create(&mut c, 0, 4).unwrap();
        let mut now = 0;
        let g = t.acquire(&mut c, 1, 11, 0, &mut now, 10, 10).unwrap();
        // Client 22's clock runs past the lease: the steal path opens.
        let mut late = now + 11;
        let g2 = t.acquire(&mut c, 2, 22, 0, &mut late, 10, 10).unwrap();
        assert_eq!(g2.token, g.token + 1);
        assert_eq!(t.stats.steals, 1);
        // The original holder comes back — its token is stale and its
        // release must NOT free the stolen lock.
        let err = t.release(&mut c, 1, 11, 0, g.token).unwrap_err();
        assert_eq!(
            err,
            DlmError::StaleToken {
                presented: g.token,
                current: g2.token
            }
        );
        assert_eq!(t.stats.stale_rejections, 1);
        // The thief's release is clean.
        t.release(&mut c, 2, 22, 0, g2.token).unwrap();
    }

    #[test]
    fn deadline_is_typed_not_a_hang() {
        let mut c = comm();
        let mut t = OneSidedTable::create(&mut c, 0, 4).unwrap();
        let mut now = 0;
        let _g = t
            .acquire(&mut c, 1, 11, 0, &mut now, 1_000_000, 10)
            .unwrap();
        // A contender with a tiny attempt budget cannot outlast the
        // lease; it must get the typed deadline error.
        let mut n2 = now;
        assert_eq!(
            t.acquire(&mut c, 2, 22, 0, &mut n2, 10, 3).unwrap_err(),
            DlmError::Deadline
        );
    }

    #[test]
    fn reclaim_frees_only_dead_owners() {
        let mut c = comm();
        let mut t = OneSidedTable::create(&mut c, 0, 8).unwrap();
        let mut now = 0;
        t.acquire(&mut c, 1, 11, 0, &mut now, 100, 10).unwrap();
        t.acquire(&mut c, 2, 22, 1, &mut now, 100, 10).unwrap();
        t.acquire(&mut c, 3, 33, 2, &mut now, 100, 10).unwrap();
        let freed = t.reclaim(&mut c, 0, |o| o == 11 || o == 33).unwrap();
        assert_eq!(freed, 2);
        let orphans = t.orphans(&mut c, 0, |o| o == 22).unwrap();
        assert!(orphans.is_empty(), "orphans after reclaim: {orphans:?}");
        // Lock 1 still held by the live client 22.
        assert!(matches!(
            t.try_acquire(&mut c, 1, 11, 1, now, 100).unwrap(),
            TryAcquire::Busy { holder: 22, .. }
        ));
        // Reclaimed locks keep their token sequence.
        let g = t.acquire(&mut c, 1, 44, 0, &mut now, 100, 10).unwrap();
        assert_eq!(g.token, 2);
    }

    #[test]
    fn double_release_is_not_held() {
        let mut c = comm();
        let mut t = OneSidedTable::create(&mut c, 0, 2).unwrap();
        let mut now = 0;
        let g = t.acquire(&mut c, 1, 11, 0, &mut now, 100, 10).unwrap();
        t.release(&mut c, 1, 11, 0, g.token).unwrap();
        assert_eq!(
            t.release(&mut c, 1, 11, 0, g.token).unwrap_err(),
            DlmError::NotHeld
        );
    }
}
