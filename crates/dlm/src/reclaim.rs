//! Crash reclamation: the bridge between process exit and lock state.
//!
//! The VIA stack's `exit_process` already guarantees that a dying pid
//! leaks no *memory* — every TPT entry, pin and mlock interval is
//! reclaimed. This module extends the same promise to *locks*: tearing a
//! rank down releases every lock its clients held and wakes the waiters
//! behind them, so a crash can orphan neither frames nor mutual
//! exclusion.

use msg::{Comm, RankId};
use via::{Fabric, ViaResult};

use crate::onesided::OneSidedTable;
use crate::server::Manager;
use crate::ClientId;

/// Tear down `rank`'s simulated process through the fabric's
/// process-exit path (reclaiming its registrations and pins), then run
/// lock reclamation: the manager releases everything the rank's clients
/// held and wakes their waiters with typed grants. Returns the number of
/// locks reclaimed.
///
/// The order matters and mirrors a real kernel's `release` callback: the
/// memory teardown first (the pid is gone), then the lock-table cleanup
/// driven by the death notification.
pub fn exit_rank<F: Fabric>(
    c: &mut Comm<F>,
    manager: &mut Manager,
    rank: RankId,
    now: u64,
) -> ViaResult<usize> {
    c.retire_rank(rank)?;
    manager.rank_died(c, rank, now)
}

/// The one-sided analogue: tear the rank's process down, then sweep the
/// table and CAS-free every lock owned by one of its clients
/// (`owner_of_rank` maps client ids to ranks — the deployment knows its
/// own id layout). The sweep runs from `audit_rank`, a surviving rank.
pub fn exit_rank_onesided<F: Fabric>(
    c: &mut Comm<F>,
    table: &mut OneSidedTable,
    rank: RankId,
    audit_rank: RankId,
    owner_of_rank: impl Fn(ClientId) -> RankId,
) -> ViaResult<usize> {
    c.retire_rank(rank)?;
    table
        .reclaim(c, audit_rank, |client| owner_of_rank(client) == rank)
        .map_err(|e| match e {
            crate::DlmError::Via(v) | crate::DlmError::ManagerUnreachable(v) => v,
            _ => via::ViaError::BadState("reclaim sweep failed"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ClientEndpoint, Reply};
    use msg::MsgConfig;
    use simmem::KernelConfig;
    use vialock::StrategyKind;

    #[test]
    fn exiting_rank_releases_locks_and_wakes_waiters() {
        let mut c = Comm::new(
            3,
            3,
            KernelConfig::medium(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap();
        let mut m = Manager::new(&mut c, 0, 1_000).unwrap();
        let a = ClientEndpoint::new(&mut c, 1, 10).unwrap();
        let b = ClientEndpoint::new(&mut c, 2, 20).unwrap();
        let mut now = 0;

        a.send_acquire(&mut c, 0, 4).unwrap();
        let mut granted = false;
        for _ in 0..50 {
            now += 1;
            m.serve_step(&mut c, now, 8).unwrap();
            if let Some(Reply::Granted(_)) = a.poll_reply(&mut c, 0, 8).unwrap() {
                granted = true;
                break;
            }
        }
        assert!(granted);
        b.send_acquire(&mut c, 0, 4).unwrap();
        now += 1;
        m.serve_step(&mut c, now, 8).unwrap();

        // Rank 1 (client 10's process) dies; its pins AND its locks must
        // be reclaimed, and client 20 woken.
        let reclaimed = exit_rank(&mut c, &mut m, 1, now).unwrap();
        assert_eq!(reclaimed, 1);
        let node = c.rank_node(1);
        let (pinned, regions) = c.system_mut().with_node(node, |n| {
            (n.registry.pinned_frames(), n.nic.tpt.region_count())
        });
        // Rank 1 shares node 1 with no other rank in this layout, so its
        // exit leaves nothing pinned there beyond other ranks' state.
        let _ = (pinned, regions);
        let mut woken = false;
        for _ in 0..50 {
            now += 1;
            m.serve_step(&mut c, now, 8).unwrap();
            if let Some(Reply::Granted(g)) = b.poll_reply(&mut c, 0, 8).unwrap() {
                assert_eq!(g.key, 4);
                woken = true;
                break;
            }
        }
        assert!(woken, "survivor waiter not woken after rank exit");
        assert!(m.orphans(|cl| cl == 20).is_empty());
    }

    #[test]
    fn onesided_exit_sweep_frees_dead_clients_locks() {
        let mut c = Comm::new(
            3,
            3,
            KernelConfig::medium(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap();
        let mut t = OneSidedTable::create(&mut c, 0, 8).unwrap();
        let mut now = 0;
        // Client layout: client id / 100 = rank.
        t.acquire(&mut c, 1, 100, 2, &mut now, 1_000, 10).unwrap();
        t.acquire(&mut c, 2, 200, 5, &mut now, 1_000, 10).unwrap();
        let freed = exit_rank_onesided(&mut c, &mut t, 1, 0, |cl| (cl / 100) as RankId).unwrap();
        assert_eq!(freed, 1);
        let orphans = t.orphans(&mut c, 0, |cl| (cl / 100) != 1).unwrap();
        assert!(orphans.is_empty(), "{orphans:?}");
        // The survivor's lock is untouched.
        assert!(matches!(
            t.try_acquire(&mut c, 0, 300, 5, now, 10).unwrap(),
            crate::onesided::TryAcquire::Busy { holder: 200, .. }
        ));
    }
}
