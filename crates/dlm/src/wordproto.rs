//! The one-sided lock-word protocol as pure decision functions.
//!
//! [`crate::onesided`] drives these over the RDMA transport; the model
//! checker (`crates/check/tests/model_dlm.rs`) drives the *same* functions
//! over a modeled atomic lock word to exhaustively explore
//! acquire/steal/release races. Keeping the decisions transport-free is
//! what makes the model faithful: both executors can only differ in how
//! they perform the CAS, never in what they decide to CAS.
//!
//! Protocol recap: the word packs `(owner, fencing token)` via
//! [`crate::encode_word`]. Acquisition CASes free-or-expired words to
//! `(self, token + 1)`; release CASes the exact held word to
//! `(free, token)` — keeping the token so the per-lock sequence stays
//! strictly monotonic across steals, which is exactly the property that
//! makes a stale holder's writes fenceable.

use crate::{decode_word, encode_word, ClientId};

/// What one acquire attempt should do, given an observed `(word, expiry)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquirePlan {
    /// Validly held — do not CAS; report the holder.
    Busy { holder: ClientId, expires: u64 },
    /// CAS `expect → propose`. On success the caller owns the lock at
    /// `token` (`steal` tells it which stat to bump).
    Cas {
        expect: u64,
        propose: u64,
        token: u64,
        steal: bool,
    },
}

/// Decide an acquire attempt from an observed slot. Free words and
/// expired leases (`expiry <= now`) are CAS targets; valid leases are
/// [`AcquirePlan::Busy`].
pub fn plan_acquire(word: u64, expiry: u64, client: ClientId, now: u64) -> AcquirePlan {
    let (owner, token) = decode_word(word);
    let steal = match owner {
        None => false,
        Some(h) if expiry > now => {
            return AcquirePlan::Busy {
                holder: h,
                expires: expiry,
            }
        }
        Some(_) => true,
    };
    AcquirePlan::Cas {
        expect: word,
        propose: encode_word(Some(client), token + 1),
        token: token + 1,
        steal,
    }
}

/// The holder/expiry to report after an acquire CAS lost its race and
/// observed `old` instead. A transiently free word (the winner released
/// already, or its lease stamp hasn't landed) reports the caller itself
/// at `now` — "retry immediately".
pub fn lost_race_busy(
    old: u64,
    myself: ClientId,
    now: u64,
    observed_expiry: u64,
) -> (ClientId, u64) {
    match decode_word(old).0 {
        // The winner stamps its lease after the CAS; until the stamp
        // lands the slot still shows the old expiry.
        Some(h) => (h, observed_expiry.max(now)),
        None => (myself, now),
    }
}

/// The `(held, freed)` word pair for a release CAS: demand the exact
/// `(client, token)` word, free it keeping the token.
pub fn release_words(client: ClientId, token: u64) -> (u64, u64) {
    (encode_word(Some(client), token), encode_word(None, token))
}

/// Classification of a release CAS's observed previous word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// The CAS matched: the lock is free, token preserved.
    Released,
    /// Already free at our token — a double release.
    NotHeld,
    /// The word moved past our token (steal or re-acquisition); the
    /// current holder is untouched and the caller must treat itself as
    /// fenced off.
    Stale { current: u64 },
}

/// Classify the previous word `old` returned by a release CAS issued by
/// `client` with fencing `token`.
pub fn classify_release(old: u64, client: ClientId, token: u64) -> ReleaseOutcome {
    if old == encode_word(Some(client), token) {
        return ReleaseOutcome::Released;
    }
    let (owner, current) = decode_word(old);
    if owner.is_none() && current == token {
        return ReleaseOutcome::NotHeld;
    }
    ReleaseOutcome::Stale { current }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_word_plans_a_fresh_cas() {
        let word = encode_word(None, 5);
        match plan_acquire(word, 0, 7, 100) {
            AcquirePlan::Cas {
                expect,
                propose,
                token,
                steal,
            } => {
                assert_eq!(expect, word);
                assert_eq!(propose, encode_word(Some(7), 6));
                assert_eq!(token, 6);
                assert!(!steal);
            }
            other => panic!("expected Cas, got {other:?}"),
        }
    }

    #[test]
    fn valid_lease_is_busy_no_cas() {
        let word = encode_word(Some(3), 9);
        assert_eq!(
            plan_acquire(word, 50, 7, 49),
            AcquirePlan::Busy {
                holder: 3,
                expires: 50
            }
        );
    }

    #[test]
    fn expired_lease_plans_a_steal() {
        let word = encode_word(Some(3), 9);
        match plan_acquire(word, 50, 7, 50) {
            AcquirePlan::Cas { token, steal, .. } => {
                assert_eq!(token, 10, "steal bumps the fencing token");
                assert!(steal);
            }
            other => panic!("expected steal Cas, got {other:?}"),
        }
    }

    #[test]
    fn release_classification_covers_all_outcomes() {
        let (held, freed) = release_words(4, 7);
        assert_eq!(classify_release(held, 4, 7), ReleaseOutcome::Released);
        assert_eq!(classify_release(freed, 4, 7), ReleaseOutcome::NotHeld);
        // Stolen: word moved to (9, 8).
        let stolen = encode_word(Some(9), 8);
        assert_eq!(
            classify_release(stolen, 4, 7),
            ReleaseOutcome::Stale { current: 8 }
        );
        // Freed at a later token: also stale, not NotHeld.
        assert_eq!(
            classify_release(encode_word(None, 8), 4, 7),
            ReleaseOutcome::Stale { current: 8 }
        );
    }

    #[test]
    fn lost_race_reports_winner_or_retry() {
        assert_eq!(lost_race_busy(encode_word(Some(2), 3), 7, 10, 20), (2, 20));
        assert_eq!(lost_race_busy(encode_word(Some(2), 3), 7, 30, 20), (2, 30));
        assert_eq!(lost_race_busy(encode_word(None, 3), 7, 10, 20), (7, 10));
    }
}
