//! Fault-tolerant distributed lock manager over the VIA fabric.
//!
//! The source paper's reliable-pinning mechanism guarantees that memory a
//! NIC may touch stays locked in core; this crate builds the natural
//! next layer on top of that promise — a *distributed lock table living
//! in registered memory*, in the tradition of "Using RDMA for Lock
//! Management": coordination state placed where the fabric itself can
//! operate on it.
//!
//! Two designs share one lock-word format and one safety story:
//!
//! * **Server-mediated** ([`server`]): a manager rank owns the table and
//!   serves acquire/release requests over [`msg::Comm`], keeping a
//!   per-lock FIFO wait queue of compact packed waiter entries. Grants
//!   carry leases; expired holders are swept and the next waiter is woken
//!   with a typed grant.
//! * **One-sided** ([`onesided`]): clients race RDMA compare-and-swap
//!   ([`msg`]'s `Window::cas`, executing [`via::DescOp::AtomicCas`] under
//!   full TPT protection checks) directly against the lock word, with
//!   exponential backoff and a deadline. An expired lease is *stolen* by
//!   CASing the held word to a fresh ownership — no manager involvement.
//!
//! Safety under crashes rests on two mechanisms:
//!
//! * **Fencing tokens**: every acquisition of a lock carries a token
//!   strictly greater than every earlier acquisition of that lock. A
//!   holder whose lease expired (and whose lock was re-granted or stolen)
//!   presents a stale token on release and is rejected with
//!   [`DlmError::StaleToken`] — it can never clobber the new holder.
//! * **Leases + reclamation**: ownership always expires. A crashed
//!   holder's locks are reclaimed either eagerly (process-exit
//!   reclamation, [`reclaim`]) or lazily (lease expiry), and waiters are
//!   woken with typed outcomes, never left hanging.

pub mod onesided;
pub mod reclaim;
pub mod server;
pub mod sim;
pub mod wordproto;

use std::fmt;

use via::ViaError;

/// Logical client identity: many simulated clients multiplex one
/// communicator rank, so the id travels in every message and lock word.
pub type ClientId = u32;

/// Lock identity: an index into the lock table.
pub type LockKey = u32;

/// Clients must fit the lock word's owner field (24 bits, offset by one
/// so zero can mean "free").
pub const MAX_CLIENTS: u32 = (1 << 24) - 2;

/// A successful acquisition: the key and its fencing token. The token is
/// the capability the holder must present on release (and would attach to
/// any downstream resource access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    pub key: LockKey,
    pub token: u64,
    /// Lease expiry, in the table's logical clock.
    pub expires: u64,
}

/// Typed outcomes of lock operations — the robustness contract is that a
/// client always gets one of these, never a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlmError {
    /// The presented fencing token is older than the lock's current
    /// epoch: the caller's lease expired and the lock moved on. The
    /// caller must treat every resource guarded by the lock as lost.
    StaleToken { presented: u64, current: u64 },
    /// Release of a lock the caller does not hold.
    NotHeld,
    /// The acquire deadline (backoff budget) ran out while the lock
    /// stayed validly held by someone else.
    Deadline,
    /// Transient transport backpressure (all message slots to the peer
    /// are in flight) — retry after a progress round.
    Backpressure,
    /// The manager (or the fabric path to it) is gone — detected through
    /// a typed transport error ([`ViaError::PeerGone`],
    /// [`ViaError::Timeout`]) rather than an unbounded wait.
    ManagerUnreachable(ViaError),
    /// Transport failure underneath a lock operation.
    Via(ViaError),
}

impl fmt::Display for DlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlmError::StaleToken { presented, current } => {
                write!(f, "stale fencing token {presented} (lock is at {current})")
            }
            DlmError::NotHeld => write!(f, "lock not held by caller"),
            DlmError::Deadline => write!(f, "acquire deadline exhausted"),
            DlmError::Backpressure => write!(f, "transport backpressure, retry"),
            DlmError::ManagerUnreachable(e) => write!(f, "lock manager unreachable: {e}"),
            DlmError::Via(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for DlmError {}

impl From<ViaError> for DlmError {
    fn from(e: ViaError) -> Self {
        match e {
            ViaError::Timeout | ViaError::PeerGone(_) | ViaError::NodesGone(_) => {
                DlmError::ManagerUnreachable(e)
            }
            other => DlmError::Via(other),
        }
    }
}

/// Result alias for lock operations.
pub type DlmResult<T> = Result<T, DlmError>;

// ---------------------------------------------------------------------
// Lock-word encoding, shared by both designs.
// ---------------------------------------------------------------------

/// Bits of the fencing token inside the lock word.
const TOKEN_BITS: u32 = 40;
const TOKEN_MASK: u64 = (1 << TOKEN_BITS) - 1;

/// Pack `(owner, token)` into one CAS-able u64. Owner `None` means free;
/// the token field keeps the last issued token so the next acquisition
/// continues the monotonic sequence.
pub fn encode_word(owner: Option<ClientId>, token: u64) -> u64 {
    debug_assert!(token <= TOKEN_MASK, "fencing token overflow");
    let o = match owner {
        Some(c) => {
            debug_assert!(c <= MAX_CLIENTS);
            (c as u64) + 1
        }
        None => 0,
    };
    (o << TOKEN_BITS) | token
}

/// Inverse of [`encode_word`].
pub fn decode_word(word: u64) -> (Option<ClientId>, u64) {
    let o = word >> TOKEN_BITS;
    let owner = if o == 0 {
        None
    } else {
        Some((o - 1) as ClientId)
    };
    (owner, word & TOKEN_MASK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        for owner in [None, Some(0), Some(7), Some(MAX_CLIENTS)] {
            for token in [0u64, 1, 999, TOKEN_MASK] {
                assert_eq!(decode_word(encode_word(owner, token)), (owner, token));
            }
        }
    }

    #[test]
    fn free_word_zero_token_zero_is_all_zero() {
        // A zeroed table is a table of free locks at token 0.
        assert_eq!(encode_word(None, 0), 0);
        assert_eq!(decode_word(0), (None, 0));
    }

    #[test]
    fn error_display() {
        let e = DlmError::StaleToken {
            presented: 3,
            current: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        assert!(matches!(
            DlmError::from(ViaError::Timeout),
            DlmError::ManagerUnreachable(ViaError::Timeout)
        ));
        assert!(matches!(
            DlmError::from(ViaError::OutOfBounds),
            DlmError::Via(ViaError::OutOfBounds)
        ));
    }
}
