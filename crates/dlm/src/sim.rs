//! Deterministic multi-client simulation harness for both lock designs.
//!
//! Thousands of *logical* clients multiplex the communicator's ranks
//! (one rank per node; per-pair channel state is quadratic in ranks, so
//! ranks stay few while clients scale). The harness interleaves client
//! state machines round-robin with manager serve steps under a logical
//! clock, samples acquire/release latency in ticks, and tracks
//! per-client completed acquisitions for fairness — the same driver
//! backs the 8-node benchmark and the seeded chaos sweeps.

use std::collections::HashMap;

use msg::{Comm, RankId};
use via::{Fabric, ViaResult};

use crate::onesided::{OneSidedTable, TryAcquire};
use crate::server::{ClientEndpoint, Manager, Reply};
use crate::{ClientId, DlmError, LockKey};

/// SplitMix64 — the harness's own deterministic generator (the vendored
/// rand crate is a dev-dependency only).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn seeded(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipfian key sampler over `n` keys with exponent `theta` — hot-key
/// contention: a handful of keys absorb most of the traffic.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Latency/fairness accumulator shared by both designs.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Acquire latency samples, in logical ticks from request to grant.
    pub acquire_ticks: Vec<u64>,
    /// Release latency samples.
    pub release_ticks: Vec<u64>,
    /// Completed acquisitions per client (fairness input).
    pub per_client: HashMap<ClientId, u64>,
    /// Acquire attempts abandoned with a typed deadline/timeout error.
    pub deadline_errors: u64,
    /// Releases rejected as stale.
    pub stale_rejections: u64,
}

impl OpStats {
    fn record_acquire(&mut self, client: ClientId, ticks: u64) {
        self.acquire_ticks.push(ticks);
        *self.per_client.entry(client).or_insert(0) += 1;
    }

    /// p-th percentile of a sample set (ticks).
    pub fn percentile(samples: &[u64], p: f64) -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let mut s = samples.to_vec();
        s.sort_unstable();
        let idx = ((s.len() - 1) as f64 * p).round() as usize;
        s[idx]
    }

    /// Jain's fairness index over per-client completed acquisitions:
    /// 1.0 = perfectly fair, 1/n = one client starved all others.
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self.per_client.values().map(|&v| v as f64).collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (xs.len() as f64 * sq)
    }
}

// ---------------------------------------------------------------------
// Server-design simulation.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum SmState {
    Idle,
    /// Waiting for a grant since `sent_at`.
    WaitGrant {
        key: LockKey,
        sent_at: u64,
    },
    /// Holding; release when the clock reaches `release_at`.
    Held {
        key: LockKey,
        token: u64,
        release_at: u64,
    },
    /// Release sent at `sent_at`; waiting for the ack.
    WaitRelease {
        sent_at: u64,
    },
    /// Crashed or exited: does nothing ever again.
    Dead,
}

struct ClientSm {
    ep: ClientEndpoint,
    state: SmState,
}

/// The server-design simulation: one manager rank, `clients_per_rank`
/// logical clients on every other rank, Zipfian keys.
pub struct ServerSim {
    pub manager: Manager,
    clients: Vec<ClientSm>,
    zipf: Zipf,
    /// Round-robin stepping cursor: every client is stepped on a fixed
    /// cadence of `clients / clients_per_tick` ticks, so latency samples
    /// measure the protocol, not scheduling jitter.
    cursor: usize,
    pub rng: Rng,
    pub now: u64,
    /// Ticks a holder keeps a lock before releasing (work inside the
    /// critical section).
    pub hold_ticks: u64,
    pub stats: OpStats,
}

impl ServerSim {
    #[allow(clippy::too_many_arguments)]
    pub fn new<F: Fabric>(
        c: &mut Comm<F>,
        manager_rank: RankId,
        client_ranks: &[RankId],
        clients_per_rank: usize,
        nlocks: usize,
        theta: f64,
        lease_ticks: u64,
        seed: u64,
    ) -> ViaResult<Self> {
        let manager = Manager::new(c, manager_rank, lease_ticks)?;
        let mut clients = Vec::new();
        for (ri, &rank) in client_ranks.iter().enumerate() {
            for j in 0..clients_per_rank {
                let id = (ri * clients_per_rank + j) as ClientId;
                clients.push(ClientSm {
                    ep: ClientEndpoint::new(c, rank, id)?,
                    state: SmState::Idle,
                });
            }
        }
        Ok(ServerSim {
            manager,
            clients,
            zipf: Zipf::new(nlocks, theta),
            cursor: 0,
            rng: Rng::seeded(seed),
            now: 0,
            hold_ticks: 3,
            stats: OpStats::default(),
        })
    }

    /// Mark every client of `rank` dead in the harness (their state
    /// machines stop; the manager is told separately via
    /// [`crate::reclaim::exit_rank`] or [`Manager::rank_died`]).
    pub fn kill_rank_clients(&mut self, rank: RankId) {
        for cl in &mut self.clients {
            if cl.ep.rank == rank {
                cl.state = SmState::Dead;
            }
        }
    }

    /// Ids of clients currently alive (the zero-orphans audit's liveness
    /// predicate).
    pub fn live_clients(&self) -> Vec<ClientId> {
        self.clients
            .iter()
            .filter(|c| !matches!(c.state, SmState::Dead))
            .map(|c| c.ep.client)
            .collect()
    }

    /// One simulation tick: advance the clock, step a slice of client
    /// state machines, serve the manager. Returns transport errors
    /// upward; lock-protocol outcomes are absorbed into stats.
    pub fn step<F: Fabric>(&mut self, c: &mut Comm<F>, clients_per_tick: usize) -> ViaResult<()> {
        self.now += 1;
        let n = self.clients.len();
        for _ in 0..clients_per_tick.min(n) {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            self.step_client(c, i)?;
        }
        self.manager.serve_step(c, self.now, 16)?;
        Ok(())
    }

    fn step_client<F: Fabric>(&mut self, c: &mut Comm<F>, i: usize) -> ViaResult<()> {
        let manager_rank = self.manager.rank;
        let (state, ep) = {
            let cl = &self.clients[i];
            (cl.state, cl.ep)
        };
        let next = match state {
            SmState::Dead => SmState::Dead,
            SmState::Idle => {
                let key = self.zipf.sample(&mut self.rng) as LockKey;
                match ep.send_acquire(c, manager_rank, key) {
                    Ok(()) => SmState::WaitGrant {
                        key,
                        sent_at: self.now,
                    },
                    Err(DlmError::Backpressure) => SmState::Idle,
                    Err(DlmError::ManagerUnreachable(_)) => {
                        self.stats.deadline_errors += 1;
                        SmState::Idle
                    }
                    Err(DlmError::Via(e)) => return Err(e),
                    Err(_) => SmState::Idle,
                }
            }
            SmState::WaitGrant { key, sent_at } => match ep.poll_reply(c, manager_rank, 4) {
                Ok(Some(Reply::Granted(g))) if g.key == key => {
                    self.stats.record_acquire(ep.client, self.now - sent_at);
                    SmState::Held {
                        key,
                        token: g.token,
                        release_at: self.now + self.hold_ticks,
                    }
                }
                Ok(Some(_)) | Ok(None) => state,
                Err(DlmError::ManagerUnreachable(_)) => {
                    self.stats.deadline_errors += 1;
                    SmState::Idle
                }
                Err(DlmError::Via(e)) => return Err(e),
                Err(_) => SmState::Idle,
            },
            SmState::Held {
                key,
                token,
                release_at,
            } => {
                if self.now < release_at {
                    state
                } else {
                    match ep.send_release(c, manager_rank, key, token) {
                        Ok(()) => SmState::WaitRelease { sent_at: self.now },
                        // Slots full: stay Held, retry next turn.
                        Err(DlmError::Backpressure) => state,
                        Err(DlmError::ManagerUnreachable(_)) => {
                            self.stats.deadline_errors += 1;
                            SmState::Idle
                        }
                        Err(DlmError::Via(e)) => return Err(e),
                        Err(_) => SmState::Idle,
                    }
                }
            }
            SmState::WaitRelease { sent_at } => match ep.poll_reply(c, manager_rank, 4) {
                Ok(Some(Reply::Released { .. })) => {
                    self.stats.release_ticks.push(self.now - sent_at);
                    SmState::Idle
                }
                Ok(Some(Reply::Stale { .. })) => {
                    // Our lease expired while we held: typed rejection.
                    self.stats.stale_rejections += 1;
                    SmState::Idle
                }
                Ok(Some(_)) | Ok(None) => state,
                Err(DlmError::ManagerUnreachable(_)) => {
                    self.stats.deadline_errors += 1;
                    SmState::Idle
                }
                Err(DlmError::Via(e)) => return Err(e),
                Err(_) => SmState::Idle,
            },
        };
        self.clients[i].state = next;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// One-sided simulation.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum OsState {
    Idle,
    /// Backing off until `retry_at`, with the current backoff step.
    Backoff {
        key: LockKey,
        started: u64,
        retry_at: u64,
        backoff: u64,
    },
    Held {
        key: LockKey,
        token: u64,
        release_at: u64,
    },
    Dead,
}

struct OsClient {
    rank: RankId,
    id: ClientId,
    state: OsState,
}

/// The one-sided simulation: every client CASes the shared table
/// directly; no manager rank exists.
pub struct OneSidedSim {
    pub table: OneSidedTable,
    clients: Vec<OsClient>,
    zipf: Zipf,
    /// Round-robin stepping cursor (see [`ServerSim`]).
    cursor: usize,
    pub rng: Rng,
    pub now: u64,
    pub hold_ticks: u64,
    pub lease_ticks: u64,
    /// Give up an acquire after this many ticks of backoff.
    pub deadline_ticks: u64,
    pub stats: OpStats,
}

impl OneSidedSim {
    #[allow(clippy::too_many_arguments)]
    pub fn new<F: Fabric>(
        c: &mut Comm<F>,
        host_rank: RankId,
        client_ranks: &[RankId],
        clients_per_rank: usize,
        nlocks: usize,
        theta: f64,
        lease_ticks: u64,
        seed: u64,
    ) -> ViaResult<Self> {
        let table = OneSidedTable::create(c, host_rank, nlocks)?;
        let mut clients = Vec::new();
        for (ri, &rank) in client_ranks.iter().enumerate() {
            for j in 0..clients_per_rank {
                clients.push(OsClient {
                    rank,
                    id: (ri * clients_per_rank + j) as ClientId,
                    state: OsState::Idle,
                });
            }
        }
        Ok(OneSidedSim {
            table,
            clients,
            zipf: Zipf::new(nlocks, theta),
            cursor: 0,
            rng: Rng::seeded(seed ^ 0x0051_DE00),
            now: 0,
            hold_ticks: 3,
            lease_ticks,
            deadline_ticks: lease_ticks * 8,
            stats: OpStats::default(),
        })
    }

    pub fn kill_rank_clients(&mut self, rank: RankId) {
        for cl in &mut self.clients {
            if cl.rank == rank {
                cl.state = OsState::Dead;
            }
        }
    }

    pub fn live_clients(&self) -> Vec<ClientId> {
        self.clients
            .iter()
            .filter(|c| !matches!(c.state, OsState::Dead))
            .map(|c| c.id)
            .collect()
    }

    pub fn step<F: Fabric>(&mut self, c: &mut Comm<F>, clients_per_tick: usize) -> ViaResult<()> {
        self.now += 1;
        let n = self.clients.len();
        for _ in 0..clients_per_tick.min(n) {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            self.step_client(c, i)?;
        }
        Ok(())
    }

    fn step_client<F: Fabric>(&mut self, c: &mut Comm<F>, i: usize) -> ViaResult<()> {
        let (rank, id, state) = {
            let cl = &self.clients[i];
            (cl.rank, cl.id, cl.state)
        };
        let next = match state {
            OsState::Dead => OsState::Dead,
            OsState::Idle => {
                let key = self.zipf.sample(&mut self.rng) as LockKey;
                self.attempt(c, rank, id, key, self.now, 1)?
            }
            OsState::Backoff {
                key,
                started,
                retry_at,
                backoff,
            } => {
                if self.now < retry_at {
                    state
                } else if self.now - started > self.deadline_ticks {
                    // Typed deadline: abandon the acquire.
                    self.stats.deadline_errors += 1;
                    OsState::Idle
                } else {
                    match self.attempt(c, rank, id, key, started, backoff * 2)? {
                        OsState::Held {
                            key,
                            token,
                            release_at,
                        } => {
                            // attempt() recorded with `started` as base.
                            OsState::Held {
                                key,
                                token,
                                release_at,
                            }
                        }
                        other => other,
                    }
                }
            }
            OsState::Held {
                key,
                token,
                release_at,
            } => {
                if self.now < release_at {
                    state
                } else {
                    match self.table.release(c, rank, id, key, token) {
                        Ok(()) => {
                            self.stats.release_ticks.push(0);
                            OsState::Idle
                        }
                        Err(DlmError::StaleToken { .. }) | Err(DlmError::NotHeld) => {
                            self.stats.stale_rejections += 1;
                            OsState::Idle
                        }
                        Err(DlmError::Via(e)) | Err(DlmError::ManagerUnreachable(e)) => {
                            return Err(e)
                        }
                        Err(_) => OsState::Idle,
                    }
                }
            }
        };
        self.clients[i].state = next;
        Ok(())
    }

    /// One CAS attempt; on failure, enter (or continue) backoff.
    fn attempt<F: Fabric>(
        &mut self,
        c: &mut Comm<F>,
        rank: RankId,
        id: ClientId,
        key: LockKey,
        started: u64,
        backoff: u64,
    ) -> ViaResult<OsState> {
        match self
            .table
            .try_acquire(c, rank, id, key, self.now, self.lease_ticks)
        {
            Ok(TryAcquire::Acquired(g)) => {
                self.stats.record_acquire(id, self.now - started);
                Ok(OsState::Held {
                    key,
                    token: g.token,
                    release_at: self.now + self.hold_ticks,
                })
            }
            Ok(TryAcquire::Busy { .. }) => {
                let b = backoff.max(1).min(self.lease_ticks.max(2));
                Ok(OsState::Backoff {
                    key,
                    started,
                    retry_at: self.now + self.rng.below(b) + 1,
                    backoff: b,
                })
            }
            Err(DlmError::Via(e)) | Err(DlmError::ManagerUnreachable(e)) => Err(e),
            Err(_) => Ok(OsState::Idle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msg::MsgConfig;
    use simmem::KernelConfig;
    use vialock::StrategyKind;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(64, 0.99);
        let mut rng = Rng::seeded(7);
        let mut counts = vec![0u64; 64];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[32] * 4, "hot key not hot: {counts:?}");
        assert!(counts.iter().sum::<u64>() == 10_000);
    }

    #[test]
    fn fairness_index_bounds() {
        let mut s = OpStats::default();
        for c in 0..10 {
            s.per_client.insert(c, 5);
        }
        assert!((s.jain_fairness() - 1.0).abs() < 1e-9);
        s.per_client.clear();
        s.per_client.insert(0, 100);
        for c in 1..10 {
            s.per_client.insert(c, 0);
        }
        assert!((s.jain_fairness() - 0.1).abs() < 1e-9);
    }

    fn small_comm(nodes: usize, ranks: usize) -> Comm {
        Comm::new(
            ranks,
            nodes,
            KernelConfig::medium(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .unwrap()
    }

    #[test]
    fn server_sim_makes_progress_and_stays_consistent() {
        let mut c = small_comm(3, 3);
        let mut sim = ServerSim::new(&mut c, 0, &[1, 2], 8, 16, 0.99, 40, 42).unwrap();
        for _ in 0..600 {
            sim.step(&mut c, 4).unwrap();
        }
        assert!(
            sim.stats.acquire_ticks.len() > 50,
            "too few acquisitions: {}",
            sim.stats.acquire_ticks.len()
        );
        let live = sim.live_clients();
        assert!(sim.manager.orphans(|cl| live.contains(&cl)).is_empty());
        let f = sim.stats.jain_fairness();
        assert!(f > 0.3, "fairness collapsed: {f}");
    }

    #[test]
    fn onesided_sim_makes_progress_and_stays_consistent() {
        let mut c = small_comm(3, 3);
        let mut sim = OneSidedSim::new(&mut c, 0, &[1, 2], 8, 16, 0.99, 40, 42).unwrap();
        for _ in 0..600 {
            sim.step(&mut c, 4).unwrap();
        }
        assert!(
            sim.stats.acquire_ticks.len() > 50,
            "too few acquisitions: {}",
            sim.stats.acquire_ticks.len()
        );
        let live = sim.live_clients();
        let orphans = sim
            .table
            .orphans(&mut c, 0, |cl| live.contains(&cl))
            .unwrap();
        assert!(orphans.is_empty(), "{orphans:?}");
    }
}
