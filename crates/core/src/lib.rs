//! # vialock — reliably locking VIA communication memory
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Seifert & Rehm, *"Proposing a Mechanism for Reliably Locking VIA
//! Communication Memory in Linux"*, CLUSTER 2000): the **registration
//! machinery of a VIA kernel agent**, with pluggable pinning strategies so
//! the deficient approaches the paper analyses can be compared head-to-head
//! with the kiobuf-based mechanism it proposes.
//!
//! ## Strategies ([`strategy`])
//!
//! | Strategy | Models | Reliable? | Nests? | Caveats |
//! |---|---|---|---|---|
//! | [`StrategyKind::RefcountOnly`] | Berkeley-VIA, M-VIA | **no** — pages are swapped out and orphaned under pressure | yes | silently loses DMA |
//! | [`StrategyKind::RawFlags`] | Giganet cLAN driver | yes | no | blindly sets/clears `PG_locked`, clobbering the kernel's I/O lock |
//! | [`StrategyKind::VmaMlock`] | `mlock`-based kernel agents | yes | only with driver-side interval bookkeeping | needs `CAP_IPC_LOCK` juggling; walks/splits VMAs |
//! | [`StrategyKind::KiobufReliable`] | **the paper's proposal** | yes | yes | none of the above |
//!
//! ## The proposed mechanism
//!
//! Registration maps the user range into a **kiobuf** (faulting pages in
//! through the regular VM paths, taking proper page references) and then
//! pins each page through a [`pin::PinTable`]: a per-frame pin count where
//! the *first* pin acquires the page's `PG_locked` bit — waiting for any
//! in-flight I/O — and the *last* unpin releases it. This gives the nesting
//! semantics the VIA specification demands ("memory regions may be
//! registered several times") without ever touching page tables or VMAs.
//!
//! On top sit a [`region::RegionTable`] (handle → pinned frames, the data a
//! NIC's translation-and-protection table is filled from) and an LRU
//! [`cache::RegistrationCache`] that amortises registration cost for
//! zero-copy protocols that register buffers on the fly.
//!
//! ```
//! use simmem::{Kernel, KernelConfig, Capabilities, prot, PAGE_SIZE};
//! use vialock::{MemoryRegistry, StrategyKind};
//!
//! let mut k = Kernel::new(KernelConfig::small());
//! let pid = k.spawn_process(Capabilities::default());
//! let buf = k.mmap_anon(pid, 4 * PAGE_SIZE, prot::READ | prot::WRITE).unwrap();
//!
//! let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
//! let h = reg.register(&mut k, pid, buf, 4 * PAGE_SIZE).unwrap();
//! assert_eq!(reg.frames(h).unwrap().len(), 4);
//! // The same range may be registered again — multiple registration.
//! let h2 = reg.register(&mut k, pid, buf, 4 * PAGE_SIZE).unwrap();
//! reg.deregister(&mut k, h).unwrap();
//! // Pages stay pinned until the last registration is gone.
//! assert!(reg.verify_consistency(&k, h2).unwrap());
//! reg.deregister(&mut k, h2).unwrap();
//! ```

pub mod cache;
pub mod error;
pub mod fault;
pub mod interval;
pub mod lru;
pub mod pin;
pub mod rangelock;
pub mod region;
pub mod registry;
pub mod shard;
mod span;
pub mod strategy;

// The workspace-wide counter-diffing macro: every stats block (`MmStats`,
// `NicStats`, `MsgStats`, fabric counters) derives its `since()` from this.
pub use simmem::impl_since;

pub use cache::{CacheStats, RegistrationCache, SharedRegistrationCache};
pub use error::{RegError, RegResult};
pub use fault::{FaultHandle, FaultPlan, FaultRule, FaultSite};
pub use interval::IntervalCounter;
pub use lru::{CacheReleaseError, CoveringLru};
pub use pin::PinTable;
pub use rangelock::{RangeGuard, RangeLock, RangeLockTable};
pub use region::{MemHandle, Region, RegionTable};
pub use registry::{MemoryRegistry, RegistryStats};
pub use shard::{ShardedRegistry, SharedKernel, SharedPinTable};
pub use strategy::{PinToken, StrategyKind};
