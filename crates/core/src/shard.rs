//! The sharded concurrent registration path.
//!
//! The seed [`MemoryRegistry`](crate::MemoryRegistry) takes `&mut self` and
//! `&mut Kernel`: one registering thread owns the whole kernel agent. The
//! paper's scenario, though, is *many* client processes registering and
//! deregistering communication memory at once, so this module rebuilds the
//! front-end for concurrency without changing its semantics:
//!
//! * **Hash-sharded bookkeeping.** Region tables, mlock interval counters
//!   and stats live in per-shard blocks behind per-shard mutexes; a pid's
//!   regions all land in one shard (`hash(pid) % nshards`), so processes in
//!   different shards never contend on registry state.
//! * **Range-lock arbitration within a pid.** Overlapping registrations of
//!   one address space must serialize (they pin the same frames); disjoint
//!   ones must not. A per-pid [`RangeLock`](crate::rangelock::RangeLock)
//!   (interval-keyed lock list, after *Scalable Range Locks*) admits
//!   disjoint spans concurrently and blocks overlaps until release.
//! * **A shared pin table.** [`SharedPinTable`] keeps the per-frame pin
//!   counts in atomics, so the first-pin-locks / last-unpin-unlocks protocol
//!   runs under a shared kernel borrow.
//! * **Fast/slow pin paths.** Pinning a page that is resident with a
//!   writable PTE needs no page-table mutation — reference count and
//!   `PG_locked` are per-frame atomics — so the hot path runs under a
//!   **read**-locked kernel and scales with threads. Pages that need
//!   faulting, COW breaks or mlock fall back to the exclusive (write-locked)
//!   path, which reuses the seed strategy code verbatim.
//!
//! Lock order (coarse to fine): range lock → kernel `RwLock` → shard mutex.
//! The implementation never holds a shard mutex while acquiring the kernel
//! lock, so the order cannot invert.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

// The sync shim: std re-exports in normal builds; under `--cfg viamodel`
// the model checker explores `SharedPinTable`'s count/rollback protocol
// (DESIGN.md §15).
use check::sync::{AtomicU32, AtomicUsize, Ordering};

use simmem::{page::PageFlags, FrameId, Kernel, Pid, VirtAddr, PAGE_SHIFT, PAGE_SIZE};

use crate::error::{RegError, RegResult};
use crate::interval::IntervalCounter;
use crate::pin::PinTable;
use crate::rangelock::RangeLockTable;
use crate::region::{MemHandle, Region, RegionTable};
use crate::registry::RegistryStats;
use crate::strategy::{npages, pin_region, unpin_region, PinToken, StrategyKind};

/// The kernel behind a reader/writer lock: read for the atomic fast path,
/// write for fault-in / mlock / reclaim.
pub type SharedKernel = RwLock<Kernel>;

/// Shard index lives in the top byte of a [`MemHandle`] so deregistration
/// finds the owning shard without a broadcast.
const SHARD_SHIFT: u32 = 56;
const LOCAL_MASK: u64 = (1 << SHARD_SHIFT) - 1;

/// Default shard count (power of two; max 256 so the index fits the handle's
/// top byte).
pub const DEFAULT_SHARDS: usize = 16;

#[inline]
fn encode(shard: usize, local: MemHandle) -> MemHandle {
    debug_assert!(local.0 <= LOCAL_MASK, "local handle overflow");
    MemHandle(((shard as u64) << SHARD_SHIFT) | local.0)
}

#[inline]
fn decode(handle: MemHandle) -> (usize, MemHandle) {
    (
        (handle.0 >> SHARD_SHIFT) as usize,
        MemHandle(handle.0 & LOCAL_MASK),
    )
}

/// First and last VPN of the page span of `[addr, addr+len)` (`len > 0`).
fn page_span(addr: VirtAddr, len: usize) -> (u64, u64) {
    let first = simmem::page_base(addr) >> PAGE_SHIFT;
    let last = (simmem::page_align_up(addr + len as u64) >> PAGE_SHIFT) - 1;
    (first, last)
}

// ---------------------------------------------------------------------------
// SharedPinTable
// ---------------------------------------------------------------------------

/// The concurrent twin of [`PinTable`]: per-frame pin counts in atomics,
/// mutable through `&self`. The first pin of a frame takes `PG_locked`
/// (atomically, via `try_lock`), the last unpin releases it — the same
/// nesting protocol as the seed table.
///
/// Concurrent pin/unpin of the *same frame* is serialized by construction:
/// a frame backs exactly one pid's page, and overlapping ranges of one pid
/// hold the range lock. The table itself only guarantees that disjoint
/// frames never interfere.
#[derive(Debug)]
pub struct SharedPinTable {
    /// `counts[frame.0]`; sized to the kernel's frame arena at construction
    /// (atomics cannot grow on demand).
    counts: Box<[AtomicU32]>,
    /// Number of distinct frames with a positive count.
    pinned: AtomicUsize,
}

impl SharedPinTable {
    /// A table covering `nframes` physical frames.
    pub fn new(nframes: usize) -> Self {
        SharedPinTable {
            counts: (0..nframes).map(|_| AtomicU32::new(0)).collect(),
            pinned: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn cell(&self, frame: FrameId) -> &AtomicU32 {
        &self.counts[frame.0 as usize]
    }

    /// Pin one frame through a shared kernel borrow. Mirrors
    /// [`PinTable::pin`]: a first pin whose `PG_locked` is already held by a
    /// foreign owner (in-flight I/O) — or that the fault injector fails —
    /// returns [`RegError::WouldBlock`] and leaves no trace.
    pub fn pin(&self, kernel: &Kernel, frame: FrameId) -> RegResult<()> {
        let cell = self.cell(frame);
        if cell.fetch_add(1, Ordering::AcqRel) == 0 {
            if !kernel.try_lock_page(frame) {
                // Foreign holder (kernel I/O): undo and report, exactly the
                // seed's flags-already-set branch.
                cell.fetch_sub(1, Ordering::AcqRel);
                return Err(RegError::WouldBlock);
            }
            if kernel.inject_shared(simmem::inject::PAGE_LOCK) {
                kernel.unlock_page(frame);
                cell.fetch_sub(1, Ordering::AcqRel);
                return Err(RegError::WouldBlock);
            }
            self.pinned.fetch_add(1, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Unpin one frame; the last unpin releases `PG_locked`.
    pub fn unpin(&self, kernel: &Kernel, frame: FrameId) -> RegResult<()> {
        let cell = self.cell(frame);
        let mut cur = cell.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return Err(RegError::PinUnderflow);
            }
            match cell.compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if cur == 1 {
            self.pinned.fetch_sub(1, Ordering::AcqRel);
            kernel.unlock_page(frame);
        }
        Ok(())
    }

    /// Current pin count of a frame (0 if not pinned).
    pub fn count(&self, frame: FrameId) -> u32 {
        self.counts
            .get(frame.0 as usize)
            .map_or(0, |c| c.load(Ordering::Acquire))
    }

    /// Number of distinct pinned frames.
    pub fn pinned_frames(&self) -> usize {
        self.pinned.load(Ordering::Acquire)
    }

    /// Invariant check (quiescent only): census matches the counter and
    /// every pinned frame carries `PG_locked`.
    pub fn check_invariants(&self, kernel: &Kernel) -> Result<(), String> {
        let mut pinned = 0usize;
        for (i, c) in self.counts.iter().enumerate() {
            if c.load(Ordering::Acquire) == 0 {
                continue;
            }
            pinned += 1;
            let f = FrameId(i as u32);
            if !kernel
                .page_descriptor(f)
                .flags()
                .contains(PageFlags::LOCKED)
            {
                return Err(format!("pinned frame {i} lost PG_locked"));
            }
        }
        if pinned != self.pinned_frames() {
            return Err(format!(
                "pinned-frame counter {} != table census {}",
                self.pinned_frames(),
                pinned
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// ShardedRegistry
// ---------------------------------------------------------------------------

/// One shard's bookkeeping: the state the seed registry kept under its
/// single `&mut self`.
#[derive(Debug, Default)]
struct Shard {
    regions: RegionTable,
    /// Per-pid VPN-run lock counts for the mlock strategy (all regions of a
    /// pid live in this shard, so its counter does too).
    mlock_counts: HashMap<Pid, IntervalCounter>,
    /// Lazy-pin ledger for on-demand regions (local handles): one slot per
    /// page, `Some(frame)` iff this shard holds a kernel lazy pin for it.
    ledger: HashMap<MemHandle, Vec<Option<FrameId>>>,
    stats: RegistryStats,
}

/// Retry/fallback accounting gathered outside the shard lock and merged in
/// at the end of each operation.
#[derive(Default)]
struct OpStats {
    pin_retries: u64,
    backoff_ticks: u64,
    blocked: u64,
    fallbacks: u64,
}

/// The concurrent registration front-end: semantics of
/// [`MemoryRegistry`](crate::MemoryRegistry), `&self` entry points.
///
/// Disjoint-range registrations from different processes run fully in
/// parallel (different shards, different range locks, read-locked kernel on
/// the resident fast path); overlapping ranges within one pid serialize
/// only against each other on that pid's range lock.
pub struct ShardedRegistry {
    strategy: StrategyKind,
    shards: Box<[Mutex<Shard>]>,
    pin_table: SharedPinTable,
    range_locks: RangeLockTable,
    /// Optional cap on total pinned pages (models TPT capacity); reserved
    /// with a CAS *before* pinning, mirroring the seed's check-then-pin
    /// order, and rolled back on failure.
    max_pages: Option<usize>,
    total_pages: AtomicUsize,
    retry_limit: u32,
    fallback: bool,
}

impl ShardedRegistry {
    /// A registry using `strategy` over a kernel with `nframes` physical
    /// frames (see [`simmem::MemInfo::total_frames`]), with
    /// [`DEFAULT_SHARDS`] shards.
    pub fn new(strategy: StrategyKind, nframes: usize) -> Self {
        Self::with_shards(strategy, nframes, DEFAULT_SHARDS)
    }

    /// As [`ShardedRegistry::new`] with an explicit shard count (rounded up
    /// to a power of two, capped at 256 so the index fits the handle's top
    /// byte).
    pub fn with_shards(strategy: StrategyKind, nframes: usize, shards: usize) -> Self {
        let n = shards.clamp(1, 256).next_power_of_two().min(256);
        ShardedRegistry {
            strategy,
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            pin_table: SharedPinTable::new(nframes),
            range_locks: RangeLockTable::new(),
            max_pages: None,
            total_pages: AtomicUsize::new(0),
            retry_limit: 0,
            fallback: false,
        }
    }

    /// Cap total pinned pages — the simulated TPT size.
    pub fn with_page_limit(mut self, max_pages: usize) -> Self {
        self.max_pages = Some(max_pages);
        self
    }

    /// Retry a `WouldBlock`ed pin up to `retries` more times (exponential
    /// backoff accounted in [`RegistryStats::backoff_ticks`]).
    pub fn with_retry(mut self, retries: u32) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Enable the kiobuf → mlock graceful-degradation chain.
    pub fn with_fallback(mut self) -> Self {
        self.fallback = true;
        self
    }

    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    #[inline]
    fn shard_of(&self, pid: Pid) -> usize {
        // Fibonacci hashing over the pid; shard count is a power of two.
        (pid.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize
            >> (64 - self.shards.len().trailing_zeros())
    }

    #[inline]
    fn shard(&self, idx: usize) -> std::sync::MutexGuard<'_, Shard> {
        // A poisoned shard only means a panicking thread died mid-update of
        // *stats*; the region table itself is updated in single statements,
        // so continuing with the inner value is safe (and the datapath must
        // not propagate panics).
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    // -- capacity ---------------------------------------------------------

    /// Reserve `npages` against the cap; `Err(LimitExceeded)` if it would
    /// overflow (checked before any pin work, like the seed).
    fn reserve_pages(&self, npages: usize) -> RegResult<()> {
        let Some(max) = self.max_pages else {
            self.total_pages.fetch_add(npages, Ordering::AcqRel);
            return Ok(());
        };
        let mut cur = self.total_pages.load(Ordering::Acquire);
        loop {
            if cur + npages > max {
                return Err(RegError::LimitExceeded);
            }
            match self.total_pages.compare_exchange_weak(
                cur,
                cur + npages,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    fn unreserve_pages(&self, npages: usize) {
        self.total_pages.fetch_sub(npages, Ordering::AcqRel);
    }

    // -- pinning ----------------------------------------------------------

    /// Kiobuf pin, fast path: if every page of the span is resident with a
    /// writable PTE, reference and pin it under the **read**-locked kernel —
    /// no page-table mutation, full parallelism. Returns `None` (nothing
    /// acquired) when any page needs the exclusive slow path.
    fn try_pin_resident(
        &self,
        kernel: &Kernel,
        pid: Pid,
        start: VirtAddr,
        end: VirtAddr,
    ) -> RegResult<Option<Vec<FrameId>>> {
        let mut frames = Vec::with_capacity(((end - start) as usize) / PAGE_SIZE);
        let mut a = start;
        while a < end {
            match kernel.resident_writable_frame(pid, a)? {
                Some(f) => frames.push(f),
                None => return Ok(None),
            }
            a += PAGE_SIZE as u64;
        }
        for (i, &f) in frames.iter().enumerate() {
            kernel.get_page_shared(f);
            if let Err(e) = self.pin_table.pin(kernel, f) {
                // Rollback. The PTEs hold a reference on each frame, so the
                // shared put can never free one here; rollback is
                // best-effort (the primary error is what the caller needs).
                let fresh = kernel.put_page_shared(f);
                debug_assert!(
                    matches!(fresh, Ok(false)),
                    "mapped page freed during rollback"
                );
                for &g in &frames[..i] {
                    let undone = self.pin_table.unpin(kernel, g);
                    debug_assert!(undone.is_ok(), "rollback of fresh pin");
                    let fresh = kernel.put_page_shared(g);
                    debug_assert!(
                        matches!(fresh, Ok(false)),
                        "mapped page freed during rollback"
                    );
                }
                return Err(e);
            }
        }
        Ok(Some(frames))
    }

    /// Kiobuf pin, slow path (write-locked kernel): the seed's
    /// fault+ref+lock batch ([`PinTable::pin_user_range`]) against the
    /// shared pin table.
    fn pin_user_range_excl(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        start: VirtAddr,
        end: VirtAddr,
    ) -> RegResult<Vec<FrameId>> {
        let rollback = |kernel: &mut Kernel, frames: &[FrameId], table: &SharedPinTable| {
            for &g in frames {
                let undone = table.unpin(kernel, g);
                debug_assert!(undone.is_ok(), "rollback of fresh pin");
                kernel.put_user_page(g);
            }
        };
        let mut frames = Vec::with_capacity(((end - start) as usize) / PAGE_SIZE);
        let mut a = start;
        while a < end {
            let f = match kernel.get_user_page(pid, a) {
                Ok(f) => f,
                Err(e) => {
                    rollback(kernel, &frames, &self.pin_table);
                    return Err(e.into());
                }
            };
            if let Err(e) = self.pin_table.pin(kernel, f) {
                kernel.put_user_page(f);
                rollback(kernel, &frames, &self.pin_table);
                return Err(e);
            }
            frames.push(f);
            a += PAGE_SIZE as u64;
        }
        Ok(frames)
    }

    /// One pin attempt with `strategy`, choosing fast or slow path.
    fn pin_once(
        &self,
        kernel: &SharedKernel,
        strategy: StrategyKind,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> RegResult<(Vec<FrameId>, PinToken)> {
        if len == 0 {
            return Err(RegError::InvalidArgument("zero-length region"));
        }
        let start = simmem::page_base(addr);
        let end = simmem::page_align_up(addr + len as u64);
        if strategy == StrategyKind::KiobufReliable {
            {
                let k = read_kernel(kernel);
                if let Some(frames) = self.try_pin_resident(&k, pid, start, end)? {
                    return Ok((frames.clone(), PinToken::Kiobuf { frames }));
                }
            }
            let mut k = write_kernel(kernel);
            let frames = self.pin_user_range_excl(&mut k, pid, start, end)?;
            return Ok((frames.clone(), PinToken::Kiobuf { frames }));
        }
        // The three survey strategies mutate page tables / VMAs — exclusive
        // path, reusing the seed strategy code. The scratch PinTable is
        // untouched by the non-kiobuf arms.
        let mut k = write_kernel(kernel);
        let mut scratch = PinTable::new();
        let out = pin_region(&mut k, &mut scratch, strategy, pid, addr, len);
        debug_assert_eq!(scratch.pinned_frames(), 0, "scratch table must stay empty");
        out
    }

    /// The seed's bounded retry loop around one strategy's pin.
    fn pin_with_retry(
        &self,
        kernel: &SharedKernel,
        ops: &mut OpStats,
        strategy: StrategyKind,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> RegResult<(Vec<FrameId>, PinToken)> {
        let mut attempt = 0u32;
        loop {
            match self.pin_once(kernel, strategy, pid, addr, len) {
                Ok(ok) => return Ok(ok),
                Err(RegError::WouldBlock) if attempt < self.retry_limit => {
                    attempt += 1;
                    ops.pin_retries += 1;
                    ops.backoff_ticks += 1u64 << attempt;
                }
                Err(e) => return Err(e),
            }
        }
    }

    // -- register / deregister -------------------------------------------

    /// Register `[addr, addr + len)` of process `pid`. Disjoint ranges of
    /// different pids (and disjoint ranges of the *same* pid) proceed in
    /// parallel; overlapping ranges of one pid queue on its range lock.
    pub fn register(
        &self,
        kernel: &SharedKernel,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> RegResult<MemHandle> {
        if len == 0 {
            // The seed surfaces this from `pin_region`; no pages means the
            // capacity check cannot fail first, so the order is preserved.
            return Err(RegError::InvalidArgument("zero-length region"));
        }
        let np = npages(addr, len);
        let (first, last) = page_span(addr, len);

        // Overlap arbitration: hold the pid's `[first, last+1)` VPN range
        // for the whole operation.
        let range = self.range_locks.for_pid(pid);
        let _span = range.lock(first, last + 1);

        self.reserve_pages(np)?;
        let mut ops = OpStats::default();
        let result = (|| {
            match self.pin_with_retry(kernel, &mut ops, self.strategy, pid, addr, len) {
                Ok((f, t)) => Ok((f, t, self.strategy)),
                Err(RegError::WouldBlock)
                    if self.fallback && self.strategy == StrategyKind::KiobufReliable =>
                {
                    // Degradation chain, as in the seed: contended page lock
                    // through every retry → pin via mlock instead.
                    ops.blocked += 1;
                    let (f, t) = self.pin_with_retry(
                        kernel,
                        &mut ops,
                        StrategyKind::VmaMlock,
                        pid,
                        addr,
                        len,
                    )?;
                    ops.fallbacks += 1;
                    Ok((f, t, StrategyKind::VmaMlock))
                }
                Err(RegError::WouldBlock) => {
                    ops.blocked += 1;
                    Err(RegError::WouldBlock)
                }
                Err(e) => Err(e),
            }
        })();

        let si = self.shard_of(pid);
        let mut shard = self.shard(si);
        shard.stats.pin_retries += ops.pin_retries;
        shard.stats.backoff_ticks += ops.backoff_ticks;
        shard.stats.blocked += ops.blocked;
        shard.stats.fallbacks += ops.fallbacks;
        let (frames, token, used) = match result {
            Ok(ok) => ok,
            Err(e) => {
                drop(shard);
                self.unreserve_pages(np);
                return Err(e);
            }
        };
        if matches!(token, PinToken::Mlock { .. }) {
            shard
                .mlock_counts
                .entry(pid)
                .or_default()
                .add(first, last + 1);
        }
        shard.stats.registrations += 1;
        shard.stats.pages_pinned += frames.len() as u64;
        let local = shard.regions.insert(pid, addr, len, frames, used, token);
        if used == StrategyKind::OnDemand {
            shard.ledger.insert(local, vec![None; np]);
        }
        Ok(encode(si, local))
    }

    /// Protection-trap entry point for on-demand regions: ensure page
    /// `page_idx` of `handle`'s span is resident and lazily pinned, and
    /// return its frame. Lock order is respected by never holding the shard
    /// mutex across the kernel lock: peek, pin exclusively, publish.
    pub fn pin_on_access(
        &self,
        kernel: &SharedKernel,
        handle: MemHandle,
        page_idx: usize,
    ) -> RegResult<FrameId> {
        let (si, local) = decode(handle);
        if si >= self.shards.len() {
            return Err(RegError::NoSuchHandle);
        }
        let (pid, page_base) = {
            let shard = self.shard(si);
            let slot = shard
                .ledger
                .get(&local)
                .ok_or(RegError::InvalidArgument("not an on-demand region"))?
                .get(page_idx)
                .copied()
                .ok_or(RegError::InvalidArgument("page beyond region"))?;
            if let Some(frame) = slot {
                return Ok(frame);
            }
            let r = shard.regions.get(local)?;
            (r.pid, r.page_base)
        };
        let frame = {
            let mut k = write_kernel(kernel);
            if k.inject(crate::fault::FaultSite::LazyPin.code()) {
                drop(k);
                self.shard(si).stats.blocked += 1;
                return Err(RegError::WouldBlock);
            }
            match k.lazy_pin_page(pid, page_base + (page_idx * PAGE_SIZE) as u64) {
                Ok(f) => f,
                Err(e) => {
                    drop(k);
                    let e = RegError::from(e);
                    if e == RegError::WouldBlock {
                        self.shard(si).stats.blocked += 1;
                    }
                    return Err(e);
                }
            }
        };
        // Publish; a racing pin of the same page may have won while the
        // kernel lock was free — keep the published pin, undo ours. A
        // vanished ledger entry means the region was torn down meanwhile.
        let mut shard = self.shard(si);
        let published = match shard.ledger.get_mut(&local) {
            Some(entry) => match entry[page_idx] {
                None => {
                    entry[page_idx] = Some(frame);
                    Some(None)
                }
                Some(winner) => Some(Some(winner)),
            },
            None => None,
        };
        match published {
            Some(None) => {
                shard.stats.pages_pinned += 1;
                Ok(frame)
            }
            Some(Some(winner)) => {
                drop(shard);
                write_kernel(kernel).lazy_unpin_frame(frame)?;
                Ok(winner)
            }
            None => {
                drop(shard);
                write_kernel(kernel).lazy_unpin_frame(frame)?;
                Err(RegError::NoSuchHandle)
            }
        }
    }

    /// Drain the kernel's lazy-invalidation queue and null every ledger
    /// slot holding a dissolved frame; returns the drained frames for TPT
    /// invalidation. See `MemoryRegistry::drain_lazy_invalidations`.
    pub fn drain_lazy_invalidations(&self, kernel: &SharedKernel) -> Vec<FrameId> {
        let frames = write_kernel(kernel).take_lazy_invalidations();
        if frames.is_empty() {
            return frames;
        }
        // Frame reuse (ABA): a drained frame may since have been
        // reallocated and lazily re-pinned for another page; nulling that
        // fresh slot would leak its kernel pin. Judge staleness against
        // the kernel — but the lock order forbids holding a shard mutex
        // while taking the kernel lock, so: collect candidates per shard,
        // judge under the kernel read lock alone, then null the stale
        // ones re-checking each slot still holds the same frame.
        let mut candidates: Vec<(usize, MemHandle, usize, FrameId, Pid, VirtAddr)> = Vec::new();
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            for (&local, entry) in shard.ledger.iter() {
                let Ok((pid, page_base)) = shard.regions.get(local).map(|r| (r.pid, r.page_base))
                else {
                    continue;
                };
                for (page, slot) in entry.iter().enumerate() {
                    let Some(f) = *slot else { continue };
                    if frames.contains(&f) {
                        let addr = page_base + (page * PAGE_SIZE) as u64;
                        candidates.push((i, local, page, f, pid, addr));
                    }
                }
            }
        }
        let stale: Vec<(usize, MemHandle, usize, FrameId)> = {
            let k = read_kernel(kernel);
            candidates
                .into_iter()
                .filter(|&(_, _, _, f, pid, addr)| {
                    !(k.lazy_pin_count(f) > 0 && k.frame_of(pid, addr).ok().flatten() == Some(f))
                })
                .map(|(i, local, page, f, _, _)| (i, local, page, f))
                .collect()
        };
        for (i, local, page, f) in stale {
            let mut shard = self.shard(i);
            let Some(entry) = shard.ledger.get_mut(&local) else {
                continue;
            };
            if entry.get(page).copied().flatten() == Some(f) {
                entry[page] = None;
                shard.stats.pages_unpinned += 1;
            }
        }
        frames
    }

    /// Deregister a handle; pages are unpinned when the last registration
    /// covering them goes away.
    pub fn deregister(&self, kernel: &SharedKernel, handle: MemHandle) -> RegResult<()> {
        let (si, local) = decode(handle);
        if si >= self.shards.len() {
            return Err(RegError::NoSuchHandle);
        }
        // Peek the span first (shard lock only), then take the range lock —
        // never the other way around.
        let (pid, addr, len) = {
            let shard = self.shard(si);
            let r = shard.regions.get(local)?;
            (r.pid, r.user_addr, r.len)
        };
        let (first, last) = page_span(addr, len);
        let range = self.range_locks.for_pid(pid);
        let _span = range.lock(first, last + 1);

        // Re-fetch under the shard lock: a racing deregister of the same
        // handle between peek and range-lock loses here with NoSuchHandle,
        // exactly like a seed double-deregistration.
        let (region, zero_runs, lazy_entry) = {
            let mut shard = self.shard(si);
            let region = shard.regions.remove(local)?;
            let lazy_entry = shard.ledger.remove(&local);
            let zero_runs = match &region.token {
                Some(PinToken::Mlock { pid, .. }) => {
                    let pid = *pid;
                    let counter = shard
                        .mlock_counts
                        .get_mut(&pid)
                        .ok_or(RegError::PinUnderflow)?;
                    let runs = counter
                        .sub(first, last + 1)
                        .map_err(|_| RegError::PinUnderflow)?;
                    if counter.is_empty() {
                        shard.mlock_counts.remove(&pid);
                    }
                    Some(runs)
                }
                _ => None,
            };
            (region, zero_runs, lazy_entry)
        };
        let mut region = region;
        let Some(token) = region.token.take() else {
            // Region records carry their token until exactly this point; a
            // missing one means the record was already torn down.
            return Err(RegError::NoSuchHandle);
        };
        let np = region.npages();
        // Eager regions unpin one page per captured frame; on-demand
        // regions unpin whatever the ledger still holds (drained below).
        let mut unpinned = region.frames.len() as u64;
        if let Some(entry) = lazy_entry {
            let mut k = write_kernel(kernel);
            for frame in entry.into_iter().flatten() {
                // A stale slot (dissolution queued but not yet drained)
                // shows a zero lazy count and is skipped; the queued
                // invalidation still reconciles any TPT copy.
                if k.lazy_pin_count(frame) > 0 {
                    k.lazy_unpin_frame(frame)?;
                }
                unpinned += 1;
            }
        }

        match token {
            PinToken::Kiobuf { frames } => {
                // Shared-path teardown: unpin + drop references under the
                // read-locked kernel; frames whose count reaches zero (the
                // process already unmapped them) are reaped afterwards under
                // the write lock.
                let mut reap = Vec::new();
                {
                    let k = read_kernel(kernel);
                    for &f in &frames {
                        self.pin_table.unpin(&k, f)?;
                        if k.put_page_shared(f)? {
                            reap.push(f);
                        }
                    }
                }
                if !reap.is_empty() {
                    let mut k = write_kernel(kernel);
                    for f in reap {
                        k.reap_frame(f);
                    }
                }
            }
            PinToken::Mlock { .. } => {
                // Interval bookkeeping already updated above; munlock only
                // the zero runs (`Some` exactly when the token is Mlock —
                // an empty default means nothing reached zero).
                let mut k = write_kernel(kernel);
                for (s, e) in zero_runs.unwrap_or_default() {
                    let had_cap = k.capabilities(pid)?.ipc_lock;
                    if !had_cap {
                        k.cap_raise_ipc_lock(pid)?;
                    }
                    let res =
                        k.do_mlock(pid, s << PAGE_SHIFT, ((e - s) as usize) * PAGE_SIZE, false);
                    if !had_cap {
                        k.cap_lower_ipc_lock(pid)?;
                    }
                    res?;
                }
            }
            other => {
                let mut k = write_kernel(kernel);
                let mut scratch = PinTable::new();
                unpin_region(&mut k, &mut scratch, other, true)?;
            }
        }

        let mut shard = self.shard(si);
        shard.stats.deregistrations += 1;
        shard.stats.pages_unpinned += unpinned;
        drop(shard);
        self.unreserve_pages(np);
        Ok(())
    }

    // -- queries ----------------------------------------------------------

    /// The frames recorded at registration time (what a TPT holds). Cloned
    /// out of the shard — the registry cannot hand out references across its
    /// shard lock.
    pub fn frames(&self, handle: MemHandle) -> RegResult<Vec<FrameId>> {
        self.with_region(handle, |r| r.frames.clone())
    }

    /// Run `f` against the region record under its shard lock.
    pub fn with_region<T>(&self, handle: MemHandle, f: impl FnOnce(&Region) -> T) -> RegResult<T> {
        let (si, local) = decode(handle);
        if si >= self.shards.len() {
            return Err(RegError::NoSuchHandle);
        }
        let shard = self.shard(si);
        Ok(f(shard.regions.get(local)?))
    }

    /// TPT-style translation: byte offset within the registration →
    /// (frame, in-page offset). On-demand regions answer from the ledger;
    /// a non-resident page reports `WouldBlock` — resolve it with
    /// [`ShardedRegistry::pin_on_access`].
    pub fn translate(&self, handle: MemHandle, offset: usize) -> RegResult<(FrameId, usize)> {
        let (si, local) = decode(handle);
        if si >= self.shards.len() {
            return Err(RegError::NoSuchHandle);
        }
        let shard = self.shard(si);
        let r = shard.regions.get(local)?;
        if let Some(entry) = shard.ledger.get(&local) {
            if offset >= r.len {
                return Err(RegError::InvalidArgument("offset beyond region"));
            }
            let abs = r.user_addr + offset as u64;
            let page_index = ((abs - r.page_base) / PAGE_SIZE as u64) as usize;
            let in_page = (abs & (PAGE_SIZE as u64 - 1)) as usize;
            return entry[page_index]
                .map(|f| (f, in_page))
                .ok_or(RegError::WouldBlock);
        }
        r.translate(offset)
    }

    /// Locktest step 6: do the page tables still map the frames recorded at
    /// registration time?
    pub fn verify_consistency(&self, kernel: &SharedKernel, handle: MemHandle) -> RegResult<bool> {
        let (si, local) = decode(handle);
        if si >= self.shards.len() {
            return Err(RegError::NoSuchHandle);
        }
        let (pid, base, npages, view) = {
            let shard = self.shard(si);
            let r = shard.regions.get(local)?;
            let view = match shard.ledger.get(&local) {
                // On-demand: only resident pages promise stability.
                Some(entry) => entry.clone(),
                None => r.frames.iter().map(|&f| Some(f)).collect(),
            };
            (r.pid, r.page_base, r.npages(), view)
        };
        let k = read_kernel(kernel);
        let current = k.frames_of_range(pid, base, npages * PAGE_SIZE)?;
        Ok(view
            .iter()
            .zip(current.iter())
            .all(|(reg, cur)| reg.is_none() || *reg == *cur))
    }

    /// A live registration of `pid` covering `[addr, addr+len)` — one-shard
    /// lookup via the pid's interval index.
    pub fn find_covering(&self, pid: Pid, addr: VirtAddr, len: usize) -> Option<MemHandle> {
        let si = self.shard_of(pid);
        let shard = self.shard(si);
        let start = simmem::page_base(addr);
        let end = simmem::page_align_up(addr + len as u64);
        shard
            .regions
            .find_covering(pid, start, (end - start) as usize)
            .map(|local| encode(si, local))
    }

    /// Driver-side mlock count at one VPN — oracle hook for property tests.
    #[doc(hidden)]
    pub fn mlock_count_at(&self, pid: Pid, vpn: u64) -> u32 {
        let shard = self.shard(self.shard_of(pid));
        shard.mlock_counts.get(&pid).map_or(0, |c| c.count_at(vpn))
    }

    /// Number of live registrations across all shards.
    pub fn live_regions(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard(i).regions.len())
            .sum()
    }

    /// Distinct frames currently pinned through the shared pin table.
    pub fn pinned_frames(&self) -> usize {
        self.pin_table.pinned_frames()
    }

    /// Aggregated stats: per-shard blocks merged with
    /// [`RegistryStats::merge`].
    pub fn snapshot(&self) -> RegistryStats {
        let mut out = RegistryStats::default();
        for i in 0..self.shards.len() {
            out.merge(&self.shard(i).stats);
        }
        out
    }

    /// Contended range-lock acquisitions across all pids (bench diagnostics).
    /// Pin count of one frame (oracle hook for tests).
    #[doc(hidden)]
    pub fn pin_count(&self, frame: FrameId) -> u32 {
        self.pin_table.count(frame)
    }

    pub fn range_contended(&self) -> u64 {
        self.range_locks.contended_total()
    }

    /// Cross-check pin-table invariants against the union of all shards'
    /// kiobuf regions. Quiescent-state check (tests, chaos harness rounds).
    pub fn check_invariants(&self, kernel: &Kernel) -> Result<(), String> {
        self.pin_table.check_invariants(kernel)?;
        let mut expect: HashMap<FrameId, u32> = HashMap::new();
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            for r in shard.regions.iter() {
                if !matches!(r.token, Some(PinToken::Kiobuf { .. })) {
                    continue;
                }
                for &f in &r.frames {
                    *expect.entry(f).or_insert(0) += 1;
                }
            }
        }
        for (&f, &c) in &expect {
            if self.pin_table.count(f) != c {
                return Err(format!(
                    "frame {} pin count {} != expected {}",
                    f.0,
                    self.pin_table.count(f),
                    c
                ));
            }
        }
        if expect.len() != self.pin_table.pinned_frames() {
            return Err("pin table tracks frames not owned by any region".into());
        }
        // Lazy-ledger census across shards, tolerating dissolutions whose
        // invalidation has not been drained yet (see the seed registry).
        let mut lazy_expect: HashMap<FrameId, u32> = HashMap::new();
        for i in 0..self.shards.len() {
            let shard = self.shard(i);
            for entry in shard.ledger.values() {
                for f in entry.iter().flatten() {
                    *lazy_expect.entry(*f).or_insert(0) += 1;
                }
            }
        }
        let pending = kernel.pending_lazy_invalidations();
        for (&f, &c) in &lazy_expect {
            let k = kernel.lazy_pin_count(f);
            if k != c && !pending.contains(&f) {
                return Err(format!(
                    "frame {} has {} ledger pins but kernel holds {}",
                    f.0, c, k
                ));
            }
        }
        for (f, n) in kernel.lazy_pinned_frames() {
            if lazy_expect.get(&f).copied().unwrap_or(0) != n && !pending.contains(&f) {
                return Err(format!(
                    "kernel lazily pins frame {} ({}×) beyond the ledger",
                    f.0, n
                ));
            }
        }
        Ok(())
    }

    /// Tear down every region of `pid` (process exit), then drop its range
    /// lock. Needs the write-locked kernel only as deep as each token does.
    pub fn exit_process(&self, kernel: &SharedKernel, pid: Pid) -> RegResult<()> {
        let si = self.shard_of(pid);
        loop {
            let handle = self
                .shard(si)
                .regions
                .iter()
                .find(|r| r.pid == pid)
                .map(|r| encode(si, r.handle));
            match handle {
                Some(h) => self.deregister(kernel, h)?,
                None => break,
            }
        }
        self.range_locks.forget_pid(pid);
        Ok(())
    }
}

/// Borrow the kernel write guard's target — helper for callers that need a
/// few exclusive operations (setup, teardown) around the concurrent phase.
/// A poisoned lock yields the inner kernel: the simulated kernel's state is
/// updated transactionally per call, so a panicking holder leaves it valid.
pub fn write_kernel(kernel: &SharedKernel) -> RwLockWriteGuard<'_, Kernel> {
    kernel.write().unwrap_or_else(PoisonError::into_inner)
}

/// Shared counterpart of [`write_kernel`] (same poison policy).
pub fn read_kernel(kernel: &SharedKernel) -> RwLockReadGuard<'_, Kernel> {
    kernel.read().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, Capabilities, KernelConfig};

    fn setup(strategy: StrategyKind) -> (SharedKernel, ShardedRegistry, Pid, VirtAddr) {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, 16 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let nframes = k.meminfo().total_frames;
        (
            RwLock::new(k),
            ShardedRegistry::new(strategy, nframes),
            pid,
            a,
        )
    }

    #[test]
    fn roundtrip_all_strategies() {
        for strategy in StrategyKind::ALL {
            let (kernel, reg, pid, a) = setup(strategy);
            let h = reg.register(&kernel, pid, a, 4 * PAGE_SIZE).unwrap();
            if strategy.pins_eagerly() {
                assert_eq!(reg.frames(h).unwrap().len(), 4, "{strategy:?}");
            } else {
                assert!(reg.frames(h).unwrap().is_empty(), "nothing pinned yet");
            }
            assert!(reg.verify_consistency(&kernel, h).unwrap());
            reg.deregister(&kernel, h).unwrap();
            assert_eq!(reg.live_regions(), 0);
            assert!(reg.frames(h).is_err());
            reg.check_invariants(&kernel.read().unwrap()).unwrap();
        }
    }

    #[test]
    fn fast_path_used_when_resident() {
        let (kernel, reg, pid, a) = setup(StrategyKind::KiobufReliable);
        write_kernel(&kernel)
            .touch_pages(pid, a, 4 * PAGE_SIZE, true)
            .unwrap();
        let faults0 = kernel.read().unwrap().mm_stats().minor_faults;
        let h = reg.register(&kernel, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(
            kernel.read().unwrap().mm_stats().minor_faults,
            faults0,
            "resident fast path must not fault"
        );
        reg.deregister(&kernel, h).unwrap();
    }

    #[test]
    fn nesting_and_overlap_counts() {
        let (kernel, reg, pid, a) = setup(StrategyKind::KiobufReliable);
        let h1 = reg.register(&kernel, pid, a, 8 * PAGE_SIZE).unwrap();
        let h2 = reg
            .register(&kernel, pid, a + 4 * PAGE_SIZE as u64, 8 * PAGE_SIZE)
            .unwrap();
        reg.check_invariants(&kernel.read().unwrap()).unwrap();
        let f = reg.frames(h1).unwrap()[4];
        assert_eq!(reg.pin_table.count(f), 2, "overlap pages pinned twice");
        reg.deregister(&kernel, h1).unwrap();
        assert!(
            kernel
                .read()
                .unwrap()
                .page_descriptor(f)
                .flags()
                .contains(PageFlags::LOCKED),
            "still pinned by h2"
        );
        reg.deregister(&kernel, h2).unwrap();
        assert_eq!(reg.pinned_frames(), 0);
    }

    #[test]
    fn page_limit_enforced() {
        let (kernel, _, pid, a) = setup(StrategyKind::KiobufReliable);
        let nframes = kernel.read().unwrap().meminfo().total_frames;
        let reg = ShardedRegistry::new(StrategyKind::KiobufReliable, nframes).with_page_limit(6);
        let h = reg.register(&kernel, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(
            reg.register(&kernel, pid, a, 4 * PAGE_SIZE),
            Err(RegError::LimitExceeded)
        );
        reg.deregister(&kernel, h).unwrap();
        assert!(reg.register(&kernel, pid, a, 4 * PAGE_SIZE).is_ok());
    }

    #[test]
    fn mlock_interval_bookkeeping_nests() {
        let (kernel, reg, pid, a) = setup(StrategyKind::VmaMlock);
        let h1 = reg.register(&kernel, pid, a, 4 * PAGE_SIZE).unwrap();
        let h2 = reg.register(&kernel, pid, a, 4 * PAGE_SIZE).unwrap();
        reg.deregister(&kernel, h1).unwrap();
        assert_eq!(
            kernel.read().unwrap().locked_bytes(pid).unwrap(),
            4 * PAGE_SIZE as u64,
            "interval bookkeeping keeps the range locked"
        );
        reg.deregister(&kernel, h2).unwrap();
        assert_eq!(kernel.read().unwrap().locked_bytes(pid).unwrap(), 0);
    }

    #[test]
    fn handles_encode_shard() {
        let (kernel, reg, pid, a) = setup(StrategyKind::KiobufReliable);
        let h = reg.register(&kernel, pid, a, PAGE_SIZE).unwrap();
        let (si, local) = decode(h);
        assert_eq!(si, reg.shard_of(pid));
        assert_eq!(encode(si, local), h);
        assert_eq!(reg.find_covering(pid, a, PAGE_SIZE), Some(h));
        reg.deregister(&kernel, h).unwrap();
        assert_eq!(reg.find_covering(pid, a, PAGE_SIZE), None);
    }

    #[test]
    fn ondemand_sharded_pin_on_access_and_drain() {
        let (kernel, reg, pid, a) = setup(StrategyKind::OnDemand);
        let h = reg.register(&kernel, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(reg.translate(h, 0), Err(RegError::WouldBlock));
        let f = reg.pin_on_access(&kernel, h, 0).unwrap();
        assert_eq!(reg.pin_on_access(&kernel, h, 0).unwrap(), f, "ledger hit");
        assert_eq!(reg.translate(h, 5).unwrap(), (f, 5));
        reg.check_invariants(&kernel.read().unwrap()).unwrap();
        // Kernel-side dissolution reaches the ledger through the drain.
        write_kernel(&kernel).test_dissolve_lazy_pins(f);
        assert_eq!(reg.drain_lazy_invalidations(&kernel), vec![f]);
        assert_eq!(reg.translate(h, 0), Err(RegError::WouldBlock));
        reg.check_invariants(&kernel.read().unwrap()).unwrap();
        let f2 = reg.pin_on_access(&kernel, h, 0).unwrap();
        reg.deregister(&kernel, h).unwrap();
        assert_eq!(kernel.read().unwrap().lazy_pin_count(f2), 0);
        assert_eq!(reg.live_regions(), 0);
        reg.check_invariants(&kernel.read().unwrap()).unwrap();
    }

    #[test]
    fn exit_process_reclaims_everything() {
        let (kernel, reg, pid, a) = setup(StrategyKind::KiobufReliable);
        for i in 0..3 {
            reg.register(&kernel, pid, a + (i * 2 * PAGE_SIZE) as u64, PAGE_SIZE)
                .unwrap();
        }
        assert_eq!(reg.live_regions(), 3);
        reg.exit_process(&kernel, pid).unwrap();
        assert_eq!(reg.live_regions(), 0);
        assert_eq!(reg.pinned_frames(), 0);
        reg.check_invariants(&kernel.read().unwrap()).unwrap();
    }
}
