//! The pinning strategies the paper compares.
//!
//! Each strategy answers the paper's section-2 question — *how are the
//! pages of a registered region kept in physical memory?* — in the way one
//! of the surveyed VIA implementations does, plus the paper's own proposal.

use simmem::{page::PageFlags, FrameId, Kernel, Pid, VirtAddr, PAGE_SIZE};

use crate::error::RegResult;
use crate::pin::PinTable;

/// Which pinning strategy a registry uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Berkeley-VIA / M-VIA: increment `page->count` per page and hope. The
    /// paper's locktest shows the pages are still swapped out and orphaned.
    RefcountOnly,
    /// Giganet cLAN style: refcount **plus** blindly setting `PG_locked`
    /// (and clearing it on deregistration regardless of who holds it). Keeps
    /// pages resident, but races with the kernel's own use of the bit —
    /// "a very risky and unclean solution".
    RawFlags,
    /// VMA-based `do_mlock` with the capability dance; reliable but
    /// non-nesting, so the kernel agent must bookkeep intervals itself.
    VmaMlock,
    /// **The paper's proposal**: kiobuf mapping + pin-table-managed page
    /// locks. Reliable, nestable, page-table-free.
    KiobufReliable,
    /// The inversion from *Using Memory-Protection to Simplify Zero-copy
    /// Operations*: register the span **without pinning anything**. Present
    /// pages are write-protected (protection-trap state), the NIC pins
    /// lazily on first access through the fault handler, and the page
    /// stealer may dissolve cold pins under pressure, invalidating the TPT
    /// through the generation mechanism.
    OnDemand,
}

impl StrategyKind {
    /// All strategies, in the order the paper discusses them (the lazy
    /// inversion, which postdates the paper, comes last).
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::RefcountOnly,
        StrategyKind::RawFlags,
        StrategyKind::VmaMlock,
        StrategyKind::KiobufReliable,
        StrategyKind::OnDemand,
    ];

    /// Short label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::RefcountOnly => "refcount-only",
            StrategyKind::RawFlags => "raw-flags",
            StrategyKind::VmaMlock => "vma-mlock",
            StrategyKind::KiobufReliable => "kiobuf",
            StrategyKind::OnDemand => "on-demand",
        }
    }

    /// Does this strategy pin eagerly at registration time? `false` only
    /// for [`StrategyKind::OnDemand`], whose frames materialise lazily.
    pub fn pins_eagerly(self) -> bool {
        !matches!(self, StrategyKind::OnDemand)
    }
}

/// Strategy-private state carried by a pinned region, consumed on
/// deregistration.
#[derive(Debug)]
pub enum PinToken {
    /// Refcount-only: remember the frames whose counts we bumped.
    Refcount { frames: Vec<FrameId> },
    /// Raw flags: frames whose counts we bumped and whose `PG_locked` we
    /// set.
    RawFlags { frames: Vec<FrameId> },
    /// mlock: the locked interval; unlocking happens when the *driver-side*
    /// interval count drops to zero (see `registry`).
    Mlock {
        pid: Pid,
        start: VirtAddr,
        len: usize,
    },
    /// kiobuf: page references plus pin-table locks (released through the
    /// shared [`PinTable`]).
    Kiobuf { frames: Vec<FrameId> },
    /// On-demand: nothing was pinned at registration. The frames pinned so
    /// far live in the registry's lazy-pin ledger; deregistration drains
    /// that ledger through `Kernel::lazy_unpin_frame`.
    OnDemand,
}

/// Register a range with the given strategy; returns the pinned frames and
/// the token needed to undo the pin.
pub fn pin_region(
    kernel: &mut Kernel,
    pin_table: &mut PinTable,
    strategy: StrategyKind,
    pid: Pid,
    addr: VirtAddr,
    len: usize,
) -> RegResult<(Vec<FrameId>, PinToken)> {
    if len == 0 {
        return Err(crate::RegError::InvalidArgument("zero-length region"));
    }
    let start = simmem::page_base(addr);
    let end = simmem::page_align_up(addr + len as u64);
    match strategy {
        StrategyKind::RefcountOnly => {
            // Batched `get_user_pages`: fault in, bump the reference count.
            // This is exactly the Berkeley-VIA / M-VIA approach — and
            // exactly as unreliable; the kernel rolls partial failures back.
            let frames = kernel.get_user_pages(pid, start, (end - start) as usize)?;
            Ok((frames.clone(), PinToken::Refcount { frames }))
        }
        StrategyKind::RawFlags => {
            // Per page: fault, grab a reference, blindly set `PG_locked` —
            // no check whether the kernel already holds the bit, which is
            // precisely the unclean part the paper criticises.
            let mut frames = Vec::new();
            let mut a = start;
            while a < end {
                match kernel.get_user_page(pid, a) {
                    Ok(f) => {
                        kernel.raw_set_page_flag(f, PageFlags::LOCKED);
                        frames.push(f);
                    }
                    Err(e) => {
                        for &g in &frames {
                            kernel.raw_clear_page_flag(g, PageFlags::LOCKED);
                            kernel.put_user_page(g);
                        }
                        return Err(e.into());
                    }
                }
                a += PAGE_SIZE as u64;
            }
            Ok((frames.clone(), PinToken::RawFlags { frames }))
        }
        StrategyKind::VmaMlock => {
            // The capability dance: grant CAP_IPC_LOCK, do_mlock, reclaim.
            let had_cap = kernel.capabilities(pid)?.ipc_lock;
            if !had_cap {
                kernel.cap_raise_ipc_lock(pid)?;
            }
            let res = kernel.do_mlock(pid, addr, len, true);
            if !had_cap {
                kernel.cap_lower_ipc_lock(pid)?;
            }
            res?;
            // Still must read the physical addresses for the TPT — which
            // means walking page tables after all. `make_pages_present`
            // faults read-only (possibly onto the shared zero page), so the
            // batched walk first breaks COW with write intent where the VMA
            // allows it.
            let frames = kernel.fault_in_range(pid, start, (end - start) as usize)?;
            Ok((
                frames,
                PinToken::Mlock {
                    pid,
                    start: addr,
                    len,
                },
            ))
        }
        StrategyKind::KiobufReliable => {
            // The proposal: fault each page in and take its page lock
            // **before** the next fault can trigger reclaim — the
            // map_user_kiobuf + lock_kiobuf pair collapsed page-wise. (On
            // 2.4 the gap between the two calls is benign because the swap
            // cache re-unifies an evicted-but-referenced page; our
            // substrate has the paper's 2.2 eviction semantics, where the
            // gap would orphan pages, so the lock is taken eagerly.) The
            // fused fault+ref+lock batch, with full rollback, lives in the
            // pin table.
            let frames = pin_table.pin_user_range(kernel, pid, start, (end - start) as usize)?;
            Ok((frames.clone(), PinToken::Kiobuf { frames }))
        }
        StrategyKind::OnDemand => {
            // Register without pinning: validate the span's VMA coverage
            // (a registration of unmapped memory must fail now, not at
            // first NIC access), write-protect whatever is already present
            // so CPU writes trap through `do_wp_page`, and return **no**
            // frames — the TPT starts non-resident and fills on fault.
            let mut a = start;
            while a < end {
                kernel.vma_writable(pid, a)?;
                a += PAGE_SIZE as u64;
            }
            kernel.write_protect_range(pid, start, (end - start) as usize)?;
            Ok((Vec::new(), PinToken::OnDemand))
        }
    }
}

/// Undo a [`pin_region`]. For `Mlock`, `unlock_interval` tells whether the
/// driver-side interval bookkeeping says this was the last registration of
/// the range (remember: `munlock` does not nest).
pub fn unpin_region(
    kernel: &mut Kernel,
    pin_table: &mut PinTable,
    token: PinToken,
    unlock_interval: bool,
) -> RegResult<()> {
    match token {
        PinToken::Refcount { frames } => {
            for f in frames {
                kernel.raw_put_page(f)?;
            }
            Ok(())
        }
        PinToken::RawFlags { frames } => {
            for f in frames {
                // Cleared regardless of other holders — the hazard the
                // failure-injection tests expose.
                kernel.raw_clear_page_flag(f, PageFlags::LOCKED);
                kernel.raw_put_page(f)?;
            }
            Ok(())
        }
        PinToken::Mlock { pid, start, len } => {
            if unlock_interval {
                let had_cap = kernel.capabilities(pid)?.ipc_lock;
                if !had_cap {
                    kernel.cap_raise_ipc_lock(pid)?;
                }
                let res = kernel.do_mlock(pid, start, len, false);
                if !had_cap {
                    kernel.cap_lower_ipc_lock(pid)?;
                }
                res?;
            }
            Ok(())
        }
        PinToken::Kiobuf { frames } => pin_table.unpin_user_range(kernel, &frames),
        // Lazy pins are not the token's to release: the registry drains its
        // ledger through `Kernel::lazy_unpin_frame` before consuming the
        // token (see `registry::deregister`).
        PinToken::OnDemand => Ok(()),
    }
}

/// Pages spanned by `[addr, addr + len)`.
pub fn npages(addr: VirtAddr, len: usize) -> usize {
    let start = simmem::page_base(addr);
    let end = simmem::page_align_up(addr + len as u64);
    ((end - start) as usize) / PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, Capabilities, KernelConfig};

    fn setup() -> (Kernel, Pid, VirtAddr) {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, 8 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        (k, pid, a)
    }

    #[test]
    fn all_strategies_pin_and_unpin_cleanly() {
        for strategy in StrategyKind::ALL {
            let (mut k, pid, a) = setup();
            let mut pt = PinTable::new();
            let free0 = k.free_frames();
            let (frames, token) =
                pin_region(&mut k, &mut pt, strategy, pid, a, 4 * PAGE_SIZE).unwrap();
            if strategy.pins_eagerly() {
                assert_eq!(frames.len(), 4, "{strategy:?}");
            } else {
                assert!(frames.is_empty(), "{strategy:?} must not pin eagerly");
            }
            unpin_region(&mut k, &mut pt, token, true).unwrap();
            // After unpin + munmap everything must be released (the pin
            // faulted 4 pages in; munmap returns them).
            k.munmap(pid, a, 8 * PAGE_SIZE).unwrap();
            assert_eq!(k.free_frames(), free0, "{strategy:?} leaked frames");
            assert_eq!(pt.pinned_frames(), 0);
        }
    }

    #[test]
    fn refcount_strategy_bumps_counts() {
        let (mut k, pid, a) = setup();
        let mut pt = PinTable::new();
        let (frames, token) = pin_region(
            &mut k,
            &mut pt,
            StrategyKind::RefcountOnly,
            pid,
            a,
            PAGE_SIZE,
        )
        .unwrap();
        assert_eq!(k.page_descriptor(frames[0]).count(), 2);
        assert!(!k
            .page_descriptor(frames[0])
            .flags()
            .contains(PageFlags::LOCKED));
        unpin_region(&mut k, &mut pt, token, true).unwrap();
        assert_eq!(k.page_descriptor(frames[0]).count(), 1);
    }

    #[test]
    fn mlock_strategy_locks_vma_without_leaking_cap() {
        let (mut k, pid, a) = setup();
        let mut pt = PinTable::new();
        assert!(!k.capabilities(pid).unwrap().ipc_lock);
        let (_, token) = pin_region(
            &mut k,
            &mut pt,
            StrategyKind::VmaMlock,
            pid,
            a,
            2 * PAGE_SIZE,
        )
        .unwrap();
        assert!(!k.capabilities(pid).unwrap().ipc_lock, "cap reclaimed");
        assert_eq!(k.locked_bytes(pid).unwrap(), 2 * PAGE_SIZE as u64);
        unpin_region(&mut k, &mut pt, token, true).unwrap();
        assert_eq!(k.locked_bytes(pid).unwrap(), 0);
    }

    #[test]
    fn kiobuf_strategy_locks_pages_nested() {
        let (mut k, pid, a) = setup();
        let mut pt = PinTable::new();
        let (f1, t1) = pin_region(
            &mut k,
            &mut pt,
            StrategyKind::KiobufReliable,
            pid,
            a,
            2 * PAGE_SIZE,
        )
        .unwrap();
        let (f2, t2) = pin_region(
            &mut k,
            &mut pt,
            StrategyKind::KiobufReliable,
            pid,
            a,
            2 * PAGE_SIZE,
        )
        .unwrap();
        assert_eq!(f1, f2, "same physical pages");
        assert_eq!(pt.count(f1[0]), 2);
        unpin_region(&mut k, &mut pt, t1, false).unwrap();
        assert!(
            k.page_descriptor(f1[0]).flags().contains(PageFlags::LOCKED),
            "still locked after first deregistration"
        );
        unpin_region(&mut k, &mut pt, t2, false).unwrap();
        assert!(!k.page_descriptor(f1[0]).flags().contains(PageFlags::LOCKED));
    }

    #[test]
    fn raw_flags_clobbers_foreign_io_lock() {
        // Failure injection: the Giganet-style strategy deregisters while
        // the kernel holds the page's I/O lock — and silently clears it.
        let (mut k, pid, a) = setup();
        let mut pt = PinTable::new();
        let (frames, token) =
            pin_region(&mut k, &mut pt, StrategyKind::RawFlags, pid, a, PAGE_SIZE).unwrap();
        // Kernel starts I/O on the page: bit already set by the strategy,
        // kernel would block in reality; here it stacks on the same bit.
        k.begin_page_io(frames[0]);
        unpin_region(&mut k, &mut pt, token, true).unwrap();
        assert!(
            !k.end_page_io(frames[0]),
            "deregistration cleared the I/O lock out from under the kernel"
        );
    }

    #[test]
    fn kiobuf_respects_foreign_io_lock() {
        let (mut k, pid, a) = setup();
        let mut pt = PinTable::new();
        k.touch_pages(pid, a, PAGE_SIZE, true).unwrap();
        let f = k.frame_of(pid, a).unwrap().unwrap();
        k.begin_page_io(f);
        let r = pin_region(
            &mut k,
            &mut pt,
            StrategyKind::KiobufReliable,
            pid,
            a,
            PAGE_SIZE,
        );
        assert_eq!(r.unwrap_err(), crate::RegError::WouldBlock);
        assert!(k.end_page_io(f), "I/O lock untouched");
        assert_eq!(k.kiobuf_count(), 0, "failed registration left no kiobuf");
        // Retry succeeds.
        let (_, token) = pin_region(
            &mut k,
            &mut pt,
            StrategyKind::KiobufReliable,
            pid,
            a,
            PAGE_SIZE,
        )
        .unwrap();
        unpin_region(&mut k, &mut pt, token, false).unwrap();
    }

    #[test]
    fn npages_math() {
        assert_eq!(npages(0, PAGE_SIZE), 1);
        assert_eq!(npages(10, PAGE_SIZE), 2, "unaligned spans two pages");
        assert_eq!(npages(0, 1), 1);
    }
}
