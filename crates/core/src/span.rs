//! Per-pid interval index over page spans: the structure behind
//! `find_covering` lookups in both the region table and the covering-aware
//! registration caches.
//!
//! Spans are byte ranges `[base, end)` with page-aligned `base`. Lookup
//! asks "which indexed span covers `[start, end)`?". The index keeps, per
//! pid, a `BTreeMap` keyed by span base; each base holds the (few) spans
//! starting there plus the maximum end among them. A covering span must
//! start at or before `start` and must start within the largest span
//! length ever indexed for the pid (`max_span` high-water mark), so lookup
//! walks `by_base.range(lo..=start).rev()` — a window bounded by the
//! largest region size, not by the number of live spans. For the common
//! workloads (bounded region sizes, arbitrary region counts) this is
//! O(log n + window) instead of the old O(n) scan over every live region.

use std::collections::{BTreeMap, HashMap};

use simmem::{Pid, VirtAddr};

/// Spans starting at one base address.
#[derive(Debug)]
struct BaseEntry<K> {
    /// `(key, end)` for each span starting here; regions sharing an exact
    /// span are all kept (multiple registration).
    spans: Vec<(K, VirtAddr)>,
    /// Largest `end` among `spans` — lets lookup skip a base without
    /// touching the per-span vector.
    max_end: VirtAddr,
}

#[derive(Debug)]
struct PidIndex<K> {
    by_base: BTreeMap<VirtAddr, BaseEntry<K>>,
    /// High-water mark of span length (bytes) ever indexed for this pid;
    /// bounds the backward scan window. Never shrinks — correctness only
    /// needs an upper bound.
    max_span: u64,
}

impl<K> Default for PidIndex<K> {
    fn default() -> Self {
        PidIndex {
            by_base: BTreeMap::new(),
            max_span: 0,
        }
    }
}

/// Interval index mapping `(pid, [base, end))` spans to keys of type `K`.
#[derive(Debug)]
pub(crate) struct SpanIndex<K> {
    by_pid: HashMap<Pid, PidIndex<K>>,
}

impl<K> Default for SpanIndex<K> {
    fn default() -> Self {
        SpanIndex {
            by_pid: HashMap::new(),
        }
    }
}

impl<K: Copy + Eq> SpanIndex<K> {
    pub fn new() -> Self {
        SpanIndex {
            by_pid: HashMap::new(),
        }
    }

    /// Index `[base, end)` under `key`. Duplicate spans are allowed.
    pub fn insert(&mut self, pid: Pid, base: VirtAddr, end: VirtAddr, key: K) {
        debug_assert!(base < end, "empty span");
        let pi = self.by_pid.entry(pid).or_default();
        pi.max_span = pi.max_span.max(end - base);
        let e = pi.by_base.entry(base).or_insert_with(|| BaseEntry {
            spans: Vec::new(),
            max_end: 0,
        });
        e.spans.push((key, end));
        e.max_end = e.max_end.max(end);
    }

    /// Remove the span previously inserted under `key`. Returns whether the
    /// span was present.
    pub fn remove(&mut self, pid: Pid, base: VirtAddr, key: K) -> bool {
        let Some(pi) = self.by_pid.get_mut(&pid) else {
            return false;
        };
        let Some(e) = pi.by_base.get_mut(&base) else {
            return false;
        };
        let Some(i) = e.spans.iter().position(|&(k, _)| k == key) else {
            return false;
        };
        e.spans.swap_remove(i);
        if e.spans.is_empty() {
            pi.by_base.remove(&base);
            if pi.by_base.is_empty() {
                self.by_pid.remove(&pid);
            }
        } else {
            e.max_end = e.spans.iter().map(|&(_, end)| end).max().unwrap();
        }
        true
    }

    /// A key whose span covers `[start, end)`, if any.
    pub fn find_covering(&self, pid: Pid, start: VirtAddr, end: VirtAddr) -> Option<K> {
        self.find_covering_probed(pid, start, end).0
    }

    /// [`SpanIndex::find_covering`] plus the number of base entries probed —
    /// the evidence hook for tests asserting the lookup does not degrade to
    /// a scan over all live spans.
    pub fn find_covering_probed(
        &self,
        pid: Pid,
        start: VirtAddr,
        end: VirtAddr,
    ) -> (Option<K>, usize) {
        let mut probes = 0usize;
        let Some(pi) = self.by_pid.get(&pid) else {
            return (None, probes);
        };
        // A covering span satisfies base <= start and base + len >= end,
        // hence base >= end - max_span.
        let lo = end.saturating_sub(pi.max_span);
        if lo > start {
            return (None, probes);
        }
        for (_, e) in pi.by_base.range(lo..=start).rev() {
            probes += 1;
            if e.max_end >= end {
                let key = e
                    .spans
                    .iter()
                    .find(|&&(_, span_end)| span_end >= end)
                    .map(|&(k, _)| k)
                    .expect("max_end promised a covering span");
                return (Some(key), probes);
            }
        }
        (None, probes)
    }

    /// Number of indexed spans (all pids).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.by_pid
            .values()
            .flat_map(|pi| pi.by_base.values())
            .map(|e| e.spans.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Pid = Pid(7);

    #[test]
    fn covering_basics() {
        let mut idx = SpanIndex::new();
        idx.insert(P, 0x1000, 0x5000, 1u32);
        assert_eq!(idx.find_covering(P, 0x1000, 0x5000), Some(1));
        assert_eq!(idx.find_covering(P, 0x2000, 0x3000), Some(1));
        assert_eq!(idx.find_covering(P, 0x0000, 0x2000), None, "starts before");
        assert_eq!(idx.find_covering(P, 0x4000, 0x6000), None, "ends after");
        assert_eq!(idx.find_covering(Pid(8), 0x2000, 0x3000), None);
    }

    #[test]
    fn duplicates_and_removal() {
        let mut idx = SpanIndex::new();
        idx.insert(P, 0x1000, 0x3000, 1u32);
        idx.insert(P, 0x1000, 0x3000, 2u32);
        idx.insert(P, 0x1000, 0x8000, 3u32);
        assert!(idx.remove(P, 0x1000, 3));
        // The long span is gone; short duplicates still answer short asks.
        assert_eq!(idx.find_covering(P, 0x1000, 0x8000), None);
        assert!(idx.find_covering(P, 0x1000, 0x3000).is_some());
        assert!(idx.remove(P, 0x1000, 1));
        assert!(idx.remove(P, 0x1000, 2));
        assert!(!idx.remove(P, 0x1000, 2), "double remove reports absence");
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn lookup_window_is_bounded_by_span_size_not_count() {
        let mut idx = SpanIndex::new();
        // Many 1-page spans far apart, all equal length.
        for i in 0..10_000u64 {
            idx.insert(P, i * 0x1000, i * 0x1000 + 0x1000, i as u32);
        }
        let (hit, probes) = idx.find_covering_probed(P, 5_000 * 0x1000, 5_000 * 0x1000 + 0x1000);
        assert_eq!(hit, Some(5_000));
        assert!(probes <= 2, "probed {probes} bases for a point lookup");
        let (miss, probes) =
            idx.find_covering_probed(P, 5_000 * 0x1000 + 0x800, 5_001 * 0x1000 + 0x800);
        assert_eq!(miss, None);
        assert!(probes <= 3);
    }
}
