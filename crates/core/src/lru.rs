//! The generic covering-aware LRU used by both registration caches
//! ([`crate::cache::RegistrationCache`] at the kernel-agent level and the
//! msg crate's `NodeRegCache` at the NIC-handle level).
//!
//! Three structural properties replace the seed's per-cache ad-hoc maps:
//!
//! * **Covering hits** — a request for a sub-range of an already-cached
//!   (already-pinned!) span is a hit on that span, via the same
//!   [`SpanIndex`] the region table uses, instead of a full miss that
//!   re-pins the pages and refills the TPT.
//! * **O(log n) eviction** — idle entries sit in a stamp-ordered
//!   `BTreeMap`, so the LRU victim is the first key, not an O(n)
//!   `min_by_key` scan over every entry.
//! * **O(1) release** — a handle → key reverse map replaces the O(n)
//!   `iter().find` on every release.
//!
//! The cache tracks spans and use counts only; the caller owns the actual
//! register/deregister side effects (kernel agent trap, TPT fill), keeping
//! this type free of kernel/NIC dependencies.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use simmem::{Pid, VirtAddr, PAGE_SIZE};

use crate::span::SpanIndex;

/// Cache performance counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-span hits.
    pub hits: u64,
    /// Hits served by a cached span strictly larger than the request.
    pub covering_hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when no lookups happened. Covering hits are
    /// hits — the request was served without a registration.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.covering_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.covering_hits) as f64 / total as f64
        }
    }
}

/// Why a release was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheReleaseError {
    /// The handle is not cached here.
    UnknownHandle,
    /// The entry's use count is already zero: release without a matching
    /// acquire (the double-release bug the seed only `debug_assert`ed).
    Underflow,
}

/// Key identifying a cached registration: same process, same page span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SpanKey {
    pid: Pid,
    page_base: VirtAddr,
    npages: usize,
}

impl SpanKey {
    fn of(pid: Pid, addr: VirtAddr, len: usize) -> Self {
        SpanKey {
            pid,
            page_base: simmem::page_base(addr),
            npages: crate::strategy::npages(addr, len),
        }
    }

    fn end(&self) -> VirtAddr {
        self.page_base + (self.npages * PAGE_SIZE) as u64
    }
}

struct Entry<H> {
    handle: H,
    /// Outstanding acquisitions; only zero-use entries may be evicted.
    users: u32,
    /// LRU stamp: larger = more recently used. Unique across entries (the
    /// clock ticks once per lookup and an entry absorbs at most one tick),
    /// so it doubles as the idle-queue key.
    stamp: u64,
    npages: usize,
}

/// Covering-aware LRU over spans, generic in the handle type (kernel-agent
/// `MemHandle`, NIC `MemId`, ...).
pub struct CoveringLru<H> {
    entries: HashMap<SpanKey, Entry<H>>,
    by_handle: HashMap<H, SpanKey>,
    /// stamp → key for entries with `users == 0`, oldest first.
    idle: BTreeMap<u64, SpanKey>,
    index: SpanIndex<SpanKey>,
    capacity_pages: usize,
    cached_pages: usize,
    clock: u64,
    stats: CacheStats,
}

impl<H: Copy + Eq + Hash> CoveringLru<H> {
    /// Cache with a page budget: idle entries beyond it are evicted.
    pub fn new(capacity_pages: usize) -> Self {
        CoveringLru {
            entries: HashMap::new(),
            by_handle: HashMap::new(),
            idle: BTreeMap::new(),
            index: SpanIndex::new(),
            capacity_pages,
            cached_pages: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Look up `[addr, addr+len)` for `pid`: an exact-span or covering-span
    /// hit bumps the entry's use count and returns its handle; a miss
    /// returns `None` and the caller registers the full page span, then
    /// calls [`CoveringLru::admit`]. Stats are counted here for all three
    /// outcomes.
    pub fn acquire(&mut self, pid: Pid, addr: VirtAddr, len: usize) -> Option<H> {
        let key = SpanKey::of(pid, addr, len);
        self.clock += 1;
        if self.entries.contains_key(&key) {
            self.stats.hits += 1;
            return Some(self.touch(key));
        }
        if let Some(ckey) = self.index.find_covering(pid, key.page_base, key.end()) {
            self.stats.covering_hits += 1;
            return Some(self.touch(ckey));
        }
        self.stats.misses += 1;
        None
    }

    /// Mark `key`'s entry used now and return its handle.
    fn touch(&mut self, key: SpanKey) -> H {
        let e = self.entries.get_mut(&key).expect("caller checked presence");
        if e.users == 0 {
            self.idle.remove(&e.stamp);
        }
        e.users += 1;
        e.stamp = self.clock;
        e.handle
    }

    /// Record the registration a miss produced. The caller must have
    /// registered the full page span of `[addr, addr+len)` (so future
    /// sub-range requests hit). The entry starts with one user.
    pub fn admit(&mut self, pid: Pid, addr: VirtAddr, len: usize, handle: H) {
        let key = SpanKey::of(pid, addr, len);
        assert!(
            !self.entries.contains_key(&key),
            "admit of an already-cached span; acquire first"
        );
        self.entries.insert(
            key,
            Entry {
                handle,
                users: 1,
                stamp: self.clock,
                npages: key.npages,
            },
        );
        self.by_handle.insert(handle, key);
        self.index.insert(pid, key.page_base, key.end(), key);
        self.cached_pages += key.npages;
    }

    /// Release one acquisition of `handle`. The registration stays cached;
    /// when the last user leaves, the entry joins the idle (evictable) set.
    pub fn release(&mut self, handle: H) -> Result<(), CacheReleaseError> {
        let key = *self
            .by_handle
            .get(&handle)
            .ok_or(CacheReleaseError::UnknownHandle)?;
        let e = self.entries.get_mut(&key).expect("reverse map in sync");
        if e.users == 0 {
            return Err(CacheReleaseError::Underflow);
        }
        e.users -= 1;
        if e.users == 0 {
            self.idle.insert(e.stamp, key);
        }
        Ok(())
    }

    /// Idle LRU handles to evict until the cache fits its page budget.
    /// Entries are removed from the cache here; the caller deregisters the
    /// returned handles.
    pub fn evict_over_budget(&mut self) -> Vec<H> {
        let mut victims = Vec::new();
        while self.cached_pages > self.capacity_pages {
            let Some((&stamp, &key)) = self.idle.iter().next() else {
                break; // everything in use: over budget but stuck
            };
            self.idle.remove(&stamp);
            victims.push(self.remove_entry(key));
        }
        victims
    }

    /// Remove and return every idle entry's handle (flush / low-memory
    /// callback); in-use entries stay.
    pub fn drain_idle(&mut self) -> Vec<H> {
        let idle = std::mem::take(&mut self.idle);
        idle.into_values()
            .map(|key| self.remove_entry(key))
            .collect()
    }

    fn remove_entry(&mut self, key: SpanKey) -> H {
        let e = self.entries.remove(&key).expect("idle set in sync");
        self.by_handle.remove(&e.handle);
        self.index.remove(key.pid, key.page_base, key);
        self.cached_pages -= e.npages;
        self.stats.evictions += 1;
        e.handle
    }

    /// Total pages held by cached registrations (used + idle) — a running
    /// counter, not a scan.
    pub fn cached_pages(&self) -> usize {
        self.cached_pages
    }

    /// Number of cached registrations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Pid = Pid(1);
    const PG: u64 = PAGE_SIZE as u64;

    #[test]
    fn exact_then_covering_then_miss() {
        let mut c: CoveringLru<u32> = CoveringLru::new(64);
        assert_eq!(c.acquire(P, 8 * PG, 8 * PAGE_SIZE), None);
        c.admit(P, 8 * PG, 8 * PAGE_SIZE, 1);
        // Exact.
        assert_eq!(c.acquire(P, 8 * PG, 8 * PAGE_SIZE), Some(1));
        // Sub-span → covering hit on the same handle.
        assert_eq!(c.acquire(P, 9 * PG, 3 * PAGE_SIZE), Some(1));
        // Overhang → miss.
        assert_eq!(c.acquire(P, 12 * PG, 8 * PAGE_SIZE), None);
        let s = c.stats();
        assert_eq!((s.hits, s.covering_hits, s.misses), (1, 1, 2));
        // Three acquisitions succeeded → three releases.
        for _ in 0..3 {
            c.release(1).unwrap();
        }
        assert_eq!(c.release(1), Err(CacheReleaseError::Underflow));
        assert_eq!(c.release(99), Err(CacheReleaseError::UnknownHandle));
    }

    #[test]
    fn eviction_is_lru_and_skips_in_use() {
        let mut c: CoveringLru<u32> = CoveringLru::new(8);
        for (i, h) in [(0u64, 10u32), (1, 11), (2, 12)] {
            assert_eq!(c.acquire(P, i * 4 * PG, 4 * PAGE_SIZE), None);
            c.admit(P, i * 4 * PG, 4 * PAGE_SIZE, h);
        }
        // Only 10 and 12 released; 11 stays in use.
        c.release(10).unwrap();
        c.release(12).unwrap();
        assert_eq!(c.cached_pages(), 12);
        // Victim must be 10 (oldest idle), leaving 8 pages.
        assert_eq!(c.evict_over_budget(), vec![10]);
        assert_eq!(c.cached_pages(), 8);
        // Covering lookups no longer see the evicted span.
        assert_eq!(c.acquire(P, 0, PAGE_SIZE), None);
        c.release(11).unwrap();
    }

    #[test]
    fn drain_idle_leaves_users() {
        let mut c: CoveringLru<u32> = CoveringLru::new(64);
        c.acquire(P, 0, PAGE_SIZE);
        c.admit(P, 0, PAGE_SIZE, 1);
        c.acquire(P, 4 * PG, PAGE_SIZE);
        c.admit(P, 4 * PG, PAGE_SIZE, 2);
        c.release(2).unwrap();
        assert_eq!(c.drain_idle(), vec![2]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.cached_pages(), 1);
        c.release(1).unwrap();
    }

    #[test]
    fn reacquire_after_idle_restores_eviction_order() {
        let mut c: CoveringLru<u32> = CoveringLru::new(2);
        c.acquire(P, 0, PAGE_SIZE);
        c.admit(P, 0, PAGE_SIZE, 1);
        c.acquire(P, 4 * PG, PAGE_SIZE);
        c.admit(P, 4 * PG, PAGE_SIZE, 2);
        c.release(1).unwrap();
        c.release(2).unwrap();
        // Touch 1 again: 2 becomes the LRU victim.
        assert_eq!(c.acquire(P, 0, PAGE_SIZE), Some(1));
        c.release(1).unwrap();
        c.acquire(P, 8 * PG, PAGE_SIZE);
        c.admit(P, 8 * PG, PAGE_SIZE, 3);
        c.release(3).unwrap();
        assert_eq!(c.evict_over_budget(), vec![2]);
    }
}
