//! The memory registry: the registration front-end of the VIA kernel agent.
//!
//! `register` / `deregister` are what `VipRegisterMem` / `VipDeregisterMem`
//! land on after the trap into the kernel agent. The registry drives the
//! configured [`StrategyKind`], owns the shared [`PinTable`], and — for the
//! mlock strategy — keeps the **driver-side interval bookkeeping** the paper
//! says is unavoidable because `munlock` does not nest: per-pid
//! [`IntervalCounter`]s over VPN runs, with `munlock` issued only over
//! contiguous runs whose count dropped to zero.

use std::collections::HashMap;

use simmem::{FrameId, Kernel, Pid, VirtAddr, PAGE_SHIFT, PAGE_SIZE};

use crate::error::{RegError, RegResult};
use crate::interval::IntervalCounter;
use crate::pin::PinTable;
use crate::region::{MemHandle, Region, RegionTable};
use crate::strategy::{pin_region, unpin_region, PinToken, StrategyKind};

/// Registration statistics, reported by the experiment harness. Read them
/// through [`MemoryRegistry::snapshot`] (or `ShardedRegistry::snapshot`,
/// which aggregates per-shard blocks with [`RegistryStats::merge`]) rather
/// than raw fields, so concurrent readers always see a coherent block.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    pub registrations: u64,
    pub deregistrations: u64,
    pub pages_pinned: u64,
    pub pages_unpinned: u64,
    /// Registrations that failed with `WouldBlock` (foreign I/O lock).
    pub blocked: u64,
    /// Bounded in-registry retries after a `WouldBlock` (see
    /// [`MemoryRegistry::with_retry`]).
    pub pin_retries: u64,
    /// Simulated backoff time accumulated by those retries (exponential:
    /// attempt *i* waits 2^i ticks on the page-wait queue).
    pub backoff_ticks: u64,
    /// Registrations rescued by the kiobuf → mlock degradation chain.
    pub fallbacks: u64,
    /// Minor faults observed by the backing kernel. Zero in a plain
    /// [`MemoryRegistry::snapshot`]; filled by `snapshot_with`, which joins
    /// the kernel's `MmStats` into the block so per-strategy fault behaviour
    /// lands in bench JSON without a second counter plumbing path.
    pub minor_faults: u64,
    /// Major (swap-in) faults observed by the backing kernel.
    pub major_faults: u64,
    /// Protection-trap pins taken on the lazy (on-demand) path.
    pub protection_faults: u64,
    /// Lazy pins re-taken after an unpin (pressure steal or COW break).
    pub repins: u64,
    /// Cold on-demand frames dissolved by the page stealer.
    pub pressure_unpins: u64,
    /// Lazy pins dissolved because a COW break moved the mapping.
    pub cow_invalidations: u64,
}

impl RegistryStats {
    /// Accumulate `other` into `self` — the per-shard aggregation step.
    pub fn merge(&mut self, other: &RegistryStats) {
        self.registrations += other.registrations;
        self.deregistrations += other.deregistrations;
        self.pages_pinned += other.pages_pinned;
        self.pages_unpinned += other.pages_unpinned;
        self.blocked += other.blocked;
        self.pin_retries += other.pin_retries;
        self.backoff_ticks += other.backoff_ticks;
        self.fallbacks += other.fallbacks;
        self.minor_faults += other.minor_faults;
        self.major_faults += other.major_faults;
        self.protection_faults += other.protection_faults;
        self.repins += other.repins;
        self.pressure_unpins += other.pressure_unpins;
        self.cow_invalidations += other.cow_invalidations;
    }
}

/// The kernel agent's registration front-end.
pub struct MemoryRegistry {
    strategy: StrategyKind,
    regions: RegionTable,
    pin_table: PinTable,
    /// Per-pid VPN-run lock counts for the mlock strategy's interval
    /// bookkeeping: O(runs) per register/deregister instead of O(pages).
    mlock_counts: HashMap<Pid, IntervalCounter>,
    /// Optional cap on total pinned pages (models TPT capacity).
    max_pages: Option<usize>,
    /// Extra pin attempts after a `WouldBlock` before giving up (0 = report
    /// the first `WouldBlock` to the caller, the historical behaviour).
    retry_limit: u32,
    /// Degrade kiobuf registrations to the mlock strategy when the page
    /// lock stays contended through every retry.
    fallback: bool,
    /// Lazy-pin ledger for on-demand regions: one slot per page of the
    /// span, `Some(frame)` iff this registry holds a kernel lazy pin for
    /// that page. Eager regions never appear here. This is what keeps
    /// [`RegistryStats`] and [`MemoryRegistry::check_invariants`] exact
    /// when pages pin and unpin after registration.
    ledger: HashMap<MemHandle, Vec<Option<FrameId>>>,
    stats: RegistryStats,
}

impl MemoryRegistry {
    /// A registry using `strategy` with unlimited capacity, no retries and
    /// no degradation chain.
    pub fn new(strategy: StrategyKind) -> Self {
        MemoryRegistry {
            strategy,
            regions: RegionTable::new(),
            pin_table: PinTable::new(),
            mlock_counts: HashMap::new(),
            max_pages: None,
            retry_limit: 0,
            fallback: false,
            ledger: HashMap::new(),
            stats: RegistryStats::default(),
        }
    }

    /// Cap total pinned pages — the simulated TPT size.
    pub fn with_page_limit(mut self, max_pages: usize) -> Self {
        self.max_pages = Some(max_pages);
        self
    }

    /// Retry a `WouldBlock`ed pin up to `retries` more times, modelling the
    /// bounded page-wait-queue sleep (exponential backoff is accounted in
    /// [`RegistryStats::backoff_ticks`]).
    pub fn with_retry(mut self, retries: u32) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Enable the graceful-degradation chain: a kiobuf registration whose
    /// page lock stays contended through every retry falls back to the
    /// mlock strategy instead of failing (the VIA spec lets the kernel
    /// agent pick any pinning mechanism per region).
    pub fn with_fallback(mut self) -> Self {
        self.fallback = true;
        self
    }

    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// Consistent stats snapshot — the only supported way to read
    /// [`RegistryStats`].
    pub fn snapshot(&self) -> RegistryStats {
        self.stats
    }

    /// [`MemoryRegistry::snapshot`] joined with the kernel's fault and
    /// repin counters, so one block reports both what the registry did and
    /// what it cost the VM (per-strategy fault behaviour in bench JSON).
    pub fn snapshot_with(&self, kernel: &Kernel) -> RegistryStats {
        let mm = kernel.mm_stats();
        let mut s = self.stats;
        s.minor_faults = mm.minor_faults;
        s.major_faults = mm.major_faults;
        s.protection_faults = mm.protection_faults;
        s.repins = mm.repins;
        s.pressure_unpins = mm.pressure_unpins;
        s.cow_invalidations = mm.cow_invalidations;
        s
    }

    /// One strategy attempt with the bounded retry loop around the pin.
    fn pin_with_retry(
        &mut self,
        kernel: &mut Kernel,
        strategy: StrategyKind,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> RegResult<(Vec<FrameId>, PinToken)> {
        let mut attempt = 0u32;
        loop {
            match pin_region(kernel, &mut self.pin_table, strategy, pid, addr, len) {
                Ok(ok) => return Ok(ok),
                Err(RegError::WouldBlock) if attempt < self.retry_limit => {
                    attempt += 1;
                    self.stats.pin_retries += 1;
                    self.stats.backoff_ticks += 1u64 << attempt;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Register `[addr, addr + len)` of process `pid`. Returns a handle; the
    /// same range may be registered any number of times.
    pub fn register(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> RegResult<MemHandle> {
        let npages = crate::strategy::npages(addr, len);
        if let Some(max) = self.max_pages {
            if self.regions.total_pages() + npages > max {
                return Err(RegError::LimitExceeded);
            }
        }
        let (frames, token, used) = match self.pin_with_retry(kernel, self.strategy, pid, addr, len)
        {
            Ok((f, t)) => (f, t, self.strategy),
            Err(RegError::WouldBlock)
                if self.fallback && self.strategy == StrategyKind::KiobufReliable =>
            {
                // Degradation chain: the page lock stayed contended
                // through every retry — pin via mlock instead. The
                // region records the strategy actually used, and the
                // token drives teardown, so mixed-strategy tables are
                // fine.
                self.stats.blocked += 1;
                let (f, t) = self.pin_with_retry(kernel, StrategyKind::VmaMlock, pid, addr, len)?;
                self.stats.fallbacks += 1;
                (f, t, StrategyKind::VmaMlock)
            }
            Err(RegError::WouldBlock) => {
                self.stats.blocked += 1;
                return Err(RegError::WouldBlock);
            }
            Err(e) => return Err(e),
        };
        if matches!(token, PinToken::Mlock { .. }) {
            let (first, last) = page_span(addr, len);
            self.mlock_counts
                .entry(pid)
                .or_default()
                .add(first, last + 1);
        }
        self.stats.registrations += 1;
        self.stats.pages_pinned += frames.len() as u64;
        let handle = self.regions.insert(pid, addr, len, frames, used, token);
        if used == StrategyKind::OnDemand {
            // Lazy span: nothing resident yet; pages pin on first access.
            self.ledger.insert(handle, vec![None; npages]);
        }
        Ok(handle)
    }

    /// Protection-trap entry point for on-demand regions: ensure page
    /// `page_idx` of `handle`'s span is resident and lazily pinned, and
    /// return its frame. Idempotent per page — a resident page is a ledger
    /// hit and touches no kernel state.
    pub fn pin_on_access(
        &mut self,
        kernel: &mut Kernel,
        handle: MemHandle,
        page_idx: usize,
    ) -> RegResult<FrameId> {
        let (pid, page_base, npages) = {
            let r = self.regions.get(handle)?;
            (r.pid, r.page_base, r.npages())
        };
        let slot = self
            .ledger
            .get(&handle)
            .ok_or(RegError::InvalidArgument("not an on-demand region"))?
            .get(page_idx)
            .copied()
            .ok_or(RegError::InvalidArgument("page beyond region"))?;
        if let Some(frame) = slot {
            return Ok(frame);
        }
        debug_assert!(page_idx < npages);
        if kernel.inject(crate::fault::FaultSite::LazyPin.code()) {
            self.stats.blocked += 1;
            return Err(RegError::WouldBlock);
        }
        let addr = page_base + (page_idx * PAGE_SIZE) as u64;
        let frame = match kernel.lazy_pin_page(pid, addr) {
            Ok(f) => f,
            Err(e) => {
                let e = RegError::from(e);
                if e == RegError::WouldBlock {
                    self.stats.blocked += 1;
                }
                return Err(e);
            }
        };
        self.ledger.get_mut(&handle).expect("checked above")[page_idx] = Some(frame);
        self.stats.pages_pinned += 1;
        Ok(frame)
    }

    /// Drain the kernel's lazy-invalidation queue and null every ledger
    /// slot that pointed at a dissolved frame. Returns the drained frames
    /// so the caller can invalidate its TPT entries (and bump generations)
    /// for exactly those frames. Must run before translating or pinning —
    /// the kernel cannot call upward into the NIC, so this pull is the
    /// unpin → TPT coherence edge.
    pub fn drain_lazy_invalidations(&mut self, kernel: &mut Kernel) -> Vec<FrameId> {
        let frames = kernel.take_lazy_invalidations();
        if frames.is_empty() {
            return frames;
        }
        // Frame reuse (ABA): between the dissolve that queued a frame and
        // this drain, the freed frame may have been reallocated and lazily
        // re-pinned — possibly for a different page of the same region.
        // Nulling that fresh slot would leak its kernel pin (the next
        // pin_on_access would double-pin). A slot is stale only if the
        // kernel no longer backs it: the pin was dissolved or the mapping
        // moved off the frame.
        let handles: Vec<MemHandle> = self.ledger.keys().copied().collect();
        for handle in handles {
            let Ok((pid, page_base)) = self.regions.get(handle).map(|r| (r.pid, r.page_base))
            else {
                continue;
            };
            let entry = self.ledger.get_mut(&handle).expect("ledger key");
            for (page, slot) in entry.iter_mut().enumerate() {
                let Some(f) = *slot else { continue };
                if !frames.contains(&f) {
                    continue;
                }
                let addr = page_base + (page * PAGE_SIZE) as u64;
                let live = kernel.lazy_pin_count(f) > 0
                    && kernel.frame_of(pid, addr).ok().flatten() == Some(f);
                if !live {
                    *slot = None;
                    self.stats.pages_unpinned += 1;
                }
            }
        }
        frames
    }

    /// Per-page residency of a region as a TPT would hold it: eager
    /// regions are fully resident; on-demand regions report their ledger,
    /// with `None` for pages that must fault-and-repin on access.
    pub fn tpt_frames(&self, handle: MemHandle) -> RegResult<Vec<Option<FrameId>>> {
        if let Some(entry) = self.ledger.get(&handle) {
            return Ok(entry.clone());
        }
        Ok(self
            .regions
            .get(handle)?
            .frames
            .iter()
            .map(|&f| Some(f))
            .collect())
    }

    /// Deregister a handle; the pages are unpinned when the last
    /// registration covering them goes away.
    pub fn deregister(&mut self, kernel: &mut Kernel, handle: MemHandle) -> RegResult<()> {
        let mut region = self.regions.remove(handle)?;
        let token = region.token.take().expect("token taken only here");
        let npages = region.frames.len();

        // On-demand teardown: release whatever the ledger still holds. A
        // slot may be stale if the kernel dissolved the pin (pressure or
        // COW) and the invalidation has not been drained yet — those show
        // a zero lazy count and are skipped; the queued invalidation still
        // reconciles any TPT copy.
        if let Some(entry) = self.ledger.remove(&handle) {
            for frame in entry.into_iter().flatten() {
                if kernel.lazy_pin_count(frame) > 0 {
                    kernel.lazy_unpin_frame(frame)?;
                }
                self.stats.pages_unpinned += 1;
            }
        }

        // Teardown is driven by the *token*, not the registry's configured
        // strategy: the degradation chain can leave mlock-pinned regions in
        // a kiobuf registry.
        match &token {
            PinToken::Mlock { pid, start, len } => {
                // Interval bookkeeping: decrement run counts; munlock only
                // the maximal half-open VPN runs `[s, e)` that dropped to
                // zero.
                let (pid, start, len) = (*pid, *start, *len);
                let (first, last) = page_span(start, len);
                let counter = self
                    .mlock_counts
                    .get_mut(&pid)
                    .ok_or(RegError::PinUnderflow)?;
                let zero_runs = counter
                    .sub(first, last + 1)
                    .map_err(|_| RegError::PinUnderflow)?;
                if counter.is_empty() {
                    self.mlock_counts.remove(&pid);
                }
                // Token consumed without touching VMAs; we unlock runs
                // ourselves below.
                unpin_region(kernel, &mut self.pin_table, token, false)?;
                for (s, e) in zero_runs {
                    let had_cap = kernel.capabilities(pid)?.ipc_lock;
                    if !had_cap {
                        kernel.cap_raise_ipc_lock(pid)?;
                    }
                    let res = kernel.do_mlock(
                        pid,
                        s << PAGE_SHIFT,
                        ((e - s) as usize) * PAGE_SIZE,
                        false,
                    );
                    if !had_cap {
                        kernel.cap_lower_ipc_lock(pid)?;
                    }
                    res?;
                }
            }
            _ => {
                unpin_region(kernel, &mut self.pin_table, token, true)?;
            }
        }
        self.stats.deregistrations += 1;
        self.stats.pages_unpinned += npages as u64;
        Ok(())
    }

    /// The frames recorded at registration time (what a TPT holds). Empty
    /// for on-demand regions — use [`MemoryRegistry::tpt_frames`] for the
    /// residency-aware view.
    pub fn frames(&self, handle: MemHandle) -> RegResult<&[FrameId]> {
        Ok(&self.regions.get(handle)?.frames)
    }

    /// Full region record.
    pub fn region(&self, handle: MemHandle) -> RegResult<&Region> {
        self.regions.get(handle)
    }

    /// TPT-style translation: byte offset within the registration →
    /// (frame, in-page offset).
    pub fn translate(&self, handle: MemHandle, offset: usize) -> RegResult<(FrameId, usize)> {
        let r = self.regions.get(handle)?;
        if let Some(entry) = self.ledger.get(&handle) {
            // On-demand: answer from the ledger; a non-resident page is a
            // WouldBlock the caller resolves via `pin_on_access`.
            if offset >= r.len {
                return Err(RegError::InvalidArgument("offset beyond region"));
            }
            let abs = r.user_addr + offset as u64;
            let page_index = ((abs - r.page_base) / PAGE_SIZE as u64) as usize;
            let in_page = (abs & (PAGE_SIZE as u64 - 1)) as usize;
            return entry[page_index]
                .map(|f| (f, in_page))
                .ok_or(RegError::WouldBlock);
        }
        r.translate(offset)
    }

    /// Locktest step 6: are the frames recorded at registration time still
    /// the ones the page tables map? `false` means the NIC would DMA into
    /// stale frames.
    pub fn verify_consistency(&self, kernel: &Kernel, handle: MemHandle) -> RegResult<bool> {
        let r = self.regions.get(handle)?;
        let current = kernel.frames_of_range(r.pid, r.page_base, r.npages() * PAGE_SIZE)?;
        if let Some(entry) = self.ledger.get(&handle) {
            // On-demand: only resident (ledger-held) pages promise
            // stability; non-resident pages re-pin on access by design.
            return Ok(entry
                .iter()
                .zip(current.iter())
                .all(|(reg, cur)| reg.is_none() || *reg == *cur));
        }
        Ok(r.frames
            .iter()
            .zip(current.iter())
            .all(|(reg, cur)| Some(*reg) == *cur))
    }

    /// Find a live registration whose page span covers `[addr, addr+len)`
    /// for `pid` — what a kernel agent uses to answer "is this buffer
    /// already registered?" for dynamic zero-copy protocols. Served from
    /// the region table's interval index in O(log n + window) rather than a
    /// scan over every live region.
    pub fn find_covering(&self, pid: Pid, addr: VirtAddr, len: usize) -> Option<MemHandle> {
        self.find_covering_probed(pid, addr, len).0
    }

    /// [`MemoryRegistry::find_covering`] plus the number of index entries
    /// probed — deterministic evidence that the lookup cost does not grow
    /// with the live-region count.
    #[doc(hidden)]
    pub fn find_covering_probed(
        &self,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> (Option<MemHandle>, usize) {
        let start = simmem::page_base(addr);
        let end = simmem::page_align_up(addr + len as u64);
        self.regions
            .find_covering_probed(pid, start, (end - start) as usize)
    }

    /// Driver-side mlock count at one VPN (mlock strategy bookkeeping) —
    /// oracle hook for property tests.
    #[doc(hidden)]
    pub fn mlock_count_at(&self, pid: Pid, vpn: u64) -> u32 {
        self.mlock_counts.get(&pid).map_or(0, |c| c.count_at(vpn))
    }

    /// Number of live registrations.
    pub fn live_regions(&self) -> usize {
        self.regions.len()
    }

    /// Distinct frames currently pinned through the pin table (kiobuf
    /// strategy only).
    pub fn pinned_frames(&self) -> usize {
        self.pin_table.pinned_frames()
    }

    /// Cross-check pin-table invariants (property tests and the chaos
    /// harness). The census is over regions whose *token* is a kiobuf pin —
    /// mlock-fallback regions do not go through the pin table.
    pub fn check_invariants(&self, kernel: &Kernel) -> Result<(), String> {
        self.pin_table.check_invariants(kernel)?;
        // Sum of per-frame pins must equal the number of (handle, page)
        // pairs that pin each frame.
        let mut expect: HashMap<FrameId, u32> = HashMap::new();
        for r in self.regions.iter() {
            if !matches!(r.token, Some(PinToken::Kiobuf { .. })) {
                continue;
            }
            for &f in &r.frames {
                *expect.entry(f).or_insert(0) += 1;
            }
        }
        for (&f, &c) in &expect {
            if self.pin_table.count(f) != c {
                return Err(format!(
                    "frame {} pin count {} != expected {}",
                    f.0,
                    self.pin_table.count(f),
                    c
                ));
            }
        }
        if expect.len() != self.pin_table.pinned_frames() {
            return Err("pin table tracks frames not owned by any region".into());
        }
        // Lazy-ledger census: every Some slot is one kernel lazy pin, and
        // every kernel lazy pin is some region's Some slot. Frames whose
        // dissolution is still queued (undrained invalidations) are exempt
        // on both sides — the ledger learns about them at the next drain.
        let mut lazy_expect: HashMap<FrameId, u32> = HashMap::new();
        for (h, entry) in &self.ledger {
            if self.regions.get(*h).is_err() {
                return Err(format!("ledger entry for dead handle {}", h.0));
            }
            for f in entry.iter().flatten() {
                *lazy_expect.entry(*f).or_insert(0) += 1;
            }
        }
        let pending = kernel.pending_lazy_invalidations();
        for (&f, &c) in &lazy_expect {
            let k = kernel.lazy_pin_count(f);
            if k != c && !pending.contains(&f) {
                return Err(format!(
                    "frame {} has {} ledger pins but kernel holds {}",
                    f.0, c, k
                ));
            }
        }
        for (f, n) in kernel.lazy_pinned_frames() {
            if lazy_expect.get(&f).copied().unwrap_or(0) != n && !pending.contains(&f) {
                return Err(format!(
                    "kernel lazily pins frame {} ({}×) beyond the ledger",
                    f.0, n
                ));
            }
        }
        Ok(())
    }
}

/// First and last VPN of the page span of `[addr, addr+len)`.
fn page_span(addr: VirtAddr, len: usize) -> (u64, u64) {
    let first = simmem::page_base(addr) >> PAGE_SHIFT;
    let last = (simmem::page_align_up(addr + len as u64) >> PAGE_SHIFT) - 1;
    (first, last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, Capabilities, KernelConfig};

    fn setup() -> (Kernel, Pid, VirtAddr) {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, 16 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        (k, pid, a)
    }

    #[test]
    fn register_deregister_roundtrip_all_strategies() {
        for strategy in StrategyKind::ALL {
            let (mut k, pid, a) = setup();
            let mut reg = MemoryRegistry::new(strategy);
            let h = reg.register(&mut k, pid, a, 4 * PAGE_SIZE).unwrap();
            if strategy.pins_eagerly() {
                assert_eq!(reg.frames(h).unwrap().len(), 4);
            } else {
                assert!(reg.frames(h).unwrap().is_empty(), "nothing pinned yet");
                assert_eq!(reg.tpt_frames(h).unwrap(), vec![None; 4]);
            }
            assert_eq!(reg.region(h).unwrap().npages(), 4);
            assert!(reg.verify_consistency(&k, h).unwrap());
            reg.deregister(&mut k, h).unwrap();
            assert_eq!(reg.live_regions(), 0);
            assert!(reg.frames(h).is_err());
        }
    }

    #[test]
    fn page_limit_enforced() {
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable).with_page_limit(6);
        let h = reg.register(&mut k, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(
            reg.register(&mut k, pid, a, 4 * PAGE_SIZE),
            Err(RegError::LimitExceeded)
        );
        reg.deregister(&mut k, h).unwrap();
        assert!(reg.register(&mut k, pid, a, 4 * PAGE_SIZE).is_ok());
    }

    #[test]
    fn mlock_interval_bookkeeping_nests() {
        // The exact hazard of section 3.2: two registrations, one
        // deregistration — pages must STAY locked.
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::VmaMlock);
        let h1 = reg.register(&mut k, pid, a, 4 * PAGE_SIZE).unwrap();
        let h2 = reg.register(&mut k, pid, a, 4 * PAGE_SIZE).unwrap();
        reg.deregister(&mut k, h1).unwrap();
        assert_eq!(
            k.locked_bytes(pid).unwrap(),
            4 * PAGE_SIZE as u64,
            "driver bookkeeping keeps the range locked"
        );
        reg.deregister(&mut k, h2).unwrap();
        assert_eq!(k.locked_bytes(pid).unwrap(), 0);
    }

    #[test]
    fn mlock_partial_overlap_unlocks_only_free_pages() {
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::VmaMlock);
        // [0..8) and [4..12) pages overlap in [4..8).
        let h1 = reg.register(&mut k, pid, a, 8 * PAGE_SIZE).unwrap();
        let _h2 = reg
            .register(&mut k, pid, a + 4 * PAGE_SIZE as u64, 8 * PAGE_SIZE)
            .unwrap();
        reg.deregister(&mut k, h1).unwrap();
        // Pages 0..4 unlocked; 4..12 still locked.
        assert_eq!(k.locked_bytes(pid).unwrap(), 8 * PAGE_SIZE as u64);
    }

    #[test]
    fn kiobuf_invariants_hold_across_overlaps() {
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
        let h1 = reg.register(&mut k, pid, a, 8 * PAGE_SIZE).unwrap();
        let h2 = reg
            .register(&mut k, pid, a + 4 * PAGE_SIZE as u64, 8 * PAGE_SIZE)
            .unwrap();
        reg.check_invariants(&k).unwrap();
        reg.deregister(&mut k, h1).unwrap();
        reg.check_invariants(&k).unwrap();
        reg.deregister(&mut k, h2).unwrap();
        reg.check_invariants(&k).unwrap();
        assert_eq!(reg.pinned_frames(), 0);
    }

    #[test]
    fn translation_matches_kernel_walk() {
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
        let addr = a + 123; // unaligned on purpose
        let h = reg.register(&mut k, pid, addr, 3 * PAGE_SIZE).unwrap();
        for off in [0usize, 100, PAGE_SIZE, 2 * PAGE_SIZE + 500] {
            let (frame, in_page) = reg.translate(h, off).unwrap();
            let abs = addr + off as u64;
            assert_eq!(k.frame_of(pid, abs).unwrap(), Some(frame));
            assert_eq!(in_page, (abs & (PAGE_SIZE as u64 - 1)) as usize);
        }
        reg.deregister(&mut k, h).unwrap();
    }

    #[test]
    fn find_covering_matches_spans() {
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
        let h = reg.register(&mut k, pid, a + 100, 4 * PAGE_SIZE).unwrap();
        // Fully inside the span: found.
        assert_eq!(reg.find_covering(pid, a + 200, PAGE_SIZE), Some(h));
        assert_eq!(reg.find_covering(pid, a, 4 * PAGE_SIZE), Some(h));
        // Past the end: not covered.
        assert_eq!(reg.find_covering(pid, a + 5 * PAGE_SIZE as u64, 16), None);
        // Different process: never.
        assert_eq!(reg.find_covering(Pid(999), a, 16), None);
        reg.deregister(&mut k, h).unwrap();
        assert_eq!(reg.find_covering(pid, a, 16), None);
    }

    #[test]
    fn retry_rescues_transient_page_lock() {
        use crate::fault::{handle, kernel_hook, FaultPlan, FaultSite};
        let (mut k, pid, a) = setup();
        // Two injected PG_locked collisions, three retries budgeted: the
        // registration succeeds on the third attempt.
        let h = handle(FaultPlan::new(3).fail(FaultSite::PageLock, 2));
        k.set_injector(Some(kernel_hook(&h)));
        let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable).with_retry(3);
        let mh = reg.register(&mut k, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(reg.snapshot().pin_retries, 2);
        assert!(
            reg.snapshot().backoff_ticks >= 2 + 4,
            "exponential backoff accounted"
        );
        assert_eq!(reg.snapshot().blocked, 0);
        reg.check_invariants(&k).unwrap();
        reg.deregister(&mut k, mh).unwrap();
    }

    #[test]
    fn kiobuf_falls_back_to_mlock_under_persistent_contention() {
        let (mut k, pid, a) = setup();
        k.touch_pages(pid, a, 4 * PAGE_SIZE, true).unwrap();
        // A frame held by foreign I/O for the whole registration: every
        // retry fails, the degradation chain pins via mlock instead.
        let busy = k.frame_of(pid, a).unwrap().unwrap();
        k.begin_page_io(busy);
        let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable)
            .with_retry(2)
            .with_fallback();
        let h = reg.register(&mut k, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(reg.snapshot().fallbacks, 1);
        assert_eq!(reg.snapshot().blocked, 1);
        assert_eq!(reg.snapshot().pin_retries, 2);
        assert_eq!(
            k.locked_bytes(pid).unwrap(),
            4 * PAGE_SIZE as u64,
            "fallback region is VM_LOCKED"
        );
        assert_eq!(reg.pinned_frames(), 0, "no pin-table pins for fallback");
        reg.check_invariants(&k).unwrap();
        assert!(k.end_page_io(busy), "foreign I/O lock untouched");
        // Token-driven teardown releases the mlock interval.
        reg.deregister(&mut k, h).unwrap();
        assert_eq!(k.locked_bytes(pid).unwrap(), 0);
        reg.check_invariants(&k).unwrap();
    }

    #[test]
    fn fallback_mixes_with_native_kiobuf_regions() {
        let (mut k, pid, a) = setup();
        k.touch_pages(pid, a, 8 * PAGE_SIZE, true).unwrap();
        let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable)
            .with_retry(1)
            .with_fallback();
        // First region pins normally through the kiobuf path.
        let h1 = reg.register(&mut k, pid, a, 4 * PAGE_SIZE).unwrap();
        // Second hits a persistently busy page → mlock fallback.
        let busy = k.frame_of(pid, a + 4 * PAGE_SIZE as u64).unwrap().unwrap();
        k.begin_page_io(busy);
        let h2 = reg
            .register(&mut k, pid, a + 4 * PAGE_SIZE as u64, 4 * PAGE_SIZE)
            .unwrap();
        k.end_page_io(busy);
        assert_eq!(
            reg.pinned_frames(),
            4,
            "only the kiobuf region is in the pin table"
        );
        reg.check_invariants(&k).unwrap();
        reg.deregister(&mut k, h2).unwrap();
        reg.deregister(&mut k, h1).unwrap();
        assert_eq!(reg.pinned_frames(), 0);
        assert_eq!(k.locked_bytes(pid).unwrap(), 0);
        reg.check_invariants(&k).unwrap();
    }

    #[test]
    fn ondemand_pins_on_access_and_survives_pressure_unpin() {
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::OnDemand);
        let h = reg.register(&mut k, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(reg.snapshot().pages_pinned, 0);
        // Non-resident page: translate degrades, pin_on_access resolves.
        assert_eq!(reg.translate(h, 0), Err(RegError::WouldBlock));
        let f0 = reg.pin_on_access(&mut k, h, 0).unwrap();
        assert_eq!(reg.pin_on_access(&mut k, h, 0).unwrap(), f0, "ledger hit");
        assert_eq!(reg.translate(h, 100).unwrap(), (f0, 100));
        assert_eq!(reg.snapshot().pages_pinned, 1);
        assert_eq!(k.lazy_pin_count(f0), 1);
        reg.check_invariants(&k).unwrap();
        // Kernel-side dissolution (as the page stealer would do) reaches
        // the ledger through the drain.
        k.test_dissolve_lazy_pins(f0);
        let drained = reg.drain_lazy_invalidations(&mut k);
        assert_eq!(drained, vec![f0]);
        assert_eq!(reg.translate(h, 0), Err(RegError::WouldBlock));
        assert_eq!(reg.snapshot().pages_unpinned, 1);
        reg.check_invariants(&k).unwrap();
        // Re-pin, then teardown drains the ledger.
        let f1 = reg.pin_on_access(&mut k, h, 0).unwrap();
        reg.deregister(&mut k, h).unwrap();
        assert_eq!(k.lazy_pin_count(f1), 0);
        assert_eq!(reg.snapshot().pages_unpinned, 2);
        reg.check_invariants(&k).unwrap();
    }

    #[test]
    fn ondemand_write_traps_revalidate() {
        // Registration write-protects the span; a user write after a lazy
        // pin must not move the frame (sole owner revalidates in place).
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::OnDemand);
        let h = reg.register(&mut k, pid, a, 2 * PAGE_SIZE).unwrap();
        let f = reg.pin_on_access(&mut k, h, 0).unwrap();
        k.write_user(pid, a, b"still here").unwrap();
        assert_eq!(k.frame_of(pid, a).unwrap(), Some(f));
        assert!(reg.verify_consistency(&k, h).unwrap());
        reg.deregister(&mut k, h).unwrap();
    }

    #[test]
    fn ondemand_lazy_pin_fault_injection_degrades_typed() {
        use crate::fault::{handle, kernel_hook, FaultPlan, FaultSite};
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::OnDemand);
        let h = reg.register(&mut k, pid, a, PAGE_SIZE).unwrap();
        let fh = handle(FaultPlan::new(7).fail(FaultSite::LazyPin, 1));
        k.set_injector(Some(kernel_hook(&fh)));
        assert_eq!(
            reg.pin_on_access(&mut k, h, 0),
            Err(RegError::WouldBlock),
            "armed lazy-pin site degrades typed"
        );
        assert_eq!(reg.snapshot().blocked, 1);
        // Retry after the armed shot: succeeds, no pins leaked.
        reg.pin_on_access(&mut k, h, 0).unwrap();
        reg.check_invariants(&k).unwrap();
        reg.deregister(&mut k, h).unwrap();
        reg.check_invariants(&k).unwrap();
    }

    #[test]
    fn stats_track_activity() {
        let (mut k, pid, a) = setup();
        let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
        let h = reg.register(&mut k, pid, a, 2 * PAGE_SIZE).unwrap();
        reg.deregister(&mut k, h).unwrap();
        assert_eq!(reg.snapshot().registrations, 1);
        assert_eq!(reg.snapshot().deregistrations, 1);
        assert_eq!(reg.snapshot().pages_pinned, 2);
        assert_eq!(reg.snapshot().pages_unpinned, 2);
    }
}
