//! Deterministic fault injection: the seeded [`FaultPlan`] and the site
//! catalog ([`FaultSite`]) threaded through the whole stack.
//!
//! The design follows the layering of the repo: `simmem` cannot depend on
//! this crate, so the kernel exposes a *generic* `u32`-coded injector hook
//! ([`simmem::Kernel::set_injector`]) and fires its own five sites
//! (`simmem::inject::*`). This module owns the full catalog — kernel sites
//! plus the VIA-layer and wire sites, which reuse codes from
//! `simmem::inject::UPPER_BASE` upward — and the seeded plan deciding when
//! a consulted site actually fails.
//!
//! Determinism: a plan is a pure function of its construction (seed + per
//! site rules) and the *sequence of consultations*. Two runs that perform
//! the same operations see the same faults. The probabilistic mode uses a
//! SplitMix64 stream seeded from the plan seed and the site code, so sites
//! do not perturb each other's streams.
//!
//! Cost when disabled: nothing in this module runs. Every hot-path hook is
//! `Kernel::inject(code)`, which is a single branch on a `None` option.

use std::sync::{Arc, Mutex};

use simmem::inject;

/// Named injection sites across the stack. The first five are fired by the
/// simulated kernel itself; the rest by the VIA layer and the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// `__get_free_page()` fails (`ENOMEM`).
    FrameAlloc,
    /// The swap device is full mid-reclaim.
    SwapFull,
    /// Swap-in hits a device read error (`EIO`).
    SwapIo,
    /// `PG_locked` held by foreign I/O — batch pinning sees `WouldBlock`.
    PageLock,
    /// The page stealer fails to dissolve a cold on-demand pin (the frame
    /// stays pinned in place for this reclaim pass).
    PressureUnpin,
    /// The translation-and-protection table has no room for the region.
    TptFull,
    /// The descriptor-ring doorbell is over capacity.
    DoorbellOverflow,
    /// The completion queue is full; a completion cannot be delivered.
    CqOverrun,
    /// The wire drops a packet.
    WireDrop,
    /// The wire duplicates a packet.
    WireDuplicate,
    /// The wire delays a packet past later traffic.
    WireDelay,
    /// The fault-and-repin path: an on-demand registration's lazy pin
    /// fails on NIC access (typed `WouldBlock` degradation).
    LazyPin,
}

impl FaultSite {
    /// Every site, in catalog order — the chaos harness sweeps this.
    pub const ALL: [FaultSite; 12] = [
        FaultSite::FrameAlloc,
        FaultSite::SwapFull,
        FaultSite::SwapIo,
        FaultSite::PageLock,
        FaultSite::PressureUnpin,
        FaultSite::TptFull,
        FaultSite::DoorbellOverflow,
        FaultSite::CqOverrun,
        FaultSite::WireDrop,
        FaultSite::WireDuplicate,
        FaultSite::WireDelay,
        FaultSite::LazyPin,
    ];

    /// The wire code for this site, shared with `simmem::inject`.
    pub const fn code(self) -> u32 {
        match self {
            FaultSite::FrameAlloc => inject::FRAME_ALLOC,
            FaultSite::SwapFull => inject::SWAP_FULL,
            FaultSite::SwapIo => inject::SWAP_IO,
            FaultSite::PageLock => inject::PAGE_LOCK,
            FaultSite::PressureUnpin => inject::PRESSURE_UNPIN,
            FaultSite::TptFull => inject::UPPER_BASE,
            FaultSite::DoorbellOverflow => inject::UPPER_BASE + 1,
            FaultSite::CqOverrun => inject::UPPER_BASE + 2,
            FaultSite::WireDrop => inject::UPPER_BASE + 3,
            FaultSite::WireDuplicate => inject::UPPER_BASE + 4,
            FaultSite::WireDelay => inject::UPPER_BASE + 5,
            FaultSite::LazyPin => inject::UPPER_BASE + 6,
        }
    }

    /// Inverse of [`FaultSite::code`].
    pub fn from_code(code: u32) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.code() == code)
    }

    /// Stable human-readable name (used in reports and test output).
    pub const fn label(self) -> &'static str {
        match self {
            FaultSite::FrameAlloc => "frame-alloc",
            FaultSite::SwapFull => "swap-full",
            FaultSite::SwapIo => "swap-io",
            FaultSite::PageLock => "page-lock",
            FaultSite::PressureUnpin => "pressure-unpin",
            FaultSite::TptFull => "tpt-full",
            FaultSite::DoorbellOverflow => "doorbell-overflow",
            FaultSite::CqOverrun => "cq-overrun",
            FaultSite::WireDrop => "wire-drop",
            FaultSite::WireDuplicate => "wire-duplicate",
            FaultSite::WireDelay => "wire-delay",
            FaultSite::LazyPin => "lazy-pin",
        }
    }

    const fn index(self) -> usize {
        match self {
            FaultSite::FrameAlloc => 0,
            FaultSite::SwapFull => 1,
            FaultSite::SwapIo => 2,
            FaultSite::PageLock => 3,
            FaultSite::PressureUnpin => 4,
            FaultSite::TptFull => 5,
            FaultSite::DoorbellOverflow => 6,
            FaultSite::CqOverrun => 7,
            FaultSite::WireDrop => 8,
            FaultSite::WireDuplicate => 9,
            FaultSite::WireDelay => 10,
            FaultSite::LazyPin => 11,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// When a consulted site fails. Deterministic: skip the first `skip`
/// consultations, then fail the next `fail` ones, then (optionally) fail
/// each further consultation with probability `prob_per_64k / 65536` drawn
/// from the plan's SplitMix64 stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultRule {
    /// Consultations to let through before failing.
    pub skip: u64,
    /// Number of consultations to fail after the skips.
    pub fail: u64,
    /// Residual failure probability (numerator out of 65536) once the
    /// deterministic budget is exhausted. `0` = never.
    pub prob_per_64k: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct SiteState {
    rule: FaultRule,
    /// Times this site was consulted.
    hits: u64,
    /// Times this site was forced to fail.
    fired: u64,
}

/// A seeded, deterministic fault plan: per-site rules plus counters.
///
/// Share one plan across a whole `ViaSystem` (every node's kernel hook
/// holds a clone of the same [`FaultHandle`]) so the wire, the NIC, and
/// the kernel all consume one consultation sequence.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    sites: [SiteState; FaultSite::ALL.len()],
}

impl FaultPlan {
    /// An empty plan: every site always succeeds.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: [SiteState::default(); FaultSite::ALL.len()],
        }
    }

    /// Builder: fail the first `fail` consultations of `site`.
    pub fn fail(mut self, site: FaultSite, fail: u64) -> Self {
        self.sites[site.index()].rule = FaultRule {
            skip: 0,
            fail,
            prob_per_64k: 0,
        };
        self
    }

    /// Builder: let `skip` consultations through, then fail `fail` of them.
    pub fn fail_after(mut self, site: FaultSite, skip: u64, fail: u64) -> Self {
        self.sites[site.index()].rule = FaultRule {
            skip,
            fail,
            prob_per_64k: 0,
        };
        self
    }

    /// Builder: fail each consultation of `site` with probability
    /// `prob_per_64k / 65536` (deterministic given the seed).
    pub fn fail_with_probability(mut self, site: FaultSite, prob_per_64k: u32) -> Self {
        self.sites[site.index()].rule = FaultRule {
            skip: 0,
            fail: 0,
            prob_per_64k,
        };
        self
    }

    /// Builder: install an explicit rule.
    pub fn rule(mut self, site: FaultSite, rule: FaultRule) -> Self {
        self.sites[site.index()].rule = rule;
        self
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide whether the consultation at `site` fails, and advance the
    /// plan's counters. This is the single decision point for every hook.
    pub fn should_fail(&mut self, site: FaultSite) -> bool {
        let seed = self.seed;
        let st = &mut self.sites[site.index()];
        let n = st.hits;
        st.hits += 1;
        let fire = if n < st.rule.skip {
            false
        } else if n < st.rule.skip + st.rule.fail {
            true
        } else if st.rule.prob_per_64k > 0 {
            // Per-site SplitMix64 stream: seed ⊕ site, position = hit index.
            let x = splitmix64(
                seed ^ ((site.code() as u64 + 1) << 32) ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            (x & 0xffff) < st.rule.prob_per_64k as u64
        } else {
            false
        };
        if fire {
            st.fired += 1;
        }
        fire
    }

    /// Times `site` was consulted.
    pub fn hits(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].hits
    }

    /// Times `site` was forced to fail.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].fired
    }

    /// Total forced failures across all sites.
    pub fn total_fired(&self) -> u64 {
        self.sites.iter().map(|s| s.fired).sum()
    }

    /// Reset counters (rules stay).
    pub fn reset_counters(&mut self) {
        for s in &mut self.sites {
            s.hits = 0;
            s.fired = 0;
        }
    }
}

/// Shared handle to a plan — clone freely; every layer consults the same
/// counters through it.
pub type FaultHandle = Arc<Mutex<FaultPlan>>;

/// Wrap a plan in a shareable handle.
pub fn handle(plan: FaultPlan) -> FaultHandle {
    Arc::new(Mutex::new(plan))
}

/// Build the closure a `simmem::Kernel` wants: maps wire codes back to
/// [`FaultSite`] and consults the shared plan. Unknown codes never fail.
pub fn kernel_hook(h: &FaultHandle) -> Box<dyn FnMut(u32) -> bool + Send> {
    let h = Arc::clone(h);
    Box::new(move |code| match FaultSite::from_code(code) {
        Some(site) => h
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .should_fail(site),
        None => false,
    })
}

/// SplitMix64 — the mixer the vendored proptest uses, reimplemented here so
/// the plan owns its stream.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for s in FaultSite::ALL {
            assert_eq!(FaultSite::from_code(s.code()), Some(s));
        }
        assert_eq!(FaultSite::from_code(9999), None);
    }

    #[test]
    fn skip_then_fail_budget() {
        let mut p = FaultPlan::new(1).fail_after(FaultSite::TptFull, 2, 3);
        let fired: Vec<bool> = (0..8).map(|_| p.should_fail(FaultSite::TptFull)).collect();
        assert_eq!(
            fired,
            vec![false, false, true, true, true, false, false, false]
        );
        assert_eq!(p.hits(FaultSite::TptFull), 8);
        assert_eq!(p.fired(FaultSite::TptFull), 3);
        // Other sites untouched.
        assert!(!p.should_fail(FaultSite::WireDrop));
        assert_eq!(p.fired(FaultSite::WireDrop), 0);
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut p = FaultPlan::new(seed).fail_with_probability(FaultSite::WireDrop, 0x8000);
            (0..64)
                .map(|_| p.should_fail(FaultSite::WireDrop))
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds, different streams");
        let fired = run(42).iter().filter(|&&b| b).count();
        assert!((8..=56).contains(&fired), "p=0.5 should fire sometimes");
    }

    #[test]
    fn kernel_hook_drives_kernel_sites() {
        use simmem::{Capabilities, Kernel, KernelConfig, MmError};
        let h = handle(FaultPlan::new(7).fail(FaultSite::FrameAlloc, 1));
        let mut k = Kernel::new(KernelConfig::small());
        k.set_injector(Some(kernel_hook(&h)));
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(
                pid,
                simmem::PAGE_SIZE,
                simmem::prot::READ | simmem::prot::WRITE,
            )
            .unwrap();
        // First write needs a frame → injected ENOMEM; retry succeeds.
        assert_eq!(k.write_user(pid, a, b"x"), Err(MmError::OutOfMemory));
        k.write_user(pid, a, b"x").unwrap();
        assert_eq!(h.lock().unwrap().fired(FaultSite::FrameAlloc), 1);
        assert_eq!(k.mm_stats().faults_injected, 1);
    }
}
