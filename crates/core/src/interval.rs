//! Run-length interval counters: the mlock strategy's driver-side
//! bookkeeping, stored as maximal runs instead of per-page map entries.
//!
//! `munlock` does not nest, so the kernel agent must count how many live
//! registrations cover each page and unlock only runs whose count dropped
//! to zero (paper §3.2). The seed kept one hash-map entry per (pid, page);
//! registering a 1024-page region cost 1024 hash operations. Here the
//! counts are kept as disjoint, coalesced runs `[start, end) → count` in a
//! `BTreeMap`, so a region add/sub touches O(runs overlapped) entries — a
//! handful for real registration patterns, independent of region size.

use std::collections::BTreeMap;

/// A point in a subtracted interval was already at count zero — a release
/// without a matching add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterUnderflow;

/// Disjoint, coalesced runs of equal count over `u64` points (VPNs here).
/// Zero counts are never stored.
#[derive(Debug, Default, Clone)]
pub struct IntervalCounter {
    /// start → (end, count); invariants: runs disjoint and non-empty,
    /// adjacent runs with equal count merged.
    runs: BTreeMap<u64, (u64, u32)>,
}

impl IntervalCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no point has a positive count.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Count at a single point.
    pub fn count_at(&self, p: u64) -> u32 {
        self.runs
            .range(..=p)
            .next_back()
            .filter(|(_, &(end, _))| p < end)
            .map(|(_, &(_, c))| c)
            .unwrap_or(0)
    }

    /// Iterate `(start, end, count)` runs in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u32)> + '_ {
        self.runs.iter().map(|(&s, &(e, c))| (s, e, c))
    }

    /// Split any run straddling `p` so `p` becomes a run boundary.
    fn split_at(&mut self, p: u64) {
        if let Some((&s, &(e, c))) = self
            .runs
            .range(..p)
            .next_back()
            .filter(|(_, &(end, _))| p < end)
        {
            self.runs.insert(s, (p, c));
            self.runs.insert(p, (e, c));
        }
    }

    /// Merge runs that touch at `p` with equal counts.
    fn coalesce_at(&mut self, p: u64) {
        let left = self.runs.range(..p).next_back().map(|(&s, &v)| (s, v));
        let right = self.runs.get(&p).copied();
        if let (Some((ls, (le, lc))), Some((re, rc))) = (left, right) {
            if le == p && lc == rc {
                self.runs.remove(&p);
                self.runs.insert(ls, (re, rc));
            }
        }
    }

    /// Increment the count of every point in `[start, end)`.
    pub fn add(&mut self, start: u64, end: u64) {
        assert!(start < end, "empty interval");
        self.split_at(start);
        self.split_at(end);
        // Walk existing runs inside [start, end), bumping counts and filling
        // gaps with fresh count-1 runs.
        let mut covered = start;
        let inside: Vec<(u64, u64)> = self
            .runs
            .range(start..end)
            .map(|(&s, &(e, _))| (s, e))
            .collect();
        for (s, e) in inside {
            if covered < s {
                self.runs.insert(covered, (s, 1));
            }
            let c = self.runs.get_mut(&s).expect("run listed above");
            c.1 += 1;
            covered = e;
        }
        if covered < end {
            self.runs.insert(covered, (end, 1));
        }
        self.coalesce_at(start);
        self.coalesce_at(end);
        // Gap-fill may have created equal-count neighbours strictly inside.
        let interior: Vec<u64> = self.runs.range(start + 1..end).map(|(&s, _)| s).collect();
        for s in interior {
            self.coalesce_at(s);
        }
    }

    /// Decrement the count of every point in `[start, end)`. Returns the
    /// maximal runs within `[start, end)` whose count reached zero (the
    /// intervals to `munlock`), or [`CounterUnderflow`] if any point was
    /// already at zero (release without matching add).
    pub fn sub(&mut self, start: u64, end: u64) -> Result<Vec<(u64, u64)>, CounterUnderflow> {
        assert!(start < end, "empty interval");
        // Underflow check first: the whole interval must be covered by
        // positive runs — no gaps.
        let mut covered = start;
        for (&s, &(e, _)) in self.runs.range(..end) {
            if e <= start {
                continue;
            }
            if s > covered {
                return Err(CounterUnderflow);
            }
            covered = covered.max(e);
        }
        if covered < end {
            return Err(CounterUnderflow);
        }

        self.split_at(start);
        self.split_at(end);
        let inside: Vec<u64> = self.runs.range(start..end).map(|(&s, _)| s).collect();
        let mut zero_runs: Vec<(u64, u64)> = Vec::new();
        for s in inside {
            let &(e, c) = self.runs.get(&s).expect("run listed above");
            if c == 1 {
                self.runs.remove(&s);
                match zero_runs.last_mut() {
                    Some(last) if last.1 == s => last.1 = e,
                    _ => zero_runs.push((s, e)),
                }
            } else {
                self.runs.insert(s, (e, c - 1));
            }
        }
        self.coalesce_at(start);
        self.coalesce_at(end);
        let interior: Vec<u64> = self.runs.range(start + 1..end).map(|(&s, _)| s).collect();
        for s in interior {
            self.coalesce_at(s);
        }
        Ok(zero_runs)
    }

    #[cfg(test)]
    fn assert_invariants(&self) {
        let mut prev: Option<(u64, u64, u32)> = None;
        for (s, e, c) in self.iter() {
            assert!(s < e, "empty run stored");
            assert!(c > 0, "zero-count run stored");
            if let Some((_, pe, pc)) = prev {
                assert!(pe <= s, "overlapping runs");
                assert!(pe < s || pc != c, "uncoalesced neighbours");
            }
            prev = Some((s, e, c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let mut ic = IntervalCounter::new();
        ic.add(10, 20);
        ic.assert_invariants();
        assert_eq!(ic.count_at(10), 1);
        assert_eq!(ic.count_at(19), 1);
        assert_eq!(ic.count_at(20), 0);
        let zeros = ic.sub(10, 20).unwrap();
        assert_eq!(zeros, vec![(10, 20)]);
        assert!(ic.is_empty());
    }

    #[test]
    fn nesting_keeps_pages_counted() {
        let mut ic = IntervalCounter::new();
        ic.add(0, 8);
        ic.add(0, 8);
        assert_eq!(ic.sub(0, 8).unwrap(), vec![], "still covered once");
        assert_eq!(ic.count_at(4), 1);
        assert_eq!(ic.sub(0, 8).unwrap(), vec![(0, 8)]);
        ic.assert_invariants();
    }

    #[test]
    fn partial_overlap_releases_only_free_runs() {
        let mut ic = IntervalCounter::new();
        ic.add(0, 8); // [0,8)
        ic.add(4, 12); // overlap [4,8)
        ic.assert_invariants();
        assert_eq!(ic.sub(0, 8).unwrap(), vec![(0, 4)], "[4,8) still held");
        assert_eq!(ic.sub(4, 12).unwrap(), vec![(4, 12)]);
        assert!(ic.is_empty());
    }

    #[test]
    fn interleaved_zero_runs_are_maximal() {
        let mut ic = IntervalCounter::new();
        ic.add(0, 10);
        ic.add(2, 4); // pages 2,3 twice
        ic.add(6, 8); // pages 6,7 twice
                      // Dropping the big region frees [0,2), [4,6), [8,10) as three runs.
        assert_eq!(ic.sub(0, 10).unwrap(), vec![(0, 2), (4, 6), (8, 10)]);
        ic.assert_invariants();
        assert_eq!(ic.sub(2, 4).unwrap(), vec![(2, 4)]);
        assert_eq!(ic.sub(6, 8).unwrap(), vec![(6, 8)]);
        assert!(ic.is_empty());
    }

    #[test]
    fn underflow_is_detected_without_mutation() {
        let mut ic = IntervalCounter::new();
        ic.add(5, 10);
        assert!(ic.sub(0, 10).is_err(), "gap before run");
        assert!(ic.sub(5, 11).is_err(), "gap after run");
        assert!(ic.sub(12, 14).is_err(), "entirely uncovered");
        // The failed subs must not have altered counts.
        assert_eq!(ic.count_at(5), 1);
        assert_eq!(ic.sub(5, 10).unwrap(), vec![(5, 10)]);
    }

    #[test]
    fn coalescing_bounds_run_count() {
        let mut ic = IntervalCounter::new();
        // 64 adjacent single-page adds collapse into one run.
        for i in 0..64 {
            ic.add(i, i + 1);
        }
        ic.assert_invariants();
        assert_eq!(ic.iter().count(), 1);
        assert_eq!(ic.iter().next(), Some((0, 64, 1)));
    }
}
