//! Per-address-space range locks, after *Scalable Range Locks for Scalable
//! Address Spaces and Beyond*.
//!
//! The sharded registration path must let **disjoint** ranges of one process
//! register concurrently while **overlapping** ranges serialize against each
//! other — exactly the arbitration the range-lock papers build for `mmap_sem`.
//! A [`RangeLock`] keeps the set of currently-held `[start, end)` intervals
//! in an interval-keyed list; acquiring blocks until no held interval
//! overlaps the requested one, then inserts it. Dropping the returned
//! [`RangeGuard`] removes the interval and wakes waiters.
//!
//! The original uses a lock-free skip list of range nodes; with at most a
//! handful of in-flight registrations per process the list is short, so a
//! mutex-protected vector with a condvar gives the same semantics (and the
//! same disjoint-parallel behaviour — the critical section is a membership
//! test, not the pin work itself) without the memory-reclamation machinery.
//!
//! A [`RangeLockTable`] maps pids to their `RangeLock`s, so each address
//! space arbitrates independently.

use std::collections::HashMap;
use std::sync::Arc;

// The sync shim: std re-exports in normal builds; under `--cfg viamodel`
// the model checker explores the overlap-arbitration protocol below
// (DESIGN.md §15).
use check::sync::{AtomicU64, Condvar, Mutex, Ordering};

use simmem::Pid;

/// One held interval.
#[derive(Debug, Clone, Copy)]
struct HeldRange {
    start: u64,
    end: u64,
    id: u64,
}

#[inline]
fn overlaps(a_start: u64, a_end: u64, b: &HeldRange) -> bool {
    // Empty ranges (on either side) contain no points and so never overlap.
    a_start < a_end && b.start < b.end && a_start < b.end && b.start < a_end
}

/// Counters for the contention diagnostics in the bench report.
#[derive(Debug, Default)]
pub struct RangeLockStats {
    /// Successful acquisitions.
    pub acquisitions: AtomicU64,
    /// Acquisitions that had to wait for an overlapping holder at least
    /// once.
    pub contended: AtomicU64,
}

/// An interval-keyed lock over one address space (VPN or byte granularity —
/// the lock only compares the numbers it is given).
#[derive(Debug, Default)]
pub struct RangeLock {
    held: Mutex<Vec<HeldRange>>,
    released: Condvar,
    next_id: AtomicU64,
    pub stats: RangeLockStats,
}

impl RangeLock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire `[start, end)`, blocking while any held interval overlaps
    /// it. Empty ranges (`start >= end`) conflict with nothing but still
    /// produce a guard, keeping caller control flow uniform.
    pub fn lock(&self, start: u64, end: u64) -> RangeGuard<'_> {
        let mut held = self.held.lock().expect("range lock poisoned");
        let mut waited = false;
        while held.iter().any(|h| overlaps(start, end, h)) {
            waited = true;
            held = self.released.wait(held).expect("range lock poisoned");
        }
        // relaxed: a pure id allocator — only uniqueness matters, and
        // fetch_add is atomic at any ordering.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        held.push(HeldRange { start, end, id });
        drop(held);
        // relaxed: monotonic stats counter, read only by diagnostics.
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        if waited {
            // relaxed: monotonic stats counter, read only by diagnostics.
            self.stats.contended.fetch_add(1, Ordering::Relaxed);
        }
        RangeGuard { lock: self, id }
    }

    /// Non-blocking acquire: `None` if an overlapping interval is held.
    pub fn try_lock(&self, start: u64, end: u64) -> Option<RangeGuard<'_>> {
        let mut held = self.held.lock().expect("range lock poisoned");
        if held.iter().any(|h| overlaps(start, end, h)) {
            return None;
        }
        // relaxed: a pure id allocator — only uniqueness matters.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        held.push(HeldRange { start, end, id });
        drop(held);
        // relaxed: monotonic stats counter, read only by diagnostics.
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        Some(RangeGuard { lock: self, id })
    }

    /// Number of currently-held intervals.
    pub fn holders(&self) -> usize {
        self.held.lock().expect("range lock poisoned").len()
    }

    fn unlock(&self, id: u64) {
        let mut held = self.held.lock().expect("range lock poisoned");
        let i = held
            .iter()
            .position(|h| h.id == id)
            .expect("range guard unlocked twice");
        held.swap_remove(i);
        drop(held);
        // Any waiter might now fit; wake them all and let them re-test.
        self.released.notify_all();
    }
}

/// Holder of one `[start, end)` interval; releases on drop.
#[derive(Debug)]
pub struct RangeGuard<'a> {
    lock: &'a RangeLock,
    id: u64,
}

impl Drop for RangeGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock(self.id);
    }
}

/// Per-pid range locks: each process arbitrates its own address ranges, so
/// distinct processes never contend here at all (beyond the map lookup).
#[derive(Debug, Default)]
pub struct RangeLockTable {
    pids: Mutex<HashMap<Pid, Arc<RangeLock>>>,
}

impl RangeLockTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// The lock for `pid`, created on first use.
    pub fn for_pid(&self, pid: Pid) -> Arc<RangeLock> {
        let mut pids = self.pids.lock().expect("range lock table poisoned");
        pids.entry(pid).or_default().clone()
    }

    /// Drop `pid`'s lock entry (process exit). In-flight guards keep their
    /// `Arc` alive; future registrations get a fresh lock, which is correct
    /// because a fresh lock can only be reached once the pid's regions are
    /// gone.
    pub fn forget_pid(&self, pid: Pid) {
        self.pids
            .lock()
            .expect("range lock table poisoned")
            .remove(&pid);
    }

    /// Total contended acquisitions across live pid locks (bench report).
    pub fn contended_total(&self) -> u64 {
        self.pids
            .lock()
            .expect("range lock table poisoned")
            .values()
            // relaxed: stats snapshot; staleness is fine in a report.
            .map(|l| l.stats.contended.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn disjoint_ranges_coexist() {
        let rl = RangeLock::new();
        let g1 = rl.lock(0, 4);
        let g2 = rl.lock(4, 8);
        assert_eq!(rl.holders(), 2);
        drop(g1);
        drop(g2);
        assert_eq!(rl.holders(), 0);
    }

    #[test]
    fn overlap_try_lock_fails_until_release() {
        let rl = RangeLock::new();
        let g = rl.lock(2, 6);
        assert!(rl.try_lock(5, 9).is_none(), "tail overlap");
        assert!(rl.try_lock(0, 3).is_none(), "head overlap");
        assert!(rl.try_lock(3, 4).is_none(), "contained");
        let g2 = rl.try_lock(6, 9).expect("adjacent range is disjoint");
        drop(g);
        drop(g2);
        assert!(rl.try_lock(0, 9).is_some());
    }

    #[test]
    fn empty_range_conflicts_with_nothing() {
        let rl = RangeLock::new();
        let _g = rl.lock(0, 10);
        let _e = rl.lock(5, 5);
        assert_eq!(rl.holders(), 2);
    }

    #[test]
    fn overlap_blocks_and_wakes() {
        // A thread queues on an overlapping range; it cannot make progress
        // while the conflicting guard is held, and the release wakes it.
        let rl = Arc::new(RangeLock::new());
        let order = Arc::new(AtomicUsize::new(0));
        let g = rl.lock(0, 8);
        let t = {
            let rl = Arc::clone(&rl);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let _g = rl.lock(4, 12);
                order.fetch_add(1, Ordering::SeqCst);
            })
        };
        // Whatever the scheduling, the overlap cannot be acquired while `g`
        // lives — the counter must still be zero.
        std::thread::yield_now();
        assert_eq!(order.load(Ordering::SeqCst), 0, "blocked while held");
        drop(g);
        t.join().unwrap();
        assert_eq!(order.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn table_isolates_pids() {
        let tbl = RangeLockTable::new();
        let a = tbl.for_pid(Pid(1));
        let b = tbl.for_pid(Pid(2));
        let _ga = a.lock(0, 4);
        assert!(b.try_lock(0, 4).is_some(), "other pid unaffected");
        assert!(Arc::ptr_eq(&a, &tbl.for_pid(Pid(1))), "stable per pid");
        tbl.forget_pid(Pid(1));
        assert!(!Arc::ptr_eq(&a, &tbl.for_pid(Pid(1))), "fresh after forget");
    }
}
