//! Errors of the registration layer.

use std::fmt;

use simmem::MmError;

/// Errors returned by registration, pinning and cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegError {
    /// An underlying VM operation failed.
    Mm(MmError),
    /// Unknown memory handle.
    NoSuchHandle,
    /// The registration limit (TPT capacity, cache capacity) is exhausted.
    LimitExceeded,
    /// A page could not be pinned because the kernel holds its I/O lock; the
    /// caller should wait for the I/O to finish and retry (the real
    /// mechanism sleeps on the page wait queue).
    WouldBlock,
    /// The strategy cannot express the requested operation (e.g. zero-length
    /// region).
    InvalidArgument(&'static str),
    /// Pin-table bookkeeping violated (unpin of an unpinned frame).
    PinUnderflow,
}

impl fmt::Display for RegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegError::Mm(e) => write!(f, "memory-management error: {e}"),
            RegError::NoSuchHandle => write!(f, "no such memory handle"),
            RegError::LimitExceeded => write!(f, "registration limit exceeded"),
            RegError::WouldBlock => write!(f, "page locked for I/O; retry"),
            RegError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            RegError::PinUnderflow => write!(f, "pin count underflow"),
        }
    }
}

impl std::error::Error for RegError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegError::Mm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MmError> for RegError {
    fn from(e: MmError) -> Self {
        // A busy page surfaces as WouldBlock so callers uniformly model the
        // page-wait-queue sleep.
        match e {
            MmError::PageBusy(_) => RegError::WouldBlock,
            other => RegError::Mm(other),
        }
    }
}

/// Result alias for this crate.
pub type RegResult<T> = Result<T, RegError>;

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::FrameId;

    #[test]
    fn page_busy_becomes_would_block() {
        let e: RegError = MmError::PageBusy(FrameId(3)).into();
        assert_eq!(e, RegError::WouldBlock);
    }

    #[test]
    fn other_mm_errors_pass_through() {
        let e: RegError = MmError::OutOfMemory.into();
        assert_eq!(e, RegError::Mm(MmError::OutOfMemory));
    }

    #[test]
    fn display_is_informative() {
        assert!(format!("{}", RegError::WouldBlock).contains("retry"));
        assert!(format!("{}", RegError::Mm(MmError::SwapFull)).contains("swap"));
    }
}
