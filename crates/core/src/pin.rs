//! The pin table: per-frame pin counts giving `PG_locked` the **nesting**
//! semantics raw kiobufs lack.
//!
//! `lock_kiobuf` on a page that another registration already locked would
//! sleep forever (nobody else will unlock it). The paper's mechanism
//! therefore keeps a small kernel-agent-side table mapping each pinned frame
//! to a count: the first pin takes the page's I/O lock, later pins of the
//! same frame only bump the count, and the lock is dropped when the final
//! unpin brings the count to zero. Multiple (and overlapping) registrations
//! of the same memory thereby behave exactly as the VIA specification
//! requires.

use std::collections::HashMap;

use simmem::{page::PageFlags, FrameId, Kernel};

use crate::error::{RegError, RegResult};

/// Per-frame pin counts shared by all kiobuf-based registrations.
#[derive(Debug, Default)]
pub struct PinTable {
    counts: HashMap<FrameId, u32>,
}

impl PinTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin one frame. The first pin acquires `PG_locked`; if a *foreign*
    /// holder (in-flight disk I/O) owns the bit, [`RegError::WouldBlock`] is
    /// returned and the caller retries once the I/O completes — modelling
    /// the page-wait-queue sleep of the real mechanism.
    pub fn pin(&mut self, kernel: &mut Kernel, frame: FrameId) -> RegResult<()> {
        let entry = self.counts.entry(frame).or_insert(0);
        if *entry == 0 {
            if kernel
                .page_descriptor(frame)
                .flags
                .contains(PageFlags::LOCKED)
            {
                // Someone else (kernel I/O) holds the lock: we must wait.
                self.counts.remove(&frame);
                return Err(RegError::WouldBlock);
            }
            kernel.raw_set_page_flag(frame, PageFlags::LOCKED);
        }
        *entry += 1;
        Ok(())
    }

    /// Unpin one frame; the last unpin releases `PG_locked`.
    pub fn unpin(&mut self, kernel: &mut Kernel, frame: FrameId) -> RegResult<()> {
        match self.counts.get_mut(&frame) {
            None => Err(RegError::PinUnderflow),
            Some(c) if *c == 0 => Err(RegError::PinUnderflow),
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&frame);
                    kernel.raw_clear_page_flag(frame, PageFlags::LOCKED);
                }
                Ok(())
            }
        }
    }

    /// Pin a whole frame list transactionally: on failure everything pinned
    /// so far is rolled back.
    pub fn pin_all(&mut self, kernel: &mut Kernel, frames: &[FrameId]) -> RegResult<()> {
        for (i, &f) in frames.iter().enumerate() {
            if let Err(e) = self.pin(kernel, f) {
                for &g in &frames[..i] {
                    self.unpin(kernel, g).expect("rollback of fresh pin");
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Unpin a whole frame list.
    pub fn unpin_all(&mut self, kernel: &mut Kernel, frames: &[FrameId]) -> RegResult<()> {
        for &f in frames {
            self.unpin(kernel, f)?;
        }
        Ok(())
    }

    /// Current pin count of a frame (0 if not pinned).
    pub fn count(&self, frame: FrameId) -> u32 {
        self.counts.get(&frame).copied().unwrap_or(0)
    }

    /// Number of distinct pinned frames.
    pub fn pinned_frames(&self) -> usize {
        self.counts.len()
    }

    /// Invariant check for property tests: every tracked frame has a
    /// positive count and carries `PG_locked`.
    pub fn check_invariants(&self, kernel: &Kernel) -> Result<(), String> {
        for (&f, &c) in &self.counts {
            if c == 0 {
                return Err(format!("frame {} tracked with zero count", f.0));
            }
            if !kernel
                .page_descriptor(f)
                .flags
                .contains(PageFlags::LOCKED)
            {
                return Err(format!("pinned frame {} lost PG_locked", f.0));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, Capabilities, KernelConfig, PAGE_SIZE};

    fn setup() -> (Kernel, Vec<FrameId>) {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k.mmap_anon(pid, 4 * PAGE_SIZE, prot::READ | prot::WRITE).unwrap();
        k.touch_pages(pid, a, 4 * PAGE_SIZE, true).unwrap();
        let frames: Vec<FrameId> = k
            .frames_of_range(pid, a, 4 * PAGE_SIZE)
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        (k, frames)
    }

    #[test]
    fn first_pin_locks_last_unpin_unlocks() {
        let (mut k, frames) = setup();
        let mut pt = PinTable::new();
        let f = frames[0];
        pt.pin(&mut k, f).unwrap();
        assert!(k.page_descriptor(f).flags.contains(PageFlags::LOCKED));
        pt.pin(&mut k, f).unwrap();
        assert_eq!(pt.count(f), 2);
        pt.unpin(&mut k, f).unwrap();
        assert!(
            k.page_descriptor(f).flags.contains(PageFlags::LOCKED),
            "still pinned once: lock held"
        );
        pt.unpin(&mut k, f).unwrap();
        assert!(!k.page_descriptor(f).flags.contains(PageFlags::LOCKED));
        assert_eq!(pt.count(f), 0);
        pt.check_invariants(&k).unwrap();
    }

    #[test]
    fn foreign_io_lock_blocks() {
        let (mut k, frames) = setup();
        let mut pt = PinTable::new();
        let f = frames[1];
        k.begin_page_io(f);
        assert_eq!(pt.pin(&mut k, f), Err(RegError::WouldBlock));
        assert!(k.end_page_io(f), "I/O lock intact despite pin attempt");
        // Retry after I/O completes succeeds.
        pt.pin(&mut k, f).unwrap();
        pt.unpin(&mut k, f).unwrap();
    }

    #[test]
    fn pin_all_rolls_back_on_failure() {
        let (mut k, frames) = setup();
        let mut pt = PinTable::new();
        k.begin_page_io(frames[2]);
        assert_eq!(pt.pin_all(&mut k, &frames), Err(RegError::WouldBlock));
        for &f in &[frames[0], frames[1], frames[3]] {
            assert!(
                !k.page_descriptor(f).flags.contains(PageFlags::LOCKED),
                "rollback cleared partial pins"
            );
            assert_eq!(pt.count(f), 0);
        }
        k.end_page_io(frames[2]);
        pt.pin_all(&mut k, &frames).unwrap();
        assert_eq!(pt.pinned_frames(), 4);
        pt.unpin_all(&mut k, &frames).unwrap();
        assert_eq!(pt.pinned_frames(), 0);
    }

    #[test]
    fn unpin_underflow_detected() {
        let (mut k, frames) = setup();
        let mut pt = PinTable::new();
        assert_eq!(pt.unpin(&mut k, frames[0]), Err(RegError::PinUnderflow));
    }
}
