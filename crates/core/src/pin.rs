//! The pin table: per-frame pin counts giving `PG_locked` the **nesting**
//! semantics raw kiobufs lack.
//!
//! `lock_kiobuf` on a page that another registration already locked would
//! sleep forever (nobody else will unlock it). The paper's mechanism
//! therefore keeps a small kernel-agent-side table mapping each pinned frame
//! to a count: the first pin takes the page's I/O lock, later pins of the
//! same frame only bump the count, and the lock is dropped when the final
//! unpin brings the count to zero. Multiple (and overlapping) registrations
//! of the same memory thereby behave exactly as the VIA specification
//! requires.
//!
//! Counts live in a dense `Vec<u32>` indexed by frame id — frame ids are
//! small and dense in the simulated kernel (as `struct page` indices are in
//! the real one), so a pin/unpin is an array access, not a hash probe.

use simmem::{page::PageFlags, FrameId, Kernel, Pid, VirtAddr, PAGE_SIZE};

use crate::error::{RegError, RegResult};

/// Per-frame pin counts shared by all kiobuf-based registrations.
#[derive(Debug, Default)]
pub struct PinTable {
    /// `counts[frame.0]`, grown on demand; zero = not pinned.
    counts: Vec<u32>,
    /// Number of distinct frames with a positive count.
    pinned: usize,
}

impl PinTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin one frame. The first pin acquires `PG_locked`; if a *foreign*
    /// holder (in-flight disk I/O) owns the bit, [`RegError::WouldBlock`] is
    /// returned and the caller retries once the I/O completes — modelling
    /// the page-wait-queue sleep of the real mechanism.
    pub fn pin(&mut self, kernel: &mut Kernel, frame: FrameId) -> RegResult<()> {
        let idx = frame.0 as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        if self.counts[idx] == 0 {
            if kernel
                .page_descriptor(frame)
                .flags()
                .contains(PageFlags::LOCKED)
                || kernel.inject(simmem::inject::PAGE_LOCK)
            {
                // Someone else (kernel I/O) holds the lock: we must wait.
                return Err(RegError::WouldBlock);
            }
            kernel.raw_set_page_flag(frame, PageFlags::LOCKED);
            self.pinned += 1;
        }
        self.counts[idx] += 1;
        Ok(())
    }

    /// Unpin one frame; the last unpin releases `PG_locked`.
    pub fn unpin(&mut self, kernel: &mut Kernel, frame: FrameId) -> RegResult<()> {
        let Some(c) = self.counts.get_mut(frame.0 as usize) else {
            return Err(RegError::PinUnderflow);
        };
        if *c == 0 {
            return Err(RegError::PinUnderflow);
        }
        *c -= 1;
        if *c == 0 {
            self.pinned -= 1;
            kernel.raw_clear_page_flag(frame, PageFlags::LOCKED);
        }
        Ok(())
    }

    /// Pin a whole frame list transactionally: on failure everything pinned
    /// so far is rolled back.
    pub fn pin_all(&mut self, kernel: &mut Kernel, frames: &[FrameId]) -> RegResult<()> {
        for (i, &f) in frames.iter().enumerate() {
            if let Err(e) = self.pin(kernel, f) {
                for &g in &frames[..i] {
                    self.unpin(kernel, g).expect("rollback of fresh pin");
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Unpin a whole frame list.
    pub fn unpin_all(&mut self, kernel: &mut Kernel, frames: &[FrameId]) -> RegResult<()> {
        for &f in frames {
            self.unpin(kernel, f)?;
        }
        Ok(())
    }

    /// The proposal's batched registration path: per page, fault in and
    /// take a reference, then immediately take the page lock through the
    /// table — **before** the next page's fault can trigger reclaim. (Under
    /// the substrate's 2.2 eviction semantics a referenced-but-unlocked
    /// page can still be orphaned, so the lock must not wait for a second
    /// pass over the range.) On any failure everything acquired so far —
    /// references and pins — is rolled back.
    pub fn pin_user_range(
        &mut self,
        kernel: &mut Kernel,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> RegResult<Vec<FrameId>> {
        let start = simmem::page_base(addr);
        let end = simmem::page_align_up(addr + len as u64);
        let mut frames = Vec::with_capacity(((end - start) as usize) / PAGE_SIZE);
        let mut a = start;
        while a < end {
            let f = match kernel.get_user_page(pid, a) {
                Ok(f) => f,
                Err(e) => {
                    self.rollback(kernel, &frames);
                    return Err(e.into());
                }
            };
            if let Err(e) = self.pin(kernel, f) {
                kernel.put_user_page(f);
                self.rollback(kernel, &frames);
                return Err(e);
            }
            frames.push(f);
            a += PAGE_SIZE as u64;
        }
        Ok(frames)
    }

    /// Undo a [`PinTable::pin_user_range`]: unpin and drop the page
    /// reference on each frame.
    pub fn unpin_user_range(&mut self, kernel: &mut Kernel, frames: &[FrameId]) -> RegResult<()> {
        for &f in frames {
            self.unpin(kernel, f)?;
            kernel.put_user_page(f);
        }
        Ok(())
    }

    fn rollback(&mut self, kernel: &mut Kernel, frames: &[FrameId]) {
        for &g in frames {
            self.unpin(kernel, g).expect("rollback of fresh pin");
            kernel.put_user_page(g);
        }
    }

    /// Current pin count of a frame (0 if not pinned).
    pub fn count(&self, frame: FrameId) -> u32 {
        self.counts.get(frame.0 as usize).copied().unwrap_or(0)
    }

    /// Number of distinct pinned frames.
    pub fn pinned_frames(&self) -> usize {
        self.pinned
    }

    /// Invariant check for property tests: the pinned-frame counter matches
    /// the table and every pinned frame carries `PG_locked`.
    pub fn check_invariants(&self, kernel: &Kernel) -> Result<(), String> {
        let mut pinned = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            pinned += 1;
            let f = FrameId(i as u32);
            if !kernel
                .page_descriptor(f)
                .flags()
                .contains(PageFlags::LOCKED)
            {
                return Err(format!("pinned frame {i} lost PG_locked"));
            }
        }
        if pinned != self.pinned {
            return Err(format!(
                "pinned-frame counter {} != table census {}",
                self.pinned, pinned
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::{prot, Capabilities, KernelConfig};

    fn setup() -> (Kernel, Pid, VirtAddr, Vec<FrameId>) {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, 4 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        k.touch_pages(pid, a, 4 * PAGE_SIZE, true).unwrap();
        let frames: Vec<FrameId> = k
            .frames_of_range(pid, a, 4 * PAGE_SIZE)
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        (k, pid, a, frames)
    }

    #[test]
    fn first_pin_locks_last_unpin_unlocks() {
        let (mut k, _, _, frames) = setup();
        let mut pt = PinTable::new();
        let f = frames[0];
        pt.pin(&mut k, f).unwrap();
        assert!(k.page_descriptor(f).flags().contains(PageFlags::LOCKED));
        pt.pin(&mut k, f).unwrap();
        assert_eq!(pt.count(f), 2);
        pt.unpin(&mut k, f).unwrap();
        assert!(
            k.page_descriptor(f).flags().contains(PageFlags::LOCKED),
            "still pinned once: lock held"
        );
        pt.unpin(&mut k, f).unwrap();
        assert!(!k.page_descriptor(f).flags().contains(PageFlags::LOCKED));
        assert_eq!(pt.count(f), 0);
        pt.check_invariants(&k).unwrap();
    }

    #[test]
    fn foreign_io_lock_blocks() {
        let (mut k, _, _, frames) = setup();
        let mut pt = PinTable::new();
        let f = frames[1];
        k.begin_page_io(f);
        assert_eq!(pt.pin(&mut k, f), Err(RegError::WouldBlock));
        assert!(k.end_page_io(f), "I/O lock intact despite pin attempt");
        // Retry after I/O completes succeeds.
        pt.pin(&mut k, f).unwrap();
        pt.unpin(&mut k, f).unwrap();
    }

    #[test]
    fn pin_all_rolls_back_on_failure() {
        let (mut k, _, _, frames) = setup();
        let mut pt = PinTable::new();
        k.begin_page_io(frames[2]);
        assert_eq!(pt.pin_all(&mut k, &frames), Err(RegError::WouldBlock));
        for &f in &[frames[0], frames[1], frames[3]] {
            assert!(
                !k.page_descriptor(f).flags().contains(PageFlags::LOCKED),
                "rollback cleared partial pins"
            );
            assert_eq!(pt.count(f), 0);
        }
        k.end_page_io(frames[2]);
        pt.pin_all(&mut k, &frames).unwrap();
        assert_eq!(pt.pinned_frames(), 4);
        pt.unpin_all(&mut k, &frames).unwrap();
        assert_eq!(pt.pinned_frames(), 0);
    }

    #[test]
    fn pin_user_range_pins_and_rolls_back() {
        let (mut k, pid, a, frames) = setup();
        let mut pt = PinTable::new();
        // Foreign I/O on page 2: the batch must fail and leave no trace —
        // no pins, no stray page references.
        let count0 = k.page_descriptor(frames[0]).count();
        k.begin_page_io(frames[2]);
        assert_eq!(
            pt.pin_user_range(&mut k, pid, a, 4 * PAGE_SIZE),
            Err(RegError::WouldBlock)
        );
        assert_eq!(pt.pinned_frames(), 0);
        assert_eq!(
            k.page_descriptor(frames[0]).count(),
            count0,
            "refs rolled back"
        );
        assert!(k.end_page_io(frames[2]), "foreign lock untouched");
        // Retry succeeds; unpin_user_range restores everything.
        let got = pt.pin_user_range(&mut k, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(got, frames);
        assert_eq!(pt.pinned_frames(), 4);
        pt.check_invariants(&k).unwrap();
        pt.unpin_user_range(&mut k, &got).unwrap();
        assert_eq!(pt.pinned_frames(), 0);
        assert_eq!(k.page_descriptor(frames[0]).count(), count0);
    }

    #[test]
    fn unpin_underflow_detected() {
        let (mut k, _, _, frames) = setup();
        let mut pt = PinTable::new();
        assert_eq!(pt.unpin(&mut k, frames[0]), Err(RegError::PinUnderflow));
    }
}
