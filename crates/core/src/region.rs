//! The region table: handle → registered-region bookkeeping.
//!
//! This is the kernel-agent-side record behind each memory handle the VIPL
//! returns from `VipRegisterMem`. A NIC's Translation and Protection Table
//! is filled from the `frames` recorded here.

use std::collections::BTreeMap;

use simmem::{FrameId, Pid, VirtAddr, PAGE_SIZE};

use crate::error::{RegError, RegResult};
use crate::span::SpanIndex;
use crate::strategy::{PinToken, StrategyKind};

/// Opaque memory handle returned by registration (the VIA
/// `VIP_MEM_HANDLE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemHandle(pub u64);

/// One registered memory region.
#[derive(Debug)]
pub struct Region {
    pub handle: MemHandle,
    pub pid: Pid,
    /// Original (possibly unaligned) user address.
    pub user_addr: VirtAddr,
    /// Original request length in bytes.
    pub len: usize,
    /// Page-aligned base of the pinned range.
    pub page_base: VirtAddr,
    /// Pages spanned by the registration. For eager strategies this equals
    /// `frames.len()`; for on-demand regions the span is reserved up front
    /// while `frames` stays empty (residency lives in the lazy ledger).
    pub npages: usize,
    /// Physical frames backing the range, one per page, captured at
    /// registration time — what goes into the TPT. Empty for on-demand
    /// regions, whose TPT entries start non-resident.
    pub frames: Vec<FrameId>,
    pub strategy: StrategyKind,
    /// Strategy-private undo state; taken on deregistration.
    pub(crate) token: Option<PinToken>,
}

impl Region {
    /// Translate a byte offset *relative to `user_addr`* into
    /// (frame, offset-within-frame). This is the TPT lookup a NIC performs
    /// for every DMA access.
    pub fn translate(&self, offset: usize) -> RegResult<(FrameId, usize)> {
        if offset >= self.len {
            return Err(RegError::InvalidArgument("offset beyond region"));
        }
        let abs = self.user_addr + offset as u64;
        let page_index = ((abs - self.page_base) / PAGE_SIZE as u64) as usize;
        let in_page = (abs & (PAGE_SIZE as u64 - 1)) as usize;
        // Pages the registration did not capture (on-demand spans) report
        // WouldBlock: the caller resolves residency via the lazy ledger.
        let frame = self
            .frames
            .get(page_index)
            .copied()
            .ok_or(RegError::WouldBlock)?;
        Ok((frame, in_page))
    }

    /// Number of pages spanned by the registration (pinned or reserved).
    pub fn npages(&self) -> usize {
        self.npages
    }
}

/// Table of live regions, with a per-pid interval index so covering-region
/// lookups don't scan the whole table.
#[derive(Debug, Default)]
pub struct RegionTable {
    regions: BTreeMap<MemHandle, Region>,
    /// `(pid, [page_base, page_end))` → handle, for `find_covering`.
    index: SpanIndex<MemHandle>,
    /// Running sum of `frames.len()` over live regions.
    total_pages: usize,
    next: u64,
}

impl RegionTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(
        &mut self,
        pid: Pid,
        user_addr: VirtAddr,
        len: usize,
        frames: Vec<FrameId>,
        strategy: StrategyKind,
        token: PinToken,
    ) -> MemHandle {
        self.next += 1;
        let handle = MemHandle(self.next);
        let page_base = simmem::page_base(user_addr);
        // Eager strategies record one frame per page; on-demand regions
        // record none and reserve the whole span.
        let npages = crate::strategy::npages(user_addr, len).max(frames.len());
        let page_end = page_base + (npages * PAGE_SIZE) as u64;
        self.index.insert(pid, page_base, page_end, handle);
        self.total_pages += npages;
        self.regions.insert(
            handle,
            Region {
                handle,
                pid,
                user_addr,
                len,
                page_base,
                npages,
                frames,
                strategy,
                token: Some(token),
            },
        );
        handle
    }

    pub fn get(&self, handle: MemHandle) -> RegResult<&Region> {
        self.regions.get(&handle).ok_or(RegError::NoSuchHandle)
    }

    pub fn remove(&mut self, handle: MemHandle) -> RegResult<Region> {
        let region = self.regions.remove(&handle).ok_or(RegError::NoSuchHandle)?;
        self.index.remove(region.pid, region.page_base, handle);
        self.total_pages -= region.npages;
        Ok(region)
    }

    /// A live region of `pid` whose pinned page span covers
    /// `[start, start+len)`. O(log n + window) via the interval index; the
    /// window is bounded by the largest region ever registered, not the
    /// live-region count.
    pub fn find_covering(&self, pid: Pid, start: VirtAddr, len: usize) -> Option<MemHandle> {
        self.find_covering_probed(pid, start, len).0
    }

    /// [`RegionTable::find_covering`] plus the number of index entries
    /// probed — deterministic evidence for complexity assertions in tests
    /// and benches.
    #[doc(hidden)]
    pub fn find_covering_probed(
        &self,
        pid: Pid,
        start: VirtAddr,
        len: usize,
    ) -> (Option<MemHandle>, usize) {
        self.index
            .find_covering_probed(pid, start, start + len as u64)
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total pinned pages across all live regions (pages pinned twice count
    /// twice — this is the TPT-occupancy view). A running counter, not a
    /// table scan.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Iterate live regions.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_region() -> Region {
        Region {
            handle: MemHandle(1),
            pid: Pid(1),
            user_addr: 0x1000 + 100,
            len: 2 * PAGE_SIZE,
            page_base: 0x1000,
            npages: 3,
            frames: vec![FrameId(10), FrameId(11), FrameId(12)],
            strategy: StrategyKind::KiobufReliable,
            token: None,
        }
    }

    #[test]
    fn translate_within_pages() {
        let r = mk_region();
        // offset 0 → abs 0x1000+100 → page 0, in-page 100.
        assert_eq!(r.translate(0).unwrap(), (FrameId(10), 100));
        // Crossing into the second page.
        let off = PAGE_SIZE - 100;
        assert_eq!(r.translate(off).unwrap(), (FrameId(11), 0));
        assert_eq!(r.translate(off + 5).unwrap(), (FrameId(11), 5));
        // Last byte.
        let (f, o) = r.translate(2 * PAGE_SIZE - 1).unwrap();
        assert_eq!(f, FrameId(12));
        assert_eq!(o, 99);
    }

    #[test]
    fn translate_out_of_range() {
        let r = mk_region();
        assert!(r.translate(2 * PAGE_SIZE).is_err());
    }

    #[test]
    fn table_crud() {
        let mut t = RegionTable::new();
        let h1 = t.insert(
            Pid(1),
            0x1000,
            PAGE_SIZE,
            vec![FrameId(1)],
            StrategyKind::RefcountOnly,
            PinToken::Refcount {
                frames: vec![FrameId(1)],
            },
        );
        let h2 = t.insert(
            Pid(1),
            0x1000,
            PAGE_SIZE,
            vec![FrameId(1)],
            StrategyKind::RefcountOnly,
            PinToken::Refcount {
                frames: vec![FrameId(1)],
            },
        );
        assert_ne!(h1, h2, "multiple registration yields distinct handles");
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_pages(), 2);
        t.remove(h1).unwrap();
        assert!(t.remove(h1).is_err(), "double deregistration rejected");
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_pages(), 1);
    }

    #[test]
    fn covering_lookup_tracks_inserts_and_removals() {
        let mut t = RegionTable::new();
        let frames = vec![FrameId(1), FrameId(2), FrameId(3), FrameId(4)];
        let h = t.insert(
            Pid(1),
            0x1000,
            4 * PAGE_SIZE,
            frames,
            StrategyKind::KiobufReliable,
            PinToken::Refcount { frames: vec![] },
        );
        assert_eq!(t.find_covering(Pid(1), 0x2000, PAGE_SIZE), Some(h));
        assert_eq!(
            t.find_covering(Pid(2), 0x2000, PAGE_SIZE),
            None,
            "other pid"
        );
        assert_eq!(
            t.find_covering(Pid(1), 0x4000, 2 * PAGE_SIZE),
            None,
            "overhang"
        );
        t.remove(h).unwrap();
        assert_eq!(t.find_covering(Pid(1), 0x2000, PAGE_SIZE), None);
    }
}
