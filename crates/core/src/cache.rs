//! The registration cache.
//!
//! The paper (section 1): *"the bad effects \[of dynamic registration\] can
//! be remedied by 'caching' registered regions, i.e. by keeping them
//! registered as long as possible."* Zero-copy protocols register the user
//! buffer of every long send; with a cache, a buffer that was registered
//! before — the common case for applications with buffer reuse — costs a
//! table lookup instead of a kernel trap plus per-page pinning.
//!
//! The cache logic itself lives in the generic [`CoveringLru`]: covering
//! hits (a sub-range of a cached span is a hit, not a re-registration),
//! stamp-ordered O(log n) eviction of idle entries within a page budget,
//! and O(1) release through a handle reverse map. This type binds it to a
//! [`MemoryRegistry`], turning misses into `register` calls and evictions
//! into `deregister` calls.

use std::sync::Mutex;

use simmem::{Kernel, Pid, VirtAddr};

use crate::error::{RegError, RegResult};
use crate::lru::{CacheReleaseError, CoveringLru};
use crate::region::MemHandle;
use crate::registry::MemoryRegistry;
use crate::shard::{ShardedRegistry, SharedKernel};

pub use crate::lru::CacheStats;

fn release_err(e: CacheReleaseError) -> RegError {
    match e {
        CacheReleaseError::UnknownHandle => RegError::NoSuchHandle,
        CacheReleaseError::Underflow => RegError::PinUnderflow,
    }
}

/// LRU cache of live registrations in front of a [`MemoryRegistry`].
pub struct RegistrationCache {
    lru: CoveringLru<MemHandle>,
}

impl RegistrationCache {
    /// Cache with a page budget (the paper's "as long as possible" bounded
    /// by the pinnable-memory limit).
    pub fn new(capacity_pages: usize) -> Self {
        RegistrationCache {
            lru: CoveringLru::new(capacity_pages),
        }
    }

    /// Acquire a registration for `[addr, addr+len)`: reuse a cached one
    /// (exact span or any covering span) or register anew. Pair every
    /// acquire with [`RegistrationCache::release`].
    pub fn acquire(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut MemoryRegistry,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> RegResult<MemHandle> {
        if let Some(handle) = self.lru.acquire(pid, addr, len) {
            return Ok(handle);
        }
        // Register the full page span so any sub-span request hits.
        let page_base = simmem::page_base(addr);
        let span_len = crate::strategy::npages(addr, len) * simmem::PAGE_SIZE;
        let handle = registry.register(kernel, pid, page_base, span_len)?;
        self.lru.admit(pid, addr, len, handle);
        Ok(handle)
    }

    /// Release a prior acquisition. The registration stays cached; unused
    /// entries beyond the page budget are evicted LRU-first. Releasing a
    /// handle more often than it was acquired is an error
    /// ([`RegError::PinUnderflow`]), not a silent saturation.
    pub fn release(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut MemoryRegistry,
        handle: MemHandle,
    ) -> RegResult<()> {
        self.lru.release(handle).map_err(release_err)?;
        for victim in self.lru.evict_over_budget() {
            registry.deregister(kernel, victim)?;
        }
        Ok(())
    }

    /// Drop every unused cached registration (shutdown / low-memory
    /// callback).
    pub fn flush(&mut self, kernel: &mut Kernel, registry: &mut MemoryRegistry) -> RegResult<()> {
        for victim in self.lru.drain_idle() {
            registry.deregister(kernel, victim)?;
        }
        Ok(())
    }

    /// Total pages held by cached registrations (used + unused).
    pub fn cached_pages(&self) -> usize {
        self.lru.cached_pages()
    }

    /// Number of cached registrations.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Performance counters.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }
}

/// Thread-safe registration cache in front of a [`ShardedRegistry`]: the
/// concurrent path's counterpart to [`RegistrationCache`].
///
/// The [`CoveringLru`] sits behind one mutex, but that mutex is only held
/// for the O(log n) map operations — never across a registration or
/// deregistration, so a thread faulting pages in on a miss does not stall
/// every other thread's cache hits. Two threads missing on the same span
/// may both register; the loser detects the covering entry on re-check,
/// deregisters its own registration and joins the winner's.
pub struct SharedRegistrationCache {
    lru: Mutex<CoveringLru<MemHandle>>,
}

impl SharedRegistrationCache {
    /// Cache with a page budget, as [`RegistrationCache::new`].
    pub fn new(capacity_pages: usize) -> Self {
        SharedRegistrationCache {
            lru: Mutex::new(CoveringLru::new(capacity_pages)),
        }
    }

    fn lru(&self) -> std::sync::MutexGuard<'_, CoveringLru<MemHandle>> {
        self.lru.lock().expect("registration cache poisoned")
    }

    /// Acquire a registration for `[addr, addr+len)`: cached span (exact or
    /// covering) or a fresh registration through the sharded registry. Pair
    /// every acquire with [`SharedRegistrationCache::release`].
    pub fn acquire(
        &self,
        kernel: &SharedKernel,
        registry: &ShardedRegistry,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> RegResult<MemHandle> {
        if let Some(handle) = self.lru().acquire(pid, addr, len) {
            return Ok(handle);
        }
        // Miss: register the full page span outside the cache lock.
        let page_base = simmem::page_base(addr);
        let span_len = crate::strategy::npages(addr, len) * simmem::PAGE_SIZE;
        let handle = registry.register(kernel, pid, page_base, span_len)?;
        let mut lru = self.lru();
        if let Some(winner) = lru.acquire(pid, addr, len) {
            // A concurrent miss admitted a covering span first; fold into
            // it and drop our duplicate registration.
            drop(lru);
            registry.deregister(kernel, handle)?;
            return Ok(winner);
        }
        lru.admit(pid, addr, len, handle);
        Ok(handle)
    }

    /// Release a prior acquisition; idle entries beyond the page budget are
    /// evicted LRU-first (deregistered outside the cache lock).
    pub fn release(
        &self,
        kernel: &SharedKernel,
        registry: &ShardedRegistry,
        handle: MemHandle,
    ) -> RegResult<()> {
        let victims = {
            let mut lru = self.lru();
            lru.release(handle).map_err(release_err)?;
            lru.evict_over_budget()
        };
        for victim in victims {
            registry.deregister(kernel, victim)?;
        }
        Ok(())
    }

    /// Drop every unused cached registration.
    pub fn flush(&self, kernel: &SharedKernel, registry: &ShardedRegistry) -> RegResult<()> {
        let victims = self.lru().drain_idle();
        for victim in victims {
            registry.deregister(kernel, victim)?;
        }
        Ok(())
    }

    /// Total pages held by cached registrations (used + unused).
    pub fn cached_pages(&self) -> usize {
        self.lru().cached_pages()
    }

    /// Number of cached registrations.
    pub fn len(&self) -> usize {
        self.lru().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lru().is_empty()
    }

    /// Performance counters.
    pub fn stats(&self) -> CacheStats {
        self.lru().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrategyKind;
    use simmem::{prot, Capabilities, KernelConfig, PAGE_SIZE};

    fn setup() -> (Kernel, Pid, VirtAddr, MemoryRegistry) {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, 32 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        (k, pid, a, MemoryRegistry::new(StrategyKind::KiobufReliable))
    }

    #[test]
    fn second_acquire_hits() {
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(64);
        let h1 = cache
            .acquire(&mut k, &mut reg, pid, a, 4 * PAGE_SIZE)
            .unwrap();
        cache.release(&mut k, &mut reg, h1).unwrap();
        let h2 = cache
            .acquire(&mut k, &mut reg, pid, a, 4 * PAGE_SIZE)
            .unwrap();
        assert_eq!(h1, h2, "cache returns the live registration");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(
            reg.snapshot().registrations,
            1,
            "only one kernel registration"
        );
        cache.release(&mut k, &mut reg, h2).unwrap();
    }

    #[test]
    fn sub_span_acquire_is_a_covering_hit_with_zero_registrations() {
        // The tentpole semantics: [base+PAGE, base+3*PAGE) after caching
        // [base, base+8*PAGE) hits the cached span — no kernel trap, no
        // re-pin.
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(64);
        let big = cache
            .acquire(&mut k, &mut reg, pid, a, 8 * PAGE_SIZE)
            .unwrap();
        cache.release(&mut k, &mut reg, big).unwrap();
        assert_eq!(reg.snapshot().registrations, 1);

        let sub = cache
            .acquire(&mut k, &mut reg, pid, a + PAGE_SIZE as u64, 2 * PAGE_SIZE)
            .unwrap();
        assert_eq!(sub, big, "served by the covering span's handle");
        assert_eq!(reg.snapshot().registrations, 1, "zero new registrations");
        assert_eq!(cache.stats().covering_hits, 1);
        assert_eq!(cache.stats().hits, 0, "covering hits counted separately");
        assert_eq!(cache.stats().misses, 1);
        cache.release(&mut k, &mut reg, sub).unwrap();
    }

    #[test]
    fn lru_eviction_on_budget() {
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(8); // budget: 8 pages
        let mut handles = Vec::new();
        for i in 0..3 {
            let addr = a + (i * 4 * PAGE_SIZE) as u64;
            let h = cache
                .acquire(&mut k, &mut reg, pid, addr, 4 * PAGE_SIZE)
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
            handles.push(h);
        }
        // 12 pages acquired against an 8-page budget → oldest evicted.
        assert!(cache.cached_pages() <= 8);
        assert_eq!(cache.stats().evictions, 1);
        // Oldest is gone: re-acquiring it misses.
        let h = cache
            .acquire(&mut k, &mut reg, pid, a, 4 * PAGE_SIZE)
            .unwrap();
        assert_ne!(h, handles[0]);
        assert_eq!(cache.stats().misses, 4);
        cache.release(&mut k, &mut reg, h).unwrap();
    }

    #[test]
    fn in_use_entries_are_never_evicted() {
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(4);
        let h1 = cache
            .acquire(&mut k, &mut reg, pid, a, 4 * PAGE_SIZE)
            .unwrap();
        // Second region busts the budget while the first is still in use.
        let h2 = cache
            .acquire(
                &mut k,
                &mut reg,
                pid,
                a + 16 * PAGE_SIZE as u64,
                4 * PAGE_SIZE,
            )
            .unwrap();
        cache.release(&mut k, &mut reg, h2).unwrap();
        // h1 (in use) must survive; h2 (idle) is the only evictable one.
        assert!(reg.frames(h1).is_ok());
        cache.release(&mut k, &mut reg, h1).unwrap();
    }

    #[test]
    fn flush_clears_idle_entries() {
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(64);
        let h = cache
            .acquire(&mut k, &mut reg, pid, a, 2 * PAGE_SIZE)
            .unwrap();
        cache.release(&mut k, &mut reg, h).unwrap();
        cache.flush(&mut k, &mut reg).unwrap();
        assert!(cache.is_empty());
        assert_eq!(reg.live_regions(), 0);
    }

    #[test]
    fn hit_ratio() {
        let s = CacheStats {
            hits: 2,
            covering_hits: 1,
            misses: 1,
            evictions: 0,
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn shared_cache_hits_and_evicts_like_the_seed() {
        use std::sync::RwLock;
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, 32 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let nframes = k.meminfo().total_frames;
        let kernel = RwLock::new(k);
        let reg = crate::ShardedRegistry::new(StrategyKind::KiobufReliable, nframes);
        let cache = SharedRegistrationCache::new(8);

        let h1 = cache.acquire(&kernel, &reg, pid, a, 4 * PAGE_SIZE).unwrap();
        cache.release(&kernel, &reg, h1).unwrap();
        let h2 = cache.acquire(&kernel, &reg, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(h1, h2, "second acquire hits");
        assert_eq!(reg.snapshot().registrations, 1);
        cache.release(&kernel, &reg, h2).unwrap();

        // Busting the 8-page budget evicts the idle entry.
        let h3 = cache
            .acquire(&kernel, &reg, pid, a + 16 * PAGE_SIZE as u64, 8 * PAGE_SIZE)
            .unwrap();
        cache.release(&kernel, &reg, h3).unwrap();
        assert!(cache.cached_pages() <= 8);
        assert_eq!(cache.stats().evictions, 1);
        cache.flush(&kernel, &reg).unwrap();
        assert!(cache.is_empty());
        assert_eq!(reg.live_regions(), 0);
        assert_eq!(
            cache.release(&kernel, &reg, h3),
            Err(RegError::NoSuchHandle)
        );
    }

    #[test]
    fn unknown_handle_release_fails() {
        let (mut k, _, _, mut reg) = setup();
        let mut cache = RegistrationCache::new(4);
        assert_eq!(
            cache.release(&mut k, &mut reg, MemHandle(999)),
            Err(RegError::NoSuchHandle)
        );
    }

    #[test]
    fn double_release_is_an_error_not_a_saturation() {
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(64);
        let h = cache.acquire(&mut k, &mut reg, pid, a, PAGE_SIZE).unwrap();
        cache.release(&mut k, &mut reg, h).unwrap();
        assert_eq!(
            cache.release(&mut k, &mut reg, h),
            Err(RegError::PinUnderflow)
        );
    }
}
