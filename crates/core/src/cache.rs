//! The registration cache.
//!
//! The paper (section 1): *"the bad effects \[of dynamic registration\] can
//! be remedied by 'caching' registered regions, i.e. by keeping them
//! registered as long as possible."* Zero-copy protocols register the user
//! buffer of every long send; with a cache, a buffer that was registered
//! before — the common case for applications with buffer reuse — costs a
//! table lookup instead of a kernel trap plus per-page pinning.
//!
//! The cache is an LRU keyed by `(pid, page_base, npages)` holding live
//! [`MemHandle`]s with use counts; eviction deregisters only regions not
//! currently in use, and only when the configured page budget is exceeded.

use std::collections::HashMap;

use simmem::{Kernel, Pid, VirtAddr};

use crate::error::{RegError, RegResult};
use crate::region::MemHandle;
use crate::registry::MemoryRegistry;

/// Cache performance counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in [0, 1]; 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Key identifying a cacheable registration: same process, same page span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    pid: Pid,
    page_base: VirtAddr,
    npages: usize,
}

struct CacheEntry {
    handle: MemHandle,
    /// Outstanding acquisitions; only zero-use entries may be evicted.
    users: u32,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
    npages: usize,
}

/// LRU cache of live registrations in front of a [`MemoryRegistry`].
pub struct RegistrationCache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Page budget: cached-but-unused regions are evicted beyond this.
    capacity_pages: usize,
    clock: u64,
    pub stats: CacheStats,
}

impl RegistrationCache {
    /// Cache with a page budget (the paper's "as long as possible" bounded
    /// by the pinnable-memory limit).
    pub fn new(capacity_pages: usize) -> Self {
        RegistrationCache {
            entries: HashMap::new(),
            capacity_pages,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Acquire a registration for `[addr, addr+len)`: reuse a cached one or
    /// register anew. Pair every acquire with [`RegistrationCache::release`].
    pub fn acquire(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut MemoryRegistry,
        pid: Pid,
        addr: VirtAddr,
        len: usize,
    ) -> RegResult<MemHandle> {
        let key = CacheKey {
            pid,
            page_base: simmem::page_base(addr),
            npages: crate::strategy::npages(addr, len),
        };
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.users += 1;
            e.stamp = self.clock;
            self.stats.hits += 1;
            return Ok(e.handle);
        }
        self.stats.misses += 1;
        // Register the full page span so any same-span request hits.
        let span_len = key.npages * simmem::PAGE_SIZE;
        let handle = registry.register(kernel, pid, key.page_base, span_len)?;
        self.entries.insert(
            key,
            CacheEntry {
                handle,
                users: 1,
                stamp: self.clock,
                npages: key.npages,
            },
        );
        Ok(handle)
    }

    /// Release a prior acquisition. The registration stays cached; unused
    /// entries beyond the page budget are evicted LRU-first.
    pub fn release(
        &mut self,
        kernel: &mut Kernel,
        registry: &mut MemoryRegistry,
        handle: MemHandle,
    ) -> RegResult<()> {
        let key = self
            .entries
            .iter()
            .find(|(_, e)| e.handle == handle)
            .map(|(k, _)| *k)
            .ok_or(RegError::NoSuchHandle)?;
        {
            let e = self.entries.get_mut(&key).expect("found above");
            if e.users == 0 {
                return Err(RegError::PinUnderflow);
            }
            e.users -= 1;
        }
        self.shrink(kernel, registry)?;
        Ok(())
    }

    /// Evict unused LRU entries until within the page budget.
    fn shrink(&mut self, kernel: &mut Kernel, registry: &mut MemoryRegistry) -> RegResult<()> {
        while self.cached_pages() > self.capacity_pages {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.users == 0)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let e = self.entries.remove(&k).expect("victim present");
                    registry.deregister(kernel, e.handle)?;
                    self.stats.evictions += 1;
                }
                None => break, // everything in use: over budget but stuck
            }
        }
        Ok(())
    }

    /// Drop every unused cached registration (shutdown / low-memory
    /// callback).
    pub fn flush(&mut self, kernel: &mut Kernel, registry: &mut MemoryRegistry) -> RegResult<()> {
        let victims: Vec<CacheKey> = self
            .entries
            .iter()
            .filter(|(_, e)| e.users == 0)
            .map(|(k, _)| *k)
            .collect();
        for k in victims {
            let e = self.entries.remove(&k).expect("victim present");
            registry.deregister(kernel, e.handle)?;
            self.stats.evictions += 1;
        }
        Ok(())
    }

    /// Total pages held by cached registrations (used + unused).
    pub fn cached_pages(&self) -> usize {
        self.entries.values().map(|e| e.npages).sum()
    }

    /// Number of cached registrations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrategyKind;
    use simmem::{prot, Capabilities, KernelConfig, PAGE_SIZE};

    fn setup() -> (Kernel, Pid, VirtAddr, MemoryRegistry) {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, 32 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        (k, pid, a, MemoryRegistry::new(StrategyKind::KiobufReliable))
    }

    #[test]
    fn second_acquire_hits() {
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(64);
        let h1 = cache.acquire(&mut k, &mut reg, pid, a, 4 * PAGE_SIZE).unwrap();
        cache.release(&mut k, &mut reg, h1).unwrap();
        let h2 = cache.acquire(&mut k, &mut reg, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(h1, h2, "cache returns the live registration");
        assert_eq!(cache.stats.hits, 1);
        assert_eq!(cache.stats.misses, 1);
        assert_eq!(reg.stats.registrations, 1, "only one kernel registration");
        cache.release(&mut k, &mut reg, h2).unwrap();
    }

    #[test]
    fn lru_eviction_on_budget() {
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(8); // budget: 8 pages
        let mut handles = Vec::new();
        for i in 0..3 {
            let addr = a + (i * 4 * PAGE_SIZE) as u64;
            let h = cache.acquire(&mut k, &mut reg, pid, addr, 4 * PAGE_SIZE).unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
            handles.push(h);
        }
        // 12 pages acquired against an 8-page budget → oldest evicted.
        assert!(cache.cached_pages() <= 8);
        assert_eq!(cache.stats.evictions, 1);
        // Oldest is gone: re-acquiring it misses.
        let h = cache.acquire(&mut k, &mut reg, pid, a, 4 * PAGE_SIZE).unwrap();
        assert_ne!(h, handles[0]);
        assert_eq!(cache.stats.misses, 4);
        cache.release(&mut k, &mut reg, h).unwrap();
    }

    #[test]
    fn in_use_entries_are_never_evicted() {
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(4);
        let h1 = cache.acquire(&mut k, &mut reg, pid, a, 4 * PAGE_SIZE).unwrap();
        // Second region busts the budget while the first is still in use.
        let h2 = cache
            .acquire(&mut k, &mut reg, pid, a + 16 * PAGE_SIZE as u64, 4 * PAGE_SIZE)
            .unwrap();
        cache.release(&mut k, &mut reg, h2).unwrap();
        // h1 (in use) must survive; h2 (idle) is the only evictable one.
        assert!(reg.frames(h1).is_ok());
        cache.release(&mut k, &mut reg, h1).unwrap();
    }

    #[test]
    fn flush_clears_idle_entries() {
        let (mut k, pid, a, mut reg) = setup();
        let mut cache = RegistrationCache::new(64);
        let h = cache.acquire(&mut k, &mut reg, pid, a, 2 * PAGE_SIZE).unwrap();
        cache.release(&mut k, &mut reg, h).unwrap();
        cache.flush(&mut k, &mut reg).unwrap();
        assert!(cache.is_empty());
        assert_eq!(reg.live_regions(), 0);
    }

    #[test]
    fn hit_ratio() {
        let s = CacheStats { hits: 3, misses: 1, evictions: 0 };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn unknown_handle_release_fails() {
        let (mut k, _, _, mut reg) = setup();
        let mut cache = RegistrationCache::new(4);
        assert_eq!(
            cache.release(&mut k, &mut reg, MemHandle(999)),
            Err(RegError::NoSuchHandle)
        );
    }
}
