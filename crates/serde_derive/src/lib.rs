//! No-op derive macros standing in for `serde_derive` while the build is
//! offline. `#[derive(Serialize, Deserialize)]` parses (attributes like
//! `#[serde(...)]` are accepted and ignored) and expands to nothing; the
//! companion `serde` shim provides blanket trait impls so bounds still hold.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
