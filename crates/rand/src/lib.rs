//! Offline stand-in for the small slice of `rand` 0.9 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::random_range`
//! over half-open integer ranges. The core generator is SplitMix64 —
//! deterministic, fast, and statistically fine for the synthetic workloads
//! here (the real rand's ChaCha12 guarantees are not needed; nothing in
//! this repo is security-sensitive).

use core::ops::Range;

/// Mirrors `rand::RngCore` for the one method we need.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Mirrors `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer ranges that `Rng::random_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift reduction; bias is negligible for the
                // span sizes used in the workloads (< 2^32).
                let r = rng();
                self.start + ((r as u128 * span as u128) >> 64) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Mirrors `rand::Rng` (rand 0.9 spelling: `random_range`).
pub trait Rng: RngCore {
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.random_range(0u32..1 << 20);
            let y = b.random_range(0u32..1 << 20);
            assert_eq!(x, y);
            assert!(x < 1 << 20);
        }
    }

    #[test]
    fn covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
