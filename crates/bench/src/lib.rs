//! Shared setup helpers for the E1–E8 benches.

use simmem::{prot, Capabilities, Kernel, KernelConfig, Pid, VirtAddr, PAGE_SIZE};
use vialock::{MemoryRegistry, StrategyKind};

/// A comfortably large machine so registration benches never hit reclaim.
pub fn roomy_kernel() -> Kernel {
    Kernel::new(KernelConfig {
        nframes: 32 * 1024,
        reserved_frames: 64,
        swap_slots: 64 * 1024,
        default_rlimit_memlock: None,
            swap_cache: false,
    })
}

/// Kernel + process + touched buffer of `npages`, ready to register.
pub fn prepared_buffer(npages: usize) -> (Kernel, Pid, VirtAddr) {
    let mut k = roomy_kernel();
    let pid = k.spawn_process(Capabilities::default());
    let len = npages * PAGE_SIZE;
    let buf = k.mmap_anon(pid, len, prot::READ | prot::WRITE).expect("mmap");
    k.touch_pages(pid, buf, len, true).expect("touch");
    (k, pid, buf)
}

/// A registry for one strategy.
pub fn registry(strategy: StrategyKind) -> MemoryRegistry {
    MemoryRegistry::new(strategy)
}

/// Page counts used by the register/deregister sweeps (the figure's x-axis).
pub const SWEEP_PAGES: [usize; 5] = [1, 4, 16, 64, 256];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_buffer_is_resident() {
        let (k, pid, buf) = prepared_buffer(8);
        for f in k.frames_of_range(pid, buf, 8 * PAGE_SIZE).unwrap() {
            assert!(f.is_some());
        }
    }
}
