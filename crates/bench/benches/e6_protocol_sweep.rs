//! E6 — bandwidth vs. message size across the three protocols (Fig. E6).
//!
//! Prints the event-charged simulated-time series (the figure's data),
//! then benchmarks the wall-clock cost of the *functional* ping-pong per
//! protocol — the simulation itself must stay fast enough to sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use netsim::proto::ProtocolCosts;
use vialock::StrategyKind;
use workload::model::reg_cost_for;
use workload::netpipe::{measure_point, protocol_sweep, sweep_comm};
use workload::tables::{markdown_table, mbs, us};

fn print_series() {
    let sizes = [
        64usize,
        1024,
        8 * 1024,
        32 * 1024,
        128 * 1024,
        512 * 1024,
        2 * 1024 * 1024,
    ];
    println!("\n=== E6: functional protocol sweep (event-charged, kiobuf) ===");
    let pts = protocol_sweep(StrategyKind::KiobufReliable, &sizes, 2);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.bytes.to_string(),
                p.protocol.unwrap_or("?").into(),
                us(p.one_way_ns),
                mbs(p.bandwidth_mb_s),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["bytes", "protocol", "one-way (µs)", "MB/s"], &rows)
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut g = c.benchmark_group("e6_functional_pingpong");
    g.sample_size(20);
    for (label, bytes) in [
        ("shared-memory", 1024usize),
        ("one-copy", 64 * 1024),
        ("zero-copy", 512 * 1024),
    ] {
        g.throughput(Throughput::Bytes(bytes as u64));
        g.bench_with_input(BenchmarkId::new(label, bytes), &bytes, |b, &bytes| {
            let mut comm = sweep_comm(StrategyKind::KiobufReliable);
            let costs = ProtocolCosts::classic(reg_cost_for(StrategyKind::KiobufReliable));
            b.iter(|| measure_point(&mut comm, &costs, bytes, 1));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
