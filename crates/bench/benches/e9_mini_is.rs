//! E9 — the mini NAS-IS kernel: prints the per-network table and measures
//! the functional bucket-sort's wall-clock cost.

use criterion::{criterion_group, criterion_main, Criterion};

use workload::minis::run_mini_is;
use workload::tables::markdown_table;

fn print_table() {
    let rep = run_mini_is(4, 20_000, 1);
    assert!(rep.sorted_ok);
    let rows: Vec<Vec<String>> = rep
        .per_network
        .iter()
        .map(|r| {
            vec![
                r.network.to_string(),
                format!("{:.2}", r.comm_ns as f64 / 1e6),
                format!("{:.2}", r.total_ns as f64 / 1e6),
                format!("{:.2}", r.mkeys_per_s),
            ]
        })
        .collect();
    println!("\n=== E9: mini NAS-IS (4 ranks x 20k keys) ===");
    println!(
        "{}",
        markdown_table(&["network", "comm (ms)", "total (ms)", "Mkeys/s"], &rows)
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e9_mini_is");
    g.sample_size(10);
    g.bench_function("functional_4x2000", |b| {
        b.iter(|| run_mini_is(4, 2000, 7));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
