//! E10 — conventional PCI–SCI memory management (bigphys + ATU window +
//! bounce copies) vs. the VIA-style per-page registration, as a table and
//! as wall-clock per-buffer delivery cost.

use criterion::{criterion_group, criterion_main, Criterion};

use workload::oldstyle::{run_mm_comparison, run_new_style, run_old_style};
use workload::tables::{markdown_table, verdict};

fn print_table() {
    let rows: Vec<Vec<String>> = run_mm_comparison(16, 24 * 1024)
        .into_iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                r.reserved_frames.to_string(),
                r.payload_frames.to_string(),
                r.copied_bytes.to_string(),
                r.pinned_frames.to_string(),
                verdict(r.intact),
            ]
        })
        .collect();
    println!("\n=== E10: old vs new memory management (16 × 24 KiB buffers) ===");
    println!(
        "{}",
        markdown_table(
            &[
                "scheme",
                "reserved frames",
                "payload frames",
                "copied bytes",
                "pinned frames",
                "delivery",
            ],
            &rows,
        )
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e10_mm_comparison");
    g.sample_size(10);
    g.bench_function("old_style_8x24k", |b| {
        b.iter(|| run_old_style(8, 24 * 1024));
    });
    g.bench_function("new_style_8x24k", |b| {
        b.iter(|| run_new_style(8, 24 * 1024));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
