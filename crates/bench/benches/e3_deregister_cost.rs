//! E3 — deregistration cost vs. region size per strategy (Fig. E3).
//!
//! Isolated from registration by pre-registering a batch of handles and
//! timing only the deregistration drain (manual timing loop; Criterion's
//! `iter_custom` keeps the setup out of the measurement).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::{prepared_buffer, registry, SWEEP_PAGES};
use simmem::PAGE_SIZE;
use vialock::StrategyKind;

const BATCH: u64 = 64;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_deregister");
    for s in StrategyKind::ALL {
        for npages in SWEEP_PAGES {
            g.throughput(Throughput::Elements(npages as u64));
            g.bench_with_input(
                BenchmarkId::new(s.label(), npages),
                &npages,
                |b, &npages| {
                    let (mut k, pid, buf) = prepared_buffer(npages);
                    let mut reg = registry(s);
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        let mut done = 0u64;
                        while done < iters {
                            let n = BATCH.min(iters - done);
                            let handles: Vec<_> = (0..n)
                                .map(|_| {
                                    reg.register(&mut k, pid, buf, npages * PAGE_SIZE)
                                        .expect("register")
                                })
                                .collect();
                            let t0 = Instant::now();
                            for h in handles {
                                reg.deregister(&mut k, h).expect("deregister");
                            }
                            total += t0.elapsed();
                            done += n;
                        }
                        total
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
