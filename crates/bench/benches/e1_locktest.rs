//! E1 — the locktest experiment (paper §3.1, Table E1).
//!
//! Prints the verdict table the paper's experiment produces, then measures
//! the wall-clock cost of one full locktest round per strategy (dominated
//! by the antagonist's swap traffic — identical work for every strategy,
//! so differences reflect the pinning mechanism).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vialock::StrategyKind;
use workload::locktest::{run_locktest, run_locktest_matrix, run_pressure_sweep, run_semantics_ablation};
use workload::tables::{markdown_table, verdict};

fn print_table() {
    let rows: Vec<Vec<String>> = run_locktest_matrix(64)
        .into_iter()
        .map(|o| {
            vec![
                o.strategy.to_string(),
                format!("{}/{}", o.pages_moved, o.pages_total),
                if o.dma_visible { "yes" } else { "NO" }.into(),
                o.orphaned_frames.to_string(),
                o.swap_outs.to_string(),
                verdict(o.reliable),
            ]
        })
        .collect();
    println!("\n=== E1: locktest (64 registered pages) ===");
    println!(
        "{}",
        markdown_table(
            &["strategy", "pages moved", "DMA visible", "orphans", "swap-outs", "verdict"],
            &rows,
        )
    );
}

fn print_ablation() {
    let rows: Vec<Vec<String>> = run_semantics_ablation(64)
        .into_iter()
        .map(|(label, o)| {
            vec![
                label.to_string(),
                o.strategy.to_string(),
                format!("{}/{}", o.pages_moved, o.pages_total),
                o.swap_cache_hits.to_string(),
                verdict(o.reliable),
            ]
        })
        .collect();
    println!("\n=== E1 ablation: kernel eviction semantics ===");
    println!(
        "{}",
        markdown_table(
            &["kernel", "strategy", "pages moved", "cache refaults", "verdict"],
            &rows,
        )
    );
}

fn print_pressure_sweep() {
    println!("\n=== E1b: registered pages lost vs antagonist size (refcount-only) ===");
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];
    let refcount = run_pressure_sweep(vialock::StrategyKind::RefcountOnly, 64, &fractions);
    let kiobuf = run_pressure_sweep(vialock::StrategyKind::KiobufReliable, 64, &fractions);
    let rows: Vec<Vec<String>> = refcount
        .iter()
        .zip(kiobuf.iter())
        .map(|((f, r), (_, k))| {
            vec![
                format!("{:.2}", f),
                format!("{}/{}", r.pages_moved, r.pages_total),
                format!("{}/{}", k.pages_moved, k.pages_total),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["antagonist (xRAM)", "refcount pages lost", "kiobuf pages lost"],
            &rows,
        )
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    print_ablation();
    print_pressure_sweep();
    let mut g = c.benchmark_group("e1_locktest");
    g.sample_size(10);
    for s in StrategyKind::ALL {
        g.bench_function(s.label(), |b| {
            b.iter(|| black_box(run_locktest(s, 32)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
