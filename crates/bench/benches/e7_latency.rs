//! E7 — small-message latency across network profiles (the latency table
//! of "Comparing MPI Performance of SCI and VIA") plus NetPIPE bandwidth
//! curves for three networks, and a wall-clock bench of the functional
//! 4-byte ping-pong.

use criterion::{criterion_group, criterion_main, Criterion};

use netsim::cost::NetworkProfile;
use netsim::proto::ProtocolCosts;
use netsim::sweep::pow2_sizes;
use vialock::StrategyKind;
use workload::model::reg_cost_for;
use workload::netpipe::{measure_point, profile_sweep, sweep_comm};
use workload::tables::{markdown_table, mbs, us};

fn print_tables() {
    println!("\n=== E7: one-way small-message latency (4 B) ===");
    let rows: Vec<Vec<String>> = NetworkProfile::all()
        .iter()
        .map(|p| vec![p.name.to_string(), us(p.transfer_ns(4))])
        .collect();
    println!("{}", markdown_table(&["network", "latency (µs)"], &rows));

    println!("\n=== E7: MPI-level bandwidth (MB/s) vs size ===");
    let sizes = pow2_sizes(64, 4 * 1024 * 1024);
    let sci = profile_sweep(&NetworkProfile::sci_pio(), &sizes);
    let via = profile_sweep(&NetworkProfile::via_clan_mpi(), &sizes);
    let eth = profile_sweep(&NetworkProfile::fast_ethernet(), &sizes);
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            vec![
                n.to_string(),
                mbs(sci[i].bandwidth_mb_s),
                mbs(via[i].bandwidth_mb_s),
                mbs(eth[i].bandwidth_mb_s),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["bytes", "SCI", "VIA/cLAN", "FastEthernet"], &rows)
    );
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut g = c.benchmark_group("e7_latency");
    g.bench_function("functional_4B_pingpong", |b| {
        let mut comm = sweep_comm(StrategyKind::KiobufReliable);
        let costs = ProtocolCosts::classic(reg_cost_for(StrategyKind::KiobufReliable));
        b.iter(|| measure_point(&mut comm, &costs, 4, 1));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
