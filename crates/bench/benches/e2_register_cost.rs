//! E2 — registration cost vs. region size per strategy (Fig. E2).
//!
//! Cold = pages not resident (fault-in included, the zero-copy worst case);
//! warm = pages already present (the registration-cache-miss-on-hot-buffer
//! case). The interesting *shape*: cost scales linearly with pages for all
//! strategies; mlock carries the largest fixed part (VMA surgery), kiobuf
//! the largest per-page part (fault + lock), refcount is cheapest — and
//! wrong.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench::{prepared_buffer, registry, roomy_kernel, SWEEP_PAGES};
use simmem::{prot, Capabilities, PAGE_SIZE};
use vialock::StrategyKind;
use workload::regmetrics::measure_matrix;
use workload::tables::markdown_table;

fn print_event_table() {
    let rows: Vec<Vec<String>> = measure_matrix(64)
        .into_iter()
        .map(|m| {
            vec![
                m.strategy.to_string(),
                m.faults.to_string(),
                m.cow_copies.to_string(),
                m.vmas_after.to_string(),
                m.pages_locked.to_string(),
                m.pages_referenced.to_string(),
                (m.vm_locked_bytes / 4096).to_string(),
            ]
        })
        .collect();
    println!("\n=== E2 companion: kernel events per 64-page registration ===");
    println!(
        "{}",
        markdown_table(
            &["strategy", "faults", "COW", "VMAs", "PG_locked", "refs", "VM_LOCKED pages"],
            &rows,
        )
    );
}

fn bench(c: &mut Criterion) {
    print_event_table();
    // Warm: buffer pre-touched, register/deregister in the loop.
    let mut g = c.benchmark_group("e2_register_warm");
    for s in StrategyKind::ALL {
        for npages in SWEEP_PAGES {
            g.throughput(Throughput::Elements(npages as u64));
            g.bench_with_input(
                BenchmarkId::new(s.label(), npages),
                &npages,
                |b, &npages| {
                    let (mut k, pid, buf) = prepared_buffer(npages);
                    let mut reg = registry(s);
                    b.iter(|| {
                        let h = reg
                            .register(&mut k, pid, buf, npages * PAGE_SIZE)
                            .expect("register");
                        reg.deregister(&mut k, black_box(h)).expect("deregister");
                    });
                },
            );
        }
    }
    g.finish();

    // Cold: fresh (never touched) mapping every iteration — includes the
    // demand-zero faults.
    let mut g = c.benchmark_group("e2_register_cold");
    g.sample_size(20);
    for s in StrategyKind::ALL {
        for npages in [16usize, 256] {
            g.throughput(Throughput::Elements(npages as u64));
            g.bench_with_input(
                BenchmarkId::new(s.label(), npages),
                &npages,
                |b, &npages| {
                    let mut k = roomy_kernel();
                    let pid = k.spawn_process(Capabilities::default());
                    let mut reg = registry(s);
                    b.iter(|| {
                        let buf = k
                            .mmap_anon(pid, npages * PAGE_SIZE, prot::READ | prot::WRITE)
                            .expect("mmap");
                        let h = reg
                            .register(&mut k, pid, buf, npages * PAGE_SIZE)
                            .expect("register");
                        reg.deregister(&mut k, h).expect("deregister");
                        k.munmap(pid, buf, npages * PAGE_SIZE).expect("munmap");
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
