//! E8 — CPU time available during transfer: DMA vs. shared-memory PIO
//! (figure 2 of the companion PCI–SCI bridge paper). Prints the series and
//! the switching points, then benchmarks the model evaluation (trivially
//! cheap — included so `cargo bench` exercises every experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use netsim::cost::NetworkProfile;
use netsim::cpu::{dma_switch_point, shm_flat, user_level_dma, CpuAvailability};
use workload::tables::markdown_table;

fn print_series() {
    let dma = user_level_dma();
    let shm = shm_flat();
    println!("\n=== E8: CPU time available during transfer (fractions of t_DMA) ===");
    let rows: Vec<Vec<String>> = (4..=20)
        .step_by(2)
        .map(|p| {
            let n = 1usize << p;
            let a = CpuAvailability::at(&dma, &shm, n);
            vec![
                n.to_string(),
                format!("{:.2}", a.avail_dma_ns / a.t_dma_ns as f64),
                format!("{:.2}", a.avail_shm_ns / a.t_dma_ns as f64),
                if a.dma_wins() { "DMA" } else { "SHM" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["bytes", "avail (DMA)", "avail (SHM)", "winner"], &rows)
    );
    println!(
        "switch point, user-level DMA:   {} B (paper: \"surprisingly low 128 Bytes\")",
        dma_switch_point(&dma, &shm).unwrap()
    );
    println!(
        "switch point, kernel-call DMA:  {} B (the motivation for protected user-level DMA)",
        dma_switch_point(&NetworkProfile::dolphin_dma(), &shm).unwrap()
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    c.bench_function("e8_model_eval", |b| {
        let dma = user_level_dma();
        let shm = shm_flat();
        b.iter(|| {
            let mut acc = 0u64;
            for p in 2..24 {
                let a = CpuAvailability::at(&dma, &shm, 1usize << p);
                acc += black_box(a.dma_wins()) as u64;
            }
            acc
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
