//! E5 — the registration cache (Fig. E5).
//!
//! Prints the hit-ratio series over working-set sizes (functional zero-copy
//! traffic), then benchmarks a cache hit vs. a cache miss on the registry
//! level — the two costs whose ratio is the cache's whole reason to exist.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{prepared_buffer, registry};
use simmem::PAGE_SIZE;
use vialock::{RegistrationCache, StrategyKind};
use workload::cachebench::run_cache_series;
use workload::tables::markdown_table;

fn print_series() {
    let buf = 256 * 1024;
    let rows: Vec<Vec<String>> = run_cache_series(&[1, 2, 3, 4, 8], buf, 16, 160)
        .into_iter()
        .map(|p| {
            vec![
                p.working_set_buffers.to_string(),
                format!("{:.0}%", p.hit_ratio * 100.0),
                p.registrations.to_string(),
                format!("{:.2}", p.regs_per_send),
            ]
        })
        .collect();
    println!("\n=== E5: registration cache (256 KiB buffers, 160-page budget) ===");
    println!(
        "{}",
        markdown_table(
            &["working set", "hit ratio", "registrations", "regs/send"],
            &rows
        )
    );
}

fn bench(c: &mut Criterion) {
    print_series();
    let npages = 64;

    let mut g = c.benchmark_group("e5_reg_cache");
    g.bench_function("hit", |b| {
        let (mut k, pid, buf) = prepared_buffer(npages);
        let mut reg = registry(StrategyKind::KiobufReliable);
        let mut cache = RegistrationCache::new(1024);
        // Prime the cache.
        let h = cache.acquire(&mut k, &mut reg, pid, buf, npages * PAGE_SIZE).unwrap();
        cache.release(&mut k, &mut reg, h).unwrap();
        b.iter(|| {
            let h = cache
                .acquire(&mut k, &mut reg, pid, buf, npages * PAGE_SIZE)
                .expect("hit");
            cache.release(&mut k, &mut reg, h).expect("release");
        });
    });

    g.bench_function("miss", |b| {
        let (mut k, pid, buf) = prepared_buffer(npages);
        let mut reg = registry(StrategyKind::KiobufReliable);
        // Zero-budget cache: every acquire registers, every release evicts.
        let mut cache = RegistrationCache::new(0);
        b.iter(|| {
            let h = cache
                .acquire(&mut k, &mut reg, pid, buf, npages * PAGE_SIZE)
                .expect("miss");
            cache.release(&mut k, &mut reg, h).expect("release");
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
