//! E4 — multiple-registration semantics (Table E4) and the cost of nested
//! registrations.
//!
//! Prints the correctness table (naive mlock fails; registry bookkeeping
//! and kiobuf pin counts survive), then measures the cost of a second
//! (nested) registration of an already-pinned region — the case the VIA
//! spec demands and the cache exploits.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::{prepared_buffer, registry};
use simmem::PAGE_SIZE;
use vialock::StrategyKind;
use workload::multireg::run_multireg_matrix;
use workload::tables::{markdown_table, verdict};

fn print_table() {
    let rows: Vec<Vec<String>> = run_multireg_matrix(32)
        .into_iter()
        .map(|o| {
            vec![
                o.scheme.to_string(),
                format!("{}/{}", o.pages_survived, o.pages_total),
                verdict(o.consistent),
            ]
        })
        .collect();
    println!("\n=== E4: register twice, deregister once, apply pressure ===");
    println!(
        "{}",
        markdown_table(&["scheme", "pages surviving", "verdict"], &rows)
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("e4_nested_registration");
    for s in [StrategyKind::VmaMlock, StrategyKind::KiobufReliable] {
        g.bench_function(s.label(), |b| {
            let npages = 16;
            let (mut k, pid, buf) = prepared_buffer(npages);
            let mut reg = registry(s);
            // Outer registration held for the whole measurement.
            let outer = reg.register(&mut k, pid, buf, npages * PAGE_SIZE).unwrap();
            b.iter(|| {
                let h = reg
                    .register(&mut k, pid, buf, npages * PAGE_SIZE)
                    .expect("nested register");
                reg.deregister(&mut k, black_box(h)).expect("deregister");
            });
            reg.deregister(&mut k, outer).unwrap();
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
