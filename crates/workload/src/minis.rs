//! **E9 (extension) — a miniature NAS IS (Integer Sort) kernel.**
//!
//! The companion paper "Comparing MPI Performance of SCI and VIA" evaluates
//! with the NAS Parallel Benchmarks and singles out IS as the
//! communication-dominated case: its traffic is a handful of tiny
//! `allreduce`s plus *huge* `alltoallv` exchanges, which is why FastEthernet
//! collapses on it while SCI and cLAN stay close. This module runs a real
//! bucket sort over the functional message layer and charges the observed
//! event trace against the per-network cost models, regenerating the
//! figure's *shape* (cLAN ≳ SCI ≫ FastEthernet).

// Rank/node indices are semantic here; iterating them directly is the
// clearer idiom.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use simmem::KernelConfig;
use via::Fabric;
use vialock::StrategyKind;

use msg::coll::alltoallv;
use msg::{Comm, MsgConfig};
use netsim::cost::{Nanos, NetworkProfile};
use netsim::proto::{ProtocolCosts, RegistrationCost};
use netsim::sweep::bandwidth_mb_s;

use crate::model::time_from_stats;

/// Key space of the sort (IS class-agnostic; scaled to the simulation).
const KEY_RANGE: u32 = 1 << 20;

/// Nanoseconds charged per local key operation (histogram + counting sort
/// touch each key a small constant number of times on a ~450 MHz PIII).
const NS_PER_KEY_OP: f64 = 20.0;

/// One network's end-to-end result for the mini-IS run.
#[derive(Debug, Clone, Serialize)]
pub struct IsNetworkResult {
    pub network: &'static str,
    pub comm_ns: Nanos,
    pub total_ns: Nanos,
    /// Millions of keys ranked per second (the NPB "Mop/s" analogue).
    pub mkeys_per_s: f64,
    pub exchange_bandwidth_mb_s: f64,
}

/// The full mini-IS report.
#[derive(Debug, Clone, Serialize)]
pub struct IsReport {
    pub ranks: usize,
    pub keys_per_rank: usize,
    pub bytes_exchanged: u64,
    pub sorted_ok: bool,
    pub per_network: Vec<IsNetworkResult>,
}

/// The three cluster flavours the NAS comparison ran on, as protocol cost
/// models. FastEthernet has neither PIO nor a separate DMA engine — every
/// path pays the TCP stack.
fn network_models() -> Vec<(&'static str, ProtocolCosts)> {
    let mut sci = ProtocolCosts::classic(RegistrationCost::kiobuf());
    sci.pio = NetworkProfile::sci_raw();
    sci.dma = NetworkProfile::dolphin_dma();

    let mut clan = ProtocolCosts::classic(RegistrationCost::kiobuf());
    clan.pio = NetworkProfile::via_clan_hw();
    clan.dma = NetworkProfile::via_clan_hw();

    let mut eth = ProtocolCosts::classic(RegistrationCost::kiobuf());
    eth.pio = NetworkProfile::fast_ethernet();
    eth.dma = NetworkProfile::fast_ethernet();

    vec![
        ("sci-scampi", sci),
        ("via-clan", clan),
        ("fast-ethernet", eth),
    ]
}

/// Run the bucket sort: generate keys, histogram by destination rank,
/// `alltoallv` the buckets, counting-sort locally, verify the global order,
/// and charge the communication trace against each network model.
pub fn run_mini_is(n_ranks: usize, keys_per_rank: usize, seed: u64) -> IsReport {
    let mut comm = Comm::new(
        n_ranks,
        2,
        KernelConfig::large(),
        StrategyKind::KiobufReliable,
        MsgConfig::classic(),
    )
    .expect("communicator");
    run_mini_is_on(&mut comm, keys_per_rank, seed)
}

/// The bucket sort against an existing communicator — generic over the
/// [`Fabric`], so the same kernel runs on the deterministic system or a
/// threaded N-node cluster.
pub fn run_mini_is_on<F: Fabric>(comm: &mut Comm<F>, keys_per_rank: usize, seed: u64) -> IsReport {
    let n_ranks = comm.n_ranks();
    let mut rng = StdRng::seed_from_u64(seed);
    let bucket_width = KEY_RANGE.div_ceil(n_ranks as u32);

    // Per-rank key generation and bucketing (send buffer laid out by
    // destination, like the real IS).
    let mut send_bufs = Vec::new();
    let mut send_offs: Vec<Vec<usize>> = Vec::new();
    let mut send_counts: Vec<Vec<usize>> = Vec::new();
    for r in 0..n_ranks {
        let keys: Vec<u32> = (0..keys_per_rank)
            .map(|_| rng.random_range(0..KEY_RANGE))
            .collect();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
        for k in keys {
            buckets[(k / bucket_width) as usize % n_ranks].push(k);
        }
        let mut bytes = Vec::with_capacity(keys_per_rank * 4);
        let mut offs = Vec::with_capacity(n_ranks);
        let mut counts = Vec::with_capacity(n_ranks);
        for b in &buckets {
            offs.push(bytes.len());
            counts.push(b.len() * 4);
            for k in b {
                bytes.extend_from_slice(&k.to_le_bytes());
            }
        }
        let buf = comm.alloc_buffer(r, bytes.len().max(4)).expect("send buf");
        comm.fill_buffer(r, buf, &bytes).expect("fill");
        send_bufs.push(buf);
        send_offs.push(offs);
        send_counts.push(counts);
    }

    // Receive layout: rank d gets send_counts[s][d] bytes from each s.
    let mut recv_bufs = Vec::new();
    let mut recv_offs: Vec<Vec<usize>> = Vec::new();
    let mut recv_totals = Vec::new();
    for d in 0..n_ranks {
        let mut offs = Vec::with_capacity(n_ranks);
        let mut total = 0usize;
        for s in 0..n_ranks {
            offs.push(total);
            total += send_counts[s][d];
        }
        let buf = comm.alloc_buffer(d, total.max(4)).expect("recv buf");
        recv_bufs.push(buf);
        recv_offs.push(offs);
        recv_totals.push(total);
    }

    // The exchange — the traffic the figure is about.
    let stats_before = comm.stats;
    alltoallv(
        comm,
        &send_bufs,
        &send_offs,
        &send_counts,
        &recv_bufs,
        &recv_offs,
    )
    .expect("alltoallv");
    let delta = comm.stats.since(&stats_before);
    let bytes_exchanged = delta.pio_bytes + delta.dma_bytes;

    // Local counting sort + global-order verification.
    let mut prev_max: Option<u32> = None;
    let mut sorted_ok = true;
    for d in 0..n_ranks {
        let mut bytes = vec![0u8; recv_totals[d]];
        comm.read_buffer(d, recv_bufs[d], &mut bytes)
            .expect("read keys");
        let mut keys: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        keys.sort_unstable();
        // Every key must belong to this rank's bucket…
        if !keys
            .iter()
            .all(|&k| (k / bucket_width) as usize % n_ranks == d)
        {
            sorted_ok = false;
        }
        // …and bucket ranges must be globally ordered.
        if let (Some(pm), Some(&mn)) = (prev_max, keys.first()) {
            if mn < pm {
                sorted_ok = false;
            }
        }
        prev_max = keys.last().copied().or(prev_max);
    }

    // Charge the trace against each network model.
    let compute_ns = (n_ranks as f64 * keys_per_rank as f64 * NS_PER_KEY_OP).round() as Nanos;
    let per_network = network_models()
        .into_iter()
        .map(|(name, costs)| {
            let comm_ns = time_from_stats(&delta, &costs);
            let total_ns = comm_ns + compute_ns;
            IsNetworkResult {
                network: name,
                comm_ns,
                total_ns,
                mkeys_per_s: (n_ranks * keys_per_rank) as f64 / (total_ns as f64 / 1e9) / 1e6,
                exchange_bandwidth_mb_s: bandwidth_mb_s(bytes_exchanged as usize, comm_ns),
            }
        })
        .collect();

    IsReport {
        ranks: n_ranks,
        keys_per_rank,
        bytes_exchanged,
        sorted_ok,
        per_network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_is_sorts_and_ranks_networks() {
        let rep = run_mini_is(4, 2000, 42);
        assert!(rep.sorted_ok, "bucket sort must be globally ordered");
        assert!(rep.bytes_exchanged > 0);
        let by = |n: &str| {
            rep.per_network
                .iter()
                .find(|r| r.network == n)
                .expect("network present")
                .mkeys_per_s
        };
        // The figure's shape: both high-speed networks beat FastEthernet
        // by a wide margin; they are close to each other.
        assert!(by("sci-scampi") > 2.0 * by("fast-ethernet"));
        assert!(by("via-clan") > 2.0 * by("fast-ethernet"));
        let ratio = by("via-clan") / by("sci-scampi");
        assert!(
            (0.4..2.5).contains(&ratio),
            "high-speed nets comparable: {ratio}"
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = run_mini_is(2, 500, 7);
        let b = run_mini_is(2, 500, 7);
        assert_eq!(a.bytes_exchanged, b.bytes_exchanged);
        assert_eq!(a.per_network[0].comm_ns, b.per_network[0].comm_ns);
    }
}
