//! **E6/E7 — NetPIPE-style sweeps.**
//!
//! Two layers:
//!
//! * [`profile_sweep`] evaluates the pure network cost models (the
//!   MPI-level curves of "Comparing MPI Performance of SCI and VIA");
//! * [`protocol_sweep`] runs *functional* ping-pongs through the `msg`
//!   protocols, then charges the observed event counts against the cost
//!   model — so protocol choice, chunking, registration caching and all
//!   control traffic come from the real implementation, not a formula.

use serde::Serialize;
use simmem::KernelConfig;
use via::{Fabric, ThreadedCluster};
use vialock::StrategyKind;

use msg::{Comm, MsgConfig};
use netsim::cost::NetworkProfile;
use netsim::proto::ProtocolCosts;
use netsim::sweep::bandwidth_mb_s;

use crate::model::{reg_cost_for, time_from_stats};

/// One sweep data point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    pub bytes: usize,
    pub one_way_ns: u64,
    pub bandwidth_mb_s: f64,
    /// Which protocol carried the payload (functional sweep only).
    pub protocol: Option<&'static str>,
    /// NIC translation-cache hit rate over the point's transfers
    /// (functional sweep only; 0 when no translations ran).
    pub tlb_hit_rate: f64,
    /// CPU staging copies the message layer performed for the point.
    pub copy_ops: u64,
}

/// Evaluate a pure profile over a size ladder (the E7 figures).
pub fn profile_sweep(profile: &NetworkProfile, sizes: &[usize]) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&n| {
            let t = profile.transfer_ns(n);
            SweepPoint {
                bytes: n,
                one_way_ns: t,
                bandwidth_mb_s: bandwidth_mb_s(n, t),
                protocol: None,
                tlb_hit_rate: 0.0,
                copy_ops: 0,
            }
        })
        .collect()
}

/// Build a two-rank communicator for the functional sweep.
pub fn sweep_comm(strategy: StrategyKind) -> Comm {
    Comm::new(2, 2, KernelConfig::large(), strategy, MsgConfig::classic())
        .expect("sweep communicator")
}

/// Build a two-rank communicator on an `n_nodes`-node threaded cluster:
/// ranks 0 and 1 land on nodes 0 and 1, the remaining nodes idle — but the
/// full N-node mailbox/routing layer is live, so the same sweep exercises
/// the concurrent fabric.
pub fn threaded_sweep_comm(n_nodes: usize, strategy: StrategyKind) -> Comm<ThreadedCluster> {
    let cluster = ThreadedCluster::new(n_nodes, KernelConfig::large(), strategy);
    Comm::on_fabric(cluster, 2, MsgConfig::classic()).expect("threaded sweep communicator")
}

/// Run `reps` functional ping-pongs of `bytes` and return the event-charged
/// one-way time and bandwidth. Generic over the [`Fabric`]: the same
/// measurement runs on the deterministic system or a threaded cluster.
pub fn measure_point<F: Fabric>(
    comm: &mut Comm<F>,
    costs: &ProtocolCosts,
    bytes: usize,
    reps: usize,
) -> SweepPoint {
    let len = bytes.max(1);
    let sbuf = comm.alloc_buffer(0, len).expect("send buffer");
    let rbuf = comm.alloc_buffer(1, len).expect("recv buffer");
    let payload: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
    comm.fill_buffer(0, sbuf, &payload).expect("fill");

    let before = comm.stats;
    let nic_before = [comm.nic_stats(0), comm.nic_stats(1)];
    for _ in 0..reps {
        // Ping…
        let h = comm.send(0, 1, 1, sbuf, len).expect("send");
        comm.recv(1, 0, 1, rbuf, len).expect("recv");
        comm.wait(h).expect("wait");
        // …pong.
        let h = comm.send(1, 0, 2, rbuf, len).expect("send back");
        comm.recv(0, 1, 2, sbuf, len).expect("recv back");
        comm.wait(h).expect("wait back");
    }
    let delta = comm.stats.since(&before);
    let (mut hits, mut misses) = (0u64, 0u64);
    for (n, b) in nic_before.iter().enumerate() {
        let s = comm.nic_stats(n);
        hits += s.tlb_hits - b.tlb_hits;
        misses += s.tlb_misses - b.tlb_misses;
    }
    let total = time_from_stats(&delta, costs);
    let one_way = total / (2 * reps as u64);
    // Return the pages: sweeps run many points on one machine.
    comm.free_buffer(0, sbuf, len).expect("free send buffer");
    comm.free_buffer(1, rbuf, len).expect("free recv buffer");
    let protocol = Some(match MsgConfig::classic().protocol_for(len) {
        msg::config::Protocol::SharedMemory => "shared-memory",
        msg::config::Protocol::OneCopy => "one-copy",
        msg::config::Protocol::ZeroCopy => "zero-copy",
    });
    SweepPoint {
        bytes,
        one_way_ns: one_way,
        bandwidth_mb_s: bandwidth_mb_s(bytes, one_way),
        protocol,
        tlb_hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        copy_ops: delta.copy_ops,
    }
}

/// Full functional sweep (E6): ping-pong at each size, event-charged.
pub fn protocol_sweep(strategy: StrategyKind, sizes: &[usize], reps: usize) -> Vec<SweepPoint> {
    let mut comm = sweep_comm(strategy);
    let costs = ProtocolCosts::classic(reg_cost_for(strategy));
    sizes
        .iter()
        .map(|&n| measure_point(&mut comm, &costs, n, reps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::sweep::pow2_sizes;

    #[test]
    fn profile_sweep_shapes() {
        let sizes = pow2_sizes(4, 1 << 20);
        let sci = profile_sweep(&NetworkProfile::sci_pio(), &sizes);
        let via = profile_sweep(&NetworkProfile::via_clan_mpi(), &sizes);
        // SCI ahead at 1 KB, cLAN ahead at 1 MB (the paper's figure 3).
        let at = |v: &Vec<SweepPoint>, n: usize| {
            v.iter()
                .find(|p| p.bytes == n)
                .expect("point")
                .bandwidth_mb_s
        };
        assert!(at(&sci, 1024) > at(&via, 1024));
        assert!(at(&via, 1 << 20) > at(&sci, 1 << 20));
    }

    #[test]
    fn functional_sweep_switches_protocols() {
        let pts = protocol_sweep(
            StrategyKind::KiobufReliable,
            &[64, 64 * 1024, 512 * 1024],
            1,
        );
        assert_eq!(pts[0].protocol, Some("shared-memory"));
        assert_eq!(pts[1].protocol, Some("one-copy"));
        assert_eq!(pts[2].protocol, Some("zero-copy"));
        // Bandwidth grows with message size across the ladder.
        assert!(pts[2].bandwidth_mb_s > pts[0].bandwidth_mb_s);
    }

    #[test]
    fn small_message_latency_matches_the_mpi_figure() {
        // One SM ping-pong ≈ 3 PIO latencies one-way ≈ 7–12 µs — the same
        // decade as ScaMPI's 8 µs.
        let pts = protocol_sweep(StrategyKind::KiobufReliable, &[4], 2);
        let t = pts[0].one_way_ns;
        assert!((5_000..20_000).contains(&t), "one-way {t} ns");
    }
}
