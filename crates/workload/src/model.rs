//! Event-count → simulated-time composition.
//!
//! The functional `msg` layer counts what happened (PIO bytes, DMA bytes,
//! chunks, copies, registrations); this module charges each event class
//! with the calibrated `netsim` costs to produce a transfer time. That is
//! how the bandwidth figures are regenerated without the original hardware.

use netsim::cost::Nanos;
use netsim::proto::{ProtocolCosts, RegistrationCost};

use msg::MsgStats;

/// Charge a window of message-layer activity against the cost model.
pub fn time_from_stats(delta: &MsgStats, c: &ProtocolCosts) -> Nanos {
    let mut t = 0f64;
    // Every SM payload write and every control write pays one PIO latency;
    // all PIO bytes pay the PIO per-byte cost.
    t += (delta.sm_msgs + delta.control_writes) as f64 * c.pio.latency_ns as f64;
    t += delta.pio_bytes as f64 * c.pio.per_byte_ns;
    // Each DMA message pays one network latency (chunks pipeline); chunks
    // pay descriptor processing; DMA bytes pay the DMA per-byte cost.
    t += (delta.oc_msgs + delta.zc_msgs) as f64 * c.dma.latency_ns as f64;
    t += delta.oc_chunks as f64 * c.descriptor_ns as f64;
    t += delta.dma_bytes as f64 * c.dma.per_byte_ns;
    // CPU copies.
    t += delta.copy_bytes as f64 * c.memcpy_per_byte_ns;
    // Dynamic registrations (cache misses) pay trap + per-page pinning.
    t += delta.registrations as f64 * c.reg.trap_ns as f64;
    t += delta.pages_registered as f64 * c.reg.per_page_ns as f64;
    t.round() as Nanos
}

/// The registration cost model matching a `vialock` strategy.
pub fn reg_cost_for(strategy: vialock::StrategyKind) -> RegistrationCost {
    match strategy {
        vialock::StrategyKind::RefcountOnly => RegistrationCost::refcount(),
        vialock::StrategyKind::RawFlags => RegistrationCost::raw_flags(),
        vialock::StrategyKind::VmaMlock => RegistrationCost::vma_mlock(),
        vialock::StrategyKind::KiobufReliable => RegistrationCost::kiobuf(),
        vialock::StrategyKind::OnDemand => RegistrationCost::on_demand(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> ProtocolCosts {
        ProtocolCosts::classic(RegistrationCost::kiobuf())
    }

    #[test]
    fn empty_window_is_free() {
        assert_eq!(time_from_stats(&MsgStats::default(), &costs()), 0);
    }

    #[test]
    fn sm_message_costs_about_three_pio_latencies() {
        // One SM message = payload write + info write + done flag.
        let d = MsgStats {
            sm_msgs: 1,
            control_writes: 2,
            pio_bytes: 64 + 56,
            ..Default::default()
        };
        let t = time_from_stats(&d, &costs());
        let three_lat = 3 * costs().pio.latency_ns;
        assert!(t >= three_lat && t < three_lat + 10_000, "t = {t}");
    }

    #[test]
    fn registrations_add_cost() {
        let base = MsgStats {
            zc_msgs: 1,
            dma_bytes: 1 << 20,
            ..Default::default()
        };
        let with_reg = MsgStats {
            registrations: 2,
            pages_registered: 512,
            ..base
        };
        let c = costs();
        assert!(time_from_stats(&with_reg, &c) > time_from_stats(&base, &c));
    }

    #[test]
    fn strategies_map_to_their_cost_models() {
        assert_eq!(
            reg_cost_for(vialock::StrategyKind::KiobufReliable),
            RegistrationCost::kiobuf()
        );
        assert_eq!(
            reg_cost_for(vialock::StrategyKind::VmaMlock),
            RegistrationCost::vma_mlock()
        );
    }
}
