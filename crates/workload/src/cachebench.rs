//! **E5 — registration-cache effectiveness.**
//!
//! Zero-copy sends cycling over a pool of `working_set` distinct buffers;
//! the cache holds `cache_pages` pages. Hit ratio and registrations per
//! send fall out of the functional run.

use serde::Serialize;
use simmem::KernelConfig;
use vialock::StrategyKind;

use msg::{Comm, MsgConfig};

/// One cache-experiment row.
#[derive(Debug, Clone, Serialize)]
pub struct CachePoint {
    pub working_set_buffers: usize,
    pub cache_pages: usize,
    pub sends: usize,
    pub hit_ratio: f64,
    pub registrations: u64,
    /// Dynamic registrations per send (2.0 = both sides register every
    /// time; 0.0 = fully cached).
    pub regs_per_send: f64,
}

/// Run `sends` zero-copy messages round-robin over `working_set` buffers
/// of `buf_bytes` each, with the given per-node cache budget.
pub fn run_cache_experiment(
    working_set: usize,
    buf_bytes: usize,
    sends: usize,
    cache_pages: usize,
) -> CachePoint {
    let mut cfg = MsgConfig::classic();
    cfg.cache_pages = cache_pages;
    let mut comm = Comm::new(
        2,
        2,
        KernelConfig::large(),
        StrategyKind::KiobufReliable,
        cfg,
    )
    .expect("communicator");

    // Pools on both sides.
    let sbufs: Vec<_> = (0..working_set)
        .map(|_| comm.alloc_buffer(0, buf_bytes).expect("sbuf"))
        .collect();
    let rbufs: Vec<_> = (0..working_set)
        .map(|_| comm.alloc_buffer(1, buf_bytes).expect("rbuf"))
        .collect();
    let data = vec![0x3Cu8; buf_bytes];
    for &b in &sbufs {
        comm.fill_buffer(0, b, &data).expect("fill");
    }

    let before = comm.stats;
    for i in 0..sends {
        let s = sbufs[i % working_set];
        let r = rbufs[i % working_set];
        let h = comm.send(0, 1, 1, s, buf_bytes).expect("send");
        comm.recv(1, 0, 1, r, buf_bytes).expect("recv");
        comm.wait(h).expect("wait");
    }
    let d = comm.stats.since(&before);
    let lookups = d.registrations + d.cache_hits;
    CachePoint {
        working_set_buffers: working_set,
        cache_pages,
        sends,
        hit_ratio: if lookups == 0 {
            0.0
        } else {
            d.cache_hits as f64 / lookups as f64
        },
        registrations: d.registrations,
        regs_per_send: d.registrations as f64 / sends as f64,
    }
}

/// The E5 series: hit ratio vs. working-set size at a fixed cache budget.
pub fn run_cache_series(
    working_sets: &[usize],
    buf_bytes: usize,
    sends: usize,
    cache_pages: usize,
) -> Vec<CachePoint> {
    working_sets
        .iter()
        .map(|&w| run_cache_experiment(w, buf_bytes, sends, cache_pages))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUF: usize = 256 * 1024; // 64 pages — zero-copy territory

    #[test]
    fn single_buffer_is_fully_cached() {
        let p = run_cache_experiment(1, BUF, 6, 4096);
        assert_eq!(p.registrations, 2, "one registration per side");
        assert!(p.hit_ratio > 0.8, "hit ratio {}", p.hit_ratio);
    }

    #[test]
    fn cache_too_small_forces_re_registration() {
        // Working set of 4 × 64 pages = 256 pages against a 64-page cache:
        // every send re-registers.
        let small = run_cache_experiment(4, BUF, 8, 64);
        let large = run_cache_experiment(4, BUF, 8, 4096);
        assert!(small.hit_ratio < large.hit_ratio);
        assert!(small.regs_per_send > large.regs_per_send);
    }

    #[test]
    fn series_is_monotone_in_working_set() {
        let pts = run_cache_series(&[1, 4], BUF, 6, 160);
        assert!(pts[0].hit_ratio >= pts[1].hit_ratio);
    }
}
