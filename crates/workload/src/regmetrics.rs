//! Registration cost in **kernel-event units** — the deterministic
//! companion to the wall-clock E2/E3 benches: how many faults, page
//! references, VMA splits and page-lock transitions one registration of
//! `npages` costs under each strategy. These counts are exact and
//! machine-independent, so they pin down the *why* behind the E2 curves.

use serde::Serialize;
use simmem::{prot, Capabilities, Kernel, KernelConfig, MmStats, PAGE_SIZE};
use vialock::{MemoryRegistry, StrategyKind};

/// Event counts for one registration.
#[derive(Debug, Clone, Serialize)]
pub struct RegMetrics {
    pub strategy: &'static str,
    pub npages: usize,
    /// Page faults taken during registration (cold buffer).
    pub faults: u64,
    /// COW copies (zero-page breaks) during registration.
    pub cow_copies: u64,
    /// VMA count after registration (mlock splits show up here).
    pub vmas_after: usize,
    /// Pages whose `PG_locked` bit the strategy holds afterwards.
    pub pages_locked: usize,
    /// Pages with an elevated reference count afterwards.
    pub pages_referenced: usize,
    /// Bytes under `VM_LOCKED` afterwards.
    pub vm_locked_bytes: u64,
}

/// Measure one (strategy, size) cell on a fresh machine with a cold
/// buffer.
pub fn measure(strategy: StrategyKind, npages: usize) -> RegMetrics {
    let mut k = Kernel::new(KernelConfig {
        nframes: (npages as u32 * 4).max(256),
        reserved_frames: 8,
        swap_slots: 16,
        default_rlimit_memlock: None,
        swap_cache: false,
    });
    let pid = k.spawn_process(Capabilities::default());
    let len = npages * PAGE_SIZE;
    let buf = k
        .mmap_anon(pid, len, prot::READ | prot::WRITE)
        .expect("mmap");
    let mut reg = MemoryRegistry::new(strategy);

    let before: MmStats = k.mm_stats();
    let h = reg.register(&mut k, pid, buf, len).expect("register");
    let d = k.mm_stats().since(&before);

    let frames = reg.frames(h).expect("frames").to_vec();
    let pages_locked = frames
        .iter()
        .filter(|&&f| {
            k.page_descriptor(f)
                .flags()
                .contains(simmem::PageFlags::LOCKED)
        })
        .count();
    let pages_referenced = frames
        .iter()
        .filter(|&&f| k.page_descriptor(f).count() > 1)
        .count();
    let out = RegMetrics {
        strategy: strategy.label(),
        npages,
        faults: d.minor_faults + d.major_faults,
        cow_copies: d.cow_copies,
        vmas_after: k.vma_count(pid).expect("vma count"),
        pages_locked,
        pages_referenced,
        vm_locked_bytes: k.locked_bytes(pid).expect("locked bytes"),
    };
    reg.deregister(&mut k, h).expect("deregister");
    out
}

/// The full matrix for one size.
pub fn measure_matrix(npages: usize) -> Vec<RegMetrics> {
    StrategyKind::ALL
        .into_iter()
        .map(|s| measure(s, npages))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_scale_with_pages() {
        for s in StrategyKind::ALL {
            // mlock pays TWO faults per cold page: make_pages_present
            // read-faults onto the zero page, then the TPT walk must break
            // COW with a write fault. The page-at-a-time strategies pay one.
            // On-demand pays ZERO here — registration only write-protects;
            // the faults move to the first NIC access of each page.
            let per_page = match s {
                StrategyKind::VmaMlock => 2,
                StrategyKind::OnDemand => 0,
                _ => 1,
            };
            let small = measure(s, 4);
            let large = measure(s, 32);
            assert_eq!(small.faults, 4 * per_page, "{s:?}");
            assert_eq!(large.faults, 32 * per_page, "{s:?}");
        }
    }

    #[test]
    fn mechanisms_leave_their_signatures() {
        let m = measure(StrategyKind::RefcountOnly, 8);
        assert_eq!(m.pages_referenced, 8);
        assert_eq!(m.pages_locked, 0, "no PG_locked — the whole problem");
        assert_eq!(m.vm_locked_bytes, 0);

        let m = measure(StrategyKind::RawFlags, 8);
        assert_eq!(m.pages_locked, 8);

        let m = measure(StrategyKind::VmaMlock, 8);
        assert_eq!(m.vm_locked_bytes, 8 * PAGE_SIZE as u64);
        assert_eq!(m.pages_locked, 0);

        let m = measure(StrategyKind::KiobufReliable, 8);
        assert_eq!(m.pages_locked, 8);
        assert_eq!(m.pages_referenced, 8);
        assert_eq!(m.vm_locked_bytes, 0, "no VMA involvement");
    }

    #[test]
    fn mlock_splits_vmas_when_partial() {
        // Register 8 pages out of a larger mapping: mlock carves the VMA.
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let buf = k
            .mmap_anon(pid, 16 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let mut reg = MemoryRegistry::new(StrategyKind::VmaMlock);
        let h = reg
            .register(&mut k, pid, buf + 4 * PAGE_SIZE as u64, 8 * PAGE_SIZE)
            .unwrap();
        assert_eq!(k.vma_count(pid).unwrap(), 3, "mlock split 1 VMA into 3");
        let mut reg2 = MemoryRegistry::new(StrategyKind::KiobufReliable);
        let h2 = reg2
            .register(&mut k, pid, buf + 4 * PAGE_SIZE as u64, 8 * PAGE_SIZE)
            .unwrap();
        assert_eq!(k.vma_count(pid).unwrap(), 3, "kiobuf adds no splits");
        reg.deregister(&mut k, h).unwrap();
        reg2.deregister(&mut k, h2).unwrap();
    }
}
