//! # workload — experiment harnesses for the evaluation
//!
//! Each module regenerates one experiment from DESIGN.md's index:
//!
//! * [`locktest`] — **E1**: the paper's section-3.1 experiment, verbatim
//!   eight steps, across all four pinning strategies;
//! * [`multireg`] — **E4**: multiple-registration semantics (naive mlock vs.
//!   the registry's interval bookkeeping vs. kiobuf pin counts);
//! * [`cachebench`] — **E5**: registration-cache hit ratios under varying
//!   buffer working sets;
//! * [`netpipe`] — **E6/E7**: NetPIPE-style bandwidth/latency sweeps, both
//!   from the pure cost models and composed from functional ping-pong event
//!   counts;
//! * [`minis`] — **E9 (extension)**: a miniature NAS IS kernel over the
//!   collectives, regenerating the NPB comparison's shape;
//! * [`pressure`] — the `allocator` antagonist process;
//! * [`model`] — event-count → simulated-time composition;
//! * [`tables`] — markdown table rendering for EXPERIMENTS.md.

pub mod cachebench;
pub mod locktest;
pub mod minis;
pub mod model;
pub mod multireg;
pub mod netpipe;
pub mod oldstyle;
pub mod pressure;
pub mod regmetrics;
pub mod tables;

pub use locktest::{run_locktest, LocktestOutcome};
pub use pressure::apply_pressure;
