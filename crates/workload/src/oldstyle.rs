//! **E10 (extension) — conventional PCI–SCI memory management vs. the
//! VIA-style per-page translation.**
//!
//! The volume's motivation sections in numbers. Workload: a receiver owns
//! `n_buffers` scattered user buffers of `buf_bytes` each and wants remote
//! peers to fill them.
//!
//! * **Old style** (Dolphin + Bigphysarea): RAM is permanently reserved at
//!   boot; exports are 512 KiB-granular aligned windows of that
//!   reservation; remote data lands in the window and must be
//!   bounce-copied into the real user buffers ("data transfers can happen
//!   on the reserved memory region only").
//! * **New style** (this paper's registration): each buffer is pinned *in
//!   place* and entered into the TPT; remote RDMA lands directly in user
//!   memory; nothing is reserved ahead of time, pins exist only while
//!   registered.

use serde::Serialize;
use simmem::{prot, Capabilities, KernelConfig, PAGE_SIZE};
use via::nic::Node;
use via::tpt::ProtectionTag;
use vialock::StrategyKind;

/// One scheme's cost sheet.
#[derive(Debug, Clone, Serialize)]
pub struct MmSchemeReport {
    pub scheme: &'static str,
    /// Frames permanently reserved at boot.
    pub reserved_frames: u32,
    /// Frames actually holding payload at peak.
    pub payload_frames: u32,
    /// Bytes bounce-copied by the CPU.
    pub copied_bytes: u64,
    /// Frames pinned (unreclaimable) during the exchange.
    pub pinned_frames: u32,
    /// Did every byte arrive in the user buffers?
    pub intact: bool,
}

fn machine() -> KernelConfig {
    KernelConfig {
        nframes: 4096,
        reserved_frames: 16,
        swap_slots: 8192,
        default_rlimit_memlock: None,
        swap_cache: false,
    }
}

/// Old style: bigphys reservation + one window + bounce copies.
pub fn run_old_style(n_buffers: usize, buf_bytes: usize) -> MmSchemeReport {
    let mut node = Node::new(machine(), StrategyKind::KiobufReliable, 4096);
    // The boot-time price: reserve a quarter of RAM so windows are possible.
    let reservation = 1024u32;
    node.kernel.reserve_bigphys(reservation).unwrap();

    let pid = node.kernel.spawn_process(Capabilities::default());
    // The app's real data structures: scattered anonymous buffers.
    let bufs: Vec<u64> = (0..n_buffers)
        .map(|_| {
            node.kernel
                .mmap_anon(pid, buf_bytes, prot::READ | prot::WRITE)
                .unwrap()
        })
        .collect();

    // One window sized for a single buffer at a time (the bounce buffer).
    let window = node.export_window(buf_bytes).unwrap();
    let win_va = node.map_window(pid, &window).unwrap();

    let mut copied = 0u64;
    let mut intact = true;
    for (i, &buf) in bufs.iter().enumerate() {
        // Remote peer stores the payload into the window (SCI PIO)…
        let payload = vec![(i % 251) as u8; buf_bytes];
        node.window_write(&window, 0, &payload).unwrap();
        // …and the receiver must bounce it into the real buffer.
        let mut tmp = vec![0u8; buf_bytes];
        node.kernel.read_user(pid, win_va, &mut tmp).unwrap();
        node.kernel.write_user(pid, buf, &tmp).unwrap();
        copied += buf_bytes as u64;
        let mut check = vec![0u8; buf_bytes];
        node.kernel.read_user(pid, buf, &mut check).unwrap();
        intact &= check == payload;
    }
    let report = MmSchemeReport {
        scheme: "old (bigphys window)",
        reserved_frames: reservation,
        payload_frames: (n_buffers * buf_bytes.div_ceil(PAGE_SIZE)) as u32,
        copied_bytes: copied,
        // The whole reservation is unreclaimable forever.
        pinned_frames: reservation,
        intact,
    };
    node.release_window(window).unwrap();
    report
}

/// New style: register each buffer in place, RDMA lands directly.
pub fn run_new_style(n_buffers: usize, buf_bytes: usize) -> MmSchemeReport {
    let mut node = Node::new(machine(), StrategyKind::KiobufReliable, 4096);
    let pid = node.kernel.spawn_process(Capabilities::default());
    let tag = ProtectionTag(1);
    let bufs: Vec<u64> = (0..n_buffers)
        .map(|_| {
            node.kernel
                .mmap_anon(pid, buf_bytes, prot::READ | prot::WRITE)
                .unwrap()
        })
        .collect();

    let mut intact = true;
    let mut peak_pinned = 0u32;
    for (i, &buf) in bufs.iter().enumerate() {
        let mem = node.register_mem(pid, buf, buf_bytes, tag).unwrap();
        peak_pinned = peak_pinned.max(node.registry.pinned_frames() as u32);
        // Remote RDMA straight into the user buffer (through the TPT).
        let payload = vec![(i % 251) as u8; buf_bytes];
        let region = node.nic.tpt.region(mem).unwrap().clone();
        let mut off = 0usize;
        while off < buf_bytes {
            let (frame, in_page) = node
                .nic
                .tpt
                .translate(
                    mem,
                    region.user_addr + off as u64,
                    tag,
                    via::tpt::Access::Local,
                )
                .unwrap();
            let chunk = (buf_bytes - off).min(PAGE_SIZE - in_page);
            node.kernel
                .dma_write(frame, in_page, &payload[off..off + chunk])
                .unwrap();
            off += chunk;
        }
        let mut check = vec![0u8; buf_bytes];
        node.kernel.read_user(pid, buf, &mut check).unwrap();
        intact &= check == payload;
        node.deregister_mem(mem).unwrap();
    }
    MmSchemeReport {
        scheme: "new (per-page TPT)",
        reserved_frames: 0,
        payload_frames: (n_buffers * buf_bytes.div_ceil(PAGE_SIZE)) as u32,
        copied_bytes: 0,
        pinned_frames: peak_pinned,
        intact,
    }
}

/// The E10 table.
pub fn run_mm_comparison(n_buffers: usize, buf_bytes: usize) -> Vec<MmSchemeReport> {
    vec![
        run_old_style(n_buffers, buf_bytes),
        run_new_style(n_buffers, buf_bytes),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_schemes_deliver_but_costs_differ() {
        let rows = run_mm_comparison(8, 24 * 1024);
        let old = &rows[0];
        let new = &rows[1];
        assert!(old.intact && new.intact);
        // The paper's argument, quantified:
        assert_eq!(new.copied_bytes, 0, "zero-copy in place");
        assert_eq!(old.copied_bytes, 8 * 24 * 1024, "every byte bounced");
        assert_eq!(new.reserved_frames, 0);
        assert!(old.reserved_frames >= 1024, "boot-time RAM tax");
        assert!(
            new.pinned_frames < old.pinned_frames / 10,
            "pins are transient and sized to the live buffer"
        );
    }

    #[test]
    fn old_style_window_granularity_shows() {
        // A 1-page buffer still costs a 128-frame window.
        let mut node = Node::new(machine(), StrategyKind::KiobufReliable, 64);
        node.kernel.reserve_bigphys(512).unwrap();
        let w = node.export_window(PAGE_SIZE).unwrap();
        assert_eq!(w.reserved_frames(), 128);
        node.release_window(w).unwrap();
    }
}
