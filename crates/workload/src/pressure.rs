//! The `allocator` antagonist from the paper's locktest: "allocates as much
//! memory as possible forcing a large amount of pages to be swapped out".

use simmem::{prot, Capabilities, Kernel, MmError, Pid, PAGE_SIZE};

/// Result of one pressure run.
#[derive(Debug, Clone, Copy)]
pub struct PressureReport {
    pub pid: Pid,
    /// Pages the allocator managed to dirty before stopping.
    pub pages_dirtied: usize,
    /// Whether it stopped because memory + swap were exhausted.
    pub hit_oom: bool,
}

/// Spawn an allocator process and dirty up to `max_pages` pages (default:
/// until OOM). Each page is written (demand paging forces a real frame),
/// pushing other processes' pages out through the stealer.
pub fn apply_pressure(kernel: &mut Kernel, max_pages: usize) -> PressureReport {
    let pid = kernel.spawn_process(Capabilities::default());
    let len = max_pages * PAGE_SIZE;
    let addr = kernel
        .mmap_anon(pid, len, prot::READ | prot::WRITE)
        .expect("antagonist mmap");
    let mut dirtied = 0usize;
    let mut hit_oom = false;
    for i in 0..max_pages {
        let a = addr + (i * PAGE_SIZE) as u64;
        match kernel.write_user(pid, a, &[0xA5u8; 64]) {
            Ok(()) => dirtied += 1,
            Err(MmError::OutOfMemory) => {
                hit_oom = true;
                break;
            }
            Err(e) => panic!("unexpected antagonist failure: {e}"),
        }
    }
    PressureReport {
        pid,
        pages_dirtied: dirtied,
        hit_oom,
    }
}

/// Keep dirtying the allocator's pages (round-robin) to sustain pressure —
/// used when one pass isn't enough to victimise a specific page.
pub fn sustain_pressure(kernel: &mut Kernel, report: &PressureReport, rounds: usize) {
    let Ok(Some(_)) = kernel.frame_of(report.pid, simmem::mm::TASK_UNMAPPED_BASE) else {
        // Address-space layout is bump-allocated from TASK_UNMAPPED_BASE;
        // if nothing is mapped there the antagonist never dirtied a page.
        return;
    };
    let base = simmem::mm::TASK_UNMAPPED_BASE;
    for r in 0..rounds {
        for i in 0..report.pages_dirtied {
            let a = base + (i * PAGE_SIZE) as u64;
            if kernel.write_user(report.pid, a, &[r as u8; 8]).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmem::KernelConfig;

    #[test]
    fn pressure_forces_swap() {
        let mut k = Kernel::new(KernelConfig {
            nframes: 64,
            reserved_frames: 4,
            swap_slots: 512,
            default_rlimit_memlock: None,
            swap_cache: false,
        });
        // A victim with resident pages.
        let v = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(v, 16 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        k.write_user(v, a, &vec![1u8; 16 * PAGE_SIZE]).unwrap();

        let rep = apply_pressure(&mut k, 100);
        assert!(rep.pages_dirtied >= 50, "antagonist got most of memory");
        assert!(k.mm_stats().swap_outs > 0);
    }

    #[test]
    fn oom_reported_when_swap_exhausted() {
        let mut k = Kernel::new(KernelConfig {
            nframes: 32,
            reserved_frames: 4,
            swap_slots: 8,
            default_rlimit_memlock: None,
            swap_cache: false,
        });
        let rep = apply_pressure(&mut k, 10_000);
        assert!(rep.hit_oom);
        assert!(rep.pages_dirtied < 10_000);
    }
}
