//! Markdown table rendering for experiment reports (EXPERIMENTS.md and the
//! example binaries print through this).

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", c, w = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Format nanoseconds as µs with two decimals.
pub fn us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1000.0)
}

/// Format a bandwidth.
pub fn mbs(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a boolean as the experiment verdict.
pub fn verdict(ok: bool) -> String {
    if ok {
        "OK".into()
    } else {
        "FAILS".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = markdown_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("|--"));
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatters() {
        assert_eq!(us(2500), "2.50");
        assert_eq!(mbs(81.96), "82.0");
        assert_eq!(verdict(true), "OK");
        assert_eq!(verdict(false), "FAILS");
    }
}
