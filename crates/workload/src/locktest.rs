//! **E1 — the locktest experiment**, exactly the eight steps of the paper's
//! section 3.1, parameterised by pinning strategy, with the NIC's TPT in
//! the loop (the "kernel agent write" of step 5 is a DMA through the
//! translation the NIC captured at registration time).

use serde::Serialize;
use simmem::{prot, Capabilities, KernelConfig, PAGE_SIZE};
use via::nic::Node;
use via::tpt::ProtectionTag;
use via::{Fabric, NodeId};
use vialock::StrategyKind;

use crate::pressure::apply_pressure;

/// Magic value the simulated NIC DMA-writes in step 5.
pub const DMA_MAGIC: u8 = 0xD7;

/// Outcome of one locktest run.
#[derive(Debug, Clone, Serialize)]
pub struct LocktestOutcome {
    pub strategy: &'static str,
    /// Pages whose physical address changed between steps 2 and 6.
    pub pages_moved: usize,
    /// Total registered pages.
    pub pages_total: usize,
    /// Step 8: is the NIC's DMA write visible to the process?
    pub dma_visible: bool,
    /// Frames orphaned by the stealer during the run.
    pub orphaned_frames: usize,
    /// Pages the stealer skipped because of `VM_LOCKED`.
    pub skipped_vm_locked: u64,
    /// Pages the stealer skipped because of `PG_locked`/`PG_reserved`.
    pub skipped_pg_locked: u64,
    /// Did the stealer swap anything at all (sanity: pressure worked)?
    pub swap_outs: u64,
    /// Refaults served by the swap cache (nonzero only under 2.4 semantics).
    pub swap_cache_hits: u64,
    /// Verdict: registration stayed consistent with the page tables.
    pub reliable: bool,
}

/// Run the eight-step locktest with `npages` registered pages on a machine
/// sized so the antagonist can force eviction, under 2.2 eviction semantics
/// (the paper's target kernel).
pub fn run_locktest(strategy: StrategyKind, npages: usize) -> LocktestOutcome {
    run_locktest_with(strategy, npages, false)
}

/// The locktest with selectable kernel semantics: `swap_cache = true`
/// models Linux 2.4, where the swap cache re-unifies an evicted,
/// still-referenced page — the ablation explaining why refcount-only VIA
/// drivers *appeared* to work on later kernels while still paying writeback
/// and refault costs (and still being specified-behaviour-free).
pub fn run_locktest_with(
    strategy: StrategyKind,
    npages: usize,
    swap_cache: bool,
) -> LocktestOutcome {
    // A machine where `npages` is a small fraction of RAM and swap is
    // ample — mirroring the paper's setup (they registered a block and let
    // the allocator take everything else).
    let kcfg = KernelConfig {
        nframes: (npages as u32 * 8).max(128),
        reserved_frames: 8,
        swap_slots: npages as u32 * 64,
        default_rlimit_memlock: None,
        swap_cache,
    };
    let mut node = Node::new(kcfg, strategy, npages * 4);
    locktest_steps(&mut node, npages)
}

/// Run the eight locktest steps against one node of a live fabric: the
/// steps ship to the node via [`Fabric::with_node`], so on a threaded
/// cluster they execute on the node's service thread while the rest of the
/// cluster keeps running. The node's own pinning strategy (whatever the
/// fabric was built with) is the one under test.
pub fn run_locktest_on<F: Fabric>(fab: &mut F, node: NodeId, npages: usize) -> LocktestOutcome {
    fab.with_node(node, move |n| locktest_steps(n, npages))
}

/// The eight steps of section 3.1 against an existing node. Pressure is
/// sized off the node's own RAM (twice the frame count), as in the paper's
/// setup where the antagonist takes everything the allocator will give.
pub fn locktest_steps(node: &mut Node, npages: usize) -> LocktestOutcome {
    let strategy = node.registry.strategy();
    let tag = ProtectionTag(1);

    // Step 1: allocate memory and fill it with data (distinct frames per
    // page thanks to the write faults).
    let pid = node.kernel.spawn_process(Capabilities::default());
    let len = npages * PAGE_SIZE;
    let buf = node
        .kernel
        .mmap_anon(pid, len, prot::READ | prot::WRITE)
        .expect("locktest mmap");
    for i in 0..npages {
        let a = buf + (i * PAGE_SIZE) as u64;
        node.kernel
            .write_user(pid, a, &[i as u8; 32])
            .expect("fill page");
    }

    // Step 2: register — pin with the strategy under test and capture the
    // physical addresses into the NIC's TPT. On-demand registration
    // obtains no addresses at all; its equivalent is the first NIC access
    // of each page (the protection trap that takes the lazy pin), so
    // fault the span resident the way the NIC would and run the same
    // stale-address protocol against those frames.
    let mem = node.register_mem(pid, buf, len, tag).expect("registration");
    let reg_handle = node.nic.tpt.region(mem).expect("region").reg_handle;
    let frames_at_reg: Vec<_> = if strategy.pins_eagerly() {
        node.registry.frames(reg_handle).expect("frames").to_vec()
    } else {
        (0..npages)
            .map(|i| {
                node.registry
                    .pin_on_access(&mut node.kernel, reg_handle, i)
                    .expect("lazy pin")
            })
            .collect()
    };

    // Step 3: the allocator antagonist grabs as much memory as possible.
    let swap_outs_before = node.kernel.mm_stats().swap_outs;
    let pressure_pages = (node.kernel.config.nframes as usize) * 2;
    let _rep = apply_pressure(&mut node.kernel, pressure_pages);

    // Step 4: the locktest process writes to each page of the block again.
    for i in 0..npages {
        let a = buf + (i * PAGE_SIZE) as u64;
        node.kernel
            .write_user(pid, a, &[(i as u8).wrapping_add(1); 16])
            .expect("rewrite page");
    }

    // Step 5: the kernel agent (NIC) writes a value to the first page
    // using the physical address obtained during registration — a DMA.
    node.kernel
        .dma_write(frames_at_reg[0], 100, &[DMA_MAGIC])
        .expect("DMA write");

    // Step 6: derive the physical addresses from the page tables again and
    // compare with those acquired during registration.
    let frames_now = node
        .kernel
        .frames_of_range(pid, buf, len)
        .expect("walk page tables");
    let pages_moved = frames_at_reg
        .iter()
        .zip(frames_now.iter())
        .filter(|(reg, cur)| Some(**reg) != **cur)
        .count();

    // Step 8 (before deregistration frees the pins): read the first page —
    // did the DMA write reach the process?
    let mut first = [0u8; 1];
    node.kernel
        .read_user(pid, buf + 100, &mut first)
        .expect("read first page");
    let dma_visible = first[0] == DMA_MAGIC;

    // Step 4 continued for 2.4 semantics: the rewrite loop above refaults
    // evicted pages through the swap cache, re-unifying the frames; the
    // counters below tell whether that happened.
    let orphaned = node.kernel.count_orphaned_frames();
    let stats = node.kernel.mm_stats();

    // Step 7: deregister.
    node.deregister_mem(mem).expect("deregistration");

    LocktestOutcome {
        strategy: strategy.label(),
        pages_moved,
        pages_total: npages,
        dma_visible,
        orphaned_frames: orphaned,
        skipped_vm_locked: stats.skipped_vm_locked,
        skipped_pg_locked: stats.skipped_pg_locked,
        swap_outs: stats.swap_outs - swap_outs_before,
        swap_cache_hits: stats.swap_cache_hits,
        reliable: pages_moved == 0 && dma_visible,
    }
}

/// Run the full E1 matrix: all four strategies.
pub fn run_locktest_matrix(npages: usize) -> Vec<LocktestOutcome> {
    StrategyKind::ALL
        .into_iter()
        .map(|s| run_locktest(s, npages))
        .collect()
}

/// **E1b** — damage as a function of pressure: run the locktest with the
/// antagonist capped at a fraction of RAM and report how many registered
/// pages were lost. The shape: below ~free-RAM pressure nothing moves; as
/// the antagonist grows past available memory the refcount-pinned pages
/// are progressively evicted until all are orphaned.
pub fn run_pressure_sweep(
    strategy: StrategyKind,
    npages: usize,
    fractions: &[f64],
) -> Vec<(f64, LocktestOutcome)> {
    fractions
        .iter()
        .map(|&frac| {
            let kcfg = KernelConfig {
                nframes: (npages as u32 * 8).max(128),
                reserved_frames: 8,
                swap_slots: npages as u32 * 64,
                default_rlimit_memlock: None,
                swap_cache: false,
            };
            (frac, run_locktest_pressured(strategy, npages, kcfg, frac))
        })
        .collect()
}

fn run_locktest_pressured(
    strategy: StrategyKind,
    npages: usize,
    kcfg: KernelConfig,
    pressure_frac: f64,
) -> LocktestOutcome {
    let mut node = Node::new(kcfg, strategy, npages * 4);
    let tag = ProtectionTag(1);
    let pid = node.kernel.spawn_process(Capabilities::default());
    let len = npages * PAGE_SIZE;
    let buf = node
        .kernel
        .mmap_anon(pid, len, prot::READ | prot::WRITE)
        .expect("mmap");
    for i in 0..npages {
        node.kernel
            .write_user(pid, buf + (i * PAGE_SIZE) as u64, &[i as u8; 32])
            .expect("fill");
    }
    let mem = node.register_mem(pid, buf, len, tag).expect("register");
    let reg_handle = node.nic.tpt.region(mem).expect("region").reg_handle;
    let frames_at_reg: Vec<_> = node.registry.frames(reg_handle).expect("frames").to_vec();

    let swap_outs_before = node.kernel.mm_stats().swap_outs;
    let pressure_pages = ((kcfg.nframes as f64) * pressure_frac) as usize;
    if pressure_pages > 0 {
        apply_pressure(&mut node.kernel, pressure_pages);
    }

    let frames_now = node.kernel.frames_of_range(pid, buf, len).expect("walk");
    let pages_moved = frames_at_reg
        .iter()
        .zip(frames_now.iter())
        .filter(|(reg, cur)| Some(**reg) != **cur)
        .count();
    let stats = node.kernel.mm_stats();
    let orphaned = node.kernel.count_orphaned_frames();
    node.deregister_mem(mem).expect("deregister");
    LocktestOutcome {
        strategy: strategy.label(),
        pages_moved,
        pages_total: npages,
        dma_visible: pages_moved == 0,
        orphaned_frames: orphaned,
        skipped_vm_locked: stats.skipped_vm_locked,
        skipped_pg_locked: stats.skipped_pg_locked,
        swap_outs: stats.swap_outs - swap_outs_before,
        swap_cache_hits: stats.swap_cache_hits,
        reliable: pages_moved == 0,
    }
}

/// The kernel-semantics ablation: refcount-only pinning under 2.2 vs 2.4.
pub fn run_semantics_ablation(npages: usize) -> Vec<(&'static str, LocktestOutcome)> {
    vec![
        (
            "2.2 (no swap cache)",
            run_locktest_with(StrategyKind::RefcountOnly, npages, false),
        ),
        (
            "2.4 (swap cache)",
            run_locktest_with(StrategyKind::RefcountOnly, npages, true),
        ),
        (
            "2.4 + kiobuf",
            run_locktest_with(StrategyKind::KiobufReliable, npages, true),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refcount_only_fails_exactly_as_the_paper_observed() {
        let o = run_locktest(StrategyKind::RefcountOnly, 16);
        assert!(o.swap_outs > 0, "pressure must actually swap");
        assert!(o.pages_moved > 0, "physical addresses changed");
        assert!(
            !o.dma_visible,
            "the first page still contains its original value"
        );
        assert!(o.orphaned_frames > 0, "orphaned frames remain");
        assert!(!o.reliable);
    }

    #[test]
    fn mlock_is_reliable() {
        let o = run_locktest(StrategyKind::VmaMlock, 16);
        assert_eq!(o.pages_moved, 0);
        assert!(o.dma_visible);
        assert!(o.skipped_vm_locked > 0, "stealer bounced off VM_LOCKED");
        assert!(o.reliable);
    }

    #[test]
    fn raw_flags_keeps_pages_but_is_risky() {
        let o = run_locktest(StrategyKind::RawFlags, 16);
        assert!(o.reliable, "PG_locked does keep pages resident");
        assert!(o.skipped_pg_locked > 0);
    }

    #[test]
    fn kiobuf_proposal_is_reliable() {
        let o = run_locktest(StrategyKind::KiobufReliable, 16);
        assert_eq!(o.pages_moved, 0);
        assert!(o.dma_visible);
        assert!(
            o.skipped_pg_locked > 0,
            "stealer bounced off the page locks"
        );
        assert!(o.reliable);
    }

    #[test]
    fn pressure_sweep_shows_a_cliff() {
        let sweep = run_pressure_sweep(StrategyKind::RefcountOnly, 32, &[0.0, 0.3, 2.0]);
        let moved: Vec<usize> = sweep.iter().map(|(_, o)| o.pages_moved).collect();
        assert_eq!(moved[0], 0, "no pressure, no damage");
        assert_eq!(moved[2], 32, "overcommit destroys every page");
        assert!(moved[1] <= moved[2], "damage is monotone in pressure");
        // Kiobuf stays flat across the whole sweep.
        let sweep = run_pressure_sweep(StrategyKind::KiobufReliable, 32, &[0.0, 0.3, 2.0]);
        assert!(sweep.iter().all(|(_, o)| o.pages_moved == 0));
    }

    #[test]
    fn swap_cache_rescues_refcount_pinning_at_a_cost() {
        let rows = run_semantics_ablation(16);
        let (_, on_22) = &rows[0];
        let (_, on_24) = &rows[1];
        let (_, kiobuf_24) = &rows[2];
        assert!(!on_22.reliable, "2.2: refcount fails");
        assert!(on_24.reliable, "2.4: the swap cache reunifies the frames");
        assert!(
            on_24.swap_cache_hits > 0,
            "…but only by taking eviction + refault round-trips"
        );
        assert!(kiobuf_24.reliable);
        assert_eq!(
            kiobuf_24.swap_cache_hits, 0,
            "the proposed mechanism never lets the pages be evicted at all"
        );
    }

    #[test]
    fn matrix_verdicts() {
        let m = run_locktest_matrix(8);
        assert_eq!(m.len(), 5);
        let verdict: Vec<(&str, bool)> = m.iter().map(|o| (o.strategy, o.reliable)).collect();
        // On-demand fails the *stale-address* protocol by design (its
        // reliability lives in the NIC fault-and-repin loop) — but
        // cleanly, leaving no orphaned frames.
        assert_eq!(
            verdict,
            vec![
                ("refcount-only", false),
                ("raw-flags", true),
                ("vma-mlock", true),
                ("kiobuf", true),
                ("on-demand", false),
            ]
        );
        assert_eq!(m[4].orphaned_frames, 0, "on-demand fails without orphans");
    }
}
