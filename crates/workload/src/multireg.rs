//! **E4 — multiple-registration semantics.**
//!
//! The VIA spec requires that a region may be registered several times.
//! This experiment registers a buffer twice, deregisters once, applies
//! memory pressure, and checks whether the pages stayed pinned:
//!
//! * *naive mlock* (no driver bookkeeping — what a straight port of the
//!   mlock approach does): the single `munlock` annuls both locks and the
//!   pages get swapped — **broken**;
//! * the registry's mlock with interval bookkeeping: pages stay locked;
//! * the kiobuf proposal: per-frame pin counts keep the `PG_locked` bits.

use serde::Serialize;
use simmem::{prot, Capabilities, Kernel, KernelConfig, PAGE_SIZE};
use vialock::{MemoryRegistry, StrategyKind};

use crate::pressure::apply_pressure;

/// Outcome of one multiple-registration scenario.
#[derive(Debug, Clone, Serialize)]
pub struct MultiregOutcome {
    pub scheme: &'static str,
    /// Pages that survived in place after dereg-once + pressure.
    pub pages_survived: usize,
    pub pages_total: usize,
    /// Whether the remaining registration stayed consistent.
    pub consistent: bool,
}

fn tight_kernel(npages: usize) -> Kernel {
    Kernel::new(KernelConfig {
        nframes: (npages as u32 * 8).max(128),
        reserved_frames: 8,
        swap_slots: npages as u32 * 64,
        default_rlimit_memlock: None,
        swap_cache: false,
    })
}

/// Naive mlock: two `do_mlock` calls, one `munlock`, no bookkeeping.
pub fn run_naive_mlock(npages: usize) -> MultiregOutcome {
    let mut k = tight_kernel(npages);
    let pid = k.spawn_process(Capabilities::root());
    let len = npages * PAGE_SIZE;
    let buf = k.mmap_anon(pid, len, prot::READ | prot::WRITE).unwrap();
    k.write_user(pid, buf, &vec![7u8; len]).unwrap();
    let before = k.frames_of_range(pid, buf, len).unwrap();

    // "Register" twice, "deregister" once — mlock does not nest.
    k.sys_mlock(pid, buf, len).unwrap();
    k.sys_mlock(pid, buf, len).unwrap();
    k.sys_munlock(pid, buf, len).unwrap();

    let pressure_pages = k.config.nframes as usize * 2;
    apply_pressure(&mut k, pressure_pages);

    let after = k.frames_of_range(pid, buf, len).unwrap();
    let survived = before
        .iter()
        .zip(after.iter())
        .filter(|(b, a)| b == a && a.is_some())
        .count();
    MultiregOutcome {
        scheme: "naive-mlock",
        pages_survived: survived,
        pages_total: npages,
        consistent: survived == npages,
    }
}

/// Registry-managed double registration with `strategy`.
pub fn run_registry(strategy: StrategyKind, npages: usize) -> MultiregOutcome {
    let mut k = tight_kernel(npages);
    let pid = k.spawn_process(Capabilities::default());
    let len = npages * PAGE_SIZE;
    let buf = k.mmap_anon(pid, len, prot::READ | prot::WRITE).unwrap();
    k.write_user(pid, buf, &vec![7u8; len]).unwrap();

    let mut reg = MemoryRegistry::new(strategy);
    let h1 = reg.register(&mut k, pid, buf, len).unwrap();
    let h2 = reg.register(&mut k, pid, buf, len).unwrap();
    reg.deregister(&mut k, h1).unwrap();

    let pressure_pages = k.config.nframes as usize * 2;
    apply_pressure(&mut k, pressure_pages);

    let consistent = reg.verify_consistency(&k, h2).unwrap();
    let current = k.frames_of_range(pid, buf, len).unwrap();
    let survived = reg
        .frames(h2)
        .unwrap()
        .iter()
        .zip(current.iter())
        .filter(|(r, c)| Some(**r) == **c)
        .count();
    reg.deregister(&mut k, h2).unwrap();
    MultiregOutcome {
        scheme: strategy.label(),
        pages_survived: survived,
        pages_total: npages,
        consistent,
    }
}

/// The full E4 table.
pub fn run_multireg_matrix(npages: usize) -> Vec<MultiregOutcome> {
    let mut rows = vec![run_naive_mlock(npages)];
    for s in [StrategyKind::VmaMlock, StrategyKind::KiobufReliable] {
        rows.push(run_registry(s, npages));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_mlock_breaks_multiple_registration() {
        let o = run_naive_mlock(16);
        assert!(!o.consistent, "one munlock annulled both locks");
        assert!(o.pages_survived < o.pages_total);
    }

    #[test]
    fn registry_mlock_bookkeeping_survives() {
        let o = run_registry(StrategyKind::VmaMlock, 16);
        assert!(o.consistent);
        assert_eq!(o.pages_survived, 16);
    }

    #[test]
    fn kiobuf_pin_counts_survive() {
        let o = run_registry(StrategyKind::KiobufReliable, 16);
        assert!(o.consistent);
        assert_eq!(o.pages_survived, 16);
    }

    #[test]
    fn matrix_shape() {
        let m = run_multireg_matrix(8);
        assert_eq!(m.len(), 3);
        assert!(!m[0].consistent);
        assert!(m[1].consistent && m[2].consistent);
    }
}
