//! Data-path throughput micro-benchmark (criterion-free, offline).
//!
//! NetPIPE-style ping-pong sweep (64 B – 1 MiB), A/B-ing the overhauled
//! data path against the pre-overhaul one kept behind
//! `Nic::legacy_datapath`:
//!
//! * **pooled** — run-coalesced DMA (one burst per physically contiguous
//!   frame run), per-VI translation mini-TLB, recycled packet-payload
//!   buffers, batched channel sends and spin-then-park waits;
//! * **legacy** — per-page translate + per-page DMA, a fresh payload
//!   `Vec` per message, one channel operation per packet and park-only
//!   waits.
//!
//! Two sweeps: **threaded** runs the two nodes on real OS threads
//! (`via::threaded`), where the wire batching and spin-then-park changes
//! dominate small-message latency; **functional** runs the deterministic
//! single-threaded fabric (`ViaSystem::pump`), where run-coalesced DMA
//! dominates large-message bandwidth. Reported per size: msgs/s and MB/s
//! (medians over `REPS` timed batches), plus — for the pooled path —
//! steady-state allocations per message, TLB hit rate and DMA bursts per
//! message read straight off the NIC counters. Writes
//! `BENCH_datapath.json` in the repository root.
//!
//! Run with `cargo run --release -p workload --bin datapath_bench`; set
//! `DATAPATH_BENCH_QUICK=1` (or pass `--quick`) for the CI smoke variant.

use std::fmt::Write as _;
use std::time::Instant;

use simmem::{prot, Capabilities, KernelConfig};
use via::nic::{NicStats, Node};
use via::system::ViaSystem;
use via::threaded::{connect_nodes, run_cluster, NodeCtx};
use via::tpt::{MemId, ProtectionTag};
use via::vi::ViId;
use via::{Descriptor, ViaResult};
use vialock::StrategyKind;

/// Largest message in the sweep.
const MAX_SIZE: usize = 1 << 20;

/// The sweep: powers of four from 64 B to 1 MiB.
const SIZES: [usize; 8] = [64, 256, 1024, 4096, 16384, 65536, 262144, 1048576];

struct Bench {
    reps: usize,
    quick: bool,
}

/// Per-(size, mode) measurement.
struct Sample {
    msgs_per_s: f64,
    mb_per_s: f64,
    allocs_per_msg: f64,
    tlb_hit_rate: f64,
    dma_ops_per_msg: f64,
}

impl Sample {
    fn from_deltas(ns_per_msg: f64, size: usize, msgs: u64, d: NicStats) -> Sample {
        Sample {
            msgs_per_s: 1e9 / ns_per_msg,
            mb_per_s: (size as f64) * 1e9 / ns_per_msg / 1e6,
            allocs_per_msg: d.payload_allocs as f64 / msgs as f64,
            tlb_hit_rate: if d.tlb_hits + d.tlb_misses == 0 {
                0.0
            } else {
                d.tlb_hits as f64 / (d.tlb_hits + d.tlb_misses) as f64
            },
            dma_ops_per_msg: d.dma_ops as f64 / msgs as f64,
        }
    }
}

fn stats_delta(now: &NicStats, then: &NicStats) -> NicStats {
    NicStats {
        tlb_hits: now.tlb_hits - then.tlb_hits,
        tlb_misses: now.tlb_misses - then.tlb_misses,
        dma_ops: now.dma_ops - then.dma_ops,
        payload_allocs: now.payload_allocs - then.payload_allocs,
        pool_recycled: now.pool_recycled - then.pool_recycled,
        ..*now
    }
}

fn stats_sum(a: NicStats, b: NicStats) -> NicStats {
    NicStats {
        tlb_hits: a.tlb_hits + b.tlb_hits,
        tlb_misses: a.tlb_misses + b.tlb_misses,
        dma_ops: a.dma_ops + b.dma_ops,
        payload_allocs: a.payload_allocs + b.payload_allocs,
        pool_recycled: a.pool_recycled + b.pool_recycled,
        ..a
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn kcfg() -> KernelConfig {
    KernelConfig {
        nframes: 1 << 12,
        reserved_frames: 64,
        swap_slots: 1 << 13,
        default_rlimit_memlock: None,
        swap_cache: false,
    }
}

// ---------------------------------------------------------------------
// Threaded sweep: two OS threads, the mpsc wire, wait_completion.
// ---------------------------------------------------------------------

/// One sender round-trip: post the pong receive and the ping send, then
/// reap exactly two completions (local send + pong receive).
fn sender_round(ctx: &mut NodeCtx, vi: ViId, mem: MemId, addr: u64, size: usize) -> ViaResult<()> {
    ctx.node
        .nic
        .vi_mut(vi)?
        .recv_q
        .push_back(Descriptor::recv(mem, addr, size));
    ctx.node
        .nic
        .vi_mut(vi)?
        .send_q
        .push_back(Descriptor::send(mem, addr, size));
    ctx.wait_completion(vi)?;
    ctx.wait_completion(vi)?;
    Ok(())
}

/// One echo round: post the ping receive, reap it, pong it back, reap the
/// local send completion.
fn echo_round(ctx: &mut NodeCtx, vi: ViId, mem: MemId, addr: u64, size: usize) -> ViaResult<()> {
    ctx.node
        .nic
        .vi_mut(vi)?
        .recv_q
        .push_back(Descriptor::recv(mem, addr, size));
    ctx.wait_completion(vi)?;
    ctx.node
        .nic
        .vi_mut(vi)?
        .send_q
        .push_back(Descriptor::send(mem, addr, size));
    ctx.wait_completion(vi)?;
    Ok(())
}

/// Boxed per-node driver so heterogeneous closures share one type.
type Driver = Box<dyn FnOnce(&mut NodeCtx) -> ViaResult<(Vec<f64>, NicStats)> + Send>;

/// Prepare one node: process, VI, a registered `MAX_SIZE` buffer.
fn cluster_node(legacy: bool) -> (Node, ViId, MemId, u64) {
    let mut n = Node::new(kcfg(), StrategyKind::KiobufReliable, 1024);
    let tag = ProtectionTag(9);
    let p = n.kernel.spawn_process(Capabilities::default());
    let v = n.nic.create_vi(p, tag);
    let b = n
        .kernel
        .mmap_anon(p, MAX_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    n.kernel.write_user(p, b, &vec![0x5Au8; MAX_SIZE]).unwrap();
    let m = n.register_mem(p, b, MAX_SIZE, tag).unwrap();
    n.nic.legacy_datapath = legacy;
    (n, v, m, b)
}

/// Ping-pong over an `n_nodes` cluster: nodes `(2k, 2k+1)` form concurrent
/// sender/echo pairs. Returns per-pair median ns/msg samples plus the
/// summed NIC-stat deltas over the timed region.
fn cluster_pingpong(
    cfg: &Bench,
    n_nodes: usize,
    size: usize,
    legacy: bool,
) -> (Vec<Vec<f64>>, NicStats, u64) {
    assert!(
        n_nodes >= 2 && n_nodes.is_multiple_of(2),
        "cluster needs node pairs"
    );
    let mut nodes = Vec::with_capacity(n_nodes);
    let mut vis = Vec::with_capacity(n_nodes);
    let mut mems = Vec::with_capacity(n_nodes);
    let mut bufs = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let (n, v, m, b) = cluster_node(legacy);
        nodes.push(n);
        vis.push(v);
        mems.push(m);
        bufs.push(b);
    }
    for k in 0..n_nodes / 2 {
        connect_nodes(&mut nodes, (2 * k, vis[2 * k]), (2 * k + 1, vis[2 * k + 1])).unwrap();
    }

    let warm = 8usize;
    // Wider floors than the two-node sweeps: the scaling ratio divides
    // two of these figures, so each needs windows wide enough (and
    // enough of them) for the median to reject whole-host stalls.
    let iters = ((1 << 19) / size).clamp(16, if cfg.quick { 32 } else { 256 });
    let reps = cfg.reps.max(9);
    let rounds = warm + reps * iters;

    // Full-cluster barriers before the warmup and at every rep boundary:
    // all pairs' rep windows line up, so every per-rep sample measures
    // genuinely concurrent traffic. Without them pairs at high node
    // counts partially serialize (thread startup skew exceeds the timed
    // region) and summing per-pair medians overcounts the aggregate;
    // aligning each rep also lets the median reject whole-host stalls
    // (steal time) that hit one window. Every barrier point is quiescent
    // for the pair — the preceding roundtrip's send and echo have both
    // completed — so no ring traffic is in flight while a thread blocks.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(n_nodes));

    let drivers: Vec<Driver> = (0..n_nodes)
        .map(|i| {
            let (vi, mem, buf) = (vis[i], mems[i], bufs[i]);
            let bar = std::sync::Arc::clone(&barrier);
            if i % 2 == 0 {
                Box::new(move |ctx: &mut NodeCtx| {
                    bar.wait();
                    for _ in 0..warm {
                        sender_round(ctx, vi, mem, buf, size)?;
                    }
                    let s0 = ctx.node.nic.stats;
                    let mut samples = Vec::with_capacity(reps);
                    for _ in 0..reps {
                        bar.wait();
                        let t = Instant::now();
                        for _ in 0..iters {
                            sender_round(ctx, vi, mem, buf, size)?;
                        }
                        samples.push(t.elapsed().as_nanos() as f64 / (2 * iters) as f64);
                    }
                    Ok((samples, s0))
                }) as Driver
            } else {
                Box::new(move |ctx: &mut NodeCtx| {
                    bar.wait();
                    let mut r0 = ctx.node.nic.stats;
                    for r in 0..rounds {
                        if r >= warm && (r - warm).is_multiple_of(iters) {
                            bar.wait();
                            if r == warm {
                                r0 = ctx.node.nic.stats;
                            }
                        }
                        echo_round(ctx, vi, mem, buf, size)?;
                    }
                    Ok((Vec::new(), r0))
                }) as Driver
            }
        })
        .collect();

    let out = run_cluster(nodes, drivers).unwrap();
    let mut per_pair = Vec::with_capacity(n_nodes / 2);
    let mut d = NicStats::default();
    for ((samples, before), node) in out {
        if !samples.is_empty() {
            per_pair.push(samples);
        }
        d = stats_sum(d, stats_delta(&node.nic.stats, &before));
    }
    let msgs = (n_nodes / 2) as u64 * (2 * reps * iters) as u64;
    (per_pair, d, msgs)
}

fn bench_threaded(cfg: &Bench, size: usize, legacy: bool) -> Sample {
    let (per_pair, d, msgs) = cluster_pingpong(cfg, 2, size, legacy);
    if !legacy {
        // The pooled path must not allocate per message in steady state.
        assert_eq!(d.payload_allocs, 0, "steady-state payload allocations");
    }
    Sample::from_deltas(median(per_pair.into_iter().next().unwrap()), size, msgs, d)
}

// ---------------------------------------------------------------------
// Functional sweep: the deterministic single-threaded fabric.
// ---------------------------------------------------------------------

struct Harness {
    sys: ViaSystem,
    vi: [ViId; 2],
    mem: [MemId; 2],
    addr: [simmem::VirtAddr; 2],
}

fn harness(legacy: bool) -> Harness {
    let mut sys = ViaSystem::new(2, kcfg(), StrategyKind::KiobufReliable);
    let tag = ProtectionTag(7);
    let pids = [sys.spawn_process(0), sys.spawn_process(1)];
    let vi = [
        sys.create_vi(0, pids[0], tag).unwrap(),
        sys.create_vi(1, pids[1], tag).unwrap(),
    ];
    sys.connect((0, vi[0]), (1, vi[1])).unwrap();
    let mut mem = [MemId(0); 2];
    let mut addr = [0u64; 2];
    for n in 0..2 {
        let a = sys
            .mmap(n, pids[n], MAX_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        // Touch every page so the whole span is resident before pinning.
        let fill = vec![0xA5u8; MAX_SIZE];
        sys.write_user(n, pids[n], a, &fill).unwrap();
        mem[n] = sys.register_mem(n, pids[n], a, MAX_SIZE, tag).unwrap();
        addr[n] = a;
        sys.node_mut(n).nic.legacy_datapath = legacy;
    }
    Harness { sys, vi, mem, addr }
}

impl Harness {
    /// One ping-pong round-trip: two messages, four completions.
    fn roundtrip(&mut self, size: usize) {
        let (sys, vi, mem, addr) = (&mut self.sys, self.vi, self.mem, self.addr);
        sys.post_recv(1, vi[1], mem[1], addr[1], size).unwrap();
        sys.post_send(0, vi[0], mem[0], addr[0], size).unwrap();
        sys.pump().unwrap();
        assert!(sys.poll_cq(0, vi[0]).unwrap().is_some(), "ping send cq");
        assert!(sys.poll_cq(1, vi[1]).unwrap().is_some(), "ping recv cq");
        sys.post_recv(0, vi[0], mem[0], addr[0], size).unwrap();
        sys.post_send(1, vi[1], mem[1], addr[1], size).unwrap();
        sys.pump().unwrap();
        assert!(sys.poll_cq(1, vi[1]).unwrap().is_some(), "pong send cq");
        assert!(sys.poll_cq(0, vi[0]).unwrap().is_some(), "pong recv cq");
    }

    fn nic_totals(&self) -> NicStats {
        stats_sum(self.sys.node(0).nic.stats, self.sys.node(1).nic.stats)
    }
}

fn bench_functional(cfg: &Bench, size: usize, legacy: bool) -> Sample {
    let mut h = harness(legacy);
    let iters = ((1 << 21) / size).clamp(16, if cfg.quick { 64 } else { 1024 });
    // Warm up: fill the TLB, circulate pool buffers, fault nothing later.
    for _ in 0..4 {
        h.roundtrip(size);
    }
    let before = h.nic_totals();
    let mut msgs = 0u64;
    let samples: Vec<f64> = (0..cfg.reps)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                h.roundtrip(size);
            }
            msgs += 2 * iters as u64;
            t.elapsed().as_nanos() as f64 / (2 * iters) as f64
        })
        .collect();
    let d = stats_delta(&h.nic_totals(), &before);
    if !legacy {
        assert_eq!(d.payload_allocs, 0, "steady-state payload allocations");
        assert!(d.pool_recycled > 0, "pool recycling active");
    }
    Sample::from_deltas(median(samples), size, msgs, d)
}

// ---------------------------------------------------------------------
// Cluster scaling sweep: N-node threaded fabric, concurrent pairs.
// ---------------------------------------------------------------------

/// Node counts of the scaling sweep (E13/E14): pair through 32-node
/// cluster (16 concurrent pairs on the SPSC-ring wire).
const CLUSTER_NODE_COUNTS: [usize; 5] = [2, 4, 8, 16, 32];
/// Message sizes per node count: one per protocol regime.
const CLUSTER_SIZES: [usize; 3] = [1024, 16384, 262144];
/// The size the CI scaling gate checks (the bandwidth regime).
const SCALING_GATE_BYTES: usize = 262144;
/// The gate: aggregate 256 KiB throughput at the max node count must hold
/// ≥ this fraction of the 2-node figure (the seed mailbox transport
/// drooped to 0.68× by 8 nodes).
const SCALING_GATE_RATIO: f64 = 0.9;

/// NetPIPE scaling over the threaded cluster: at each node count, all
/// `nodes/2` sender/echo pairs run concurrently and the aggregate
/// throughput (sum of per-pair medians) is reported — the wall-clock
/// scaling figure the deterministic fabric cannot produce. With
/// `DATAPATH_ASSERT_SCALING=1` the 256 KiB aggregate at the max node
/// count must stay within [`SCALING_GATE_RATIO`] of the 2-node figure.
fn sweep_cluster(json: &mut String, cfg: &Bench) {
    let mut gate: Vec<(usize, f64)> = Vec::new();
    writeln!(json, "  \"cluster_scaling\": [").unwrap();
    for (ci, &nodes) in CLUSTER_NODE_COUNTS.iter().enumerate() {
        writeln!(json, "    {{\"nodes\": {nodes}, \"points\": [").unwrap();
        for (si, &size) in CLUSTER_SIZES.iter().enumerate() {
            let (per_pair, d, msgs) = cluster_pingpong(cfg, nodes, size, false);
            let agg_msgs_per_s: f64 = per_pair.iter().map(|s| 1e9 / median(s.clone())).sum();
            let agg_mb_per_s = agg_msgs_per_s * size as f64 / 1e6;
            let pair_mb_per_s = agg_mb_per_s / (nodes / 2) as f64;
            if size == SCALING_GATE_BYTES {
                gate.push((nodes, agg_mb_per_s));
            }
            eprintln!(
                "   cluster {nodes:>2} nodes {size:>8} B: {agg_msgs_per_s:>9.0} msg/s \
                 aggregate, {agg_mb_per_s:>8.1} MB/s ({msgs} msgs, \
                 {} allocs, {} recycled)",
                d.payload_allocs, d.pool_recycled
            );
            writeln!(
                json,
                "      {{\"bytes\": {size}, \"msgs_per_s\": {agg_msgs_per_s:.0}, \
                 \"mb_per_s\": {agg_mb_per_s:.2}, \"mb_per_s_per_pair\": {pair_mb_per_s:.2}}}{}",
                if si + 1 == CLUSTER_SIZES.len() {
                    ""
                } else {
                    ","
                }
            )
            .unwrap();
        }
        writeln!(
            json,
            "    ]}}{}",
            if ci + 1 == CLUSTER_NODE_COUNTS.len() {
                ""
            } else {
                ","
            }
        )
        .unwrap();
    }
    json.push_str("  ],\n");

    let base = gate.first().map(|&(_, v)| v).unwrap_or(0.0);
    let (max_nodes, at_max) = *gate.last().expect("scaling sweep ran");
    let ratio = if base > 0.0 { at_max / base } else { 0.0 };
    // Secondary ratio with both ends past the host's L2 capacity (the
    // per-pair working set at 256 KiB is ~1 MiB, so a handful of pairs
    // overflows a small L2 no matter what the transport does): max node
    // count vs 8 nodes isolates transport scaling from the cache tier.
    let base8 = gate
        .iter()
        .find(|&&(n, _)| n == 8)
        .map(|&(_, v)| v)
        .unwrap_or(base);
    let ratio_beyond_l2 = if base8 > 0.0 { at_max / base8 } else { 0.0 };
    eprintln!(
        "   cluster scaling gate: 256 KiB aggregate {at_max:.0} MB/s at {max_nodes} nodes \
         vs {base:.0} MB/s at 2 nodes ({ratio:.2}x; vs 8 nodes {ratio_beyond_l2:.2}x)"
    );
    writeln!(
        json,
        "  \"cluster_scaling_gate\": {{\"bytes\": {SCALING_GATE_BYTES}, \
         \"max_nodes\": {max_nodes}, \"ratio_vs_2_nodes\": {ratio:.3}, \
         \"ratio_vs_8_nodes\": {ratio_beyond_l2:.3}}},"
    )
    .unwrap();
    if std::env::var("DATAPATH_ASSERT_SCALING").as_deref() == Ok("1") {
        // The threshold applies to whichever baseline the host can
        // meaningfully compare against; DATAPATH_SCALING_MIN overrides
        // the default gate for unusual hosts (a single-core runner
        // crossing a cache tier between 2 and 8 nodes, say).
        let min: f64 = std::env::var("DATAPATH_SCALING_MIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(SCALING_GATE_RATIO);
        assert!(
            ratio.max(ratio_beyond_l2) >= min,
            "cluster scaling droop: 256 KiB aggregate at {max_nodes} nodes is {ratio:.2}x \
             the 2-node figure and {ratio_beyond_l2:.2}x the 8-node figure (gate: {min}x)"
        );
    }
}

// ---------------------------------------------------------------------
// Sweep driver and JSON emission.
// ---------------------------------------------------------------------

struct SweepSummary {
    small_speedup_min: f64,
    tlb_rate_min: f64,
    allocs_max: f64,
}

fn sweep(
    json: &mut String,
    label: &str,
    mut run: impl FnMut(usize, bool) -> Sample,
) -> SweepSummary {
    let mut summary = SweepSummary {
        small_speedup_min: f64::INFINITY,
        tlb_rate_min: f64::INFINITY,
        allocs_max: 0.0,
    };
    writeln!(json, "  \"{label}\": [").unwrap();
    for (i, &size) in SIZES.iter().enumerate() {
        let pooled = run(size, false);
        let legacy = run(size, true);
        let speedup = pooled.msgs_per_s / legacy.msgs_per_s;
        if size <= 4096 {
            summary.small_speedup_min = summary.small_speedup_min.min(speedup);
        }
        summary.tlb_rate_min = summary.tlb_rate_min.min(pooled.tlb_hit_rate);
        summary.allocs_max = summary.allocs_max.max(pooled.allocs_per_msg);
        eprintln!(
            "{label:>10} {size:>8} B: pooled {:>9.0} msg/s {:>8.1} MB/s (tlb {:>5.1}%, \
             {:.2} dma/msg, {:.3} alloc/msg) | legacy {:>9.0} msg/s | x{speedup:.2}",
            pooled.msgs_per_s,
            pooled.mb_per_s,
            100.0 * pooled.tlb_hit_rate,
            pooled.dma_ops_per_msg,
            pooled.allocs_per_msg,
            legacy.msgs_per_s,
        );
        writeln!(
            json,
            "    {{\"bytes\": {size},\n      \"pooled\": {{\"msgs_per_s\": {:.0}, \
             \"mb_per_s\": {:.2}, \"allocs_per_msg\": {:.4}, \"tlb_hit_rate\": {:.4}, \
             \"dma_ops_per_msg\": {:.2}}},\n      \"legacy\": {{\"msgs_per_s\": {:.0}, \
             \"mb_per_s\": {:.2}}},\n      \"speedup_msgs_per_s\": {speedup:.2}}}{}",
            pooled.msgs_per_s,
            pooled.mb_per_s,
            pooled.allocs_per_msg,
            pooled.tlb_hit_rate,
            pooled.dma_ops_per_msg,
            legacy.msgs_per_s,
            legacy.mb_per_s,
            if i + 1 == SIZES.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  ],\n");
    summary
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("DATAPATH_BENCH_QUICK").is_ok_and(|v| v == "1");
    let cfg = Bench {
        reps: if quick { 3 } else { 7 },
        quick,
    };

    let mut json = String::from("{\n  \"bench\": \"datapath\",\n");
    writeln!(json, "  \"quick\": {quick},").unwrap();
    json.push_str("  \"mode\": \"ping-pong, two-node fabric, pooled vs legacy_datapath\",\n");

    let threaded = sweep(&mut json, "threaded", |size, legacy| {
        bench_threaded(&cfg, size, legacy)
    });
    let functional = sweep(&mut json, "functional", |size, legacy| {
        bench_functional(&cfg, size, legacy)
    });
    sweep_cluster(&mut json, &cfg);

    // Headline numbers: small-message speedup where latency (the threaded
    // wire) dominates; TLB/alloc steady-state across both sweeps.
    writeln!(
        json,
        "  \"small_msg_speedup_min\": {:.2},\n  \
         \"steady_state_tlb_hit_rate_min\": {:.4},\n  \
         \"steady_state_allocs_per_msg_max\": {:.4}\n}}",
        threaded.small_speedup_min,
        threaded.tlb_rate_min.min(functional.tlb_rate_min),
        threaded.allocs_max.max(functional.allocs_max),
    )
    .unwrap();

    // Anchor to the repository root so the output lands in the same place
    // regardless of the invoking directory.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_datapath.json");
    std::fs::write(out, &json).expect("write BENCH_datapath.json");
    println!("{json}");
}
