//! Registration fast-path micro-benchmark (criterion-free, offline).
//!
//! Measures the three paths the fast-path overhaul targets and writes the
//! numbers to `BENCH_regpath.json` in the repository root:
//!
//! * `register`/`deregister` cost per strategy × region size (the batched
//!   pin paths);
//! * `find_covering` cost and probe count as the live-region count grows
//!   (the interval index — the probe column is the deterministic witness
//!   that lookups no longer scan the table);
//! * registration-cache acquire cost for exact hits, covering hits and
//!   misses (the O(1)-release / O(log n)-eviction LRU).
//!
//! Schema 2 adds the **contention sweep** over the sharded concurrent
//! registration path: 1→64 registering threads over disjoint (per-process
//! buffers) and overlapping (one process, interleaved windows) range mixes,
//! reported as registrations/second per thread count. The
//! `REGPATH_ASSERT_SCALING=1` gate asserts disjoint-range scaling at 16
//! threads against `REGPATH_SCALING_MIN` (default derived from the host's
//! core count — a single-core runner cannot exhibit parallel speedup).
//!
//! Schema 3 adds the **eager-vs-on-demand A/B sweep** over the full VIA
//! fabric: steady-state send/receive throughput once the lazily pinned
//! pages are resident (`REGPATH_ASSERT_ONDEMAND=1` gates the on-demand
//! path to within `REGPATH_ONDEMAND_MAX`× of eager kiobuf), and a
//! memory-stress regime where the page stealer must dissolve cold lazy
//! pins and the NIC must fault-and-repin without corrupting the transfer
//! (asserted unconditionally — it is deterministic).
//!
//! Wall-clock numbers are medians over `REPS` timed batches; probe counts
//! are exact. Run with `cargo run --release --bin regpath_bench`.

use std::fmt::Write as _;
use std::sync::{Barrier, RwLock};
use std::time::Instant;

use simmem::{prot, Capabilities, Kernel, KernelConfig, Pid, PAGE_SIZE};
use via::system::ViaSystem;
use via::tpt::ProtectionTag;
use vialock::{MemoryRegistry, RegistrationCache, ShardedRegistry, StrategyKind};
use workload::apply_pressure;

const REPS: usize = 7;
/// Contention sweep: fewer reps (each rep spawns a thread fleet).
const CONTENTION_REPS: usize = 3;
/// Thread counts swept by the contention benchmark.
const THREAD_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Register/deregister pairs per thread per rep.
const CONTENTION_OPS: usize = 256;
/// Windows per thread (region slots cycled over) and pages per region.
const WINDOWS: usize = 32;
const REGION_PAGES: usize = 4;

fn kernel() -> (Kernel, Pid) {
    let mut k = Kernel::new(KernelConfig {
        nframes: 1 << 16,
        reserved_frames: 128,
        swap_slots: 1 << 17,
        default_rlimit_memlock: None,
        swap_cache: false,
    });
    let pid = k.spawn_process(Capabilities::default());
    (k, pid)
}

/// Median of `REPS` runs of `f`, each returning (total_ns, per-op count).
fn median_ns_per_op(mut f: impl FnMut() -> (u128, usize)) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let (ns, n) = f();
            ns as f64 / n as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_register(strategy: StrategyKind, npages: usize) -> (f64, f64) {
    let (mut k, pid) = kernel();
    let iters = 64;
    let buf = k
        .mmap_anon(pid, iters * npages * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let mut reg = MemoryRegistry::new(strategy);
    let reg_ns = median_ns_per_op(|| {
        let t = Instant::now();
        let handles: Vec<_> = (0..iters)
            .map(|i| {
                reg.register(
                    &mut k,
                    pid,
                    buf + (i * npages * PAGE_SIZE) as u64,
                    npages * PAGE_SIZE,
                )
                .unwrap()
            })
            .collect();
        let ns = t.elapsed().as_nanos();
        for h in handles {
            reg.deregister(&mut k, h).unwrap();
        }
        (ns, iters)
    });
    let dereg_ns = median_ns_per_op(|| {
        let handles: Vec<_> = (0..iters)
            .map(|i| {
                reg.register(
                    &mut k,
                    pid,
                    buf + (i * npages * PAGE_SIZE) as u64,
                    npages * PAGE_SIZE,
                )
                .unwrap()
            })
            .collect();
        let t = Instant::now();
        for h in handles {
            reg.deregister(&mut k, h).unwrap();
        }
        (t.elapsed().as_nanos(), iters)
    });
    (reg_ns, dereg_ns)
}

fn bench_find_covering(live: usize) -> (f64, usize) {
    let (mut k, pid) = kernel();
    let buf = k
        .mmap_anon(pid, live * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
    let handles: Vec<_> = (0..live)
        .map(|i| {
            reg.register(&mut k, pid, buf + (i * PAGE_SIZE) as u64, PAGE_SIZE)
                .unwrap()
        })
        .collect();
    let iters = 4096;
    let lookup_ns = median_ns_per_op(|| {
        let t = Instant::now();
        let mut found = 0usize;
        for i in 0..iters {
            let q = buf + (((i * 31) % live) * PAGE_SIZE) as u64;
            found += usize::from(reg.find_covering(pid, q, PAGE_SIZE).is_some());
        }
        assert_eq!(found, iters);
        (t.elapsed().as_nanos(), iters)
    });
    let (_, probes) =
        reg.find_covering_probed(pid, buf + ((live / 2) * PAGE_SIZE) as u64, PAGE_SIZE);
    for h in handles {
        reg.deregister(&mut k, h).unwrap();
    }
    (lookup_ns, probes)
}

fn bench_cache() -> (f64, f64, f64) {
    let (mut k, pid) = kernel();
    let buf = k
        .mmap_anon(pid, 4096 * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
    let mut cache = RegistrationCache::new(1 << 20);
    // Warm 512 cached 8-page spans.
    let spans = 512usize;
    for i in 0..spans {
        let h = cache
            .acquire(
                &mut k,
                &mut reg,
                pid,
                buf + (i * 8 * PAGE_SIZE) as u64,
                8 * PAGE_SIZE,
            )
            .unwrap();
        cache.release(&mut k, &mut reg, h).unwrap();
    }
    let iters = 4096;
    let exact_ns = median_ns_per_op(|| {
        let t = Instant::now();
        for i in 0..iters {
            let a = buf + (((i * 13) % spans) * 8 * PAGE_SIZE) as u64;
            let h = cache
                .acquire(&mut k, &mut reg, pid, a, 8 * PAGE_SIZE)
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        (t.elapsed().as_nanos(), iters)
    });
    let covering_ns = median_ns_per_op(|| {
        let t = Instant::now();
        for i in 0..iters {
            let a = buf + ((((i * 13) % spans) * 8 + 1) * PAGE_SIZE) as u64;
            let h = cache
                .acquire(&mut k, &mut reg, pid, a, 2 * PAGE_SIZE)
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        (t.elapsed().as_nanos(), iters)
    });
    // Miss + immediate flush: the full register/admit/evict cycle.
    let miss_buf = k
        .mmap_anon(pid, 256 * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let miss_iters = 256;
    let miss_ns = median_ns_per_op(|| {
        let t = Instant::now();
        for i in 0..miss_iters {
            let a = miss_buf + (i * PAGE_SIZE) as u64;
            let h = cache.acquire(&mut k, &mut reg, pid, a, PAGE_SIZE).unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        let ns = t.elapsed().as_nanos();
        // Drop the fresh entries so the next rep misses again.
        cache.flush(&mut k, &mut reg).unwrap();
        // Re-warm the hit working set evicted by the flush.
        for i in 0..spans {
            let h = cache
                .acquire(
                    &mut k,
                    &mut reg,
                    pid,
                    buf + (i * 8 * PAGE_SIZE) as u64,
                    8 * PAGE_SIZE,
                )
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        (ns, miss_iters)
    });
    (exact_ns, covering_ns, miss_ns)
}

/// One contention measurement: `threads` workers register/deregister
/// through a shared [`ShardedRegistry`] and read-write-locked kernel.
/// Returns registrations per second (register+deregister counted as one op).
///
/// `overlap == false`: every thread owns its own process and buffer —
/// different shards, different range locks, resident fast path; the
/// disjoint-parallel case the sharding exists for. `overlap == true`: all
/// threads share one process and their windows interleave page-shifted, so
/// every operation contends on the pid's range lock and shard.
fn bench_contention(threads: usize, overlap: bool) -> f64 {
    let mut k = Kernel::new(KernelConfig {
        nframes: 1 << 16,
        reserved_frames: 128,
        swap_slots: 1 << 17,
        default_rlimit_memlock: None,
        swap_cache: false,
    });
    let span = WINDOWS * REGION_PAGES * PAGE_SIZE;
    let mut lanes: Vec<(Pid, u64)> = Vec::with_capacity(threads);
    if overlap {
        let pid = k.spawn_process(Capabilities::default());
        let buf = k
            .mmap_anon(pid, span + threads * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        k.touch_pages(pid, buf, span + threads * PAGE_SIZE, true)
            .unwrap();
        // Page-shifted lanes over one buffer: window i of thread t overlaps
        // window i of threads t±1.
        for t in 0..threads {
            lanes.push((pid, buf + (t * PAGE_SIZE) as u64));
        }
    } else {
        for _ in 0..threads {
            let pid = k.spawn_process(Capabilities::default());
            let buf = k.mmap_anon(pid, span, prot::READ | prot::WRITE).unwrap();
            k.touch_pages(pid, buf, span, true).unwrap();
            lanes.push((pid, buf));
        }
    }
    let nframes = k.meminfo().total_frames;
    let reg = ShardedRegistry::new(StrategyKind::KiobufReliable, nframes);
    let kernel = RwLock::new(k);

    let mut samples: Vec<f64> = (0..CONTENTION_REPS)
        .map(|_| {
            let start = Barrier::new(threads + 1);
            let done = Barrier::new(threads + 1);
            std::thread::scope(|s| {
                for &(pid, buf) in &lanes {
                    let (reg, kernel, start, done) = (&reg, &kernel, &start, &done);
                    s.spawn(move || {
                        start.wait();
                        for i in 0..CONTENTION_OPS {
                            let a = buf + ((i % WINDOWS) * REGION_PAGES * PAGE_SIZE) as u64;
                            let h = reg
                                .register(kernel, pid, a, REGION_PAGES * PAGE_SIZE)
                                .expect("bench registration");
                            reg.deregister(kernel, h).expect("bench deregistration");
                        }
                        done.wait();
                    });
                }
                start.wait();
                let t = Instant::now();
                done.wait();
                let secs = t.elapsed().as_secs_f64();
                (threads * CONTENTION_OPS) as f64 / secs
            })
        })
        .collect();
    assert_eq!(reg.live_regions(), 0, "bench left live regions");
    assert_eq!(reg.pinned_frames(), 0, "bench left pinned frames");
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Pages per transfer in the eager-vs-on-demand A/B sweep.
const AB_PAGES: usize = 8;
/// Transfers per timed batch in the steady-state A/B measurement.
const AB_TRANSFERS: usize = 64;

/// Build a connected 2-node fabric with registered send/receive buffers.
/// Returns everything the transfer loop needs.
#[allow(clippy::type_complexity)]
fn ab_fabric(
    config: KernelConfig,
    strategy: StrategyKind,
) -> (
    ViaSystem,
    (Pid, via::vi::ViId, via::tpt::MemId, u64),
    (Pid, via::vi::ViId, via::tpt::MemId, u64),
) {
    let mut sys = ViaSystem::new(2, config, strategy);
    let pa = sys.spawn_process(0);
    let pb = sys.spawn_process(1);
    let tag = ProtectionTag(7);
    let va = sys.create_vi(0, pa, tag).unwrap();
    let vb = sys.create_vi(1, pb, tag).unwrap();
    sys.connect((0, va), (1, vb)).unwrap();
    let len = AB_PAGES * PAGE_SIZE;
    let sbuf = sys.mmap(0, pa, len, prot::READ | prot::WRITE).unwrap();
    let rbuf = sys.mmap(1, pb, len, prot::READ | prot::WRITE).unwrap();
    let sh = sys.register_mem(0, pa, sbuf, len, tag).unwrap();
    let rh = sys.register_mem(1, pb, rbuf, len, tag).unwrap();
    (sys, (pa, va, sh, sbuf), (pb, vb, rh, rbuf))
}

/// One send/receive round trip with drained completion queues.
fn ab_transfer(
    sys: &mut ViaSystem,
    send: (Pid, via::vi::ViId, via::tpt::MemId, u64),
    recv: (Pid, via::vi::ViId, via::tpt::MemId, u64),
) {
    let len = AB_PAGES * PAGE_SIZE;
    let (_, va, sh, sbuf) = send;
    let (_, vb, rh, rbuf) = recv;
    sys.post_recv(1, vb, rh, rbuf, len).unwrap();
    sys.post_send(0, va, sh, sbuf, len).unwrap();
    sys.pump().unwrap();
    while sys.poll_cq(0, va).unwrap().is_some() {}
    while sys.poll_cq(1, vb).unwrap().is_some() {}
}

/// Steady-state resident hit path: after a warm-up transfer has faulted
/// every on-demand page resident, the timed loop should run the same TPT
/// translations as eager pinning plus only the (empty) invalidation drain.
fn bench_ab_steady(strategy: StrategyKind) -> f64 {
    let (mut sys, send, recv) = ab_fabric(
        KernelConfig {
            nframes: 1 << 14,
            reserved_frames: 128,
            swap_slots: 1 << 15,
            default_rlimit_memlock: None,
            swap_cache: false,
        },
        strategy,
    );
    let len = AB_PAGES * PAGE_SIZE;
    sys.write_user(0, send.0, send.3, &vec![0x5Au8; len])
        .unwrap();
    ab_transfer(&mut sys, send, recv);
    let ns = median_ns_per_op(|| {
        let t = Instant::now();
        for _ in 0..AB_TRANSFERS {
            ab_transfer(&mut sys, send, recv);
        }
        (t.elapsed().as_nanos(), AB_TRANSFERS)
    });
    sys.check_invariants().expect("A/B steady-state invariants");
    ns
}

/// Fault counters from one pressure run, summed over both nodes.
struct AbPressure {
    intact: bool,
    protection_faults: u64,
    repins: u64,
    pressure_unpins: u64,
    tpt_invalidations: u64,
}

/// Memory-stress regime (the `dma_under_pressure` machine): warm the
/// buffers resident, flood both nodes with an antagonist, then transfer a
/// fresh payload. Eager pinning must hold its frames; on-demand must let
/// the stealer dissolve the cold pins and recover by fault-and-repin.
fn bench_ab_pressure(strategy: StrategyKind) -> AbPressure {
    let (mut sys, send, recv) = ab_fabric(
        KernelConfig {
            nframes: 512,
            reserved_frames: 8,
            swap_slots: 8192,
            default_rlimit_memlock: None,
            swap_cache: false,
        },
        strategy,
    );
    let len = AB_PAGES * PAGE_SIZE;
    sys.write_user(0, send.0, send.3, &vec![0xA5u8; len])
        .unwrap();
    ab_transfer(&mut sys, send, recv);

    apply_pressure(sys.kernel_mut(0), 1024);
    apply_pressure(sys.kernel_mut(1), 1024);

    let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    sys.write_user(0, send.0, send.3, &payload).unwrap();
    ab_transfer(&mut sys, send, recv);
    let mut got = vec![0u8; len];
    sys.read_user(1, recv.0, recv.3, &mut got).unwrap();
    sys.check_invariants().expect("A/B pressure invariants");

    let (ra, rb) = (sys.registry_stats(0), sys.registry_stats(1));
    AbPressure {
        intact: got == payload,
        protection_faults: ra.protection_faults + rb.protection_faults,
        repins: ra.repins + rb.repins,
        pressure_unpins: ra.pressure_unpins + rb.pressure_unpins,
        tpt_invalidations: sys.node(0).nic.stats.tpt_invalidations
            + sys.node(1).nic.stats.tpt_invalidations,
    }
}

/// Default floor for the 16-thread disjoint scaling gate: ≥ 8× on hosts
/// with ≥ 16 cores (the acceptance target), proportionally less on smaller
/// hosts, and a don't-regress-below-serial floor on single-core runners
/// where no parallel speedup is physically possible.
fn default_scaling_floor(host_threads: usize) -> f64 {
    if host_threads >= 16 {
        8.0
    } else {
        ((host_threads as f64) / 2.0).clamp(0.75, 8.0)
    }
}

fn main() {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from(
        "{\n  \"bench\": \"regpath\",\n  \"schema\": 3,\n  \"unit\": \"ns_per_op\",\n",
    );

    json.push_str("  \"register\": {\n");
    let sizes = [4usize, 64];
    for (si, strategy) in StrategyKind::ALL.iter().enumerate() {
        write!(json, "    \"{}\": {{", strategy.label()).unwrap();
        for (i, &npages) in sizes.iter().enumerate() {
            let (r, d) = bench_register(*strategy, npages);
            eprintln!(
                "register {:>14} {:>3} pages: {:>9.0} ns/reg {:>9.0} ns/dereg",
                strategy.label(),
                npages,
                r,
                d
            );
            write!(
                json,
                "{}\"{}p\": {{\"register\": {:.0}, \"deregister\": {:.0}}}",
                if i == 0 { "" } else { ", " },
                npages,
                r,
                d
            )
            .unwrap();
        }
        json.push_str(if si + 1 == StrategyKind::ALL.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    json.push_str("  },\n");

    json.push_str("  \"find_covering\": {\n");
    let counts = [64usize, 1024, 4096];
    for (i, &live) in counts.iter().enumerate() {
        let (ns, probes) = bench_find_covering(live);
        eprintln!("find_covering {live:>5} live regions: {ns:>7.0} ns/lookup, {probes} probes");
        writeln!(
            json,
            "    \"{}\": {{\"lookup_ns\": {:.0}, \"probes\": {}}}{}",
            live,
            ns,
            probes,
            if i + 1 == counts.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  },\n");

    let (exact, covering, miss) = bench_cache();
    eprintln!("cache acquire: exact {exact:.0} ns, covering {covering:.0} ns, miss {miss:.0} ns");
    writeln!(
        json,
        "  \"cache_acquire\": {{\"exact_hit\": {exact:.0}, \"covering_hit\": {covering:.0}, \"miss\": {miss:.0}}},"
    )
    .unwrap();

    // Contention sweep over the sharded concurrent path (ops/sec, where one
    // op is a register+deregister pair).
    json.push_str("  \"contention\": {\n");
    writeln!(json, "    \"host_threads\": {host_threads},").unwrap();
    writeln!(json, "    \"ops_per_thread\": {CONTENTION_OPS},").unwrap();
    write!(json, "    \"thread_counts\": [").unwrap();
    for (i, t) in THREAD_COUNTS.iter().enumerate() {
        write!(json, "{}{}", if i == 0 { "" } else { ", " }, t).unwrap();
    }
    json.push_str("],\n");
    let mut disjoint = Vec::new();
    let mut overlapping = Vec::new();
    for &t in &THREAD_COUNTS {
        let d = bench_contention(t, false);
        let o = bench_contention(t, true);
        eprintln!(
            "contention {t:>2} threads: disjoint {d:>10.0} ops/s, overlapping {o:>10.0} ops/s"
        );
        disjoint.push(d);
        overlapping.push(o);
    }
    for (key, vals) in [
        ("disjoint_ops_per_sec", &disjoint),
        ("overlapping_ops_per_sec", &overlapping),
    ] {
        write!(json, "    \"{key}\": {{").unwrap();
        for (i, (&t, v)) in THREAD_COUNTS.iter().zip(vals.iter()).enumerate() {
            write!(
                json,
                "{}\"{}\": {:.0}",
                if i == 0 { "" } else { ", " },
                t,
                v
            )
            .unwrap();
        }
        json.push_str(if key.starts_with("disjoint") {
            "},\n"
        } else {
            "}\n"
        });
    }
    json.push_str("  },\n");

    // Eager-vs-on-demand A/B sweep: steady-state resident throughput plus
    // the pressure regime where the stealer dissolves cold lazy pins.
    let eager_ns = bench_ab_steady(StrategyKind::KiobufReliable);
    let ondemand_ns = bench_ab_steady(StrategyKind::OnDemand);
    let ab_ratio = ondemand_ns / eager_ns;
    eprintln!(
        "ondemand A/B steady state: eager {eager_ns:>9.0} ns/transfer, on-demand {ondemand_ns:>9.0} ns/transfer ({ab_ratio:.2}x)"
    );
    json.push_str("  \"ondemand_ab\": {\n");
    writeln!(json, "    \"transfer_pages\": {AB_PAGES},").unwrap();
    writeln!(
        json,
        "    \"steady_state_ns_per_transfer\": {{\"eager\": {eager_ns:.0}, \"on_demand\": {ondemand_ns:.0}, \"ratio\": {ab_ratio:.3}}},"
    )
    .unwrap();
    json.push_str("    \"pressure\": {\n");
    for (i, strategy) in [StrategyKind::KiobufReliable, StrategyKind::OnDemand]
        .iter()
        .enumerate()
    {
        let p = bench_ab_pressure(*strategy);
        eprintln!(
            "ondemand A/B pressure {:>8}: intact {}, {} protection faults, {} repins, {} pressure unpins, {} TPT invalidations",
            strategy.label(),
            p.intact,
            p.protection_faults,
            p.repins,
            p.pressure_unpins,
            p.tpt_invalidations
        );
        // Correctness is not a timing question: both strategies must land
        // the payload, and on-demand must do it by demonstrably unpinning
        // under pressure and repinning on access — not by the stealer
        // having happened to spare the buffers.
        assert!(
            p.intact,
            "{} lost the transfer under pressure",
            strategy.label()
        );
        if *strategy == StrategyKind::OnDemand {
            assert!(p.pressure_unpins > 0, "stealer never dissolved a lazy pin");
            assert!(p.repins > 0, "NIC never repinned a stolen page");
            assert!(p.tpt_invalidations > 0, "no TPT entry was invalidated");
        }
        writeln!(
            json,
            "      \"{}\": {{\"intact\": {}, \"protection_faults\": {}, \"repins\": {}, \"pressure_unpins\": {}, \"tpt_invalidations\": {}}}{}",
            strategy.label(),
            p.intact,
            p.protection_faults,
            p.repins,
            p.pressure_unpins,
            p.tpt_invalidations,
            if i == 0 { "," } else { "" }
        )
        .unwrap();
    }
    json.push_str("    }\n  }\n}\n");

    // Anchor to the repository root so the output lands in the same place
    // regardless of the invoking directory.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regpath.json");
    std::fs::write(out, &json).expect("write BENCH_regpath.json");
    println!("{json}");

    // CI scaling gate: with REGPATH_ASSERT_SCALING=1, require the disjoint
    // 16-thread throughput to beat single-thread by a floor derived from the
    // host's core count (override with REGPATH_SCALING_MIN). On a 1-core
    // runner this only asserts the sharded path doesn't collapse under
    // contention; on a 16+-core box it demands real parallel speedup.
    if std::env::var("REGPATH_ASSERT_SCALING").as_deref() == Ok("1") {
        let idx_of = |t: usize| THREAD_COUNTS.iter().position(|&c| c == t).unwrap();
        let base = disjoint[idx_of(1)];
        let wide = disjoint[idx_of(16)];
        let ratio = wide / base;
        let floor = std::env::var("REGPATH_SCALING_MIN")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or_else(|| default_scaling_floor(host_threads));
        eprintln!(
            "scaling gate: disjoint 16T/1T = {ratio:.2}x (floor {floor:.2}x, host_threads {host_threads})"
        );
        if ratio < floor {
            eprintln!("scaling gate FAILED: {ratio:.2}x < {floor:.2}x");
            std::process::exit(1);
        }
    }

    // CI on-demand gate: with REGPATH_ASSERT_ONDEMAND=1, require the
    // on-demand steady-state resident hit path to stay within a bounded
    // factor of eager kiobuf (override with REGPATH_ONDEMAND_MAX). The
    // pressure-regime correctness asserts above run unconditionally; only
    // this timing ratio is environment-gated because it is noisy on loaded
    // runners.
    if std::env::var("REGPATH_ASSERT_ONDEMAND").as_deref() == Ok("1") {
        let max = std::env::var("REGPATH_ONDEMAND_MAX")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(3.0);
        eprintln!("on-demand gate: steady-state on-demand/eager = {ab_ratio:.2}x (max {max:.2}x)");
        if ab_ratio > max {
            eprintln!("on-demand gate FAILED: {ab_ratio:.2}x > {max:.2}x");
            std::process::exit(1);
        }
    }
}
