//! Registration fast-path micro-benchmark (criterion-free, offline).
//!
//! Measures the three paths the fast-path overhaul targets and writes the
//! numbers to `BENCH_regpath.json` in the repository root:
//!
//! * `register`/`deregister` cost per strategy × region size (the batched
//!   pin paths);
//! * `find_covering` cost and probe count as the live-region count grows
//!   (the interval index — the probe column is the deterministic witness
//!   that lookups no longer scan the table);
//! * registration-cache acquire cost for exact hits, covering hits and
//!   misses (the O(1)-release / O(log n)-eviction LRU).
//!
//! Schema 2 adds the **contention sweep** over the sharded concurrent
//! registration path: 1→64 registering threads over disjoint (per-process
//! buffers) and overlapping (one process, interleaved windows) range mixes,
//! reported as registrations/second per thread count. The
//! `REGPATH_ASSERT_SCALING=1` gate asserts disjoint-range scaling at 16
//! threads against `REGPATH_SCALING_MIN` (default derived from the host's
//! core count — a single-core runner cannot exhibit parallel speedup).
//!
//! Wall-clock numbers are medians over `REPS` timed batches; probe counts
//! are exact. Run with `cargo run --release --bin regpath_bench`.

use std::fmt::Write as _;
use std::sync::{Barrier, RwLock};
use std::time::Instant;

use simmem::{prot, Capabilities, Kernel, KernelConfig, Pid, PAGE_SIZE};
use vialock::{MemoryRegistry, RegistrationCache, ShardedRegistry, StrategyKind};

const REPS: usize = 7;
/// Contention sweep: fewer reps (each rep spawns a thread fleet).
const CONTENTION_REPS: usize = 3;
/// Thread counts swept by the contention benchmark.
const THREAD_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Register/deregister pairs per thread per rep.
const CONTENTION_OPS: usize = 256;
/// Windows per thread (region slots cycled over) and pages per region.
const WINDOWS: usize = 32;
const REGION_PAGES: usize = 4;

fn kernel() -> (Kernel, Pid) {
    let mut k = Kernel::new(KernelConfig {
        nframes: 1 << 16,
        reserved_frames: 128,
        swap_slots: 1 << 17,
        default_rlimit_memlock: None,
        swap_cache: false,
    });
    let pid = k.spawn_process(Capabilities::default());
    (k, pid)
}

/// Median of `REPS` runs of `f`, each returning (total_ns, per-op count).
fn median_ns_per_op(mut f: impl FnMut() -> (u128, usize)) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let (ns, n) = f();
            ns as f64 / n as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_register(strategy: StrategyKind, npages: usize) -> (f64, f64) {
    let (mut k, pid) = kernel();
    let iters = 64;
    let buf = k
        .mmap_anon(pid, iters * npages * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let mut reg = MemoryRegistry::new(strategy);
    let reg_ns = median_ns_per_op(|| {
        let t = Instant::now();
        let handles: Vec<_> = (0..iters)
            .map(|i| {
                reg.register(
                    &mut k,
                    pid,
                    buf + (i * npages * PAGE_SIZE) as u64,
                    npages * PAGE_SIZE,
                )
                .unwrap()
            })
            .collect();
        let ns = t.elapsed().as_nanos();
        for h in handles {
            reg.deregister(&mut k, h).unwrap();
        }
        (ns, iters)
    });
    let dereg_ns = median_ns_per_op(|| {
        let handles: Vec<_> = (0..iters)
            .map(|i| {
                reg.register(
                    &mut k,
                    pid,
                    buf + (i * npages * PAGE_SIZE) as u64,
                    npages * PAGE_SIZE,
                )
                .unwrap()
            })
            .collect();
        let t = Instant::now();
        for h in handles {
            reg.deregister(&mut k, h).unwrap();
        }
        (t.elapsed().as_nanos(), iters)
    });
    (reg_ns, dereg_ns)
}

fn bench_find_covering(live: usize) -> (f64, usize) {
    let (mut k, pid) = kernel();
    let buf = k
        .mmap_anon(pid, live * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
    let handles: Vec<_> = (0..live)
        .map(|i| {
            reg.register(&mut k, pid, buf + (i * PAGE_SIZE) as u64, PAGE_SIZE)
                .unwrap()
        })
        .collect();
    let iters = 4096;
    let lookup_ns = median_ns_per_op(|| {
        let t = Instant::now();
        let mut found = 0usize;
        for i in 0..iters {
            let q = buf + (((i * 31) % live) * PAGE_SIZE) as u64;
            found += usize::from(reg.find_covering(pid, q, PAGE_SIZE).is_some());
        }
        assert_eq!(found, iters);
        (t.elapsed().as_nanos(), iters)
    });
    let (_, probes) =
        reg.find_covering_probed(pid, buf + ((live / 2) * PAGE_SIZE) as u64, PAGE_SIZE);
    for h in handles {
        reg.deregister(&mut k, h).unwrap();
    }
    (lookup_ns, probes)
}

fn bench_cache() -> (f64, f64, f64) {
    let (mut k, pid) = kernel();
    let buf = k
        .mmap_anon(pid, 4096 * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
    let mut cache = RegistrationCache::new(1 << 20);
    // Warm 512 cached 8-page spans.
    let spans = 512usize;
    for i in 0..spans {
        let h = cache
            .acquire(
                &mut k,
                &mut reg,
                pid,
                buf + (i * 8 * PAGE_SIZE) as u64,
                8 * PAGE_SIZE,
            )
            .unwrap();
        cache.release(&mut k, &mut reg, h).unwrap();
    }
    let iters = 4096;
    let exact_ns = median_ns_per_op(|| {
        let t = Instant::now();
        for i in 0..iters {
            let a = buf + (((i * 13) % spans) * 8 * PAGE_SIZE) as u64;
            let h = cache
                .acquire(&mut k, &mut reg, pid, a, 8 * PAGE_SIZE)
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        (t.elapsed().as_nanos(), iters)
    });
    let covering_ns = median_ns_per_op(|| {
        let t = Instant::now();
        for i in 0..iters {
            let a = buf + ((((i * 13) % spans) * 8 + 1) * PAGE_SIZE) as u64;
            let h = cache
                .acquire(&mut k, &mut reg, pid, a, 2 * PAGE_SIZE)
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        (t.elapsed().as_nanos(), iters)
    });
    // Miss + immediate flush: the full register/admit/evict cycle.
    let miss_buf = k
        .mmap_anon(pid, 256 * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let miss_iters = 256;
    let miss_ns = median_ns_per_op(|| {
        let t = Instant::now();
        for i in 0..miss_iters {
            let a = miss_buf + (i * PAGE_SIZE) as u64;
            let h = cache.acquire(&mut k, &mut reg, pid, a, PAGE_SIZE).unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        let ns = t.elapsed().as_nanos();
        // Drop the fresh entries so the next rep misses again.
        cache.flush(&mut k, &mut reg).unwrap();
        // Re-warm the hit working set evicted by the flush.
        for i in 0..spans {
            let h = cache
                .acquire(
                    &mut k,
                    &mut reg,
                    pid,
                    buf + (i * 8 * PAGE_SIZE) as u64,
                    8 * PAGE_SIZE,
                )
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        (ns, miss_iters)
    });
    (exact_ns, covering_ns, miss_ns)
}

/// One contention measurement: `threads` workers register/deregister
/// through a shared [`ShardedRegistry`] and read-write-locked kernel.
/// Returns registrations per second (register+deregister counted as one op).
///
/// `overlap == false`: every thread owns its own process and buffer —
/// different shards, different range locks, resident fast path; the
/// disjoint-parallel case the sharding exists for. `overlap == true`: all
/// threads share one process and their windows interleave page-shifted, so
/// every operation contends on the pid's range lock and shard.
fn bench_contention(threads: usize, overlap: bool) -> f64 {
    let mut k = Kernel::new(KernelConfig {
        nframes: 1 << 16,
        reserved_frames: 128,
        swap_slots: 1 << 17,
        default_rlimit_memlock: None,
        swap_cache: false,
    });
    let span = WINDOWS * REGION_PAGES * PAGE_SIZE;
    let mut lanes: Vec<(Pid, u64)> = Vec::with_capacity(threads);
    if overlap {
        let pid = k.spawn_process(Capabilities::default());
        let buf = k
            .mmap_anon(pid, span + threads * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        k.touch_pages(pid, buf, span + threads * PAGE_SIZE, true)
            .unwrap();
        // Page-shifted lanes over one buffer: window i of thread t overlaps
        // window i of threads t±1.
        for t in 0..threads {
            lanes.push((pid, buf + (t * PAGE_SIZE) as u64));
        }
    } else {
        for _ in 0..threads {
            let pid = k.spawn_process(Capabilities::default());
            let buf = k.mmap_anon(pid, span, prot::READ | prot::WRITE).unwrap();
            k.touch_pages(pid, buf, span, true).unwrap();
            lanes.push((pid, buf));
        }
    }
    let nframes = k.meminfo().total_frames;
    let reg = ShardedRegistry::new(StrategyKind::KiobufReliable, nframes);
    let kernel = RwLock::new(k);

    let mut samples: Vec<f64> = (0..CONTENTION_REPS)
        .map(|_| {
            let start = Barrier::new(threads + 1);
            let done = Barrier::new(threads + 1);
            std::thread::scope(|s| {
                for &(pid, buf) in &lanes {
                    let (reg, kernel, start, done) = (&reg, &kernel, &start, &done);
                    s.spawn(move || {
                        start.wait();
                        for i in 0..CONTENTION_OPS {
                            let a = buf + ((i % WINDOWS) * REGION_PAGES * PAGE_SIZE) as u64;
                            let h = reg
                                .register(kernel, pid, a, REGION_PAGES * PAGE_SIZE)
                                .expect("bench registration");
                            reg.deregister(kernel, h).expect("bench deregistration");
                        }
                        done.wait();
                    });
                }
                start.wait();
                let t = Instant::now();
                done.wait();
                let secs = t.elapsed().as_secs_f64();
                (threads * CONTENTION_OPS) as f64 / secs
            })
        })
        .collect();
    assert_eq!(reg.live_regions(), 0, "bench left live regions");
    assert_eq!(reg.pinned_frames(), 0, "bench left pinned frames");
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Default floor for the 16-thread disjoint scaling gate: ≥ 8× on hosts
/// with ≥ 16 cores (the acceptance target), proportionally less on smaller
/// hosts, and a don't-regress-below-serial floor on single-core runners
/// where no parallel speedup is physically possible.
fn default_scaling_floor(host_threads: usize) -> f64 {
    if host_threads >= 16 {
        8.0
    } else {
        ((host_threads as f64) / 2.0).clamp(0.75, 8.0)
    }
}

fn main() {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from(
        "{\n  \"bench\": \"regpath\",\n  \"schema\": 2,\n  \"unit\": \"ns_per_op\",\n",
    );

    json.push_str("  \"register\": {\n");
    let sizes = [4usize, 64];
    for (si, strategy) in StrategyKind::ALL.iter().enumerate() {
        write!(json, "    \"{}\": {{", strategy.label()).unwrap();
        for (i, &npages) in sizes.iter().enumerate() {
            let (r, d) = bench_register(*strategy, npages);
            eprintln!(
                "register {:>14} {:>3} pages: {:>9.0} ns/reg {:>9.0} ns/dereg",
                strategy.label(),
                npages,
                r,
                d
            );
            write!(
                json,
                "{}\"{}p\": {{\"register\": {:.0}, \"deregister\": {:.0}}}",
                if i == 0 { "" } else { ", " },
                npages,
                r,
                d
            )
            .unwrap();
        }
        json.push_str(if si + 1 == StrategyKind::ALL.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    json.push_str("  },\n");

    json.push_str("  \"find_covering\": {\n");
    let counts = [64usize, 1024, 4096];
    for (i, &live) in counts.iter().enumerate() {
        let (ns, probes) = bench_find_covering(live);
        eprintln!("find_covering {live:>5} live regions: {ns:>7.0} ns/lookup, {probes} probes");
        writeln!(
            json,
            "    \"{}\": {{\"lookup_ns\": {:.0}, \"probes\": {}}}{}",
            live,
            ns,
            probes,
            if i + 1 == counts.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  },\n");

    let (exact, covering, miss) = bench_cache();
    eprintln!("cache acquire: exact {exact:.0} ns, covering {covering:.0} ns, miss {miss:.0} ns");
    writeln!(
        json,
        "  \"cache_acquire\": {{\"exact_hit\": {exact:.0}, \"covering_hit\": {covering:.0}, \"miss\": {miss:.0}}},"
    )
    .unwrap();

    // Contention sweep over the sharded concurrent path (ops/sec, where one
    // op is a register+deregister pair).
    json.push_str("  \"contention\": {\n");
    writeln!(json, "    \"host_threads\": {host_threads},").unwrap();
    writeln!(json, "    \"ops_per_thread\": {CONTENTION_OPS},").unwrap();
    write!(json, "    \"thread_counts\": [").unwrap();
    for (i, t) in THREAD_COUNTS.iter().enumerate() {
        write!(json, "{}{}", if i == 0 { "" } else { ", " }, t).unwrap();
    }
    json.push_str("],\n");
    let mut disjoint = Vec::new();
    let mut overlapping = Vec::new();
    for &t in &THREAD_COUNTS {
        let d = bench_contention(t, false);
        let o = bench_contention(t, true);
        eprintln!(
            "contention {t:>2} threads: disjoint {d:>10.0} ops/s, overlapping {o:>10.0} ops/s"
        );
        disjoint.push(d);
        overlapping.push(o);
    }
    for (key, vals) in [
        ("disjoint_ops_per_sec", &disjoint),
        ("overlapping_ops_per_sec", &overlapping),
    ] {
        write!(json, "    \"{key}\": {{").unwrap();
        for (i, (&t, v)) in THREAD_COUNTS.iter().zip(vals.iter()).enumerate() {
            write!(
                json,
                "{}\"{}\": {:.0}",
                if i == 0 { "" } else { ", " },
                t,
                v
            )
            .unwrap();
        }
        json.push_str(if key.starts_with("disjoint") {
            "},\n"
        } else {
            "}\n"
        });
    }
    json.push_str("  }\n}\n");

    // Anchor to the repository root so the output lands in the same place
    // regardless of the invoking directory.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regpath.json");
    std::fs::write(out, &json).expect("write BENCH_regpath.json");
    println!("{json}");

    // CI scaling gate: with REGPATH_ASSERT_SCALING=1, require the disjoint
    // 16-thread throughput to beat single-thread by a floor derived from the
    // host's core count (override with REGPATH_SCALING_MIN). On a 1-core
    // runner this only asserts the sharded path doesn't collapse under
    // contention; on a 16+-core box it demands real parallel speedup.
    if std::env::var("REGPATH_ASSERT_SCALING").as_deref() == Ok("1") {
        let idx_of = |t: usize| THREAD_COUNTS.iter().position(|&c| c == t).unwrap();
        let base = disjoint[idx_of(1)];
        let wide = disjoint[idx_of(16)];
        let ratio = wide / base;
        let floor = std::env::var("REGPATH_SCALING_MIN")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or_else(|| default_scaling_floor(host_threads));
        eprintln!(
            "scaling gate: disjoint 16T/1T = {ratio:.2}x (floor {floor:.2}x, host_threads {host_threads})"
        );
        if ratio < floor {
            eprintln!("scaling gate FAILED: {ratio:.2}x < {floor:.2}x");
            std::process::exit(1);
        }
    }
}
