//! Registration fast-path micro-benchmark (criterion-free, offline).
//!
//! Measures the three paths the fast-path overhaul targets and writes the
//! numbers to `BENCH_regpath.json` in the repository root:
//!
//! * `register`/`deregister` cost per strategy × region size (the batched
//!   pin paths);
//! * `find_covering` cost and probe count as the live-region count grows
//!   (the interval index — the probe column is the deterministic witness
//!   that lookups no longer scan the table);
//! * registration-cache acquire cost for exact hits, covering hits and
//!   misses (the O(1)-release / O(log n)-eviction LRU).
//!
//! Wall-clock numbers are medians over `REPS` timed batches; probe counts
//! are exact. Run with `cargo run --release --bin regpath_bench`.

use std::fmt::Write as _;
use std::time::Instant;

use simmem::{prot, Capabilities, Kernel, KernelConfig, Pid, PAGE_SIZE};
use vialock::{MemoryRegistry, RegistrationCache, StrategyKind};

const REPS: usize = 7;

fn kernel() -> (Kernel, Pid) {
    let mut k = Kernel::new(KernelConfig {
        nframes: 1 << 16,
        reserved_frames: 128,
        swap_slots: 1 << 17,
        default_rlimit_memlock: None,
        swap_cache: false,
    });
    let pid = k.spawn_process(Capabilities::default());
    (k, pid)
}

/// Median of `REPS` runs of `f`, each returning (total_ns, per-op count).
fn median_ns_per_op(mut f: impl FnMut() -> (u128, usize)) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let (ns, n) = f();
            ns as f64 / n as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_register(strategy: StrategyKind, npages: usize) -> (f64, f64) {
    let (mut k, pid) = kernel();
    let iters = 64;
    let buf = k
        .mmap_anon(pid, iters * npages * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let mut reg = MemoryRegistry::new(strategy);
    let reg_ns = median_ns_per_op(|| {
        let t = Instant::now();
        let handles: Vec<_> = (0..iters)
            .map(|i| {
                reg.register(
                    &mut k,
                    pid,
                    buf + (i * npages * PAGE_SIZE) as u64,
                    npages * PAGE_SIZE,
                )
                .unwrap()
            })
            .collect();
        let ns = t.elapsed().as_nanos();
        for h in handles {
            reg.deregister(&mut k, h).unwrap();
        }
        (ns, iters)
    });
    let dereg_ns = median_ns_per_op(|| {
        let handles: Vec<_> = (0..iters)
            .map(|i| {
                reg.register(
                    &mut k,
                    pid,
                    buf + (i * npages * PAGE_SIZE) as u64,
                    npages * PAGE_SIZE,
                )
                .unwrap()
            })
            .collect();
        let t = Instant::now();
        for h in handles {
            reg.deregister(&mut k, h).unwrap();
        }
        (t.elapsed().as_nanos(), iters)
    });
    (reg_ns, dereg_ns)
}

fn bench_find_covering(live: usize) -> (f64, usize) {
    let (mut k, pid) = kernel();
    let buf = k
        .mmap_anon(pid, live * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
    let handles: Vec<_> = (0..live)
        .map(|i| {
            reg.register(&mut k, pid, buf + (i * PAGE_SIZE) as u64, PAGE_SIZE)
                .unwrap()
        })
        .collect();
    let iters = 4096;
    let lookup_ns = median_ns_per_op(|| {
        let t = Instant::now();
        let mut found = 0usize;
        for i in 0..iters {
            let q = buf + (((i * 31) % live) * PAGE_SIZE) as u64;
            found += usize::from(reg.find_covering(pid, q, PAGE_SIZE).is_some());
        }
        assert_eq!(found, iters);
        (t.elapsed().as_nanos(), iters)
    });
    let (_, probes) =
        reg.find_covering_probed(pid, buf + ((live / 2) * PAGE_SIZE) as u64, PAGE_SIZE);
    for h in handles {
        reg.deregister(&mut k, h).unwrap();
    }
    (lookup_ns, probes)
}

fn bench_cache() -> (f64, f64, f64) {
    let (mut k, pid) = kernel();
    let buf = k
        .mmap_anon(pid, 4096 * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let mut reg = MemoryRegistry::new(StrategyKind::KiobufReliable);
    let mut cache = RegistrationCache::new(1 << 20);
    // Warm 512 cached 8-page spans.
    let spans = 512usize;
    for i in 0..spans {
        let h = cache
            .acquire(
                &mut k,
                &mut reg,
                pid,
                buf + (i * 8 * PAGE_SIZE) as u64,
                8 * PAGE_SIZE,
            )
            .unwrap();
        cache.release(&mut k, &mut reg, h).unwrap();
    }
    let iters = 4096;
    let exact_ns = median_ns_per_op(|| {
        let t = Instant::now();
        for i in 0..iters {
            let a = buf + (((i * 13) % spans) * 8 * PAGE_SIZE) as u64;
            let h = cache
                .acquire(&mut k, &mut reg, pid, a, 8 * PAGE_SIZE)
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        (t.elapsed().as_nanos(), iters)
    });
    let covering_ns = median_ns_per_op(|| {
        let t = Instant::now();
        for i in 0..iters {
            let a = buf + ((((i * 13) % spans) * 8 + 1) * PAGE_SIZE) as u64;
            let h = cache
                .acquire(&mut k, &mut reg, pid, a, 2 * PAGE_SIZE)
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        (t.elapsed().as_nanos(), iters)
    });
    // Miss + immediate flush: the full register/admit/evict cycle.
    let miss_buf = k
        .mmap_anon(pid, 256 * PAGE_SIZE, prot::READ | prot::WRITE)
        .unwrap();
    let miss_iters = 256;
    let miss_ns = median_ns_per_op(|| {
        let t = Instant::now();
        for i in 0..miss_iters {
            let a = miss_buf + (i * PAGE_SIZE) as u64;
            let h = cache.acquire(&mut k, &mut reg, pid, a, PAGE_SIZE).unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        let ns = t.elapsed().as_nanos();
        // Drop the fresh entries so the next rep misses again.
        cache.flush(&mut k, &mut reg).unwrap();
        // Re-warm the hit working set evicted by the flush.
        for i in 0..spans {
            let h = cache
                .acquire(
                    &mut k,
                    &mut reg,
                    pid,
                    buf + (i * 8 * PAGE_SIZE) as u64,
                    8 * PAGE_SIZE,
                )
                .unwrap();
            cache.release(&mut k, &mut reg, h).unwrap();
        }
        (ns, miss_iters)
    });
    (exact_ns, covering_ns, miss_ns)
}

fn main() {
    let mut json = String::from("{\n  \"bench\": \"regpath\",\n  \"unit\": \"ns_per_op\",\n");

    json.push_str("  \"register\": {\n");
    let sizes = [4usize, 64];
    for (si, strategy) in StrategyKind::ALL.iter().enumerate() {
        write!(json, "    \"{}\": {{", strategy.label()).unwrap();
        for (i, &npages) in sizes.iter().enumerate() {
            let (r, d) = bench_register(*strategy, npages);
            eprintln!(
                "register {:>14} {:>3} pages: {:>9.0} ns/reg {:>9.0} ns/dereg",
                strategy.label(),
                npages,
                r,
                d
            );
            write!(
                json,
                "{}\"{}p\": {{\"register\": {:.0}, \"deregister\": {:.0}}}",
                if i == 0 { "" } else { ", " },
                npages,
                r,
                d
            )
            .unwrap();
        }
        json.push_str(if si + 1 == StrategyKind::ALL.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    json.push_str("  },\n");

    json.push_str("  \"find_covering\": {\n");
    let counts = [64usize, 1024, 4096];
    for (i, &live) in counts.iter().enumerate() {
        let (ns, probes) = bench_find_covering(live);
        eprintln!("find_covering {live:>5} live regions: {ns:>7.0} ns/lookup, {probes} probes");
        writeln!(
            json,
            "    \"{}\": {{\"lookup_ns\": {:.0}, \"probes\": {}}}{}",
            live,
            ns,
            probes,
            if i + 1 == counts.len() { "" } else { "," }
        )
        .unwrap();
    }
    json.push_str("  },\n");

    let (exact, covering, miss) = bench_cache();
    eprintln!("cache acquire: exact {exact:.0} ns, covering {covering:.0} ns, miss {miss:.0} ns");
    write!(
        json,
        "  \"cache_acquire\": {{\"exact_hit\": {exact:.0}, \"covering_hit\": {covering:.0}, \"miss\": {miss:.0}}}\n}}\n"
    )
    .unwrap();

    // Anchor to the repository root so the output lands in the same place
    // regardless of the invoking directory.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regpath.json");
    std::fs::write(out, &json).expect("write BENCH_regpath.json");
    println!("{json}");
}
