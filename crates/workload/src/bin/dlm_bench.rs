//! Distributed-lock-manager benchmark (criterion-free, offline).
//!
//! Both DLM designs — the server-mediated manager and the one-sided
//! RDMA-CAS table — run on a 9-node deterministic fabric (one manager /
//! table-host node plus 8 client nodes, the scale the cluster benches
//! use), with thousands of logical clients multiplexed over the client
//! ranks and Zipfian hot-key contention. Mid-run the harness injects two
//! failures per design:
//!
//! * one client rank dies *silently* (crash-stop, no notification) — its
//!   held locks must be recovered lazily, by lease expiry (server) or by
//!   lease steal (one-sided);
//! * one client rank dies *loudly* through the process-exit reclamation
//!   path ([`dlm::reclaim`]) — its locks are released eagerly and its
//!   waiters woken.
//!
//! Reported per design: acquire/release latency percentiles in logical
//! ticks, Jain's fairness index over per-client completed acquisitions,
//! steal/expiry/reclaim counters and the zero-orphans audit. Writes
//! `BENCH_dlm.json` in the repository root.
//!
//! Run with `cargo run --release -p workload --bin dlm_bench`; set
//! `DLM_BENCH_QUICK=1` (or pass `--quick`) for the CI smoke variant.
//! `DLM_ASSERT_FAIRNESS=1` gates on Jain fairness >= `DLM_FAIRNESS_MIN`
//! (default 0.3), mirroring the datapath scaling gate.

use std::fmt::Write as _;

use dlm::sim::{OneSidedSim, OpStats, ServerSim};
use dlm::{reclaim, ClientId};
use msg::{Comm, MsgConfig, RankId};
use simmem::KernelConfig;
use vialock::StrategyKind;

/// Client nodes (plus one manager/table-host node).
const CLIENT_NODES: usize = 8;
/// Locks in the table; theta 0.99 concentrates most traffic on a few.
const NLOCKS: usize = 64;
const THETA: f64 = 0.99;
/// Lease length in logical ticks.
const LEASE_TICKS: u64 = 80;
/// Fixed seed: the whole run is deterministic.
const SEED: u64 = 0xD1A0_10CC;

struct Bench {
    quick: bool,
    clients_per_rank: usize,
    steps: u64,
    clients_per_tick: usize,
}

impl Bench {
    fn from_env() -> Bench {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("DLM_BENCH_QUICK").is_ok_and(|v| v == "1");
        if quick {
            Bench {
                quick,
                clients_per_rank: 64,
                steps: 800,
                clients_per_tick: 64,
            }
        } else {
            Bench {
                quick,
                clients_per_rank: 512,
                steps: 2400,
                clients_per_tick: 256,
            }
        }
    }

    fn comm(&self) -> Comm {
        let n = 1 + CLIENT_NODES;
        Comm::new(
            n,
            n,
            KernelConfig::large(),
            StrategyKind::KiobufReliable,
            MsgConfig::tiny(),
        )
        .expect("build communicator")
    }

    fn client_ranks(&self) -> Vec<RankId> {
        (1..=CLIENT_NODES).collect()
    }

    /// The rank a logical client lives on (id layout of the sims: rank
    /// `client_ranks[id / clients_per_rank]`).
    fn rank_of(&self, client: ClientId) -> RankId {
        1 + client as usize / self.clients_per_rank
    }
}

/// Per-design results feeding the JSON report.
struct DesignReport {
    acquires: usize,
    acquire_p50: u64,
    acquire_p99: u64,
    release_p50: u64,
    release_p99: u64,
    fairness: f64,
    deadline_errors: u64,
    stale_rejections: u64,
    /// Lease expiries swept by the manager / lease steals by peers.
    recovered_lazily: u64,
    /// Locks released eagerly through process-exit reclamation.
    reclaimed: u64,
    orphans: usize,
}

fn percentiles(stats: &OpStats) -> (u64, u64, u64, u64) {
    (
        OpStats::percentile(&stats.acquire_ticks, 0.50),
        OpStats::percentile(&stats.acquire_ticks, 0.99),
        OpStats::percentile(&stats.release_ticks, 0.50),
        OpStats::percentile(&stats.release_ticks, 0.99),
    )
}

/// The server-mediated design: silent crash of the last-but-one client
/// rank (recovered by lease expiry), process-exit crash of the last
/// (recovered eagerly, waiters woken).
fn run_server(cfg: &Bench) -> DesignReport {
    let mut c = cfg.comm();
    let ranks = cfg.client_ranks();
    let mut sim = ServerSim::new(
        &mut c,
        0,
        &ranks,
        cfg.clients_per_rank,
        NLOCKS,
        THETA,
        LEASE_TICKS,
        SEED,
    )
    .expect("server sim");

    let silent = *ranks.iter().rev().nth(1).expect("two client ranks");
    let loud = *ranks.last().expect("client ranks");
    for step in 0..cfg.steps {
        if step == cfg.steps / 2 {
            // Crash-stop: the clients just stop; nobody tells the manager.
            sim.kill_rank_clients(silent);
            // Process exit: memory teardown, then eager lock reclamation.
            sim.kill_rank_clients(loud);
            let now = sim.now;
            reclaim::exit_rank(&mut c, &mut sim.manager, loud, now).expect("exit_rank");
        }
        sim.step(&mut c, cfg.clients_per_tick).expect("server step");
    }
    // Drain: live clients wind down, silent casualties' leases expire.
    let live = sim.live_clients();
    let mut orphans = sim.manager.orphans(|cl| live.contains(&cl)).len();
    for _ in 0..(4 * LEASE_TICKS) {
        sim.step(&mut c, cfg.clients_per_tick).expect("drain step");
        orphans = sim.manager.orphans(|cl| live.contains(&cl)).len();
        if orphans == 0 {
            break;
        }
    }

    let (a50, a99, r50, r99) = percentiles(&sim.stats);
    DesignReport {
        acquires: sim.stats.acquire_ticks.len(),
        acquire_p50: a50,
        acquire_p99: a99,
        release_p50: r50,
        release_p99: r99,
        fairness: sim.stats.jain_fairness(),
        deadline_errors: sim.stats.deadline_errors,
        stale_rejections: sim.manager.stats.stale_rejections,
        recovered_lazily: sim.manager.stats.expiries,
        reclaimed: sim.manager.stats.reclaimed,
        orphans,
    }
}

/// The one-sided design: same failure plan, but the silent casualty is
/// recovered by peers *stealing* the expired lease with CAS, and the
/// loud one by a reclamation sweep from a surviving rank.
fn run_onesided(cfg: &Bench) -> DesignReport {
    let mut c = cfg.comm();
    let ranks = cfg.client_ranks();
    let mut sim = OneSidedSim::new(
        &mut c,
        0,
        &ranks,
        cfg.clients_per_rank,
        NLOCKS,
        THETA,
        LEASE_TICKS,
        SEED,
    )
    .expect("one-sided sim");

    let silent = *ranks.iter().rev().nth(1).expect("two client ranks");
    let loud = *ranks.last().expect("client ranks");
    for step in 0..cfg.steps {
        if step == cfg.steps / 2 {
            sim.kill_rank_clients(silent);
            sim.kill_rank_clients(loud);
            reclaim::exit_rank_onesided(&mut c, &mut sim.table, loud, 0, |cl| cfg.rank_of(cl))
                .expect("exit_rank_onesided");
        }
        sim.step(&mut c, cfg.clients_per_tick)
            .expect("one-sided step");
    }
    // Hot keys' expired leases get stolen organically; cold keys are
    // recovered by the (lazy) reclamation sweep once the silent death is
    // finally detected. Both paths must leave zero orphans.
    let live = sim.live_clients();
    sim.table
        .reclaim(&mut c, 0, |cl| !live.contains(&cl))
        .expect("lazy reclamation sweep");
    let orphans = sim
        .table
        .orphans(&mut c, 0, |cl| live.contains(&cl))
        .expect("orphan audit")
        .len();

    let (a50, a99, r50, r99) = percentiles(&sim.stats);
    DesignReport {
        acquires: sim.stats.acquire_ticks.len(),
        acquire_p50: a50,
        acquire_p99: a99,
        release_p50: r50,
        release_p99: r99,
        fairness: sim.stats.jain_fairness(),
        deadline_errors: sim.stats.deadline_errors,
        stale_rejections: sim.table.stats.stale_rejections,
        recovered_lazily: sim.table.stats.steals,
        reclaimed: sim.table.stats.reclaimed,
        orphans,
    }
}

fn emit(json: &mut String, label: &str, lazy_name: &str, r: &DesignReport, last: bool) {
    eprintln!(
        "{label:>10}: {} acquires, p50/p99 acquire {}/{} ticks, p50/p99 release {}/{}, \
         fairness {:.3}, {} {lazy_name}, {} reclaimed, {} stale, {} deadline, {} orphans",
        r.acquires,
        r.acquire_p50,
        r.acquire_p99,
        r.release_p50,
        r.release_p99,
        r.fairness,
        r.recovered_lazily,
        r.reclaimed,
        r.stale_rejections,
        r.deadline_errors,
        r.orphans,
    );
    writeln!(
        json,
        "  \"{label}\": {{\n    \"acquires\": {},\n    \"acquire_p50_ticks\": {},\n    \
         \"acquire_p99_ticks\": {},\n    \"release_p50_ticks\": {},\n    \
         \"release_p99_ticks\": {},\n    \"jain_fairness\": {:.4},\n    \
         \"{lazy_name}\": {},\n    \"reclaimed_on_exit\": {},\n    \
         \"stale_token_rejections\": {},\n    \"deadline_errors\": {},\n    \
         \"orphans_after_recovery\": {}\n  }}{}",
        r.acquires,
        r.acquire_p50,
        r.acquire_p99,
        r.release_p50,
        r.release_p99,
        r.fairness,
        r.recovered_lazily,
        r.reclaimed,
        r.stale_rejections,
        r.deadline_errors,
        r.orphans,
        if last { "" } else { "," }
    )
    .unwrap();
}

fn main() {
    let cfg = Bench::from_env();
    let clients = CLIENT_NODES * cfg.clients_per_rank;
    eprintln!(
        "dlm bench: {} client nodes + 1 host, {clients} logical clients, {} locks \
         (zipf {THETA}), lease {LEASE_TICKS} ticks, {} steps{}",
        CLIENT_NODES,
        NLOCKS,
        cfg.steps,
        if cfg.quick { " (quick)" } else { "" },
    );

    let server = run_server(&cfg);
    let onesided = run_onesided(&cfg);

    let mut json = String::from("{\n  \"bench\": \"dlm\",\n");
    writeln!(json, "  \"quick\": {},", cfg.quick).unwrap();
    writeln!(
        json,
        "  \"nodes\": {},\n  \"logical_clients\": {clients},\n  \"locks\": {NLOCKS},\n  \
         \"zipf_theta\": {THETA},\n  \"lease_ticks\": {LEASE_TICKS},\n  \
         \"failure_plan\": \"one silent crash-stop rank + one process-exit rank at midpoint\",",
        1 + CLIENT_NODES
    )
    .unwrap();
    emit(&mut json, "server", "lease_expiries", &server, false);
    emit(&mut json, "onesided", "lease_steals", &onesided, true);
    json.push_str("}\n");

    // The robustness contract is unconditional, bench or not.
    assert_eq!(server.orphans, 0, "server design orphaned locks");
    assert_eq!(onesided.orphans, 0, "one-sided design orphaned locks");
    assert!(
        server.recovered_lazily > 0,
        "silent crash never recovered by lease expiry"
    );
    assert!(
        onesided.recovered_lazily + onesided.reclaimed > 0,
        "one-sided crash recovery never exercised"
    );

    if std::env::var("DLM_ASSERT_FAIRNESS").as_deref() == Ok("1") {
        let min: f64 = std::env::var("DLM_FAIRNESS_MIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.3);
        for (label, f) in [("server", server.fairness), ("onesided", onesided.fairness)] {
            assert!(
                f >= min,
                "{label} fairness collapsed: Jain index {f:.3} < gate {min}"
            );
        }
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dlm.json");
    std::fs::write(out, &json).expect("write BENCH_dlm.json");
    println!("{json}");
}
