//! Error type for the simulated memory-management subsystem.

use std::fmt;

use crate::{FrameId, Pid, VirtAddr};

/// Errors returned by the simulated kernel, modelled on the errno values the
/// corresponding Linux paths return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MmError {
    /// No physical frame could be freed and the swap device is full (`ENOMEM`
    /// after `try_to_free_pages` failed).
    OutOfMemory,
    /// The swap device has no free slots left.
    SwapFull,
    /// A swap-device read failed (`EIO` on swap-in). The PTE keeps pointing
    /// at the slot, so the fault can be retried.
    SwapIoError,
    /// Access to an address that is not covered by any VMA (`SIGSEGV`).
    SegFault { pid: Pid, addr: VirtAddr },
    /// Write access to a read-only mapping (`SIGSEGV`).
    ProtFault { pid: Pid, addr: VirtAddr },
    /// Unknown process id.
    NoSuchProcess(Pid),
    /// `mlock` without `CAP_IPC_LOCK` (`EPERM`).
    PermissionDenied,
    /// `mlock` would exceed `RLIMIT_MEMLOCK` (`ENOMEM` in Linux).
    MlockLimit,
    /// Invalid argument (unaligned or empty range, bad prot bits, …).
    InvalidArgument(&'static str),
    /// The requested virtual range overlaps an existing mapping.
    RangeBusy,
    /// A kiobuf operation referenced an unknown kiobuf id.
    NoSuchKiobuf,
    /// `lock_kiobuf` found a page whose `PG_locked` bit is already held (in
    /// the real kernel the caller would sleep on the page-wait queue; the
    /// deterministic simulator surfaces it so callers can model the wait).
    PageBusy(FrameId),
    /// Attempt to unlock a kiobuf that is not locked, or double-lock.
    KiobufState(&'static str),
    /// Reference-count bookkeeping went negative — an invariant violation
    /// that would be a kernel BUG().
    RefcountUnderflow(FrameId),
}

impl fmt::Display for MmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmError::OutOfMemory => write!(f, "out of memory (no page could be freed)"),
            MmError::SwapFull => write!(f, "swap device full"),
            MmError::SwapIoError => write!(f, "swap device I/O error"),
            MmError::SegFault { pid, addr } => {
                write!(f, "segmentation fault: pid {} addr {:#x}", pid.0, addr)
            }
            MmError::ProtFault { pid, addr } => {
                write!(f, "protection fault: pid {} addr {:#x}", pid.0, addr)
            }
            MmError::NoSuchProcess(p) => write!(f, "no such process: {}", p.0),
            MmError::PermissionDenied => write!(f, "permission denied (CAP_IPC_LOCK required)"),
            MmError::MlockLimit => write!(f, "RLIMIT_MEMLOCK exceeded"),
            MmError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            MmError::RangeBusy => write!(f, "address range already mapped"),
            MmError::NoSuchKiobuf => write!(f, "no such kiobuf"),
            MmError::PageBusy(fr) => write!(f, "page {} is locked for I/O", fr.0),
            MmError::KiobufState(s) => write!(f, "kiobuf state error: {s}"),
            MmError::RefcountUnderflow(fr) => write!(f, "page {} refcount underflow", fr.0),
        }
    }
}

impl std::error::Error for MmError {}

/// Convenient result alias used throughout the crate.
pub type MmResult<T> = Result<T, MmError>;
