//! `mlock`/`munlock`: the VMA-based locking approach (paper section 3.2).
//!
//! `sys_mlock` enforces the `CAP_IPC_LOCK` capability — the reason the
//! paper's Kernel Agent must either patch `do_mlock` or temporarily raise
//! the capability (`cap_raise`/`cap_lower`). `do_mlock` splits VMAs at the
//! range boundaries, sets `VM_LOCKED` and makes the pages present.
//! Crucially, **mlock does not nest**: a single `munlock` unlocks the range
//! no matter how many times it was locked.

use crate::error::MmResult;
use crate::{Kernel, MmError, Pid, VirtAddr, PAGE_SIZE};

impl Kernel {
    /// The `mlock(2)` syscall: privilege check, then [`Kernel::do_mlock`].
    pub fn sys_mlock(&mut self, pid: Pid, addr: VirtAddr, len: usize) -> MmResult<()> {
        if !self.process(pid)?.caps.ipc_lock {
            return Err(MmError::PermissionDenied);
        }
        self.do_mlock(pid, addr, len, true)
    }

    /// The `munlock(2)` syscall. Note the non-nesting semantics.
    pub fn sys_munlock(&mut self, pid: Pid, addr: VirtAddr, len: usize) -> MmResult<()> {
        if !self.process(pid)?.caps.ipc_lock {
            return Err(MmError::PermissionDenied);
        }
        self.do_mlock(pid, addr, len, false)
    }

    /// `do_mlock`: the internal worker a privileged kernel agent may call
    /// directly (the User-DMA-patch route the paper describes). Splits VMAs,
    /// flips `VM_LOCKED`, and when locking faults every page in
    /// (`make_pages_present`).
    pub fn do_mlock(&mut self, pid: Pid, addr: VirtAddr, len: usize, lock: bool) -> MmResult<()> {
        if len == 0 {
            return Err(MmError::InvalidArgument("mlock of zero length"));
        }
        let start = crate::page_base(addr);
        let end = crate::page_align_up(addr + len as u64);

        {
            let proc = self.process(pid)?;
            if !proc.mm.vmas.covered(start, end) {
                return Err(MmError::SegFault { pid, addr });
            }
            if lock {
                if let Some(limit) = proc.rlimit_memlock {
                    let newly = end - start; // upper bound; fine for a limit check
                    if proc.mm.vmas.locked_bytes() + newly > limit {
                        return Err(MmError::MlockLimit);
                    }
                }
            }
        }

        {
            let proc = self.process_mut(pid)?;
            proc.mm
                .vmas
                .for_range_mut(start, end, |v| v.flags.locked = lock);
            proc.mm.vmas.merge_adjacent();
        }

        if lock {
            // make_pages_present: fault everything in so the locked range is
            // resident. Read faults suffice (COW still allowed later; the
            // stealer skips the VMA wholesale either way).
            let mut a = start;
            while a < end {
                self.fault_in(pid, a, false)?;
                a += PAGE_SIZE as u64;
            }
        }
        Ok(())
    }

    /// `cap_raise(CAP_IPC_LOCK)` — the capability-juggling route: the kernel
    /// agent grants the calling process the lock capability…
    pub fn cap_raise_ipc_lock(&mut self, pid: Pid) -> MmResult<()> {
        self.process_mut(pid)?.caps.ipc_lock = true;
        Ok(())
    }

    /// …and `cap_lower(CAP_IPC_LOCK)` reclaims it afterwards.
    pub fn cap_lower_ipc_lock(&mut self, pid: Pid) -> MmResult<()> {
        self.process_mut(pid)?.caps.ipc_lock = false;
        Ok(())
    }

    /// Set a process' `RLIMIT_MEMLOCK` (bytes; `None` = unlimited).
    pub fn set_rlimit_memlock(&mut self, pid: Pid, limit: Option<u64>) -> MmResult<()> {
        self.process_mut(pid)?.rlimit_memlock = limit;
        Ok(())
    }

    /// Bytes currently locked via `VM_LOCKED` in the process.
    pub fn locked_bytes(&self, pid: Pid) -> MmResult<u64> {
        Ok(self.process(pid)?.mm.vmas.locked_bytes())
    }

    /// Number of VMAs in the process (observes mlock-induced splitting).
    pub fn vma_count(&self, pid: Pid) -> MmResult<usize> {
        Ok(self.process(pid)?.mm.vmas.count())
    }
}

#[cfg(test)]
mod tests {
    use crate::{prot, Capabilities, Kernel, KernelConfig, MmError, PAGE_SIZE};

    #[test]
    fn mlock_requires_capability() {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        assert_eq!(
            k.sys_mlock(pid, a, PAGE_SIZE),
            Err(MmError::PermissionDenied)
        );
        // The cap_raise / cap_lower dance from the paper:
        k.cap_raise_ipc_lock(pid).unwrap();
        k.sys_mlock(pid, a, PAGE_SIZE).unwrap();
        k.cap_lower_ipc_lock(pid).unwrap();
        assert_eq!(k.locked_bytes(pid).unwrap(), PAGE_SIZE as u64);
    }

    #[test]
    fn mlock_makes_pages_present() {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::root());
        let a = k
            .mmap_anon(pid, 4 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        assert_eq!(k.rss(pid).unwrap(), 0);
        k.sys_mlock(pid, a, 4 * PAGE_SIZE).unwrap();
        assert_eq!(k.rss(pid).unwrap(), 4);
    }

    #[test]
    fn mlock_splits_and_munlock_merges() {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::root());
        let a = k
            .mmap_anon(pid, 10 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        assert_eq!(k.vma_count(pid).unwrap(), 1);
        k.sys_mlock(pid, a + 2 * PAGE_SIZE as u64, 3 * PAGE_SIZE)
            .unwrap();
        assert_eq!(k.vma_count(pid).unwrap(), 3);
        k.sys_munlock(pid, a + 2 * PAGE_SIZE as u64, 3 * PAGE_SIZE)
            .unwrap();
        assert_eq!(k.vma_count(pid).unwrap(), 1, "merge restores one VMA");
    }

    #[test]
    fn munlock_does_not_nest() {
        // The paper's complaint: lock twice, unlock once → unlocked.
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::root());
        let a = k
            .mmap_anon(pid, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        k.sys_mlock(pid, a, PAGE_SIZE).unwrap();
        k.sys_mlock(pid, a, PAGE_SIZE).unwrap();
        k.sys_munlock(pid, a, PAGE_SIZE).unwrap();
        assert_eq!(
            k.locked_bytes(pid).unwrap(),
            0,
            "single munlock annuls both locks"
        );
    }

    #[test]
    fn mlock_hole_fails() {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::root());
        let a = k
            .mmap_anon(pid, 2 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        // Range extending beyond the mapping has a hole.
        assert!(matches!(
            k.sys_mlock(pid, a, 4 * PAGE_SIZE),
            Err(MmError::SegFault { .. })
        ));
    }

    #[test]
    fn rlimit_enforced() {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::root());
        k.set_rlimit_memlock(pid, Some(2 * PAGE_SIZE as u64))
            .unwrap();
        let a = k
            .mmap_anon(pid, 4 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        assert_eq!(k.sys_mlock(pid, a, 4 * PAGE_SIZE), Err(MmError::MlockLimit));
        assert!(k.sys_mlock(pid, a, 2 * PAGE_SIZE).is_ok());
    }
}
