//! Virtual memory areas (`struct vm_area_struct`) and the per-process VMA
//! set, including the split/merge logic `do_mlock()` relies on.
//!
//! The paper's VMA-based locking approach (section 3.2) sets `VM_LOCKED` on
//! all VMAs covering a range, splitting the original VMAs at the range
//! boundaries; `swap_out_vma()` then skips locked VMAs.

use std::collections::BTreeMap;

use crate::{MmError, VirtAddr};

/// VMA flag bits (`VM_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VmFlags {
    /// `VM_LOCKED`: pages in this area are exempt from swapping.
    pub locked: bool,
    /// `VM_READ`
    pub read: bool,
    /// `VM_WRITE`
    pub write: bool,
    /// `VM_DONTCOPY` (`madvise(MADV_DONTFORK)`): the area is not copied
    /// into children — the remedy for DMA-vs-fork COW hazards.
    pub dontfork: bool,
}

impl VmFlags {
    pub fn rw() -> Self {
        VmFlags {
            locked: false,
            read: true,
            write: true,
            dontfork: false,
        }
    }
    pub fn ro() -> Self {
        VmFlags {
            locked: false,
            read: true,
            write: false,
            dontfork: false,
        }
    }
}

/// One virtual memory area: the half-open range `[start, end)`, page aligned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmArea {
    pub start: VirtAddr,
    pub end: VirtAddr,
    pub flags: VmFlags,
}

impl VmArea {
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
    #[inline]
    pub fn contains(&self, addr: VirtAddr) -> bool {
        self.start <= addr && addr < self.end
    }
    #[inline]
    pub fn pages(&self) -> u64 {
        self.len() >> crate::PAGE_SHIFT
    }
}

/// Ordered, non-overlapping set of VMAs for one address space.
#[derive(Debug, Default, Clone)]
pub struct VmaSet {
    /// Keyed by start address; invariant: ranges are disjoint and sorted.
    areas: BTreeMap<VirtAddr, VmArea>,
}

impl VmaSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct VMAs (grows when `mlock` splits areas).
    pub fn count(&self) -> usize {
        self.areas.len()
    }

    /// Find the VMA containing `addr`, like `find_vma` (but exact, not
    /// "first ending above").
    pub fn find(&self, addr: VirtAddr) -> Option<&VmArea> {
        self.areas
            .range(..=addr)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(addr))
    }

    /// Iterate all VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &VmArea> {
        self.areas.values()
    }

    /// Iterate mutably in address order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut VmArea> {
        self.areas.values_mut()
    }

    /// True if `[start, end)` is entirely covered by VMAs (no holes).
    pub fn covered(&self, start: VirtAddr, end: VirtAddr) -> bool {
        let mut at = start;
        while at < end {
            match self.find(at) {
                Some(v) => at = v.end,
                None => return false,
            }
        }
        true
    }

    /// True if `[start, end)` overlaps any existing VMA.
    pub fn overlaps(&self, start: VirtAddr, end: VirtAddr) -> bool {
        // VMAs are disjoint and sorted, so the only candidate is the last
        // one beginning before `end`; it overlaps iff it extends past `start`.
        self.areas
            .range(..end)
            .next_back()
            .is_some_and(|(_, v)| v.end > start)
    }

    /// Insert a new VMA; fails if it overlaps an existing one.
    pub fn insert(&mut self, vma: VmArea) -> Result<(), MmError> {
        if vma.is_empty() {
            return Err(MmError::InvalidArgument("empty VMA"));
        }
        if vma.start & crate::PAGE_MASK != 0 || vma.end & crate::PAGE_MASK != 0 {
            return Err(MmError::InvalidArgument("unaligned VMA"));
        }
        if self.overlaps(vma.start, vma.end) {
            return Err(MmError::RangeBusy);
        }
        self.areas.insert(vma.start, vma);
        Ok(())
    }

    /// Remove all VMAs intersecting `[start, end)`, splitting at the
    /// boundaries; returns the removed (sub-)areas. This is `do_munmap`'s
    /// area surgery.
    pub fn remove_range(&mut self, start: VirtAddr, end: VirtAddr) -> Vec<VmArea> {
        self.split_at(start);
        self.split_at(end);
        let keys: Vec<VirtAddr> = self.areas.range(start..end).map(|(k, _)| *k).collect();
        keys.into_iter()
            .filter_map(|k| self.areas.remove(&k))
            .collect()
    }

    /// Split the VMA containing `addr` (if any) so that `addr` becomes a
    /// boundary. No-op when `addr` already is one. This is `split_vma`.
    pub fn split_at(&mut self, addr: VirtAddr) {
        let Some(v) = self.find(addr).cloned() else {
            return;
        };
        if v.start == addr {
            return;
        }
        // Shrink the original, insert the tail.
        let tail = VmArea {
            start: addr,
            end: v.end,
            flags: v.flags,
        };
        self.areas.get_mut(&v.start).expect("vma present").end = addr;
        self.areas.insert(addr, tail);
    }

    /// Apply `f` to every VMA piece covering `[start, end)`, splitting at the
    /// boundaries first. Errors with `SegFault`-style coverage failure left
    /// to the caller via [`VmaSet::covered`]. This is the heart of
    /// `do_mlock`.
    pub fn for_range_mut<F: FnMut(&mut VmArea)>(
        &mut self,
        start: VirtAddr,
        end: VirtAddr,
        mut f: F,
    ) {
        self.split_at(start);
        self.split_at(end);
        for (_, v) in self.areas.range_mut(start..end) {
            f(v);
        }
    }

    /// Merge adjacent VMAs with identical flags — keeps the VMA count from
    /// growing without bound across mlock/munlock cycles (`vma_merge`).
    pub fn merge_adjacent(&mut self) {
        loop {
            let mut merged = false;
            let starts: Vec<VirtAddr> = self.areas.keys().copied().collect();
            for s in starts {
                // The entry may have been merged away already.
                let Some(cur) = self.areas.get(&s).cloned() else {
                    continue;
                };
                if let Some(next) = self.areas.get(&cur.end).cloned() {
                    if next.flags == cur.flags {
                        self.areas.remove(&next.start);
                        self.areas.get_mut(&s).expect("cur present").end = next.end;
                        merged = true;
                    }
                }
            }
            if !merged {
                break;
            }
        }
    }

    /// Total locked bytes (for `RLIMIT_MEMLOCK` accounting).
    pub fn locked_bytes(&self) -> u64 {
        self.areas
            .values()
            .filter(|v| v.flags.locked)
            .map(|v| v.len())
            .sum()
    }

    /// Check internal invariants (used by property tests): sorted, disjoint,
    /// aligned, non-empty.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end = 0u64;
        for (k, v) in &self.areas {
            if *k != v.start {
                return Err(format!("key {k:#x} != start {:#x}", v.start));
            }
            if v.is_empty() {
                return Err(format!("empty VMA at {:#x}", v.start));
            }
            if v.start & crate::PAGE_MASK != 0 || v.end & crate::PAGE_MASK != 0 {
                return Err(format!("unaligned VMA {:#x}..{:#x}", v.start, v.end));
            }
            if v.start < prev_end {
                return Err(format!(
                    "overlap: VMA {:#x}..{:#x} begins before {prev_end:#x}",
                    v.start, v.end
                ));
            }
            prev_end = v.end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    const P: u64 = PAGE_SIZE as u64;

    fn vma(a: u64, b: u64) -> VmArea {
        VmArea {
            start: a * P,
            end: b * P,
            flags: VmFlags::rw(),
        }
    }

    #[test]
    fn insert_and_find() {
        let mut s = VmaSet::new();
        s.insert(vma(1, 4)).unwrap();
        s.insert(vma(8, 10)).unwrap();
        assert!(s.find(P).is_some());
        assert!(s.find(3 * P + 5).is_some());
        assert!(s.find(4 * P).is_none());
        assert!(s.find(0).is_none());
        assert_eq!(s.count(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn overlap_rejected() {
        let mut s = VmaSet::new();
        s.insert(vma(1, 4)).unwrap();
        assert_eq!(s.insert(vma(3, 5)), Err(MmError::RangeBusy));
        assert_eq!(s.insert(vma(0, 2)), Err(MmError::RangeBusy));
        assert!(s.insert(vma(4, 5)).is_ok());
        s.check_invariants().unwrap();
    }

    #[test]
    fn split_and_apply() {
        let mut s = VmaSet::new();
        s.insert(vma(0, 10)).unwrap();
        s.for_range_mut(2 * P, 5 * P, |v| v.flags.locked = true);
        assert_eq!(s.count(), 3, "mlock splits one VMA into three");
        assert!(!s.find(P).unwrap().flags.locked);
        assert!(s.find(2 * P).unwrap().flags.locked);
        assert!(s.find(4 * P).unwrap().flags.locked);
        assert!(!s.find(5 * P).unwrap().flags.locked);
        assert_eq!(s.locked_bytes(), 3 * P);
        s.check_invariants().unwrap();
    }

    #[test]
    fn merge_restores_single_vma() {
        let mut s = VmaSet::new();
        s.insert(vma(0, 10)).unwrap();
        s.for_range_mut(2 * P, 5 * P, |v| v.flags.locked = true);
        s.for_range_mut(2 * P, 5 * P, |v| v.flags.locked = false);
        s.merge_adjacent();
        assert_eq!(s.count(), 1);
        s.check_invariants().unwrap();
    }

    #[test]
    fn remove_range_splits() {
        let mut s = VmaSet::new();
        s.insert(vma(0, 10)).unwrap();
        let removed = s.remove_range(3 * P, 6 * P);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].start, 3 * P);
        assert_eq!(removed[0].end, 6 * P);
        assert_eq!(s.count(), 2);
        assert!(s.covered(0, 3 * P));
        assert!(!s.covered(0, 7 * P));
        s.check_invariants().unwrap();
    }

    #[test]
    fn coverage_detects_holes() {
        let mut s = VmaSet::new();
        s.insert(vma(0, 2)).unwrap();
        s.insert(vma(3, 5)).unwrap();
        assert!(s.covered(0, 2 * P));
        assert!(!s.covered(0, 4 * P));
        assert!(s.covered(3 * P, 5 * P));
    }
}
