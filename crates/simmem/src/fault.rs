//! The page-fault path: demand-zero, zero-page mapping, copy-on-write and
//! swap-in (`handle_mm_fault` / `do_no_page` / `do_wp_page` / `do_swap_page`).

use crate::mm::AddressSpace;
use crate::page::RMap;
use crate::stats::CounterCell;
use crate::{error::MmResult, Kernel, MmError, Pid, Pte, VirtAddr};

impl Kernel {
    /// Ensure the page containing `addr` is present with the requested
    /// access; returns the backing frame. This is the whole CPU fault path:
    /// VMA lookup, protection check, then demand paging / COW / swap-in.
    pub(crate) fn fault_in(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        write: bool,
    ) -> MmResult<crate::FrameId> {
        let vpn = AddressSpace::vpn(addr);

        // --- find_vma + access check -----------------------------------
        let vma_flags = {
            let proc = self.process(pid)?;
            let vma = proc
                .mm
                .vmas
                .find(addr)
                .ok_or(MmError::SegFault { pid, addr })?;
            vma.flags
        };
        if write && !vma_flags.write {
            return Err(MmError::ProtFault { pid, addr });
        }
        if !write && !vma_flags.read {
            return Err(MmError::ProtFault { pid, addr });
        }

        let pte = self.process(pid)?.mm.pte(vpn).copied();
        match pte {
            // ----------------------------------------------------------
            // Fast path: present and sufficient permissions.
            // ----------------------------------------------------------
            Some(Pte::Present {
                frame, writable, ..
            }) if !write || writable => {
                if let Some(Pte::Present {
                    accessed, dirty, ..
                }) = self.process_mut(pid)?.mm.pte_mut(vpn)
                {
                    *accessed = true;
                    if write {
                        *dirty = true;
                    }
                }
                Ok(frame)
            }

            // ----------------------------------------------------------
            // do_wp_page: write to a present but read-only PTE in a
            // writable VMA — copy-on-write.
            // ----------------------------------------------------------
            Some(Pte::Present { frame, .. }) => {
                debug_assert!(write);
                // Lazy (on-demand) pins hold page references of their own;
                // they do not make the frame "shared" for COW purposes.
                let lazy = self.lazy_pin_count(frame);
                let shared = self.pagemap.get(frame).count() > 1 + lazy || frame == self.zero_frame;
                if shared {
                    let new = self.get_free_frame()?;
                    self.phys.copy_frame(frame, new);
                    // A genuine COW break moves this mapping off the old
                    // frame. Any on-demand pins there belong to a
                    // registration whose owner just wrote: dissolve them
                    // and queue a TPT invalidation so the device re-pins
                    // the live frame instead of DMAing into the stale one
                    // (the write-after-fork hazard, made safe).
                    if self.dissolve_lazy_pins(frame) > 0 {
                        self.repin_pending.insert((pid, vpn));
                        self.stats.cow_invalidations.bump();
                    }
                    self.put_frame(frame);
                    self.pagemap.get_mut(new).rmap = Some(RMap { pid, vpn });
                    self.process_mut(pid)?
                        .mm
                        .set_pte(vpn, Pte::present(new, true));
                    self.stats.cow_copies.bump();
                    self.stats.minor_faults.bump();
                    Ok(new)
                } else {
                    // Sole owner (extra references, if any, are on-demand
                    // pins on this very mapping): keep the frame — and the
                    // pin — and just make the PTE writable.
                    self.process_mut(pid)?
                        .mm
                        .set_pte(vpn, Pte::present(frame, true));
                    self.stats.minor_faults.bump();
                    Ok(frame)
                }
            }

            // ----------------------------------------------------------
            // do_swap_page: major fault. 2.2 semantics — allocate a fresh
            // frame and read the slot back; the original frame (possibly
            // still pinned by a buggy driver) is NOT reused.
            // ----------------------------------------------------------
            Some(Pte::Swapped { slot }) => {
                // 2.4 semantics: a referenced page that was written out is
                // still in the swap cache — re-map the SAME frame (this is
                // what keeps a refcount-pinned page coherent on 2.4).
                if self.config.swap_cache {
                    if let Some(&frame) = self.swap_cache.get(&slot) {
                        self.swap_cache.remove(&slot);
                        self.pagemap.get_mut(frame).swap_slot = None;
                        self.pagemap.get_page(frame);
                        // The slot's copy is dead; free it.
                        self.swap.free_slot(slot)?;
                        self.pagemap.get_mut(frame).rmap = Some(RMap { pid, vpn });
                        self.process_mut(pid)?
                            .mm
                            .set_pte(vpn, Pte::present(frame, vma_flags.write));
                        self.stats.minor_faults.bump();
                        self.stats.swap_cache_hits.bump();
                        return Ok(frame);
                    }
                }
                // A failed device read leaves the PTE pointing at the slot;
                // the fault can simply be retried.
                if self.inject(crate::inject::SWAP_IO) {
                    return Err(MmError::SwapIoError);
                }
                let new = self.get_free_frame()?;
                // Borrow dance: read the slot into a stack page, then into
                // the frame.
                let mut page = [0u8; crate::PAGE_SIZE];
                self.swap.swap_in(slot, &mut page)?;
                self.phys.frame_mut(new).copy_from_slice(&page);
                self.pagemap.get_mut(new).rmap = Some(RMap { pid, vpn });
                self.process_mut(pid)?
                    .mm
                    .set_pte(vpn, Pte::present(new, vma_flags.write));
                self.stats.major_faults.bump();
                self.stats.swap_ins.bump();
                Ok(new)
            }

            // ----------------------------------------------------------
            // do_no_page (anonymous): demand-zero. Reads map the shared
            // zero page read-only (COW later); writes get a private frame.
            // ----------------------------------------------------------
            None => {
                self.stats.minor_faults.bump();
                if write {
                    let new = self.get_free_frame()?;
                    self.phys.zero_frame(new);
                    self.pagemap.get_mut(new).rmap = Some(RMap { pid, vpn });
                    self.process_mut(pid)?
                        .mm
                        .set_pte(vpn, Pte::present(new, true));
                    Ok(new)
                } else {
                    let zf = self.zero_frame;
                    self.pagemap.get_page(zf);
                    self.process_mut(pid)?
                        .mm
                        .set_pte(vpn, Pte::present(zf, false));
                    Ok(zf)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{prot, Capabilities, Kernel, KernelConfig, PAGE_SIZE};

    #[test]
    fn cow_from_zero_page() {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        // Read first: zero page mapped.
        let mut b = [0u8; 1];
        k.read_user(pid, a, &mut b).unwrap();
        assert_eq!(k.frame_of(pid, a).unwrap(), Some(k.zero_frame()));
        let zp_count = k.page_descriptor(k.zero_frame()).count();
        // Now write: COW off the zero page.
        k.write_user(pid, a, b"Z").unwrap();
        let f = k.frame_of(pid, a).unwrap().unwrap();
        assert_ne!(f, k.zero_frame());
        assert_eq!(
            k.page_descriptor(k.zero_frame()).count(),
            zp_count - 1,
            "zero-page ref dropped"
        );
        assert_eq!(k.mm_stats().cow_copies, 1);
        // Data visible, rest of page zero.
        let mut out = [0u8; 2];
        k.read_user(pid, a, &mut out).unwrap();
        assert_eq!(&out, b"Z\0");
    }

    #[test]
    fn fault_counters() {
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, 2 * PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        k.touch_pages(pid, a, 2 * PAGE_SIZE, true).unwrap();
        assert_eq!(k.mm_stats().minor_faults, 2);
        assert_eq!(k.mm_stats().major_faults, 0);
        // Touching again is the fast path: no new faults.
        k.touch_pages(pid, a, 2 * PAGE_SIZE, true).unwrap();
        assert_eq!(k.mm_stats().minor_faults, 2);
    }

    #[test]
    fn cow_break_dissolves_lazy_pin() {
        let mut k = Kernel::new(KernelConfig::small());
        let parent = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(parent, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        k.write_user(parent, a, b"before").unwrap();
        let f_old = k.lazy_pin_page(parent, a).unwrap();
        let _child = k.fork(parent).unwrap();
        // Parent writes: genuine sharing forces a copy; the lazy pin on the
        // old frame dissolves and queues an invalidation.
        k.write_user(parent, a, b"after!").unwrap();
        let f_new = k.frame_of(parent, a).unwrap().unwrap();
        assert_ne!(f_old, f_new);
        assert_eq!(k.lazy_pin_count(f_old), 0);
        assert_eq!(k.take_lazy_invalidations(), vec![f_old]);
        assert_eq!(k.mm_stats().cow_invalidations, 1);
        // The re-pin lands on the live frame and counts as a repin.
        assert_eq!(k.lazy_pin_page(parent, a).unwrap(), f_new);
        assert_eq!(k.mm_stats().repins, 1);
    }

    #[test]
    fn write_to_lazily_pinned_page_revalidates_in_place() {
        // The ReadOnlyPinned → writable transition: a sole-owner write to a
        // write-protected, lazily pinned page keeps frame and pin.
        let mut k = Kernel::new(KernelConfig::small());
        let pid = k.spawn_process(Capabilities::default());
        let a = k
            .mmap_anon(pid, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        k.write_user(pid, a, b"x").unwrap();
        let f = k.lazy_pin_page(pid, a).unwrap();
        k.write_protect_range(pid, a, PAGE_SIZE).unwrap();
        k.write_user(pid, a, b"y").unwrap();
        assert_eq!(k.frame_of(pid, a).unwrap(), Some(f), "no copy");
        assert_eq!(k.lazy_pin_count(f), 1, "pin survives the write");
        assert_eq!(k.mm_stats().cow_copies, 0);
        assert!(k.take_lazy_invalidations().is_empty());
    }

    #[test]
    fn private_pages_are_isolated() {
        let mut k = Kernel::new(KernelConfig::small());
        let p1 = k.spawn_process(Capabilities::default());
        let p2 = k.spawn_process(Capabilities::default());
        let a1 = k
            .mmap_anon(p1, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        let a2 = k
            .mmap_anon(p2, PAGE_SIZE, prot::READ | prot::WRITE)
            .unwrap();
        k.write_user(p1, a1, b"one").unwrap();
        k.write_user(p2, a2, b"two").unwrap();
        let mut out = [0u8; 3];
        k.read_user(p1, a1, &mut out).unwrap();
        assert_eq!(&out, b"one");
        k.read_user(p2, a2, &mut out).unwrap();
        assert_eq!(&out, b"two");
        assert_ne!(
            k.frame_of(p1, a1).unwrap(),
            k.frame_of(p2, a2).unwrap(),
            "distinct physical frames"
        );
    }
}
