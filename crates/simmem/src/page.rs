//! The `mem_map`: one [`PageDescriptor`] per physical frame, mirroring the
//! kernel's `mem_map_t` (`struct page`).
//!
//! The fields the paper's analysis hinges on are the **reference count** and
//! the `PG_locked` / `PG_reserved` **flag bits**: `shrink_mmap()` and
//! `swap_out()` skip pages whose `PG_locked` or `PG_reserved` bit is set, but
//! an elevated reference count alone does **not** keep a page mapped — the
//! page is written to swap, unmapped and orphaned (section 3.1 of the paper).
//!
//! Count and flags live in per-frame **atomics** so that the sharded
//! registration path can grab/drop references and take `PG_locked` from
//! several threads under a shared (`&Kernel`) borrow — the same shift Linux
//! itself made when `page->count` became `atomic_t`. `rmap` and `swap_slot`
//! stay plain fields: they are only touched on the exclusive (`&mut Kernel`)
//! fault/reclaim paths.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

use crate::FrameId;

/// Page flag bits, the subset of `PG_*` relevant to the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags(u8);

impl PageFlags {
    /// `PG_locked`: the page is locked for I/O; the page stealer must not
    /// touch it.
    pub const LOCKED: u8 = 1 << 0;
    /// `PG_reserved`: the page is not available to the VM at all.
    pub const RESERVED: u8 = 1 << 1;
    /// Accessed ("young") bit used for second-chance aging. In real hardware
    /// this lives in the PTE; keeping a copy here simplifies the clock pass.
    pub const ACCESSED: u8 = 1 << 2;
    /// Dirty: the page was written since it was last cleaned.
    pub const DIRTY: u8 = 1 << 3;
    /// The frame is pinned *lazily* by the on-demand registration path: it
    /// holds `PG_locked` like a reliable pin, but the page stealer is
    /// allowed to dissolve the pin (drop the lazy references, clear the
    /// bit, queue a TPT invalidation) when the page goes cold — see
    /// `Kernel::lazy_pin_page` and the pressure path in `reclaim`.
    pub const ONDEMAND: u8 = 1 << 4;

    #[inline]
    pub fn contains(self, bit: u8) -> bool {
        self.0 & bit != 0
    }
    #[inline]
    pub fn set(&mut self, bit: u8) {
        self.0 |= bit;
    }
    #[inline]
    pub fn clear(&mut self, bit: u8) {
        self.0 &= !bit;
    }
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }
}

/// Reverse-mapping information: which (process, virtual page) currently maps
/// this frame. Linux 2.2 had no rmap and found pages by walking page tables;
/// we keep a single back-pointer (anonymous pages are mapped at most once in
/// this model except for the shared zero page, which is never reclaimed) to
/// keep the stealer honest and O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RMap {
    pub pid: crate::Pid,
    pub vpn: crate::Vpn,
}

/// Per-frame descriptor: the simulated `mem_map_t`.
///
/// `count` and `flags` are atomics (readable and mutable through `&self`);
/// read them via [`PageDescriptor::count`] / [`PageDescriptor::flags`].
#[derive(Debug, Default)]
pub struct PageDescriptor {
    /// `page->count`: number of users. 0 = free.
    count: AtomicU32,
    /// `PG_*` flag bits.
    flags: AtomicU8,
    /// Reverse map for the (single) anonymous mapping, if any.
    pub rmap: Option<RMap>,
    /// When the frame sits in the swap cache (2.4 semantics): the slot
    /// holding its written-out copy.
    pub swap_slot: Option<crate::SlotId>,
}

impl PageDescriptor {
    /// `page->count` snapshot.
    #[inline]
    pub fn count(&self) -> u32 {
        self.count.load(Ordering::Acquire)
    }

    /// Overwrite the reference count (arena init / frame recycle only).
    #[inline]
    pub fn set_count(&self, v: u32) {
        self.count.store(v, Ordering::Release);
    }

    /// Atomic `get_page()`: returns the previous count.
    #[inline]
    pub fn ref_inc(&self) -> u32 {
        self.count.fetch_add(1, Ordering::AcqRel)
    }

    /// Atomic `__free_page()` half: drop a reference, reporting whether the
    /// count reached zero. Underflow is a hard error (a double put).
    #[inline]
    pub fn ref_dec(&self, id: FrameId) -> Result<bool, crate::MmError> {
        let mut cur = self.count.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return Err(crate::MmError::RefcountUnderflow(id));
            }
            match self.count.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(cur == 1),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current flag bits snapshot.
    #[inline]
    pub fn flags(&self) -> PageFlags {
        PageFlags(self.flags.load(Ordering::Acquire))
    }

    /// Set flag bits (atomic OR).
    #[inline]
    pub fn set_flag(&self, bit: u8) {
        self.flags.fetch_or(bit, Ordering::AcqRel);
    }

    /// Clear flag bits (atomic AND-NOT); returns whether any of the bits
    /// were previously set.
    #[inline]
    pub fn clear_flag(&self, bit: u8) -> bool {
        self.flags.fetch_and(!bit, Ordering::AcqRel) & bit != 0
    }

    /// Atomically try to take `PG_locked`; `true` if this call acquired it
    /// (it was clear before). The concurrent pin path uses this instead of a
    /// separate test-then-set.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.flags.fetch_or(PageFlags::LOCKED, Ordering::AcqRel) & PageFlags::LOCKED == 0
    }

    /// Reset all flag bits (frame recycle).
    #[inline]
    pub fn reset_flags(&self) {
        self.flags.store(0, Ordering::Release);
    }

    /// True if the page is free (count == 0).
    #[inline]
    pub fn is_free(&self) -> bool {
        self.count() == 0
    }

    /// True if the page stealer must skip this page (locked or reserved).
    #[inline]
    pub fn steal_protected(&self) -> bool {
        let f = self.flags();
        f.contains(PageFlags::LOCKED) || f.contains(PageFlags::RESERVED)
    }
}

/// The page map: a dense array of descriptors parallel to the frame arena.
pub struct PageMap {
    pages: Vec<PageDescriptor>,
}

impl PageMap {
    pub fn new(nframes: u32) -> Self {
        PageMap {
            pages: (0..nframes).map(|_| PageDescriptor::default()).collect(),
        }
    }

    #[inline]
    pub fn get(&self, id: FrameId) -> &PageDescriptor {
        &self.pages[id.0 as usize]
    }

    #[inline]
    pub fn get_mut(&mut self, id: FrameId) -> &mut PageDescriptor {
        &mut self.pages[id.0 as usize]
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Iterate (frame, descriptor) pairs — used by the clock algorithm.
    pub fn iter(&self) -> impl Iterator<Item = (FrameId, &PageDescriptor)> {
        self.pages
            .iter()
            .enumerate()
            .map(|(i, d)| (FrameId(i as u32), d))
    }

    /// `get_page()`: take an additional reference.
    #[inline]
    pub fn get_page(&self, id: FrameId) {
        self.pages[id.0 as usize].ref_inc();
    }

    /// `__free_page()`: drop a reference; returns `true` if the count reached
    /// zero (i.e. the frame is really free now).
    #[inline]
    pub fn put_page(&self, id: FrameId) -> Result<bool, crate::MmError> {
        self.pages[id.0 as usize].ref_dec(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags() {
        let mut f = PageFlags::default();
        assert!(!f.contains(PageFlags::LOCKED));
        f.set(PageFlags::LOCKED);
        f.set(PageFlags::DIRTY);
        assert!(f.contains(PageFlags::LOCKED));
        assert!(f.contains(PageFlags::DIRTY));
        f.clear(PageFlags::LOCKED);
        assert!(!f.contains(PageFlags::LOCKED));
        assert!(f.contains(PageFlags::DIRTY));
    }

    #[test]
    fn refcounting() {
        let pm = PageMap::new(2);
        assert!(pm.get(FrameId(0)).is_free());
        pm.get_page(FrameId(0));
        pm.get_page(FrameId(0));
        assert_eq!(pm.get(FrameId(0)).count(), 2);
        assert!(!pm.put_page(FrameId(0)).unwrap());
        assert!(pm.put_page(FrameId(0)).unwrap());
        assert!(matches!(
            pm.put_page(FrameId(0)),
            Err(crate::MmError::RefcountUnderflow(_))
        ));
    }

    #[test]
    fn steal_protection() {
        let d = PageDescriptor::default();
        assert!(!d.steal_protected());
        d.set_flag(PageFlags::LOCKED);
        assert!(d.steal_protected());
        d.clear_flag(PageFlags::LOCKED);
        d.set_flag(PageFlags::RESERVED);
        assert!(d.steal_protected());
    }

    #[test]
    fn try_lock_is_exclusive() {
        let d = PageDescriptor::default();
        assert!(d.try_lock(), "first lock wins");
        assert!(!d.try_lock(), "second lock loses");
        assert!(d.clear_flag(PageFlags::LOCKED));
        assert!(d.try_lock(), "free again after clear");
    }
}
